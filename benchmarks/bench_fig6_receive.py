"""Figure 6: netperf receive throughput over five gigabit NICs.

Paper: domU 928, domU-twin 2022, dom0 2839, Linux 3010 Mb/s (all CPU
bound); headline claim: 2.17x improvement, 67 % of native Linux.
"""

import pytest

from repro.workloads import run_netperf

from .common import compare_row, header, report

PAPER = {"domU": 928, "domU-twin": 2022, "dom0": 2839, "linux": 3010}
PACKETS = 384


def run_figure6():
    return {name: run_netperf(name, "rx", packets=PACKETS)
            for name in PAPER}


@pytest.mark.benchmark(group="figure6")
def test_figure6_receive(benchmark):
    results = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    lines = list(header("Figure 6: receive throughput (Mb/s)"))
    for name in ("domU", "domU-twin", "dom0", "linux"):
        lines.append(compare_row(name, PAPER[name],
                                 results[name].throughput_mbps, "Mb/s"))
    factor = (results["domU-twin"].cpu_scaled_mbps
              / results["domU"].cpu_scaled_mbps)
    frac = (results["domU-twin"].cpu_scaled_mbps
            / results["linux"].cpu_scaled_mbps)
    lines.append("")
    lines.append(compare_row("twin vs domU (CPU-scaled, x)", 2.17 * 100,
                             factor * 100, "%"))
    lines.append(compare_row("twin / native Linux", 67, frac * 100, "%"))
    metrics = {name: {"throughput_mbps": r.throughput_mbps,
                      "cpu_utilization": r.cpu_utilization,
                      "cpu_scaled_mbps": r.cpu_scaled_mbps,
                      "cycles_per_packet": r.cycles_per_packet}
               for name, r in results.items()}
    metrics["twin_vs_domU_cpu_scaled"] = factor
    metrics["twin_fraction_of_linux"] = frac
    report("figure6_receive", lines,
           metrics=metrics,
           config={"direction": "rx", "packets": PACKETS, "nics": 5},
           obs={name: r.counters for name, r in results.items()})

    for name, target in PAPER.items():
        assert abs(results[name].throughput_mbps - target) < 0.15 * target
    assert 1.8 < factor < 2.6
