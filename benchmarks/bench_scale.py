"""Scalability sweep: per-packet Xen cost from 1 to 256 domU guests.

Builds the ``scale`` configuration (SMP hypervisor with the credit
scheduler, 4 vCPUs, 4 NICs with 4 RSS queues each) at increasing guest
counts and measures steady-state per-packet Xen cycles on both the
transmit and the receive path. The TwinDrivers argument is that the
hypervisor driver cost is per *packet*, not per *guest*: sharded twin
state (stlb partitions, per-queue batch budgets) and O(1) scheduling
keep the per-packet cost flat as guests multiply. The bench asserts
every swept guest count stays within ``FLAT_BAND`` (±10 %) of the
smallest swept count on both directions.

Transmit is driven through the scheduler (one run-queue work item per
guest per round, each a 16-packet burst), receive by injecting frames
round-robin across the NICs so RSS demux spreads them over the queue
shards. ``rounds = ceil(ROUNDS_TARGET / guests)`` equalises the packet
population across guest counts so small sweeps are not noise-dominated.

The sweep is ``REPRO_SCALE_GUESTS`` (comma-separated) when set — CI's
``scale-smoke`` job runs the ``1,16,64`` subset and gates it against
``baselines/scale.json``, whose metric keys are restricted to that
subset so smoke and full-sweep results both gate cleanly (extra guest
counts surface as new-metric notes, never as regressions). Aggregate
band numbers are reported as strings for the same reason: their value
depends on which counts were swept.
"""

import math
import os

import pytest

from repro.configs import build_scale

from .common import header, report

DEFAULT_SWEEP = (1, 4, 16, 64, 256)
VCPUS = 4
NUM_QUEUES = 4
N_NICS = 4
BURST = 16           # packets per transmit work item / rx injection round
ROUNDS_TARGET = 64   # bursts per direction, spread over the guests
FLAT_BAND = 0.10


def sweep_counts():
    env = os.environ.get("REPRO_SCALE_GUESTS", "")
    if env.strip():
        counts = tuple(sorted({int(tok) for tok in env.split(",") if tok.strip()}))
    else:
        counts = DEFAULT_SWEEP
    if not counts or any(g < 1 for g in counts):
        raise ValueError(f"bad REPRO_SCALE_GUESTS sweep: {counts!r}")
    return counts


def run_one(guests):
    """Build a fresh scale config and push tx + rx traffic through it."""
    sut = build_scale(n_guests=guests, vcpus=VCPUS, num_queues=NUM_QUEUES,
                      n_nics=N_NICS)
    xen = sut.xen
    devices = sut.extras["devices"]
    rounds = max(1, math.ceil(ROUNDS_TARGET / guests))

    snap = sut.snapshot()
    tx_packets = 0
    for _ in range(rounds):
        for dev in devices:
            xen.scheduler.queue_work(
                dev.kernel.domain,
                (lambda d=dev: d.transmit_batch([1486] * BURST)))
        xen.scheduler.run()
        tx_packets += BURST * len(devices)
    tx_delta = sut.delta_since(snap)

    snap = sut.snapshot()
    rx_packets = 0
    ethertype = (0x0800).to_bytes(2, "big")
    for _ in range(rounds):
        for _ in range(BURST):
            for i, dev in enumerate(devices):
                nic = sut.nics[i % len(sut.nics)]
                frame = (dev.mac + b"\x00\x22\x33\x44\x55\x66"
                         + ethertype + bytes(1486))
                nic.receive(frame)
                rx_packets += 1
        for nic in sut.nics:
            nic.flush_interrupts()
    rx_delta = sut.delta_since(snap)

    return {
        "guests": guests,
        "rounds": rounds,
        "tx_packets": tx_packets,
        "rx_packets": rx_packets,
        "xen_per_packet_tx": tx_delta["Xen"] / tx_packets,
        "xen_per_packet_rx": rx_delta["Xen"] / rx_packets,
        "delivered": sut.packets_delivered,
        "sched": {
            "quanta": xen.scheduler.quanta,
            "steals": xen.scheduler.steals,
            "refills": xen.scheduler.refills,
        },
    }


def run_sweep():
    return {guests: run_one(guests) for guests in sweep_counts()}


@pytest.mark.benchmark(group="scale")
def test_scale_flat_band(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    base = results[min(results)]
    lines = list(header(
        f"Scale sweep: Xen cycles/packet vs guest count "
        f"(vcpus={VCPUS}, queues={NUM_QUEUES})",
        paper_col="guests", meas_col="tx / rx cyc"))
    metrics = {}
    deviations = {}
    for guests, res in results.items():
        dev_tx = res["xen_per_packet_tx"] / base["xen_per_packet_tx"] - 1.0
        dev_rx = res["xen_per_packet_rx"] / base["xen_per_packet_rx"] - 1.0
        deviations[guests] = (dev_tx, dev_rx)
        lines.append(
            f"  {'domU guests':34s} {guests:>10d}   "
            f"{res['xen_per_packet_tx']:>6.0f} / {res['xen_per_packet_rx']:>6.0f}"
            f"   (tx {dev_tx:+.1%}, rx {dev_rx:+.1%})")
        metrics[f"guests_{guests}"] = {
            "xen_cycles_per_packet_tx": res["xen_per_packet_tx"],
            "xen_cycles_per_packet_rx": res["xen_per_packet_rx"],
            "packets_tx": res["tx_packets"],
            "packets_rx": res["rx_packets"],
        }

    worst_tx = max(deviations, key=lambda g: abs(deviations[g][0]))
    worst_rx = max(deviations, key=lambda g: abs(deviations[g][1]))
    # strings on purpose: these depend on which counts were swept, so
    # they must stay invisible to the numeric baseline gate
    metrics["flat_band"] = {
        "reference_guests": str(min(results)),
        "band": f"±{FLAT_BAND:.0%}",
        "worst_tx": f"{deviations[worst_tx][0]:+.2%} at {worst_tx} guests",
        "worst_rx": f"{deviations[worst_rx][1]:+.2%} at {worst_rx} guests",
        "within_band": all(
            abs(d) <= FLAT_BAND for pair in deviations.values() for d in pair),
    }
    lines.append("")
    lines.append(f"  worst deviation vs {min(results)} guest(s): "
                 f"tx {metrics['flat_band']['worst_tx']}, "
                 f"rx {metrics['flat_band']['worst_rx']}")

    report("scale", lines,
           metrics=metrics,
           config={"config": "scale", "sweep": sorted(results),
                   "vcpus": VCPUS, "num_queues": NUM_QUEUES,
                   "n_nics": N_NICS, "burst": BURST,
                   "rounds_target": ROUNDS_TARGET,
                   "flat_band": FLAT_BAND},
           obs={str(g): res["sched"] for g, res in results.items()})

    # the tentpole claim: per-packet Xen cost stays flat as guests scale
    for guests, (dev_tx, dev_rx) in deviations.items():
        assert abs(dev_tx) <= FLAT_BAND, (
            f"tx Xen cycles/packet at {guests} guests deviates "
            f"{dev_tx:+.1%} from {min(results)}-guest baseline")
        assert abs(dev_rx) <= FLAT_BAND, (
            f"rx Xen cycles/packet at {guests} guests deviates "
            f"{dev_rx:+.1%} from {min(results)}-guest baseline")
    # every injected frame must actually have been delivered to a guest
    for guests, res in results.items():
        assert res["delivered"] == res["rx_packets"], (
            f"{guests} guests: {res['delivered']} delivered "
            f"!= {res['rx_packets']} injected")
