"""Ablation: stlb hash-table size (the paper fixes 4096 entries / 16 MiB).

Sweeps the table size and measures hash-collision pressure on the real
workload: the slow path runs on every table miss, so a table smaller than
the driver's working set keeps evicting and refilling entries. This shows
why the paper's 4096 entries are comfortably sized.
"""

import pytest

from repro.core import ParavirtNetDevice, TwinDriverManager
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

from .common import header, report

SIZES = (16, 64, 256, 1024, 4096)
PACKETS = 192


def run_one(entries):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, stlb_entries=entries)
    nic = m.add_nic()
    nic.interrupt_batch = 8
    twin.attach_nic(nic)
    guest_kernel = Kernel(m, xen.create_domain("guest"), costs=xen.costs,
                          paravirtual=True)
    dev = ParavirtNetDevice(twin, guest_kernel,
                            mac=b"\x00\x16\x3e\xaa\x00\x01")
    xen.switch_to(dev.kernel.domain)
    # warm up, then measure steady state
    for _ in range(64):
        dev.transmit(1400)
    frame = dev.mac + b"\x00" * 6 + b"\x08\x00" + bytes(1400)
    for _ in range(64):
        m.wire.inject(nic, frame)
    svm = twin.svm
    base = svm.counters_snapshot()
    snap = m.account.snapshot()
    for _ in range(PACKETS):
        dev.transmit(1400)
        m.wire.inject(nic, frame)
    nic.flush_interrupts()
    delta = m.account.delta_since(snap)
    moved = {k: v - base[k] for k, v in svm.counters_snapshot().items()}
    return {
        "entries": entries,
        "working_set": len(svm.chains),
        "hits": moved["hit"],
        "misses": moved["miss"],
        "collisions": moved["collision"],
        "evictions": moved["eviction"],
        "flushes": moved["flush"],
        "cycles_per_pair": sum(delta.values()) / PACKETS,
    }


def run_sweep():
    return [run_one(n) for n in SIZES]


@pytest.mark.benchmark(group="stlb-sweep")
def test_stlb_size_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["stlb size sweep (steady-state misses over "
             f"{PACKETS} tx+rx pairs)", ""]
    lines.append(f"  {'entries':>8} {'workset':>8} {'hits':>8} "
                 f"{'misses':>8} {'collide':>8} {'evict':>8} "
                 f"{'flush':>6} {'cyc/pair':>10}")
    for row in rows:
        lines.append(
            f"  {row['entries']:>8} {row['working_set']:>8} "
            f"{row['hits']:>8} {row['misses']:>8} {row['collisions']:>8} "
            f"{row['evictions']:>8} {row['flushes']:>6} "
            f"{row['cycles_per_pair']:>10.0f}"
        )
    lines.append("")
    lines.append("  paper: 4096 entries mapping 16 MiB — large enough that "
                 "steady state takes zero slow paths")
    report("stlb_sweep", lines,
           metrics={str(row["entries"]): row for row in rows},
           config={"sizes": list(SIZES), "packets": PACKETS})

    by_size = {row["entries"]: row for row in rows}
    # the paper-sized table takes (almost) no steady-state slow paths —
    # a handful of first-touch pool pages at most; tiny tables thrash
    assert by_size[4096]["misses"] <= 8
    assert by_size[4096]["collisions"] == 0
    assert by_size[16]["misses"] > 100 * max(1, by_size[4096]["misses"])
