"""Ablation: the value of the rewriter's design choices called out in
DESIGN.md — liveness-driven scratch allocation (vs always spilling) and
the ``stlb_call`` translation cache (vs translating every indirect call).
"""

import pytest

from repro.configs import build
from repro.core import Rewriter, rewrite_driver
from repro.core.rewriter import RewriteStats
from repro.drivers import build_e1000_program
from repro.isa import LivenessAnalysis

from .common import compare_row, header, report


class AlwaysSpillRewriter(Rewriter):
    """What the rewriter would do *without* footnote-3 liveness analysis:
    assume every register is live and spill three victims per access."""

    def _scratch(self, liveness, index, ins, k, stats):
        class NothingFree:
            def free_registers_at(self, _):
                return ()
        return super()._scratch(NothingFree(), index, ins, k, stats)


def run():
    program = build_e1000_program()
    _, with_liveness = rewrite_driver(program)
    _, without = AlwaysSpillRewriter().rewrite(program)

    # xlate-cache effectiveness on a live run
    system = build("domU-twin", n_nics=1)
    system.transmit_packets(128)
    system.receive_packets(128)
    runtime = system.twin.hyp_runtime
    return with_liveness, without, runtime


@pytest.mark.benchmark(group="rewriter-ablation")
def test_rewriter_ablation(benchmark):
    with_liveness, without, runtime = benchmark.pedantic(
        run, rounds=1, iterations=1)
    lines = list(header("Rewriter ablations",
                        paper_col="no-liveness", meas_col="liveness"))
    lines.append(compare_row("register spills", without.spills,
                             with_liveness.spills, ""))
    lines.append(compare_row("output instructions",
                             without.output_instructions,
                             with_liveness.output_instructions, ""))
    saved = (without.output_instructions
             - with_liveness.output_instructions)
    lines.append(f"  liveness analysis avoids {saved} instructions "
                 f"({without.spills - with_liveness.spills} spill pairs) "
                 "— paper footnote 3")
    lines.append("")
    total = runtime.call_xlate_hits + runtime.call_xlate_misses
    lines.append(
        f"  stlb_call cache: {runtime.call_xlate_hits}/{total} hits "
        f"({runtime.call_xlate_hits / max(1, total):.1%}) — §5.1.2")
    report("rewriter_ablation", lines,
           metrics={"spills_with_liveness": with_liveness.spills,
                    "spills_without_liveness": without.spills,
                    "output_with_liveness":
                        with_liveness.output_instructions,
                    "output_without_liveness": without.output_instructions,
                    "call_xlate_hits": runtime.call_xlate_hits,
                    "call_xlate_misses": runtime.call_xlate_misses})

    assert with_liveness.spills < without.spills
    assert runtime.call_xlate_hits > runtime.call_xlate_misses
