"""Planned-handover benchmark: zero loss and a bounded virq-latency blip.

Runs a live binary swap and a queue re-homing in the middle of a
bidirectional packet stream, across (vcpus, num_queues, jit) combos,
and measures what a handover is allowed to cost:

* **drops** — packets injected minus packets delivered — must be 0 for
  every combo and both handover kinds. Traffic is injected *during* the
  window on purpose (NIC causes latch behind the masked line, tx frames
  hit the frozen admission gate) so the replay path is actually on the
  hook for the zero-loss claim.
* **p99 virq-latency blip** — the p99 of ``health.virq_defer_cycles``,
  which the replay phase feeds with how long each latched NIC cause
  waited behind the mask. The stream itself never defers (dom0's virq
  stays enabled), so on a fresh config the histogram contains only
  handover-induced observations; the bench asserts the p99 stays under
  ``BLIP_SLO`` simulated cycles.
* **window_cycles** — the drain..resume blackout span, for trend
  tracking via the regression gate.

Everything is measured on the virtual cycle account, so results are
bit-identical run to run and gate cleanly against
``baselines/handover.json`` (the jit=True combo must match its
jit=False twin exactly — the JIT changes host wall time only).
"""

import pytest

from repro.configs import build
from repro.obs.health import VIRQ_DEFER_HISTOGRAM

from .common import header, report

#: (vcpus, num_queues, jit) sweep — single-vCPU single-queue, SMP with
#: RSS sharding, and the same SMP shape under the trace JIT.
COMBOS = ((1, 1, False), (2, 2, False), (2, 2, True))

STREAM_PACKETS = 48      # per direction, around the handover
HANDOVER_AT = 23         # packet index at which the handover fires
MID_WINDOW_RX = 4        # frames injected while the line is masked
#: p99 bound (simulated cycles) on how long a latched NIC cause may
#: wait behind the masked line before the replay fires it.
BLIP_SLO = 200_000


def _label(kind, vcpus, queues, jit):
    return f"{kind}_v{vcpus}_q{queues}{'_jit' if jit else ''}"


def run_swap(vcpus, queues, jit):
    """Binary swap mid-stream on the domU-twin config."""
    sut = build("domU-twin", n_nics=2, vcpus=vcpus, num_queues=queues,
                jit=jit, handover=True)
    mgr = sut.extras["handover"]
    injected = sent = 0

    def mid_window():
        nonlocal injected
        # rx lands while masked: causes latch in ICR, fire at unmask
        injected += sut.receive_packets(MID_WINDOW_RX)
        # tx lands while frozen: snapshotted and replayed
        assert sut.transmit_packets(1) == 1

    for i in range(STREAM_PACKETS):
        injected += sut.receive_packets(1)
        sent += sut.transmit_packets(1)
        if i == HANDOVER_AT:
            assert mgr.swap_binary(mid_window_hook=mid_window).ok

    rep = mgr.history[-1]
    hist = sut.machine.obs.registry.histogram(VIRQ_DEFER_HISTOGRAM)
    return {
        "injected": injected,
        "delivered": sut.packets_delivered,
        "drops": injected - sut.packets_delivered,
        "wire_tx": sut.machine.wire.tx_count,
        "window_cycles": rep.window_cycles,
        "p99_blip_cycles": hist.quantile(0.99) if hist.count else 0,
        "replayed_tx": rep.replayed_tx,
        "epoch_delta": rep.epoch_after - rep.epoch_before,
    }


def run_rehome(vcpus, queues, jit):
    """Queue re-homing mid-stream on the two-instance pair config."""
    sut = build("handover-pair", n_guests=2, n_nics=1, vcpus=vcpus,
                num_queues=queues, jit=jit)
    m = sut.machine
    devices = sut.extras["devices"]
    sec = sut.extras["secondary"]
    mgr = sut.extras["handover"]
    pnic, snic = sut.nics[0], sut.extras["secondary_nics"][0]
    injected = 0

    def inject(nic, dev, n):
        nonlocal injected
        for _ in range(n):
            assert m.wire.inject(
                nic, dev.mac + b"\x00" * 6 + b"\x08\x00" + bytes(700))
            injected += 1
        nic.flush_interrupts()

    half = STREAM_PACKETS // 2
    inject(pnic, devices[0], half)
    inject(pnic, devices[1], half)
    rep = mgr.rehome_guest(devices[0], sec)
    assert rep.ok
    # the moved guest's frames now arrive on the second instance's NIC
    inject(snic, devices[0], half)
    inject(pnic, devices[1], half)
    for dev in devices:
        assert dev.transmit(700)

    hist = m.obs.registry.histogram(VIRQ_DEFER_HISTOGRAM)
    return {
        "injected": injected,
        "delivered": sut.packets_delivered,
        "drops": injected - sut.packets_delivered,
        "wire_tx": m.wire.tx_count,
        "window_cycles": rep.window_cycles,
        "p99_blip_cycles": hist.quantile(0.99) if hist.count else 0,
        "carried_parked": rep.carried_parked,
    }


def run_all():
    results = {}
    for vcpus, queues, jit in COMBOS:
        results[_label("swap", vcpus, queues, jit)] = run_swap(
            vcpus, queues, jit)
        results[_label("rehome", vcpus, queues, jit)] = run_rehome(
            vcpus, queues, jit)
    return results


@pytest.mark.benchmark(group="handover")
def test_handover_zero_loss(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = list(header(
        "Planned handover: drops and p99 virq-latency blip per combo",
        paper_col="combo", meas_col="drops / p99 blip"))
    for label, res in results.items():
        lines.append(
            f"  {label:34s} {res['drops']:>6d} / "
            f"{res['p99_blip_cycles']:>8.0f} cyc  "
            f"(window {res['window_cycles']} cyc, "
            f"{res['delivered']}/{res['injected']} delivered)")

    report("handover", lines,
           metrics=results,
           config={"combos": [list(c) for c in COMBOS],
                   "stream_packets": STREAM_PACKETS,
                   "handover_at": HANDOVER_AT,
                   "mid_window_rx": MID_WINDOW_RX,
                   "blip_slo": BLIP_SLO})

    for label, res in results.items():
        # the tentpole claim: a PLANNED handover drops nothing
        assert res["drops"] == 0, (
            f"{label}: {res['drops']} packets dropped "
            f"({res['delivered']}/{res['injected']})")
        # and the latency blip is bounded
        assert res["p99_blip_cycles"] <= BLIP_SLO, (
            f"{label}: p99 blip {res['p99_blip_cycles']:.0f} cyc "
            f"exceeds SLO {BLIP_SLO}")
    # the JIT must not change simulated behaviour at all
    for vcpus, queues, jit in COMBOS:
        if not jit:
            continue
        for kind in ("swap", "rehome"):
            on = results[_label(kind, vcpus, queues, True)]
            off = results.get(_label(kind, vcpus, queues, False))
            if off is not None:
                assert on == off, f"jit parity broken for {kind}"
