"""Validate benchmark JSON results against the repro-bench-result/v1 schema.

Usage::

    python benchmarks/check_results.py [results_dir]

Exits non-zero if any ``.json`` file under the results directory fails
validation, or if the directory contains no JSON results at all. CI runs
this after the benchmark step, before uploading the artifact.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import RESULTS_DIR, validate_result  # noqa: E402


def check_dir(results_dir: str) -> int:
    if not os.path.isdir(results_dir):
        print(f"error: no results directory at {results_dir}")
        return 1
    paths = sorted(
        os.path.join(results_dir, f)
        for f in os.listdir(results_dir) if f.endswith(".json")
    )
    if not paths:
        print(f"error: no JSON results under {results_dir}")
        return 1
    failures = 0
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as fh:
                doc = json.load(fh)
            validate_result(doc)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"FAIL {name}: {exc}")
            failures += 1
            continue
        print(f"ok   {name}: benchmark={doc['benchmark']} "
              f"metrics={len(doc['metrics'])} obs={len(doc['obs'])}")
    print(f"{len(paths) - failures}/{len(paths)} results valid")
    return 1 if failures else 0


if __name__ == "__main__":
    target = sys.argv[1] if len(sys.argv) > 1 else RESULTS_DIR
    sys.exit(check_dir(target))
