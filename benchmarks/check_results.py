"""Validate benchmark results and gate them against committed baselines.

Usage::

    python benchmarks/check_results.py [results_dir]           # schema check
    python benchmarks/check_results.py --gate                  # + perf gate
    python benchmarks/check_results.py --update-baselines     # refresh

Plain mode validates every ``.json`` under the results directory against
the ``repro-bench-result/v1`` schema (exits non-zero on any failure or
an empty directory) — CI runs this after the benchmark step, before
uploading the artifact.

``--gate`` additionally diffs every numeric metric against the committed
per-benchmark baselines in ``benchmarks/baselines/``. The simulator's
cycle metrics are deterministic run to run, so the default tolerance
band is tight (±5% relative) and reliably catches a 10% cycle
regression; per-metric overrides in a baseline file widen or narrow
individual bands. Each gate run appends one entry to
``benchmarks/results/trajectory.json`` (schema
``repro-perf-trajectory/v1``) so the history of gate verdicts rides
along with the results artifact.

``--update-baselines`` rewrites the baseline files from the current
results (run it deliberately, after a reviewed perf change; existing
per-metric overrides are preserved).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import RESULTS_DIR, validate_result  # noqa: E402

BASELINES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "baselines")

BASELINE_SCHEMA = "repro-perf-baseline/v1"
TRAJECTORY_SCHEMA = "repro-perf-trajectory/v1"

#: default relative tolerance band around each baseline value.
DEFAULT_TOLERANCE = 0.05

#: metric-name fragments excluded from gating: host wall-clock and other
#: non-deterministic timings have no stable baseline.
NONDETERMINISTIC_FRAGMENTS = ("wall", "host", "seconds", "_time", "time_")


def flatten_metrics(metrics: Dict, prefix: str = "") -> Dict[str, float]:
    """Dotted-key view of the numeric leaves of a metrics tree; strings,
    lists and booleans are not gateable and are skipped."""
    flat: Dict[str, float] = {}
    for key, value in metrics.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=dotted + "."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[dotted] = float(value)
    return flat


def gateable(name: str) -> bool:
    lowered = name.lower()
    return not any(frag in lowered for frag in NONDETERMINISTIC_FRAGMENTS)


def load_results(results_dir: str) -> Tuple[List[str], List[Tuple[str, Dict]]]:
    """Return (schema failure messages, [(benchmark name, doc)])."""
    failures: List[str] = []
    docs: List[Tuple[str, Dict]] = []
    paths = sorted(
        os.path.join(results_dir, f)
        for f in os.listdir(results_dir)
        if f.endswith(".json") and f != "trajectory.json"
    )
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as fh:
                doc = json.load(fh)
            validate_result(doc)
        except (ValueError, json.JSONDecodeError) as exc:
            failures.append(f"FAIL {name}: {exc}")
            continue
        docs.append((doc["benchmark"], doc))
    return failures, docs


# -- the gate ----------------------------------------------------------------


def load_baseline(baselines_dir: str, benchmark: str) -> Optional[Dict]:
    path = os.path.join(baselines_dir, f"{benchmark}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"{path}: schema must be {BASELINE_SCHEMA!r}")
    return doc


def gate_benchmark(benchmark: str, doc: Dict,
                   baseline: Optional[Dict]) -> Tuple[List[str], List[str]]:
    """Compare one result against its baseline.

    Returns ``(regressions, notes)``: regressions fail the gate, notes
    (missing baselines, new metrics) are informational.
    """
    if baseline is None:
        return [], [f"{benchmark}: no baseline committed — not gated"]
    tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    overrides = baseline.get("overrides", {})
    want = baseline.get("metrics", {})
    got = {k: v for k, v in flatten_metrics(doc["metrics"]).items()
           if gateable(k)}
    regressions: List[str] = []
    notes: List[str] = []
    for key, base_value in sorted(want.items()):
        tol = float(overrides.get(key, tolerance))
        if key not in got:
            regressions.append(
                f"{benchmark}:{key}: metric disappeared "
                f"(baseline {base_value})")
            continue
        value = got[key]
        if base_value == 0:
            if value != 0:
                regressions.append(
                    f"{benchmark}:{key}: {value} vs baseline 0")
            continue
        drift = (value - base_value) / abs(base_value)
        if abs(drift) > tol:
            regressions.append(
                f"{benchmark}:{key}: {value:g} vs baseline {base_value:g} "
                f"({drift:+.1%}, band ±{tol:.0%})")
    for key in sorted(set(got) - set(want)):
        notes.append(f"{benchmark}:{key}: new metric, not in baseline")
    return regressions, notes


def append_trajectory(results_dir: str, ok: bool, checked: int,
                      regressions: List[str]) -> str:
    path = os.path.join(results_dir, "trajectory.json")
    doc = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                loaded = json.load(fh)
            if loaded.get("schema") == TRAJECTORY_SCHEMA:
                doc = loaded
        except (ValueError, json.JSONDecodeError):
            pass                      # corrupt history: start fresh
    doc["runs"].append({
        "seq": len(doc["runs"]),
        "timestamp": int(time.time()),
        "ok": ok,
        "benchmarks_gated": checked,
        "regressions": regressions,
    })
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def update_baselines(docs: List[Tuple[str, Dict]], baselines_dir: str) -> int:
    os.makedirs(baselines_dir, exist_ok=True)
    for benchmark, doc in docs:
        existing = load_baseline(baselines_dir, benchmark)
        baseline = {
            "schema": BASELINE_SCHEMA,
            "benchmark": benchmark,
            "tolerance": (existing or {}).get("tolerance",
                                              DEFAULT_TOLERANCE),
            "overrides": (existing or {}).get("overrides", {}),
            "metrics": {k: v
                        for k, v in flatten_metrics(doc["metrics"]).items()
                        if gateable(k)},
        }
        path = os.path.join(baselines_dir, f"{benchmark}.json")
        with open(path, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline {benchmark}: {len(baseline['metrics'])} metrics "
              f"-> {path}")
    return 0


# -- entrypoints -------------------------------------------------------------


def check_dir(results_dir: str, baselines_dir: str = BASELINES_DIR,
              gate: bool = False) -> int:
    if not os.path.isdir(results_dir):
        print(f"error: no results directory at {results_dir}")
        return 1
    failures, docs = load_results(results_dir)
    for line in failures:
        print(line)
    if not failures and not docs:
        print(f"error: no JSON results under {results_dir}")
        return 1
    for benchmark, doc in docs:
        print(f"ok   {benchmark}.json: metrics={len(doc['metrics'])} "
              f"obs={len(doc['obs'])}")
    print(f"{len(docs)}/{len(docs) + len(failures)} results valid")
    if failures:
        return 1
    if not gate:
        return 0

    regressions: List[str] = []
    notes: List[str] = []
    checked = 0
    for benchmark, doc in docs:
        baseline = load_baseline(baselines_dir, benchmark)
        if baseline is not None:
            checked += 1
        regs, ns = gate_benchmark(benchmark, doc, baseline)
        regressions.extend(regs)
        notes.extend(ns)
    for line in notes:
        print(f"note {line}")
    for line in regressions:
        print(f"REGRESSION {line}")
    ok = not regressions
    append_trajectory(results_dir, ok, checked, regressions)
    print(f"gate: {checked} benchmarks gated, "
          f"{len(regressions)} regressions -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="validate benchmark results; optionally gate "
                    "against committed perf baselines")
    parser.add_argument("results_dir", nargs="?", default=RESULTS_DIR)
    parser.add_argument("--results-dir", dest="results_dir_opt",
                        default=None, help="same as the positional")
    parser.add_argument("--baselines-dir", default=BASELINES_DIR)
    parser.add_argument("--gate", action="store_true",
                        help="fail on out-of-band metric drift and append "
                             "to results/trajectory.json")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite baselines from the current results")
    args = parser.parse_args(argv)
    results_dir = args.results_dir_opt or args.results_dir
    if args.update_baselines:
        failures, docs = load_results(results_dir)
        for line in failures:
            print(line)
        if failures or not docs:
            return 1
        return update_baselines(docs, args.baselines_dir)
    return check_dir(results_dir, baselines_dir=args.baselines_dir,
                     gate=args.gate)


if __name__ == "__main__":
    sys.exit(main())
