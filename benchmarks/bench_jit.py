"""Superblock JIT: host wall-time speedup at bit-identical cycles.

Not a paper figure — this gates the ISSUE 8 trace-JIT contract on the
figure 5/6 fast paths (domU-twin tx and rx):

* the **simulated** per-category cycle movement over the measured
  window is bit-identical with ``jit`` on and off, and
* the **host** wall time spent inside the interpreter
  (``cpu.call_function``) drops by at least 2x.

Wall-clock metrics carry ``host``/``seconds`` in their names so the
perf gate (``check_results.py --gate``) skips them; the cycle metrics
are deterministic and gated tightly against
``benchmarks/baselines/jit.json``.
"""

from time import perf_counter

import pytest

from repro.configs import build

from .common import header, report

WARMUP = 192      # deep enough that every hot head compiles before the
PACKETS = 384     # measured window opens (threshold 16, rx included)
MIN_SPEEDUP = 2.0


def _run_direction(direction, jit):
    system = build("domU-twin", n_nics=1, jit=jit)
    cpu = system.machine.cpu
    inner = cpu.call_function
    box = {"t": 0.0, "depth": 0}

    def timed(*args, **kwargs):
        # nested invocations (natives re-entering model code) are already
        # inside the outer timing window: count only the outermost frame
        if box["depth"]:
            return inner(*args, **kwargs)
        box["depth"] += 1
        t0 = perf_counter()
        try:
            return inner(*args, **kwargs)
        finally:
            box["t"] += perf_counter() - t0
            box["depth"] -= 1

    cpu.call_function = timed
    op = (system.transmit_packets if direction == "tx"
          else system.receive_packets)
    done = op(WARMUP)
    if done < WARMUP:
        raise RuntimeError(f"only {done}/{WARMUP} warmup packets flowed")
    box["t"] = 0.0
    snap = system.machine.account.snapshot()
    done = op(PACKETS)
    if done < PACKETS:
        raise RuntimeError(f"only {done}/{PACKETS} packets flowed")
    moved = system.machine.account.delta_since(snap)
    return box["t"], moved, cpu.jit_stats()


def _measure(direction):
    """(wall off, wall on, cycles off, cycles on, jit stats); best of
    two trials on the wall ratio, since the host is not idle in CI."""
    best = None
    for _ in range(2):
        off_wall, off_cycles, _ = _run_direction(direction, jit=False)
        on_wall, on_cycles, stats = _run_direction(direction, jit=True)
        trial = (off_wall, on_wall, off_cycles, on_cycles, stats)
        if best is None or (off_wall / on_wall
                            > best[0] / best[1]):
            best = trial
        if best[0] / best[1] >= MIN_SPEEDUP:
            break
    return best


def run_jit_comparison():
    return {direction: _measure(direction) for direction in ("tx", "rx")}


@pytest.mark.benchmark(group="jit")
def test_jit_speedup(benchmark):
    results = benchmark.pedantic(run_jit_comparison, rounds=1, iterations=1)
    lines = list(header("Superblock JIT: interpreter wall time (ms)",
                        paper_col="jit off", meas_col="jit on"))
    metrics, obs = {}, {}
    for direction, (off_wall, on_wall, off_cycles, on_cycles,
                    stats) in results.items():
        speedup = off_wall / on_wall
        lines.append(f"  {'domU-twin ' + direction:34s} "
                     f"{off_wall * 1e3:>10.1f}   {on_wall * 1e3:>10.1f} ms"
                     f"   ({speedup:.2f}x)")
        metrics[f"{direction}_host_wall_off_seconds"] = off_wall
        metrics[f"{direction}_host_wall_on_seconds"] = on_wall
        metrics[f"{direction}_host_speedup"] = speedup
        # deterministic and gated: the measured-window cycle movement,
        # identical by contract between the two modes
        total = sum(off_cycles.values())
        metrics[f"{direction}_cycles_per_packet"] = total / PACKETS
        for category, cycles in sorted(off_cycles.items()):
            if cycles:
                metrics[f"{direction}_cycles_{category}"] = cycles
        obs[f"{direction}_jit_compiles"] = stats["compiles"]
        obs[f"{direction}_jit_superblocks"] = stats["superblocks"]
        obs[f"{direction}_jit_entries"] = stats["entries"]
    lines.append("")
    lines.append("  simulated cycles: bit-identical in both modes "
                 "(asserted)")
    report("jit", lines, metrics=metrics,
           config={"config": "domU-twin", "packets": PACKETS,
                   "warmup": WARMUP, "nics": 1,
                   "min_speedup": MIN_SPEEDUP},
           obs=obs)

    for direction, (off_wall, on_wall, off_cycles, on_cycles,
                    stats) in results.items():
        assert off_cycles == on_cycles, (
            f"{direction}: simulated cycles diverged between "
            f"interpreter and JIT: {off_cycles} vs {on_cycles}")
        assert stats["compiles"] >= 1
        assert stats["entries"] > 0
        assert off_wall / on_wall >= MIN_SPEEDUP, (
            f"{direction}: JIT speedup {off_wall / on_wall:.2f}x "
            f"below the {MIN_SPEEDUP}x bar")
