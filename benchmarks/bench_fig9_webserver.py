"""Figure 9: web-server throughput vs offered request rate (knot serving a
SPECweb99-like file set, httperf open loop).

Paper peaks: Linux 855, dom0 712, domU-twin 572, domU 269 Mb/s; the
TwinDrivers guest beats the unoptimized guest by more than 2x and reaches
~67 % of native Linux.
"""

import pytest

from repro.workloads import figure9_curves

from .common import compare_row, header, report

PAPER_PEAKS = {"linux": 855, "dom0": 712, "domU-twin": 572, "domU": 269}
RATES = tuple(range(1000, 20001, 1000))


def run_figure9():
    return {c.config: c for c in figure9_curves(rates=RATES)}


@pytest.mark.benchmark(group="figure9")
def test_figure9_webserver(benchmark):
    curves = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    lines = list(header("Figure 9: web server peak throughput (Mb/s)"))
    for name in ("linux", "dom0", "domU-twin", "domU"):
        lines.append(compare_row(name, PAPER_PEAKS[name],
                                 curves[name].peak_mbps, "Mb/s"))
    lines.append("")
    lines.append("  throughput vs offered connection rate (Mb/s):")
    lines.append("    rate      linux     dom0     twin     domU")
    for i, rate in enumerate(RATES):
        row = "    {:6d}".format(rate)
        for name in ("linux", "dom0", "domU-twin", "domU"):
            row += f"  {curves[name].points[i].throughput_mbps:7.0f}"
        lines.append(row)
    twin_vs_domU = curves["domU-twin"].peak_mbps / curves["domU"].peak_mbps
    lines.append("")
    lines.append(f"  twin vs domU peak: {twin_vs_domU:.2f}x "
                 "(paper: 'more than a factor of 2')")
    metrics = {name: {"peak_mbps": c.peak_mbps,
                      "curve": [p.throughput_mbps for p in c.points]}
               for name, c in curves.items()}
    metrics["twin_vs_domU_peak"] = twin_vs_domU
    report("figure9_webserver", lines,
           metrics=metrics,
           config={"rates": list(RATES)})

    for name, target in PAPER_PEAKS.items():
        assert abs(curves[name].peak_mbps - target) < 0.20 * target
    assert twin_vs_domU > 2.0
