"""Table 1: the support routines called during error-free transmit and
receive — discovered dynamically by tracing the hypervisor driver.

Paper: exactly 10 routines on the fast path, against 97 used by the
Intel e1000 overall (our smaller toy driver imports ~33).
"""

import pytest

from repro.osmodel.support import FAST_PATH_ROUTINES
from repro.workloads import run_table1

from .common import report


def run():
    return run_table1(packets=192)


@pytest.mark.benchmark(group="table1")
def test_table1_fastpath(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [result.format(), ""]
    lines.append(f"paper fast-path set: {sorted(FAST_PATH_ROUTINES)}")
    report("table1_fastpath", lines,
           metrics={"fast_path": sorted(result.fast_path),
                    "n_fast_path": len(result.fast_path),
                    "n_all_routines": len(result.all_routines)},
           config={"packets": 192})

    assert result.fast_path == set(FAST_PATH_ROUTINES)
    assert len(result.all_routines) >= 30
