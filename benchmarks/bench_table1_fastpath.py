"""Table 1: the support routines called during error-free transmit and
receive — discovered dynamically by tracing the hypervisor driver.

Paper: exactly 10 routines on the fast path, against 97 used by the
Intel e1000 overall (our smaller toy driver imports ~33).

Also home to the profiler's disabled-overhead budget check: a profiling
session must leave zero residue, so a run after ``enable()``/
``disable()`` may cost at most 2% more host wall time than a
never-profiled run of the same workload (min-of-N, interleaved — kept
out of tier-1 because host timing is inherently noisy).
"""

import time

import pytest

from repro.osmodel.support import FAST_PATH_ROUTINES
from repro.workloads import run_table1

from .common import report


def run():
    return run_table1(packets=192)


@pytest.mark.benchmark(group="table1")
def test_table1_fastpath(benchmark):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [result.format(), ""]
    lines.append(f"paper fast-path set: {sorted(FAST_PATH_ROUTINES)}")
    report("table1_fastpath", lines,
           metrics={"fast_path": sorted(result.fast_path),
                    "n_fast_path": len(result.fast_path),
                    "n_all_routines": len(result.all_routines)},
           config={"packets": 192})

    assert result.fast_path == set(FAST_PATH_ROUTINES)
    assert len(result.all_routines) >= 30


def _timed_run(profile_first: bool) -> float:
    from repro.configs import build

    system = build("domU-twin")
    if profile_first:
        # a profiling session that has ended: any residue would show up
        # as wall-time overhead in the timed window below
        prof = system.machine.obs.profiler
        prof.enable()
        system.transmit_packets(4)
        prof.disable()
    t0 = time.perf_counter()
    system.transmit_packets(96)
    system.receive_packets(96)
    return time.perf_counter() - t0


@pytest.mark.benchmark(group="table1")
def test_profiler_disabled_overhead(benchmark):
    def measure():
        baseline = []
        after_session = []
        for _ in range(5):                     # interleaved, min-of-N
            baseline.append(_timed_run(profile_first=False))
            after_session.append(_timed_run(profile_first=True))
        return min(baseline), min(after_session)

    base, disabled = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = disabled / base - 1.0
    report("profiler_disabled_overhead",
           [f"baseline:        {base * 1e3:8.1f} ms",
            f"after profiling: {disabled * 1e3:8.1f} ms",
            f"overhead:        {overhead:+8.2%} (budget < 2%)"],
           # "host" in the key keeps this noisy timing out of the gate
           metrics={"host_overhead_fraction": overhead},
           config={"packets": 192, "rounds": 5})
    assert overhead < 0.02
