"""Interrupt-coalescing sweep on the TwinDrivers receive path (§5.3).

Sweeps the NIC interrupt batch over {1, 2, 4, 8, 16, 32} on the
``domU-twin`` configuration and measures steady-state per-packet Xen
cycles on receive. Coalescing amortises interrupt virtualization, the
driver ISR softirq and — since the batched flush — the per-guest virtual
interrupt across the batch, so Xen cycles/packet must decrease
monotonically with the batch size.

The JSON result also records ``virq_events`` vs ``packets_delivered`` at
the default batch of 8: CI asserts the coalesced path raises strictly
fewer virtual interrupts than it delivers packets.
"""

import pytest

from repro.workloads import profile_config

from .common import header, report

BATCH_SWEEP = (1, 2, 4, 8, 16, 32)
DEFAULT_BATCH = 8
PACKETS = 256
WARMUP = 64


def virq_events(counters):
    """Virtual interrupts the rx run charged (per-packet + coalesced)."""
    return (counters.get("xen.virq", 0)
            + counters.get("xen.virq_coalesced", 0))


def run_sweep():
    results = {}
    for batch in BATCH_SWEEP:
        prof = profile_config("domU-twin", "rx", packets=PACKETS,
                              warmup=WARMUP, interrupt_batch=batch)
        results[batch] = prof
    return results


@pytest.mark.benchmark(group="batching")
def test_batching_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = list(header("Rx interrupt coalescing: Xen cycles/packet",
                        paper_col="batch", meas_col="Xen cyc/pkt"))
    metrics = {}
    xen_per_packet = {}
    for batch, prof in results.items():
        per_packet = prof.cycles["Xen"] / prof.packets
        xen_per_packet[batch] = per_packet
        events = virq_events(prof.counters)
        lines.append(f"  {'interrupt_batch':34s} {batch:>10d}   "
                     f"{per_packet:>10.0f} cyc   "
                     f"({events} virqs / {prof.packets} pkts)")
        metrics[f"batch_{batch}"] = {
            "xen_cycles_per_packet": per_packet,
            "total_cycles_per_packet": prof.total_per_packet,
            "virq_events": events,
            "packets_delivered": prof.packets,
        }

    default = results[DEFAULT_BATCH]
    metrics["virq_events"] = virq_events(default.counters)
    metrics["packets_delivered"] = default.packets
    lines.append("")
    lines.append(f"  default batch {DEFAULT_BATCH}: "
                 f"{metrics['virq_events']} coalesced virqs for "
                 f"{metrics['packets_delivered']} packets")
    report("batching_sweep", lines,
           metrics=metrics,
           config={"config": "domU-twin", "direction": "rx",
                   "packets": PACKETS, "warmup": WARMUP,
                   "batch_sweep": list(BATCH_SWEEP),
                   "default_batch": DEFAULT_BATCH},
           obs={str(b): dict(p.counters) for b, p in results.items()})

    # per-packet Xen rx cost must fall monotonically with the batch size
    ordered = [xen_per_packet[b] for b in BATCH_SWEEP]
    for smaller, larger in zip(ordered, ordered[1:]):
        assert larger < smaller, (
            f"Xen cycles/packet not monotonically decreasing: {ordered}")
    # coalescing must charge strictly fewer virqs than packets delivered
    assert metrics["virq_events"] < metrics["packets_delivered"]
