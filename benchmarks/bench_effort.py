"""Section 6.5 (engineering effort): the paper implemented the 10 fast-path
support routines in Xen in 851 lines of commented C — "a very small
development effort compared to ... the entire driver support interface".

We compare the size of our hypervisor fast-path module against the full
guest-kernel support library, the same ratio argument.
"""

import inspect

import pytest

import repro.core.hypsupport as hypsupport
import repro.core.upcall as upcall
import repro.osmodel.support as full_support

from .common import compare_row, header, report


def loc(module) -> int:
    return len(inspect.getsource(module).splitlines())


def run():
    return {
        "hypervisor fast-path (hypsupport.py)": loc(hypsupport),
        "upcall plumbing (upcall.py)": loc(upcall),
        "full support library (support.py)": loc(full_support),
    }


@pytest.mark.benchmark(group="effort")
def test_engineering_effort(benchmark):
    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    hyp = sizes["hypervisor fast-path (hypsupport.py)"]
    stubs = sizes["upcall plumbing (upcall.py)"]
    full = sizes["full support library (support.py)"]
    lines = list(header("§6.5 engineering effort (lines of code)",
                        paper_col="paper(C)", meas_col="ours(py)"))
    lines.append(compare_row("hypervisor fast-path routines", 851, hyp,
                             "LoC"))
    lines.append(compare_row("upcall mechanism", None, stubs, "LoC"))
    lines.append(compare_row("full driver-support surface", None, full,
                             "LoC"))
    lines.append("")
    lines.append(f"  fast-path / full-surface ratio: {hyp / full:.2f} "
                 "(the point: implementing 10 routines is a fraction of "
                 "re-implementing the whole driver API)")
    report("effort", lines,
           metrics={"hypsupport_loc": hyp, "upcall_loc": stubs,
                    "full_support_loc": full,
                    "fast_path_ratio": hyp / full})

    assert hyp < full
