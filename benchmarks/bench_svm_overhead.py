"""Ablation (§4.1): the cost anatomy of SVM itself.

The paper argues the 10-instruction fast path is affordable because (a)
only ~25 % of driver instructions reference memory and (b) the driver is
only 10-15 % of the total packet cost. This benchmark measures all three
levels: static rewrite stats, raw driver slowdown, and end-to-end impact.
"""

import pytest

from repro.analysis import verify_program
from repro.configs import build
from repro.core import rewrite_driver
from repro.core.rewriter import apply_elision
from repro.drivers import DRIVER_SPECS, build_e1000_program
from repro.workloads import profile_config

from .common import compare_row, header, report

PACKETS = 256
ELIDE_PACKETS = 64


def run():
    program = build_e1000_program()
    _, stats = rewrite_driver(program)

    native_tx = profile_config("linux", "tx", packets=PACKETS)
    twin_tx = profile_config("domU-twin", "tx", packets=PACKETS)
    native_rx = profile_config("linux", "rx", packets=PACKETS)
    twin_rx = profile_config("domU-twin", "rx", packets=PACKETS)

    system = build("domU-twin", n_nics=1)
    system.transmit_packets(64)
    system.receive_packets(64)
    svm = system.twin.svm
    return stats, native_tx, twin_tx, native_rx, twin_rx, svm


@pytest.mark.benchmark(group="svm-ablation")
def test_svm_overhead(benchmark):
    stats, native_tx, twin_tx, native_rx, twin_rx, svm = benchmark.pedantic(
        run, rounds=1, iterations=1)
    lines = list(header("SVM overhead anatomy"))
    lines.append(compare_row("memory-referencing instructions", 25,
                             stats.memory_fraction * 100, "%"))
    lines.append(compare_row("static code expansion", None,
                             stats.expansion_factor * 100, "%"))
    lines.append(compare_row("register spills inserted", None,
                             stats.spills, ""))
    lines.append(compare_row("flag save/restores inserted", None,
                             stats.flag_saves, ""))
    lines.append("")
    lines.append("  rewritten sites by category:")
    for kind in sorted(stats.site_categories):
        lines.append(f"    {kind}: {stats.site_categories[kind]}")
    lines.append("")
    tx_slow = (twin_tx.per_packet["e1000"] / native_tx.per_packet["e1000"])
    rx_slow = (twin_rx.per_packet["e1000"] / native_rx.per_packet["e1000"])
    lines.append(compare_row("driver slowdown tx (paper ~2.3x)", 231,
                             tx_slow * 100, "%"))
    lines.append(compare_row("driver slowdown rx (paper ~2x)", 200,
                             rx_slow * 100, "%"))
    tx_share = twin_tx.per_packet["e1000"] / twin_tx.total_per_packet
    lines.append(compare_row("driver share of total tx cost (<15-20%)",
                             None, tx_share * 100, "%"))
    lines.append("")
    stlb = svm.counters_snapshot()
    lines.append(f"  stlb (steady state): hits={stlb['hit']} "
                 f"misses={stlb['miss']} collisions={stlb['collision']} "
                 f"flushes={stlb['flush']} "
                 f"pages mapped: {len(svm.mappings)}")
    report("svm_overhead", lines,
           metrics={
               "memory_fraction": stats.memory_fraction,
               "expansion_factor": stats.expansion_factor,
               "spills": stats.spills,
               "flag_saves": stats.flag_saves,
               "driver_slowdown_tx": tx_slow,
               "driver_slowdown_rx": rx_slow,
               "driver_share_tx": tx_share,
               "stlb": stlb,
           },
           config={"packets": PACKETS},
           obs=twin_tx.counters)

    assert 0.15 <= stats.memory_fraction <= 0.40
    assert 1.8 <= tx_slow <= 3.5
    assert tx_share < 0.30


def _static_elision_stats():
    """Prove-then-elide numbers for every shipped driver binary."""
    per_binary = {}
    for name in sorted(DRIVER_SPECS):
        rewritten, stats = rewrite_driver(DRIVER_SPECS[name].build_program())
        rep = verify_program(rewritten, annotations=stats.annotations,
                             name=name)
        assert rep.ok, rep.format()
        elided, result = apply_elision(rewritten, rep.proofs)
        rng = rep.stats["range"]
        per_binary[name] = {
            "sites_total": rng["sites_total"],
            "sites_proven": result.sites_elided,
            "coverage": result.sites_elided / rng["sites_total"],
            "anchors": result.anchors,
            "instructions_before": len(rewritten.instructions),
            "instructions_after": len(elided.instructions),
        }
    return per_binary


def _count_inline_probes(twin):
    """Count inline stlb probes executed at the provable sites of a
    non-elided twin — the lookups elision removes.  The hit/miss
    counters only see the slow path and support routines; the inline
    10-instruction probe runs as plain driver code, so we hook its lea
    the same way the loader hooks elided replacements."""
    counter = {"n": 0}

    def bump(_cpu, _c=counter):
        _c["n"] += 1

    for loaded in (twin.hyp_driver.loaded, twin.vm_module.loaded):
        for proof in twin.verify_report.proofs:
            loaded.instrument[proof.site_lea] = bump
            loaded.handlers[proof.site_lea] = None    # force re-wrap
    return counter


def run_elide():
    per_binary = _static_elision_stats()

    base = build("domU-twin", n_nics=1)
    fast = build("domU-twin", n_nics=1, elide=True)
    probes = _count_inline_probes(base.twin)
    results = {}
    for tag, system in (("baseline", base), ("elide", fast)):
        start = system.machine.cycles
        assert system.transmit_packets(ELIDE_PACKETS) == ELIDE_PACKETS
        assert system.receive_packets(ELIDE_PACKETS) == ELIDE_PACKETS
        stlb = system.twin.svm.counters_snapshot()
        stlb["inline_probes"] = probes["n"] if tag == "baseline" else 0
        stlb["lookups"] = stlb["hit"] + stlb["miss"] + stlb["inline_probes"]
        results[tag] = {
            "cycles": system.machine.cycles - start,
            "on_wire": system.packets_on_wire,
            "delivered": system.packets_delivered,
            "stlb": stlb,
        }
    return per_binary, results


@pytest.mark.benchmark(group="svm-ablation")
def test_prove_then_elide(benchmark):
    """Check elision: same packets, fewer stlb lookups, no extra cycles."""
    per_binary, results = benchmark.pedantic(run_elide, rounds=1,
                                             iterations=1)
    base, fast = results["baseline"], results["elide"]
    lines = list(header("prove-then-elide", paper_col="baseline",
                        meas_col="elided"))
    for name, st in per_binary.items():
        lines.append(f"  {name}: {st['sites_proven']}/{st['sites_total']} "
                     f"sites proven ({100 * st['coverage']:.0f}%), "
                     f"{st['anchors']} anchors, "
                     f"{st['instructions_before'] - st['instructions_after']}"
                     f" instructions dropped")
    lines.append("")
    lines.append(compare_row("cycles (tx+rx workload)", base["cycles"],
                             fast["cycles"], ""))
    lines.append(compare_row("stlb lookups", base["stlb"]["lookups"],
                             fast["stlb"]["lookups"], ""))
    lines.append(compare_row("checks elided", None,
                             fast["stlb"]["elided"], ""))
    lines.append(compare_row("packets on wire", base["on_wire"],
                             fast["on_wire"], ""))
    lines.append(compare_row("packets delivered", base["delivered"],
                             fast["delivered"], ""))
    report("svm_elision", lines,
           metrics={
               "per_binary": per_binary,
               "cycles_baseline": base["cycles"],
               "cycles_elide": fast["cycles"],
               "cycles_saved": base["cycles"] - fast["cycles"],
               "stlb_baseline": base["stlb"],
               "stlb_elide": fast["stlb"],
           },
           config={"packets": ELIDE_PACKETS, "nics": 1})

    # identical packet outcomes: every frame still lands where it should
    assert fast["on_wire"] == base["on_wire"]
    assert fast["delivered"] == base["delivered"]
    # the proofs really removed stlb traffic...
    assert fast["stlb"]["elided"] > 0
    assert fast["stlb"]["lookups"] < base["stlb"]["lookups"]
    assert fast["stlb"]["miss"] <= base["stlb"]["miss"]
    # ...and the elided binary is never slower
    assert fast["cycles"] <= base["cycles"]
