"""Ablation (§4.1): the cost anatomy of SVM itself.

The paper argues the 10-instruction fast path is affordable because (a)
only ~25 % of driver instructions reference memory and (b) the driver is
only 10-15 % of the total packet cost. This benchmark measures all three
levels: static rewrite stats, raw driver slowdown, and end-to-end impact.
"""

import pytest

from repro.configs import build
from repro.core import rewrite_driver
from repro.drivers import build_e1000_program
from repro.workloads import profile_config

from .common import compare_row, header, report

PACKETS = 256


def run():
    program = build_e1000_program()
    _, stats = rewrite_driver(program)

    native_tx = profile_config("linux", "tx", packets=PACKETS)
    twin_tx = profile_config("domU-twin", "tx", packets=PACKETS)
    native_rx = profile_config("linux", "rx", packets=PACKETS)
    twin_rx = profile_config("domU-twin", "rx", packets=PACKETS)

    system = build("domU-twin", n_nics=1)
    system.transmit_packets(64)
    system.receive_packets(64)
    svm = system.twin.svm
    return stats, native_tx, twin_tx, native_rx, twin_rx, svm


@pytest.mark.benchmark(group="svm-ablation")
def test_svm_overhead(benchmark):
    stats, native_tx, twin_tx, native_rx, twin_rx, svm = benchmark.pedantic(
        run, rounds=1, iterations=1)
    lines = list(header("SVM overhead anatomy"))
    lines.append(compare_row("memory-referencing instructions", 25,
                             stats.memory_fraction * 100, "%"))
    lines.append(compare_row("static code expansion", None,
                             stats.expansion_factor * 100, "%"))
    lines.append(compare_row("register spills inserted", None,
                             stats.spills, ""))
    lines.append(compare_row("flag save/restores inserted", None,
                             stats.flag_saves, ""))
    lines.append("")
    lines.append("  rewritten sites by category:")
    for kind in sorted(stats.site_categories):
        lines.append(f"    {kind}: {stats.site_categories[kind]}")
    lines.append("")
    tx_slow = (twin_tx.per_packet["e1000"] / native_tx.per_packet["e1000"])
    rx_slow = (twin_rx.per_packet["e1000"] / native_rx.per_packet["e1000"])
    lines.append(compare_row("driver slowdown tx (paper ~2.3x)", 231,
                             tx_slow * 100, "%"))
    lines.append(compare_row("driver slowdown rx (paper ~2x)", 200,
                             rx_slow * 100, "%"))
    tx_share = twin_tx.per_packet["e1000"] / twin_tx.total_per_packet
    lines.append(compare_row("driver share of total tx cost (<15-20%)",
                             None, tx_share * 100, "%"))
    lines.append("")
    stlb = svm.counters_snapshot()
    lines.append(f"  stlb (steady state): hits={stlb['hit']} "
                 f"misses={stlb['miss']} collisions={stlb['collision']} "
                 f"flushes={stlb['flush']} "
                 f"pages mapped: {len(svm.mappings)}")
    report("svm_overhead", lines,
           metrics={
               "memory_fraction": stats.memory_fraction,
               "expansion_factor": stats.expansion_factor,
               "spills": stats.spills,
               "flag_saves": stats.flag_saves,
               "driver_slowdown_tx": tx_slow,
               "driver_slowdown_rx": rx_slow,
               "driver_share_tx": tx_share,
               "stlb": stlb,
           },
           config={"packets": PACKETS},
           obs=twin_tx.counters)

    assert 0.15 <= stats.memory_fraction <= 0.40
    assert 1.8 <= tx_slow <= 3.5
    assert tx_share < 0.30
