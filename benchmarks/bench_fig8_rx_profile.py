"""Figure 8: CPU cycles per packet for the receive workload.

Paper anchors: domU 35905, domU-twin 20089, dom0 14308, Linux 11166
cycles/packet; the twin's hypervisor share is ~6514 cycles of which
~3525 is copying the packet into the guest.

Like figure 7, the bars are regenerated from cycle-attribution profiler
output verified bit-equal to the account counters.
"""

import pytest

from repro.metrics import CATEGORIES
from repro.workloads import profile_config

from .common import compare_row, header, report

PAPER_TOTALS = {"linux": 11166, "dom0": 14308, "domU-twin": 20089,
                "domU": 35905}
PACKETS = 384


def run_profiles():
    return {name: profile_config(name, "rx", packets=PACKETS,
                                 profiled=True)
            for name in PAPER_TOTALS}


@pytest.mark.benchmark(group="figure8")
def test_figure8_rx_profile(benchmark):
    profiles = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    lines = list(header("Figure 8: receive cycles/packet"))
    for name in ("linux", "dom0", "domU-twin", "domU"):
        lines.append(compare_row(name + " (total)", PAPER_TOTALS[name],
                                 profiles[name].total_per_packet, "cyc"))
    lines.append("")
    lines.append("  per-category breakdown (measured):")
    for name in ("linux", "dom0", "domU-twin", "domU"):
        pp = profiles[name].per_packet
        cells = "  ".join(f"{c}={pp[c]:7.0f}" for c in CATEGORIES)
        lines.append(f"    {name:10s} {cells}")
    lines.append("")
    lines.append(compare_row("domU dom0-share (paper 14384)", 14384,
                             profiles["domU"].per_packet["dom0"], "cyc"))
    metrics = {name: {"total_per_packet": p.total_per_packet,
                      "per_packet": p.per_packet}
               for name, p in profiles.items()}
    report("figure8_rx_profile", lines,
           metrics=metrics,
           config={"direction": "rx", "packets": PACKETS, "nics": 1},
           obs={name: p.counters for name, p in profiles.items()})

    for name, target in PAPER_TOTALS.items():
        assert abs(profiles[name].total_per_packet - target) < 0.15 * target
    for name, p in profiles.items():
        doc = p.attribution
        assert doc is not None and doc["schema"] == "repro-profile/v1"
        assert doc["total"] == sum(p.cycles.values())
