"""Figure 10: transmit throughput as a function of the number of fast-path
support routines served by upcalls instead of hypervisor implementations.

Paper: 0 upcalls -> 3902 Mb/s; a single upcall per driver invocation
collapses throughput to 1638 Mb/s; with everything but netif_rx upcalled
it bottoms out at 359 Mb/s.
"""

import pytest

from repro.workloads import figure10_upcall_sweep

from .common import compare_row, header, report

PAPER_ANCHORS = {0: 3902, 1: 1638, 9: 359}
PACKETS = 192


def run_sweep():
    return figure10_upcall_sweep(max_upcalls=9, packets=PACKETS)


@pytest.mark.benchmark(group="figure10")
def test_figure10_upcalls(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = list(header("Figure 10: transmit throughput vs upcalls"))
    for point in sweep:
        paper = PAPER_ANCHORS.get(point.n_upcalls)
        lines.append(compare_row(
            f"{point.n_upcalls} upcall routine(s)", paper,
            point.throughput_mbps, "Mb/s"))
    report("figure10_upcalls", lines,
           metrics={str(p.n_upcalls): {
               "throughput_mbps": p.throughput_mbps,
               "upcalls_per_packet": p.upcalls_per_packet,
               "cycles_per_packet": p.cycles_per_packet,
           } for p in sweep},
           config={"max_upcalls": 9, "packets": PACKETS})

    tputs = [p.throughput_mbps for p in sweep]
    assert abs(tputs[0] - 3902) < 0.15 * 3902
    assert abs(tputs[1] - 1638) < 0.15 * 1638
    assert tputs[-1] < 0.15 * tputs[0]
    assert all(a >= b - 1 for a, b in zip(tputs, tputs[1:]))
