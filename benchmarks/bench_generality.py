"""Generality: twin a second, structurally different driver (RTL8139).

The paper argues the pipeline is semi-automatic. This benchmark runs the
whole flow against the copying, fixed-slot RTL8139 driver and reports its
rewrite statistics, its dynamically-discovered fast-path support set, and
its twin-vs-native cost ratio — alongside the e1000's, to show both the
method's generality and that the fast-path set is driver-specific.
"""

import pytest

from repro.core import ParavirtNetDevice, TwinDriverManager
from repro.drivers import E1000_SPEC, RTL8139_SPEC
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

from .common import header, report

PACKETS = 192


def run_driver(spec, model):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, driver=spec)
    nic = m.add_nic(model=model)
    nic.interrupt_batch = 8
    twin.attach_nic(nic)
    guest = Kernel(m, xen.create_domain("guest"), costs=xen.costs,
                   paravirtual=True)
    dev = ParavirtNetDevice(twin, guest, mac=b"\x00\x16\x3e\xcc\x00\x01")
    xen.switch_to(dev.kernel.domain)
    frame = dev.mac + b"\x00" * 6 + b"\x08\x00" + bytes(1400)
    # warmup
    for _ in range(48):
        dev.transmit(1400)
        m.wire.inject(nic, frame)
    nic.flush_interrupts()
    before_calls = dict(twin.hyp_support.calls)
    snap = m.account.snapshot()
    for _ in range(PACKETS):
        dev.transmit(1400)
        m.wire.inject(nic, frame)
    nic.flush_interrupts()
    delta = m.account.delta_since(snap)
    fast_path = {name for name, count in twin.hyp_support.calls.items()
                 if count > before_calls.get(name, 0)}
    return {
        "spec": spec,
        "stats": twin.rewrite_stats,
        "fast_path": fast_path,
        "driver_cycles_per_pair": delta["e1000"] / PACKETS,
        "total_cycles_per_pair": sum(delta.values()) / PACKETS,
        "upcalls": twin.upcalls.upcalls,
        "svm_misses": twin.svm.misses,
    }


def run():
    return (run_driver(E1000_SPEC, "e1000"),
            run_driver(RTL8139_SPEC, "rtl8139"))


@pytest.mark.benchmark(group="generality")
def test_second_driver_generality(benchmark):
    e1000, rtl = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = list(header("Driver generality", paper_col="e1000",
                        meas_col="rtl8139"))

    def row(label, a, b, unit=""):
        lines.append(f"  {label:34s} {a:>10}   {b:>10} {unit}")

    row("input instructions", e1000["stats"].input_instructions,
        rtl["stats"].input_instructions)
    row("output instructions", e1000["stats"].output_instructions,
        rtl["stats"].output_instructions)
    row("memory refs rewritten", e1000["stats"].memory_rewritten,
        rtl["stats"].memory_rewritten)
    row("string ops rewritten", e1000["stats"].string_rewritten,
        rtl["stats"].string_rewritten)
    row("fast-path routines", len(e1000["fast_path"]),
        len(rtl["fast_path"]))
    row("upcalls in steady state", e1000["upcalls"], rtl["upcalls"])
    row("driver cyc per tx+rx pair",
        f"{e1000['driver_cycles_per_pair']:.0f}",
        f"{rtl['driver_cycles_per_pair']:.0f}")
    row("total cyc per tx+rx pair",
        f"{e1000['total_cycles_per_pair']:.0f}",
        f"{rtl['total_cycles_per_pair']:.0f}")
    lines.append("")
    lines.append(f"  e1000 fast path : {sorted(e1000['fast_path'])}")
    lines.append(f"  rtl8139 fast path: {sorted(rtl['fast_path'])}")
    lines.append("")
    lines.append("  the fast-path support set is *discovered per driver*: "
                 "the copying rtl8139 needs no per-packet DMA maps at all")
    metrics = {}
    for label, res in (("e1000", e1000), ("rtl8139", rtl)):
        metrics[label] = {
            "input_instructions": res["stats"].input_instructions,
            "output_instructions": res["stats"].output_instructions,
            "fast_path": sorted(res["fast_path"]),
            "upcalls": res["upcalls"],
            "svm_misses": res["svm_misses"],
            "driver_cycles_per_pair": res["driver_cycles_per_pair"],
            "total_cycles_per_pair": res["total_cycles_per_pair"],
        }
    report("generality", lines, metrics=metrics,
           config={"packets": PACKETS})

    assert len(e1000["fast_path"]) == 10
    assert len(rtl["fast_path"]) == 6
    assert "dma_map_single" not in rtl["fast_path"]
    assert e1000["upcalls"] == 0 and rtl["upcalls"] == 0
