"""Figure 7: CPU cycles per packet for the transmit workload, broken into
the dom0 / domU / Xen / e1000 categories (single-NIC profile run).

Paper anchors: domU 21159 and domU-twin 9972 cycles/packet totals; the
rewritten driver costs 2218 vs 960 native; dom0 invocation costs the
unoptimized guest 8394 cycles/packet.

The measurement runs under the cycle-attribution profiler
(``profiled=True``): the figure numbers come from the profiler's sample
sums, which ``profile_direction`` asserts bit-equal to the ``cycles.*``
counter movement before using them.
"""

import pytest

from repro.metrics import CATEGORIES
from repro.workloads import profile_config

from .common import compare_row, header, report

PAPER_TOTALS = {"linux": 7130, "dom0": 8310, "domU-twin": 9972,
                "domU": 21159}
PACKETS = 384


def run_profiles():
    return {name: profile_config(name, "tx", packets=PACKETS,
                                 profiled=True)
            for name in PAPER_TOTALS}


@pytest.mark.benchmark(group="figure7")
def test_figure7_tx_profile(benchmark):
    profiles = benchmark.pedantic(run_profiles, rounds=1, iterations=1)
    lines = list(header("Figure 7: transmit cycles/packet"))
    for name in ("linux", "dom0", "domU-twin", "domU"):
        lines.append(compare_row(name + " (total)", PAPER_TOTALS[name],
                                 profiles[name].total_per_packet, "cyc"))
    lines.append("")
    lines.append("  per-category breakdown (measured):")
    for name in ("linux", "dom0", "domU-twin", "domU"):
        pp = profiles[name].per_packet
        cells = "  ".join(f"{c}={pp[c]:7.0f}" for c in CATEGORIES)
        lines.append(f"    {name:10s} {cells}")
    native = profiles["linux"].per_packet["e1000"]
    rewritten = profiles["domU-twin"].per_packet["e1000"]
    lines.append("")
    lines.append(compare_row("driver: native (paper 960)", 960, native,
                             "cyc"))
    lines.append(compare_row("driver: rewritten (paper 2218)", 2218,
                             rewritten, "cyc"))
    lines.append(f"  rewritten/native slowdown: {rewritten / native:.2f}x "
                 "(paper: 'roughly 2 to 3')")
    metrics = {name: {"total_per_packet": p.total_per_packet,
                      "per_packet": p.per_packet}
               for name, p in profiles.items()}
    metrics["driver_native_cycles"] = native
    metrics["driver_rewritten_cycles"] = rewritten
    report("figure7_tx_profile", lines,
           metrics=metrics,
           config={"direction": "tx", "packets": PACKETS, "nics": 1},
           obs={name: p.counters for name, p in profiles.items()})

    for name, target in PAPER_TOTALS.items():
        assert abs(profiles[name].total_per_packet - target) < 0.15 * target
    assert 2.0 <= rewritten / native <= 3.5
    # the bars above were regenerated from attribution data: the full
    # repro-profile/v1 document is attached and sums to the same cycles
    for name, p in profiles.items():
        doc = p.attribution
        assert doc is not None and doc["schema"] == "repro-profile/v1"
        assert doc["total"] == sum(p.cycles.values())
