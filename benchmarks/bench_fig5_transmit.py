"""Figure 5: netperf transmit throughput over five gigabit NICs.

Paper: domU 1619, domU-twin 3902, dom0 4683, Linux 4690 Mb/s (Linux at
76.9 % CPU); headline claim: TwinDrivers improves the guest by 2.41x in
CPU-scaled units and reaches 64 % of native Linux.
"""

import pytest

from repro.workloads import run_netperf

from .common import compare_row, header, report

PAPER = {"domU": 1619, "domU-twin": 3902, "dom0": 4683, "linux": 4690}
PACKETS = 384


def run_figure5():
    return {name: run_netperf(name, "tx", packets=PACKETS)
            for name in PAPER}


@pytest.mark.benchmark(group="figure5")
def test_figure5_transmit(benchmark):
    results = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    lines = list(header("Figure 5: transmit throughput (Mb/s)"))
    for name in ("domU", "domU-twin", "dom0", "linux"):
        lines.append(compare_row(name, PAPER[name],
                                 results[name].throughput_mbps, "Mb/s"))
    factor = (results["domU-twin"].cpu_scaled_mbps
              / results["domU"].cpu_scaled_mbps)
    frac = (results["domU-twin"].cpu_scaled_mbps
            / results["linux"].cpu_scaled_mbps)
    lines.append("")
    lines.append(compare_row("twin vs domU (CPU-scaled, x)", 2.41 * 100,
                             factor * 100, "%"))
    lines.append(compare_row("twin / native Linux (CPU-scaled)", 64,
                             frac * 100, "%"))
    lines.append(compare_row("Linux CPU utilisation", 76.9,
                             results["linux"].cpu_utilization * 100, "%"))
    metrics = {name: {"throughput_mbps": r.throughput_mbps,
                      "cpu_utilization": r.cpu_utilization,
                      "cpu_scaled_mbps": r.cpu_scaled_mbps,
                      "cycles_per_packet": r.cycles_per_packet}
               for name, r in results.items()}
    metrics["twin_vs_domU_cpu_scaled"] = factor
    metrics["twin_fraction_of_linux"] = frac
    report("figure5_transmit", lines,
           metrics=metrics,
           config={"direction": "tx", "packets": PACKETS, "nics": 5},
           obs={name: r.counters for name, r in results.items()})

    for name, target in PAPER.items():
        assert abs(results[name].throughput_mbps - target) < 0.15 * target
    assert 2.0 < factor < 2.8
