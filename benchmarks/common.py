"""Shared reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison (also appended to ``benchmarks/results/``).
Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.

Besides the human-readable ``.txt`` block, every benchmark writes a
machine-readable ``.json`` result (schema ``repro-bench-result/v1``) so
CI and regression tooling can diff runs: pass ``metrics`` (the measured
numbers), ``config`` (the knobs that produced them) and optionally
``obs`` (a metrics-registry counter snapshot) to :func:`report`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: schema tag stamped into every JSON result
RESULT_SCHEMA = "repro-bench-result/v1"


def validate_result(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed benchmark
    result (the contract CI checks before uploading artifacts)."""
    if not isinstance(doc, dict):
        raise ValueError("result must be a JSON object")
    if doc.get("schema") != RESULT_SCHEMA:
        raise ValueError(f"schema must be {RESULT_SCHEMA!r}, "
                         f"got {doc.get('schema')!r}")
    name = doc.get("benchmark")
    if not isinstance(name, str) or not name:
        raise ValueError("benchmark must be a non-empty string")
    for key in ("config", "metrics", "obs"):
        if not isinstance(doc.get(key), dict):
            raise ValueError(f"{key} must be an object")
    if not doc["metrics"]:
        raise ValueError("metrics must not be empty")
    for section in ("metrics", "obs"):
        for k, v in doc[section].items():
            if not isinstance(k, str):
                raise ValueError(f"{section} keys must be strings")
            if not isinstance(v, (int, float, str, bool, list, dict)):
                raise ValueError(
                    f"{section}[{k!r}] has unserializable type "
                    f"{type(v).__name__}")


def write_json_result(name: str, metrics: Dict, config: Optional[Dict] = None,
                      obs: Optional[Dict] = None) -> str:
    """Write ``benchmarks/results/<name>.json`` and return its path."""
    doc = {
        "schema": RESULT_SCHEMA,
        "benchmark": name,
        "config": dict(config or {}),
        "metrics": dict(metrics),
        "obs": dict(obs or {}),
    }
    validate_result(doc)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def report(name: str, lines: Iterable[str],
           metrics: Optional[Dict] = None,
           config: Optional[Dict] = None,
           obs: Optional[Dict] = None):
    """Print a result block and persist it under benchmarks/results/
    (``.txt`` always; ``.json`` when ``metrics`` are provided)."""
    text = "\n".join(lines)
    banner = f"\n=== {name} " + "=" * max(0, 66 - len(name)) + "\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    if metrics:
        write_json_result(name, metrics, config=config, obs=obs)


def compare_row(label: str, paper, measured, unit: str = "") -> str:
    if paper in (None, ""):
        return f"  {label:34s} {'—':>10}   {measured:>10.0f} {unit}"
    ratio = measured / paper if paper else float("nan")
    return (f"  {label:34s} {paper:>10.0f}   {measured:>10.0f} {unit}"
            f"   ({ratio:+.1%} of paper)".replace("+", ""))


def header(title: str, paper_col: str = "paper", meas_col: str = "measured"
           ) -> Sequence[str]:
    return [
        title,
        f"  {'':34s} {paper_col:>10}   {meas_col:>10}",
        "  " + "-" * 64,
    ]
