"""Shared reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
paper-vs-measured comparison (also appended to ``benchmarks/results/``).
Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, lines: Iterable[str]):
    """Print a result block and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    banner = f"\n=== {name} " + "=" * max(0, 66 - len(name)) + "\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


def compare_row(label: str, paper, measured, unit: str = "") -> str:
    if paper in (None, ""):
        return f"  {label:34s} {'—':>10}   {measured:>10.0f} {unit}"
    ratio = measured / paper if paper else float("nan")
    return (f"  {label:34s} {paper:>10.0f}   {measured:>10.0f} {unit}"
            f"   ({ratio:+.1%} of paper)".replace("+", ""))


def header(title: str, paper_col: str = "paper", meas_col: str = "measured"
           ) -> Sequence[str]:
    return [
        title,
        f"  {'':34s} {paper_col:>10}   {meas_col:>10}",
        "  " + "-" * 64,
    ]
