"""The calibrated cycle-cost table (DESIGN.md §5).

Everything the simulator does NOT execute instruction-by-instruction (the
kernel TCP/IP stack, copies, domain switches, hypercall entry, upcall
round-trips, bridging, grant operations) is charged from this table. The
values are calibrated so the *component sums* reproduce the per-packet
profiles of the paper's figures 7 and 8; the comments next to each group
record the target sums. Driver-code cycles are NOT here — they come from
real interpreter execution of the (rewritten) driver binary.

Calibration anchors (cycles/packet, paper figures 7 & 8):

==============  =======  =======
configuration   transmit receive
==============  =======  =======
Linux            ~7130    11166
dom0             ~8310    14308
domU-twin         9972    20089
domU             21159    35905
==============  =======  =======
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Primitive hypervisor costs
# ---------------------------------------------------------------------------

#: Synchronous domain (address-space) switch, including the amortised TLB
#: and cache refill the paper blames for most of the hosted-model overhead.
DOMAIN_SWITCH = 1900
#: Hypercall entry/exit from a paravirtualized guest.
HYPERCALL = 250
#: Sending an event over an event channel.
EVENT_CHANNEL_SEND = 340
#: Delivering a virtual interrupt into a domain (callback into the guest).
VIRQ_DELIVERY = 480
#: Delivering one *coalesced* virtual interrupt covering a whole batch of
#: packets (§5.3: the hypervisor copies the queued packets and raises a
#: single virtual interrupt when the guest is next scheduled). Equal to
#: VIRQ_DELIVERY so a batch of one costs exactly what the unbatched path
#: cost — the saving is charging it once per batch instead of per packet.
VIRQ_COALESCED = VIRQ_DELIVERY
#: Per-packet bookkeeping inside a coalesced delivery beyond the first
#: packet: each additional packet still gets its own guest ring
#: descriptor / event-channel slot written, so a batch of n charges
#: ``VIRQ_COALESCED + (n - 1) * VIRQ_COALESCED_PER_PACKET``. Kept below
#: VIRQ_DELIVERY so the amortised per-packet cost strictly decreases
#: with the batch size.
VIRQ_COALESCED_PER_PACKET = 200
#: Xen fielding a physical device interrupt before routing it.
INTERRUPT_VIRTUALIZATION = 600
#: Scheduling a deferred softirq-context callback in the hypervisor.
SOFTIRQ_SCHEDULE = 400

# ---------------------------------------------------------------------------
# SMP scheduler + multiqueue costs (credit scheduler, RSS demux, locks)
# ---------------------------------------------------------------------------

#: Credit-scheduler pick: scan the vCPU run queue, compare credits.
SCHED_PICK = 150
#: Credit accounting at the end of a quantum (debit + refill check).
SCHED_CREDIT_TICK = 80
#: Migrating a domain between vCPU run queues (work stealing): remote
#: queue lock + cache-line transfer of the vcpu state.
SCHED_STEAL = 420
#: Taking an uncontended twin lock (cache-hot compare-and-swap).
LOCK_UNCONTENDED = 25
#: Lock handoff between vCPUs/queues: cache-line bounce + spin.
LOCK_HANDOFF = 240
#: RSS flow-hash computation + queue selection per packet.
RSS_DEMUX = 110
#: Refilling a per-queue stlb partition after another guest ran on it.
STLB_PARTITION_REFILL = 160

# ---------------------------------------------------------------------------
# Grant table operations (standard Xen I/O path)
# ---------------------------------------------------------------------------

GRANT_ISSUE = 120           # guest creates a grant entry
GRANT_MAP = 480             # dom0 maps a granted page
GRANT_UNMAP = 420
GRANT_COPY_PER_PACKET = 2500  # hypervisor grant-copy of an MTU packet
GRANT_REVOKE = 80

# ---------------------------------------------------------------------------
# Kernel network stack (per MTU packet)
# ---------------------------------------------------------------------------

#: TCP/IP transmit: socket write, segmentation, qdisc, dev_queue_xmit.
KERNEL_TX_STACK = 6170
#: TCP/IP receive: softirq, IP, TCP, socket delivery, copy-to-user.
KERNEL_RX_STACK = 9800
#: Paravirtual kernel overhead per tx packet vs native (fig 7: dom0 bar).
PV_KERNEL_TX_OVERHEAD = 1050
#: Paravirtual kernel overhead per rx packet vs native (fig 8: dom0 bar).
PV_KERNEL_RX_OVERHEAD = 3140

# ---------------------------------------------------------------------------
# Standard Xen I/O path (netfront -> netback -> bridge -> driver)
# ---------------------------------------------------------------------------

#: netback per-packet processing in dom0 (tx direction).
BACKEND_TX = 2000
#: netback per-packet processing in dom0 (rx direction).
BACKEND_RX = 3640
#: software bridge lookup + forwarding in dom0.
BRIDGE_FORWARD = 950
#: dom0 device-layer transmit path below the bridge.
DOM0_TX_STACK = 5440
#: miscellaneous Xen work on the standard tx path (page ops, accounting);
#: with 2x DOMAIN_SWITCH + grants + events this sums to the fig-7 Xen bar.
XEN_STD_TX_MISC = 1120
#: same for rx: with switches + grant copy + events + interrupt
#: virtualization this sums to the fig-8 Xen bar (~10355).
XEN_STD_RX_MISC = 2160

# ---------------------------------------------------------------------------
# TwinDrivers path
# ---------------------------------------------------------------------------

#: copying bytes between domains (hypervisor copy loops).
COPY_PER_BYTE = 1.2
#: fixed cost of setting up a copy (mapping checks, bookkeeping).
COPY_SETUP = 85
#: chaining one guest page fragment into a dom0 sk_buff.
FRAG_CHAIN = 120
#: residual virtualization overhead of the twin guest kernel per tx packet.
TWIN_TX_GUEST_OVERHEAD = 1100
#: fig 8 shows ~3525 cyc/pkt copying rx packets into the guest; with
#: COPY_PER_BYTE * 1500 + COPY_SETUP + page-crossing checks this lands there.
TWIN_RX_COPY_EXTRA = 1300
#: MAC-address demultiplexing of a received packet to its guest.
TWIN_RX_DEMUX = 300
#: residual hypervisor overhead on the twin rx path (fig 8 Xen bar ~6514).
TWIN_RX_XEN_MISC = 1810
#: dom0-context bookkeeping on the twin rx path (fig 8 small dom0 bar).
TWIN_RX_DOM0_SHARE = 1330

# ---------------------------------------------------------------------------
# Upcalls (fig 10)
# ---------------------------------------------------------------------------

#: One upcall round-trip: 2x domain switch + virq + handler dispatch +
#: return hypercall + upcall-stack switch + cache pollution.
#: Calibrated against fig 10: 1 upcall/invocation drops 3902 -> 1638 Mb/s.
UPCALL_ROUND_TRIP = 10700
#: Extra cost on the first upcall of a driver invocation (cold entry).
UPCALL_FIRST_EXTRA = 2800
#: Stub bookkeeping (save parameters, select upcall stack).
UPCALL_STUB = 150

# ---------------------------------------------------------------------------
# Native support-routine costs (cycles) — charged when the driver calls a
# kernel/hypervisor support routine implemented natively (Python).
# ---------------------------------------------------------------------------

SUPPORT_ROUTINE_COSTS: Dict[str, int] = {
    "netdev_alloc_skb": 90,
    "dev_kfree_skb_any": 60,
    "netif_rx": 110,          # hand-off only; stack cost charged separately
    "dma_map_single": 45,
    "dma_map_page": 45,
    "dma_unmap_single": 35,
    "dma_unmap_page": 35,
    "spin_trylock": 15,
    "spin_unlock_irqrestore": 15,
    "eth_type_trans": 30,
    # slow-path / configuration routines (cost is irrelevant to the figures
    # but kept plausible).
    "kmalloc": 400,
    "kfree": 250,
    "alloc_etherdev": 1500,
    "register_netdev": 2500,
    "unregister_netdev": 2000,
    "free_netdev": 600,
    "ioremap": 800,
    "iounmap": 500,
    "request_irq": 1200,
    "free_irq": 900,
    "pci_enable_device": 2000,
    "pci_disable_device": 1200,
    "pci_set_master": 300,
    "pci_request_regions": 700,
    "pci_release_regions": 500,
    "netif_start_queue": 40,
    "netif_stop_queue": 40,
    "netif_wake_queue": 60,
    "netif_carrier_on": 50,
    "netif_carrier_off": 50,
    "netif_queue_stopped": 25,
    "spin_lock_init": 25,
    "spin_lock_irqsave": 35,
    "init_timer": 80,
    "mod_timer": 150,
    "del_timer_sync": 200,
    "msleep": 1000,
    "udelay": 100,
    "printk": 900,
    "memcpy_support": 150,
    "memset_support": 120,
    "skb_reserve": 25,
    "skb_put": 30,
    "skb_headroom": 20,
    "dma_alloc_coherent": 1800,
    "dma_free_coherent": 1200,
    "mii_check_link": 350,
    "ethtool_op_get_link": 80,
    "capable": 60,
    "copy_from_user": 300,
    "copy_to_user": 300,
}

# ---------------------------------------------------------------------------
# Driver-speed calibration
# ---------------------------------------------------------------------------

#: Multiplies interpreter cycle charges so the *native* e1000 transmit path
#: costs ~960 cycles/packet (fig 7). Set by calibration
#: (tests/integration/test_calibration.py checks the band).
DRIVER_CYCLE_SCALE = 1.0

# ---------------------------------------------------------------------------
# Multi-NIC streaming efficiency (netperf runs vs single-NIC profile runs)
# ---------------------------------------------------------------------------

#: The paper notes the single-NIC profile "differs a little" from the
#: 5-NIC throughput runs (batching and cache locality change). This factor
#: converts profile cycles/packet into effective streaming cycles/packet:
#: effective = profile * factor. Derived from the paper's own numbers
#: (fig 5/6 throughputs vs fig 7/8 profiles).
MULTI_NIC_EFFICIENCY: Dict[Tuple[str, str], float] = {
    ("linux", "tx"): 0.828,
    ("dom0", "tx"): 0.925,
    ("domU-twin", "tx"): 0.925,
    ("domU", "tx"): 1.051,
    ("linux", "rx"): 1.071,
    ("dom0", "rx"): 0.886,
    ("domU-twin", "rx"): 0.886,
    ("domU", "rx"): 1.080,
}

# ---------------------------------------------------------------------------
# Web-server workload (fig 9)
# ---------------------------------------------------------------------------

#: knot request handling: accept, parse, file-cache lookup, syscalls.
APP_REQUEST_CYCLES = 215_000
#: Virtualization penalty on application/syscall work.
VIRT_APP_FACTOR: Dict[str, float] = {
    "linux": 1.00,
    "dom0": 1.15,
    "domU-twin": 1.20,
    "domU": 1.30,
}
#: Request/response traffic is small-packet heavy; configurations whose
#: per-packet costs are fixed (domain switches per packet) degrade more
#: than streaming MTU traffic suggests.
REQRESP_PACKET_FACTOR: Dict[str, float] = {
    "linux": 1.00,
    "dom0": 1.05,
    "domU-twin": 1.10,
    "domU": 1.65,
}
#: Open-loop overload efficiency: past saturation, timed-out responses are
#: discarded by httperf and interrupt pressure wastes server CPU. domU
#: suffers classic receive-livelock behaviour.
OVERLOAD_EFFICIENCY: Dict[str, float] = {
    "linux": 0.99,
    "dom0": 0.99,
    "domU-twin": 0.97,
    "domU": 0.80,
}


@dataclass
class CostModel:
    """Bundles the module-level defaults so tests can override selectively."""

    domain_switch: int = DOMAIN_SWITCH
    hypercall: int = HYPERCALL
    event_channel_send: int = EVENT_CHANNEL_SEND
    virq_delivery: int = VIRQ_DELIVERY
    virq_coalesced: int = VIRQ_COALESCED
    virq_coalesced_per_packet: int = VIRQ_COALESCED_PER_PACKET
    interrupt_virtualization: int = INTERRUPT_VIRTUALIZATION
    softirq_schedule: int = SOFTIRQ_SCHEDULE
    sched_pick: int = SCHED_PICK
    sched_credit_tick: int = SCHED_CREDIT_TICK
    sched_steal: int = SCHED_STEAL
    lock_uncontended: int = LOCK_UNCONTENDED
    lock_handoff: int = LOCK_HANDOFF
    rss_demux: int = RSS_DEMUX
    stlb_partition_refill: int = STLB_PARTITION_REFILL
    grant_issue: int = GRANT_ISSUE
    grant_map: int = GRANT_MAP
    grant_unmap: int = GRANT_UNMAP
    grant_copy_per_packet: int = GRANT_COPY_PER_PACKET
    grant_revoke: int = GRANT_REVOKE
    kernel_tx_stack: int = KERNEL_TX_STACK
    kernel_rx_stack: int = KERNEL_RX_STACK
    pv_kernel_tx_overhead: int = PV_KERNEL_TX_OVERHEAD
    pv_kernel_rx_overhead: int = PV_KERNEL_RX_OVERHEAD
    backend_tx: int = BACKEND_TX
    backend_rx: int = BACKEND_RX
    bridge_forward: int = BRIDGE_FORWARD
    dom0_tx_stack: int = DOM0_TX_STACK
    xen_std_tx_misc: int = XEN_STD_TX_MISC
    xen_std_rx_misc: int = XEN_STD_RX_MISC
    copy_per_byte: float = COPY_PER_BYTE
    copy_setup: int = COPY_SETUP
    frag_chain: int = FRAG_CHAIN
    twin_tx_guest_overhead: int = TWIN_TX_GUEST_OVERHEAD
    twin_rx_copy_extra: int = TWIN_RX_COPY_EXTRA
    twin_rx_demux: int = TWIN_RX_DEMUX
    twin_rx_xen_misc: int = TWIN_RX_XEN_MISC
    twin_rx_dom0_share: int = TWIN_RX_DOM0_SHARE
    upcall_round_trip: int = UPCALL_ROUND_TRIP
    upcall_first_extra: int = UPCALL_FIRST_EXTRA
    upcall_stub: int = UPCALL_STUB
    driver_cycle_scale: float = DRIVER_CYCLE_SCALE
    support_costs: Dict[str, int] = field(
        default_factory=lambda: dict(SUPPORT_ROUTINE_COSTS)
    )

    def copy_cost(self, nbytes: int) -> int:
        return int(self.copy_setup + self.copy_per_byte * nbytes)

    def support_cost(self, name: str) -> int:
        return self.support_costs.get(name, 200)
