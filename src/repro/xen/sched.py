"""SMP: virtual CPUs and the credit scheduler (Xen's sched_credit, simplified).

The simulator executes on one host thread, so SMP is modeled the way the
rest of the machine is modeled: *which* vCPU the simulated pCPU is
currently standing in for is explicit state (:class:`VCpu`), and the
scheduler interleaves vCPU quanta deterministically. Everything that used
to be global hypervisor state but is per-CPU on real Xen — the current
domain, the softirq queue, the driver-invocation depth — lives on the
:class:`VCpu` so the scale benchmarks exercise the same sharding a real
SMP port would need.

Credit scheduling (Xen's ``sched_credit``, simplified but faithful in
shape):

* every domain holds a signed credit balance; running debits it by the
  cycles the domain *actually consumed* during its quantum, read off the
  machine-wide :class:`~repro.metrics.cycles.CycleAccount` — there is no
  second clock;
* each vCPU owns a run queue; domains are assigned round-robin at
  creation (dom0 pins to vCPU 0, like Xen's dom0 affinity default);
* a vCPU picks the runnable domain with the most credits; ties break by
  a deterministic round-robin rule (least-recently-scheduled first, then
  lowest domid) so two identical runs produce bit-identical schedules;
* an idle vCPU steals the highest-credit runnable domain from the first
  loaded peer (scan order ``id+1, id+2, ...`` mod N — deterministic);
* when every runnable domain is out of credits, all domains are refilled
  at once (the 30 ms credit tick, collapsed to an instant).

Scheduler work is charged to ``Xen`` from the calibrated cost table
(``sched_pick`` / ``sched_credit_tick`` / ``sched_steal``), so the scale
benchmark's per-packet Xen cycles include realistic scheduling overhead —
amortized over the packets a quantum moves, which is exactly the property
``bench_scale.py`` asserts stays flat from 1 to 256 guests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .domain import Domain
    from .hypervisor import Hypervisor

#: Cycles of service granted to every domain at each credit refill.
CREDIT_REFILL = 300_000

#: Upper bound on softirqs drained per :meth:`Hypervisor.run_softirqs`
#: call — a softirq storm (a handler that re-raises itself forever) must
#: surface as an error, not an infinite loop.
SOFTIRQ_DRAIN_LIMIT = 4096


class SoftirqStorm(RuntimeError):
    """run_softirqs exceeded its bounded-iterations guard."""

    pass


class VCpu:
    """One virtual CPU: the per-CPU hypervisor state that was global
    before the SMP port — current domain, softirq queue, driver depth —
    plus this vCPU's run queue."""

    def __init__(self, cpu_id: int, xen: "Hypervisor"):
        self.id = cpu_id
        self.xen = xen
        #: the domain whose address space this vCPU last ran.
        self.current: Optional["Domain"] = None
        #: deferred softirq-context callbacks raised on this vCPU.
        self.softirqs: List[Callable[[], None]] = []
        #: >0 while a hypervisor-driver invocation is in flight here.
        self.driver_depth = 0
        #: re-entrancy latch for :meth:`Hypervisor.run_softirqs`.
        self.in_softirq = False
        #: domains assigned to this vCPU's run queue.
        self.runq: List["Domain"] = []

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<VCpu {self.id} current="
                f"{self.current.name if self.current else None} "
                f"runq={[d.name for d in self.runq]}>")


class CreditScheduler:
    """Per-vCPU run queues with credit accounting and work stealing."""

    def __init__(self, xen: "Hypervisor", vcpus: List[VCpu]):
        self.xen = xen
        self.vcpus = vcpus
        #: monotonically increasing schedule sequence — the deterministic
        #: round-robin tie-break (least-recently-scheduled wins a tie).
        self._seq = 0
        #: round-robin cursor for assigning new domains to vCPUs.
        self._assign_rr = 0
        self.quanta = 0
        self.steals = 0
        self.refills = 0

    # -- assignment ----------------------------------------------------------

    def assign(self, domain: "Domain", vcpu: Optional[VCpu] = None):
        """Place ``domain`` on a run queue. dom0 pins to vCPU 0; guests
        spread round-robin unless an explicit ``vcpu`` is given."""
        if vcpu is None:
            if domain.is_dom0:
                vcpu = self.vcpus[0]
            else:
                vcpu = self.vcpus[self._assign_rr % len(self.vcpus)]
                self._assign_rr += 1
        domain.vcpu = vcpu
        domain.credits = CREDIT_REFILL
        vcpu.runq.append(domain)

    def queue_work(self, domain: "Domain", fn: Callable[[], None]):
        """Enqueue a unit of guest work (one quantum runs one unit)."""
        domain.run_work.append(fn)

    @staticmethod
    def runnable(domain: "Domain") -> bool:
        return bool(domain.run_work) or bool(domain.pending_ports)

    # -- selection -----------------------------------------------------------

    @staticmethod
    def _key(domain: "Domain"):
        # max credits first; among equals, the least recently scheduled;
        # among those, the lowest domid — all total orders, so the pick
        # is deterministic.
        return (-domain.credits, domain.sched_seq, domain.domid)

    def _pick_from(self, runq: List["Domain"]) -> Optional["Domain"]:
        best = None
        for domain in runq:
            if not self.runnable(domain):
                continue
            if best is None or self._key(domain) < self._key(best):
                best = domain
        return best

    def _steal(self, vcpu: VCpu) -> Optional["Domain"]:
        """Idle vCPU: migrate the best runnable domain from the first
        peer that has one (deterministic scan order)."""
        n = len(self.vcpus)
        for k in range(1, n):
            victim = self.vcpus[(vcpu.id + k) % n]
            domain = self._pick_from(victim.runq)
            if domain is None:
                continue
            victim.runq.remove(domain)
            vcpu.runq.append(domain)
            domain.vcpu = vcpu
            self.steals += 1
            self.xen.charge_xen(self.xen.costs.sched_steal,
                                phase="sched_steal")
            self.xen.machine.obs.registry.counter(
                f"sched.vcpu{vcpu.id}.steals").value += 1
            return domain
        return None

    # -- the run loop --------------------------------------------------------

    def run_quantum(self, vcpu: VCpu) -> bool:
        """Run one quantum on ``vcpu``: pick (or steal) a runnable
        domain, switch to it, deliver its pending events, run one work
        unit, drain softirqs, and debit the cycles it consumed from its
        credits. Returns False when the vCPU found nothing to run."""
        xen = self.xen
        xen.activate_vcpu(vcpu)
        domain = self._pick_from(vcpu.runq)
        if domain is None:
            domain = self._steal(vcpu)
        if domain is None:
            return False
        xen.charge_xen(xen.costs.sched_pick, phase="sched_pick")
        self._seq += 1
        domain.sched_seq = self._seq
        account = xen.machine.account
        start = account.total
        xen.switch_to(domain)
        xen.schedule_domain(domain)
        if domain.run_work:
            fn = domain.run_work.pop(0)
            fn()
        xen.run_softirqs()
        # credit accounting: debit what the quantum actually consumed,
        # straight off the machine-wide cycle account.
        xen.charge_xen(xen.costs.sched_credit_tick, phase="sched_tick")
        domain.credits -= account.total - start
        self.quanta += 1
        self.xen.machine.obs.registry.counter(
            f"sched.vcpu{vcpu.id}.quanta").value += 1
        self._maybe_refill()
        return True

    def idle(self) -> bool:
        """True when no vCPU has runnable work, queued softirqs, or an
        in-flight driver invocation — the quiescence predicate a planned
        handover checks before freezing the instance."""
        for vcpu in self.vcpus:
            if vcpu.softirqs or vcpu.driver_depth:
                return False
            if any(self.runnable(d) for d in vcpu.runq):
                return False
        return True

    def _maybe_refill(self):
        runnable = [d for v in self.vcpus for d in v.runq
                    if self.runnable(d)]
        if runnable and all(d.credits <= 0 for d in runnable):
            for vcpu in self.vcpus:
                for domain in vcpu.runq:
                    domain.credits += CREDIT_REFILL
            self.refills += 1

    def run(self, max_quanta: int = 1_000_000) -> int:
        """Round-robin the vCPUs until no vCPU can find runnable work
        (or the quantum budget runs out). Returns quanta executed."""
        ran = 0
        while ran < max_quanta:
            progressed = False
            for vcpu in self.vcpus:
                if ran >= max_quanta:
                    break
                if self.run_quantum(vcpu):
                    progressed = True
                    ran += 1
            if not progressed:
                break
        return ran
