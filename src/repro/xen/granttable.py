"""Grant tables: page sharing for the standard Xen I/O channel.

The unoptimized guest path (the paper's ``domU`` configuration) moves
packets between the guest and dom0 through grant operations: the guest
issues a grant for the page holding a packet, dom0 maps (tx) or the
hypervisor grant-copies (rx) it, then the grant is revoked. Each
operation does real bookkeeping here and charges its calibrated cost at
the call site in the hypervisor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class GrantError(Exception):
    """A grant operation violated the table's access rules."""

    pass


class GrantDoubleUnmap(GrantError):
    """A grant ref was unmapped while not mapped (double release).

    Kept as its own type so callers that juggle per-queue grant usage can
    distinguish a double-release bug (which would corrupt active-entry
    accounting if silently tolerated) from a genuinely bad ref."""

    pass


@dataclass
class GrantEntry:
    """One grant: a frame made accessible to one other domain."""

    ref: int
    frame: int
    grantee: int          # domid allowed to use the grant
    readonly: bool
    mapped: bool = False


class GrantTable:
    """Per-domain table of grants issued by that domain."""

    def __init__(self, domid: int):
        self.domid = domid
        self.entries: Dict[int, GrantEntry] = {}
        self._next_ref = 1
        self.ops = {"issue": 0, "map": 0, "unmap": 0, "copy": 0, "revoke": 0}
        #: number of entries currently mapped; map/unmap must keep this
        #: exact, which is what the double-unmap guard protects.
        self.active_maps = 0

    def issue(self, frame: int, grantee: int, readonly: bool = False) -> int:
        ref = self._next_ref
        self._next_ref += 1
        self.entries[ref] = GrantEntry(ref=ref, frame=frame, grantee=grantee,
                                       readonly=readonly)
        self.ops["issue"] += 1
        return ref

    def lookup(self, ref: int, grantee: int) -> GrantEntry:
        entry = self.entries.get(ref)
        if entry is None:
            raise GrantError(f"bad grant ref {ref} for dom{self.domid}")
        if entry.grantee != grantee:
            raise GrantError(
                f"grant {ref} not issued to dom{grantee}"
            )
        return entry

    def map(self, ref: int, grantee: int) -> int:
        entry = self.lookup(ref, grantee)
        if entry.mapped:
            raise GrantError(f"grant {ref} already mapped")
        entry.mapped = True
        self.active_maps += 1
        self.ops["map"] += 1
        return entry.frame

    def unmap(self, ref: int, grantee: int):
        entry = self.lookup(ref, grantee)
        if not entry.mapped:
            raise GrantDoubleUnmap(
                f"grant {ref} unmapped twice by dom{grantee}")
        entry.mapped = False
        self.active_maps -= 1
        self.ops["unmap"] += 1

    def copy_frame(self, ref: int, grantee: int) -> int:
        """Grant-copy: no mapping state changes, just an access check."""
        entry = self.lookup(ref, grantee)
        self.ops["copy"] += 1
        return entry.frame

    def revoke(self, ref: int):
        entry = self.entries.pop(ref, None)
        if entry is None:
            raise GrantError(f"revoking unknown grant {ref}")
        if entry.mapped:
            raise GrantError(f"revoking mapped grant {ref}")
        self.ops["revoke"] += 1
