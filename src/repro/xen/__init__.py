"""Xen-like hypervisor substrate: domains, events, grants, cost model."""

from .costs import (
    CostModel,
    MULTI_NIC_EFFICIENCY,
    OVERLOAD_EFFICIENCY,
    REQRESP_PACKET_FACTOR,
    SUPPORT_ROUTINE_COSTS,
    VIRT_APP_FACTOR,
)
from .domain import Domain
from .granttable import GrantDoubleUnmap, GrantEntry, GrantError, GrantTable
from .sched import (
    CREDIT_REFILL,
    SOFTIRQ_DRAIN_LIMIT,
    CreditScheduler,
    SoftirqStorm,
    VCpu,
)
from .hypervisor import (
    HYP_CODE_BASE,
    HYP_DATA_BASE,
    HYP_STACK_BASE,
    HYP_STACK_PAGES,
    HYP_SVM_MAP_BASE,
    HYP_UPCALL_STACK_BASE,
    Hypervisor,
)

__all__ = [
    "CREDIT_REFILL",
    "CostModel",
    "CreditScheduler",
    "Domain",
    "GrantDoubleUnmap",
    "GrantEntry",
    "GrantError",
    "GrantTable",
    "HYP_CODE_BASE",
    "HYP_DATA_BASE",
    "HYP_STACK_BASE",
    "HYP_STACK_PAGES",
    "HYP_SVM_MAP_BASE",
    "HYP_UPCALL_STACK_BASE",
    "Hypervisor",
    "MULTI_NIC_EFFICIENCY",
    "OVERLOAD_EFFICIENCY",
    "REQRESP_PACKET_FACTOR",
    "SOFTIRQ_DRAIN_LIMIT",
    "SoftirqStorm",
    "SUPPORT_ROUTINE_COSTS",
    "VCpu",
    "VIRT_APP_FACTOR",
]
