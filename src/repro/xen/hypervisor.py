"""The Xen-like hypervisor: domains, switches, events, hypercalls, softirqs.

This is the substrate both driver models run on:

* the *hosted* model (paper's ``domU``) pays :func:`switch_to` on every
  crossing between a guest and dom0;
* the *TwinDrivers* model invokes the hypervisor driver from any guest
  context via :func:`hypercall` with **no** switch — the whole point of
  SVM is that the driver's data is reachable through hypervisor mappings
  that are present in every address space.

Cycle charging convention: hypervisor work charges the ``Xen`` category,
domain kernel work charges the domain's category (``dom0``/``domU``), and
driver-binary execution charges ``e1000`` (the CPU is switched to that
category around driver invocations).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..machine.machine import Machine
from ..machine.paging import AddressSpace, HYPERVISOR_BASE
from ..obs.events import (
    DOMAIN_SWITCH,
    EVENT_SEND,
    HYPERCALL,
    SOFTIRQ,
    VIRQ,
    VIRQ_COALESCED,
)
from .costs import CostModel
from .domain import Domain
from .granttable import GrantTable
from .sched import SOFTIRQ_DRAIN_LIMIT, CreditScheduler, SoftirqStorm, VCpu

#: Hypervisor virtual-address layout (all inside the shared region).
HYP_CODE_BASE = 0xF0100000
HYP_STACK_BASE = 0xF0200000
HYP_STACK_PAGES = 4
HYP_UPCALL_STACK_BASE = 0xF0210000
HYP_DATA_BASE = 0xF0300000
#: SVM-created mappings of dom0 pages are allocated upward from here.
HYP_SVM_MAP_BASE = 0xF4000000

#: Layout for a SECOND live twin instance (queue re-homing / live
#: upgrade, DESIGN.md §14). Disjoint from the primary instance so both
#: can be mapped at once: code/stack/data sit above the primary's data
#: region and the SVM map window starts 32 MiB past the primary's.
HYP2_CODE_BASE = 0xF0800000
HYP2_STACK_BASE = 0xF0900000
HYP2_DATA_BASE = 0xF0A00000
HYP2_SVM_MAP_BASE = 0xF6000000


class Hypervisor:
    """The Xen-like VMM: domains, switches, events, grants, softirqs."""

    def __init__(self, machine: Machine, costs: Optional[CostModel] = None,
                 vcpus: int = 1):
        self.machine = machine
        self.costs = costs or CostModel()
        self.domains: List[Domain] = []
        self.dom0: Optional[Domain] = None
        self.grant_tables: Dict[int, GrantTable] = {}
        self._irq_handlers: Dict[int, Callable[[int], None]] = {}
        # SMP: all formerly-global per-CPU state (current domain, softirq
        # queue, driver depth) lives on VCpu objects; the single-vCPU
        # default is just "there is one VCpu and it never changes".
        if vcpus < 1:
            raise ValueError(f"need at least one vcpu, got {vcpus}")
        self.vcpus: List[VCpu] = [VCpu(i, self) for i in range(vcpus)]
        self._cur_vcpu: VCpu = self.vcpus[0]
        self.scheduler = CreditScheduler(self, self.vcpus)
        # mechanism counters live in the machine-wide registry
        self._tracer = machine.obs.tracer
        self._profiler = machine.obs.profiler
        self._c_switch = machine.obs.registry.counter("xen.switch")
        self._c_hypercall = machine.obs.registry.counter("xen.hypercall")
        self._c_event = machine.obs.registry.counter("xen.event_send")
        self._c_virq = machine.obs.registry.counter("xen.virq")
        self._c_virq_coalesced = machine.obs.registry.counter(
            "xen.virq_coalesced")
        self._c_softirq = machine.obs.registry.counter("xen.softirq")
        machine.intc.set_dispatcher(self._dispatch_irq)
        machine.cpu.cycle_scale = self.costs.driver_cycle_scale

    # -- per-vCPU state ----------------------------------------------------------
    #
    # `current`, `driver_depth`, and the softirq queue are per-CPU on real
    # Xen; these properties delegate to the active vCPU so every existing
    # single-vCPU call site keeps working unchanged.

    @property
    def current(self) -> Optional[Domain]:
        """The domain whose address space the active vCPU runs."""
        return self._cur_vcpu.current

    @current.setter
    def current(self, domain: Optional[Domain]):
        self._cur_vcpu.current = domain

    @property
    def driver_depth(self) -> int:
        """>0 while a hypervisor-driver invocation is in flight on the
        active vCPU; softirqs are deferred until it drains (paper §4.4:
        the driver ISR runs in a *schedulable* softirq context, never
        nested inside driver execution)."""
        return self._cur_vcpu.driver_depth

    @driver_depth.setter
    def driver_depth(self, depth: int):
        self._cur_vcpu.driver_depth = depth

    @property
    def _softirqs(self) -> List[Callable[[], None]]:
        return self._cur_vcpu.softirqs

    def activate_vcpu(self, vcpu: VCpu):
        """Make ``vcpu`` the one the simulated pCPU stands in for. Free
        of cycle charges: the quantum's costs are charged by the
        scheduler's pick/switch path, not by the standin rotation."""
        if vcpu is self._cur_vcpu:
            return
        self._cur_vcpu = vcpu
        # Superblocks compiled by the trace JIT cache per-world state;
        # a vCPU change is a world change they must re-validate.
        self.machine.cpu.world_token += 1
        if vcpu.current is not None:
            self.machine.cpu.address_space = vcpu.current.aspace

    # -- accounting helpers ------------------------------------------------------

    def charge_xen(self, cycles: int, phase: Optional[str] = None):
        """Charge hypervisor cycles; ``phase`` names the mechanism for
        the cycle-attribution profiler (guarded like tracing — the
        disabled path is one attribute test)."""
        prof = self._profiler
        if phase is not None and prof.enabled:
            # callers may pass an already-namespaced phase (twin:rx_copy,
            # support:netdev_alloc_skb); bare names are hypervisor phases
            prof.push_phase(phase if ":" in phase else "xen:" + phase)
            try:
                self.machine.account.charge("Xen", int(cycles))
            finally:
                prof.pop_phase()
        else:
            self.machine.account.charge("Xen", int(cycles))

    # -- counter views (registry-backed) -----------------------------------------

    @property
    def switches(self) -> int:
        return self._c_switch.value

    @property
    def hypercalls(self) -> int:
        return self._c_hypercall.value

    # -- domain lifecycle ----------------------------------------------------------

    def create_domain(self, name: str, is_dom0: bool = False) -> Domain:
        domid = len(self.domains)
        aspace = AddressSpace(name, self.machine.phys,
                              self.machine.hypervisor_table)
        domain = Domain(domid, name, aspace, is_dom0=is_dom0)
        self.domains.append(domain)
        self.grant_tables[domid] = GrantTable(domid)
        if is_dom0:
            if self.dom0 is not None:
                raise ValueError("dom0 already exists")
            self.dom0 = domain
        self.scheduler.assign(domain)
        if self.current is None:
            self.current = domain
            self.machine.cpu.address_space = aspace
        return domain

    # -- context switching -----------------------------------------------------------

    def switch_to(self, domain: Domain):
        """Synchronous domain switch; charges the big TLB/cache cost."""
        if self.current is domain:
            return
        self.charge_xen(self.costs.domain_switch, phase="domain_switch")
        self._c_switch.value += 1
        if len(self.vcpus) > 1:
            # per-vCPU labels only exist on SMP configs so single-vCPU
            # metric dumps stay byte-identical to the pre-SMP baselines
            self.machine.obs.registry.counter(
                f"xen.vcpu{self._cur_vcpu.id}.switch").value += 1
        if self._tracer.enabled:
            previous = self.current.name if self.current else None
            self._tracer.emit(DOMAIN_SWITCH, to=domain.name, frm=previous)
        self.current = domain
        self.machine.cpu.address_space = domain.aspace

    def run_in_domain(self, domain: Domain, fn: Callable[[], object]):
        """Switch to ``domain``, run ``fn`` under its accounting category,
        switch back. Used for synchronous cross-domain work (upcalls,
        backend processing)."""
        previous = self.current
        self.switch_to(domain)
        self.machine.cpu.push_category(domain.category)
        try:
            return fn()
        finally:
            self.machine.cpu.pop_category()
            self.switch_to(previous)

    # -- hypercalls ----------------------------------------------------------------------

    def hypercall(self, name: str) -> None:
        """Account one hypercall entry from the current domain."""
        self._c_hypercall.value += 1
        if self._tracer.enabled:
            self._tracer.emit(HYPERCALL, name=name)
        self.charge_xen(self.costs.hypercall, phase="hypercall")

    # -- event channels --------------------------------------------------------------------

    def send_event(self, domain: Domain, port: int, synchronous: bool = False):
        """Signal ``port`` in ``domain``.

        ``synchronous=True`` models the paper's 'synchronous virtual
        interrupt' used by upcalls: delivery happens immediately, in the
        target domain's context. Asynchronous events are queued and
        delivered when the domain is next scheduled."""
        self.charge_xen(self.costs.event_channel_send, phase="event_send")
        self._c_event.value += 1
        if self._tracer.enabled:
            self._tracer.emit(EVENT_SEND, domain=domain.name, port=port,
                              sync=synchronous)
        if synchronous:
            self._deliver_event(domain, port)
        else:
            domain.pending_ports.append(port)

    def _deliver_event(self, domain: Domain, port: int):
        if not domain.virq_enabled:
            domain.pending_ports.append(port)
            return
        handler = domain.event_handlers.get(port)
        if handler is None:
            raise KeyError(f"domain {domain.name} has no handler on port {port}")
        self.charge_xen(self.costs.virq_delivery, phase="virq_delivery")
        self._c_virq.value += 1
        if self._tracer.enabled:
            self._tracer.emit(VIRQ, domain=domain.name, port=port)
        self.run_in_domain(domain, lambda: handler(port))

    def deliver_coalesced_virq(self, domain: Domain, npackets: int) -> bool:
        """Charge and record ONE virtual interrupt covering ``npackets``
        queued packets (§5.3: the hypervisor copies the batch into guest
        buffers and raises a single virtual interrupt). A batch of one
        costs exactly ``virq_delivery``; each additional packet adds only
        its ring-descriptor bookkeeping.

        Returns True iff the virq was actually delivered. A masked
        domain gets NO charge and NO event count — the caller must park
        the batch and replay it from an unmask hook, at which point the
        replay delivery is the one (and only) charge. Charging here too
        would double-count every masked batch."""
        if not domain.virq_enabled:
            return False
        self.charge_xen(
            self.costs.virq_coalesced
            + (npackets - 1) * self.costs.virq_coalesced_per_packet,
            phase="virq_coalesced",
        )
        self._c_virq_coalesced.value += 1
        if self._tracer.enabled:
            self._tracer.emit(VIRQ_COALESCED, domain=domain.name,
                              packets=npackets)
        return True

    def schedule_domain(self, domain: Domain):
        """Deliver a domain's pending events (models the domain being
        scheduled and seeing its event-channel bitmap)."""
        while domain.pending_ports and domain.virq_enabled:
            port = domain.pending_ports.pop(0)
            handler = domain.event_handlers.get(port)
            if handler is None:
                continue
            self.charge_xen(self.costs.virq_delivery, phase="virq_delivery")
            self._c_virq.value += 1
            if self._tracer.enabled:
                self._tracer.emit(VIRQ, domain=domain.name, port=port)
            self.run_in_domain(domain, lambda p=port: handler(p))
        # Scheduling a domain with virqs enabled is also the moment any
        # work deferred on its virq mask (NIC softirqs the hypervisor
        # driver postponed) must be retried.
        if domain.virq_enabled:
            domain.fire_unmask_hooks()

    # -- physical interrupts ---------------------------------------------------------------------

    def register_irq_handler(self, irq: int, handler: Callable[[int], None]):
        self._irq_handlers[irq] = handler

    def _dispatch_irq(self, irq: int):
        self.charge_xen(self.costs.interrupt_virtualization,
                        phase="interrupt")
        handler = self._irq_handlers.get(irq)
        if handler is not None:
            handler(irq)

    # -- softirqs ------------------------------------------------------------------------------------

    def raise_softirq(self, fn: Callable[[], None]):
        self.charge_xen(self.costs.softirq_schedule, phase="softirq")
        self._c_softirq.value += 1
        if self._tracer.enabled:
            self._tracer.emit(SOFTIRQ, pending=len(self._softirqs) + 1)
        self._softirqs.append(fn)

    def run_softirqs(self):
        """Drain the active vCPU's softirq queue to empty.

        Softirqs raised *while a softirq runs* land on the same queue
        and are picked up by the already-running drain — the re-entrancy
        latch stops a nested ``run_softirqs`` (e.g. a continuation that
        a handler schedules synchronously) from stealing them out from
        under the outer loop, which previously reordered work. The drain
        is bounded: a handler that re-raises itself forever raises
        :class:`SoftirqStorm` instead of hanging the simulation."""
        vcpu = self._cur_vcpu
        if vcpu.in_softirq:
            return
        vcpu.in_softirq = True
        drained = 0
        try:
            while vcpu.softirqs:
                if drained >= SOFTIRQ_DRAIN_LIMIT:
                    raise SoftirqStorm(
                        f"vcpu{vcpu.id} drained {drained} softirqs without "
                        f"reaching an empty queue")
                fn = vcpu.softirqs.pop(0)
                fn()
                drained += 1
        finally:
            vcpu.in_softirq = False

    def drain_all_softirqs(self, max_rounds: int = 8):
        """Drain every vCPU's softirq queue to empty (planned-handover
        quiesce). Softirq handlers can raise follow-on softirqs on other
        vCPUs, so iterate to a fixpoint; the active vCPU is restored."""
        original = self._cur_vcpu
        try:
            for _ in range(max_rounds):
                if not any(v.softirqs for v in self.vcpus):
                    return
                for vcpu in self.vcpus:
                    if vcpu.softirqs:
                        self.activate_vcpu(vcpu)
                        self.run_softirqs()
            if any(v.softirqs for v in self.vcpus):
                raise SoftirqStorm(
                    f"softirq queues not quiescent after {max_rounds} "
                    f"drain rounds")
        finally:
            self.activate_vcpu(original)

    # -- grant operations (charged wrappers) ------------------------------------------------------------

    def grant_map(self, granter: Domain, ref: int, grantee: Domain) -> int:
        self.charge_xen(self.costs.grant_map, phase="grant_map")
        return self.grant_tables[granter.domid].map(ref, grantee.domid)

    def grant_unmap(self, granter: Domain, ref: int, grantee: Domain):
        # validate-then-charge: a rejected double unmap must not burn
        # cycles or skew the grant accounting (GrantDoubleUnmap and the
        # other GrantError cases propagate before any charge lands)
        self.grant_tables[granter.domid].unmap(ref, grantee.domid)
        self.charge_xen(self.costs.grant_unmap, phase="grant_unmap")

    def grant_copy_packet(self, granter: Domain, ref: int, grantee: Domain) -> int:
        self.charge_xen(self.costs.grant_copy_per_packet,
                        phase="grant_copy")
        return self.grant_tables[granter.domid].copy_frame(ref, grantee.domid)
