"""Domains: dom0 (the driver domain) and paravirtualized guests.

A domain owns an address space (with the hypervisor region shared in, as
in Xen), a virtual-interrupt-enable flag (paper §4.4: the dom0 kernel
masks a *virtual* interrupt flag, which the hypervisor must respect before
invoking the driver interrupt handler), and a set of event-channel ports.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..machine.memory import PAGE_SIZE
from ..machine.paging import AddressSpace


class Domain:
    """A dom0 or guest domain: address space, virq flag, event ports."""

    def __init__(self, domid: int, name: str, aspace: AddressSpace,
                 is_dom0: bool = False):
        self.domid = domid
        self.name = name
        self.aspace = aspace
        self.is_dom0 = is_dom0
        #: cycle-accounting category for this domain's kernel work.
        self.category = "dom0" if is_dom0 else "domU"
        #: virtual interrupt flag (True = interrupts enabled).
        self.virq_enabled = True
        #: event-channel port -> handler(port) registered by the kernel.
        self.event_handlers: Dict[int, Callable[[int], None]] = {}
        #: ports with a pending event not yet delivered.
        self.pending_ports: List[int] = []
        #: the guest kernel model living in this domain (set by osmodel).
        self.kernel = None
        #: callbacks fired when the virq mask transitions masked->enabled
        #: (and when the domain is scheduled with virqs enabled) — how the
        #: hypervisor driver learns that deferred NIC softirqs may run.
        self.unmask_hooks: List[Callable[[], None]] = []
        self._next_port = 1
        #: the vCPU whose run queue holds this domain (set by the credit
        #: scheduler; None on single-vCPU configs that never schedule).
        self.vcpu = None
        #: credit balance, debited by cycles consumed per quantum.
        self.credits = 0
        #: sequence number of this domain's last quantum (scheduler
        #: round-robin tie-break; 0 = never scheduled).
        self.sched_seq = 0
        #: queued units of guest work, one consumed per quantum.
        self.run_work: List[Callable[[], None]] = []

    # -- event channels -----------------------------------------------------

    def bind_event_channel(self, handler: Callable[[int], None]) -> int:
        port = self._next_port
        self._next_port += 1
        self.event_handlers[port] = handler
        return port

    # -- virtual interrupt flag ------------------------------------------------

    def disable_virq(self):
        self.virq_enabled = False

    def enable_virq(self):
        was_enabled = self.virq_enabled
        self.virq_enabled = True
        if not was_enabled:
            self.fire_unmask_hooks()

    def fire_unmask_hooks(self):
        for hook in list(self.unmask_hooks):
            hook()

    # -- memory helpers ----------------------------------------------------------

    def map_new_region(self, vaddr: int, nbytes: int) -> int:
        """Allocate and map ``nbytes`` (page-rounded) at ``vaddr``."""
        pages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        self.aspace.map_new_pages(vaddr, pages)
        return vaddr

    def __repr__(self):  # pragma: no cover
        return f"<Domain {self.domid} {self.name}>"
