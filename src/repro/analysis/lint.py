"""Lint CLI: rewrite a driver and statically verify the result.

Usage::

    PYTHONPATH=src python -m repro.analysis.lint e1000
    PYTHONPATH=src python -m repro.analysis.lint rtl8139 --protect-stack
    PYTHONPATH=src python -m repro.analysis.lint path/to/driver.s --hostile
    PYTHONPATH=src python -m repro.analysis.lint --corpus

Positional arguments name a shipped driver (``e1000``/``rtl8139``) or a
``.s`` file to assemble. The binary is rewritten, then verified; the
report prints to stdout and the exit status is non-zero when any binary
is rejected. ``--corpus`` instead runs the negative corpus and checks
that every broken binary is rejected by the expected pass.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..core.rewriter import UnsupportedInstruction, rewrite_driver
from ..drivers import DRIVER_SPECS
from ..isa import assemble
from ..isa.assembler import AssemblerError
from .corpus import build_negative_corpus
from .verifier import verify_program


def _load_program(target: str):
    spec = DRIVER_SPECS.get(target)
    if spec is not None:
        return spec.build_program()
    try:
        with open(target, "r", encoding="utf-8") as handle:
            return assemble(handle.read(), name=target)
    except AssemblerError as exc:
        raise SystemExit(f"error: {target}: {exc}")
    except OSError as exc:
        drivers = ", ".join(sorted(DRIVER_SPECS))
        raise SystemExit(
            f"error: {target!r} is neither a shipped driver ({drivers}) "
            f"nor a readable .s file ({exc})"
        )


def _lint_target(target: str, protect_stack: bool, hostile: bool) -> bool:
    program = _load_program(target)
    try:
        rewritten, stats = rewrite_driver(program,
                                          protect_stack=protect_stack)
    except UnsupportedInstruction as exc:
        print(f"verify {target}: REJECT (rewriter: {exc})")
        return False
    annotations = None if hostile else stats.annotations
    report = verify_program(rewritten, annotations=annotations,
                            protect_stack=protect_stack)
    print(report.format())
    return report.ok


def _run_corpus() -> bool:
    ok = True
    for entry in build_negative_corpus():
        report = verify_program(entry.program,
                                protect_stack=entry.protect_stack)
        rejected = any(f.passname == entry.expect_pass for f in report.errors)
        verdict = "rejected" if rejected else "MISSED"
        print(f"corpus {entry.name}: {verdict} "
              f"(expected pass {entry.expect_pass!r}, "
              f"{len(report.errors)} violation(s))")
        for finding in report.errors:
            print("  " + finding.format())
        if not rejected:
            ok = False
    return ok


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="statically verify rewritten driver binaries",
    )
    parser.add_argument("targets", nargs="*",
                        help="driver name (e1000, rtl8139) or .s file")
    parser.add_argument("--protect-stack", action="store_true",
                        help="rewrite and verify with §4.5.1 stack checks")
    parser.add_argument("--hostile", action="store_true",
                        help="verify without rewriter annotations")
    parser.add_argument("--corpus", action="store_true",
                        help="run the negative corpus instead of drivers")
    args = parser.parse_args(argv)

    if not args.targets and not args.corpus:
        parser.error("give at least one target or --corpus")

    ok = True
    if args.corpus:
        ok = _run_corpus() and ok
    for target in args.targets:
        ok = _lint_target(target, args.protect_stack, args.hostile) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
