"""Lint CLI: rewrite a driver and statically verify the result.

Usage::

    PYTHONPATH=src python -m repro.analysis.lint e1000
    PYTHONPATH=src python -m repro.analysis.lint rtl8139 --protect-stack
    PYTHONPATH=src python -m repro.analysis.lint path/to/driver.s --hostile
    PYTHONPATH=src python -m repro.analysis.lint e1000 --elide-report
    PYTHONPATH=src python -m repro.analysis.lint --corpus --json report.json

Positional arguments name a shipped driver (``e1000``/``rtl8139``) or a
``.s`` file to assemble. The binary is rewritten, then verified; the
report prints to stdout and the exit status is non-zero when any binary
is rejected. ``--corpus`` instead runs the negative corpus and checks
that every broken binary is rejected by the expected pass (and, for the
semantic entries, with the expected finding key). ``--elide-report``
additionally prints what proof-based check elision would do to each
clean target; ``--json PATH`` writes a machine-readable report (CI
uploads it as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from ..core.rewriter import UnsupportedInstruction, apply_elision, \
    rewrite_driver
from ..drivers import DRIVER_SPECS
from ..isa import assemble
from ..isa.assembler import AssemblerError
from .corpus import build_negative_corpus
from .verifier import verify_program

#: schema tag for the --json report
LINT_SCHEMA = "repro-lint-report/v1"


def _load_program(target: str):
    spec = DRIVER_SPECS.get(target)
    if spec is not None:
        return spec.build_program()
    try:
        with open(target, "r", encoding="utf-8") as handle:
            return assemble(handle.read(), name=target)
    except AssemblerError as exc:
        raise SystemExit(f"error: {target}: {exc}")
    except OSError as exc:
        drivers = ", ".join(sorted(DRIVER_SPECS))
        raise SystemExit(
            f"error: {target!r} is neither a shipped driver ({drivers}) "
            f"nor a readable .s file ({exc})"
        )


def _finding_json(finding) -> dict:
    return {
        "pass": finding.passname,
        "index": finding.index,
        "severity": finding.severity,
        "key": finding.key,
        "message": finding.message,
    }


def _lint_target(target: str, protect_stack: bool, hostile: bool,
                 elide_report: bool, results: List[dict]) -> bool:
    program = _load_program(target)
    try:
        rewritten, stats = rewrite_driver(program,
                                          protect_stack=protect_stack)
    except UnsupportedInstruction as exc:
        print(f"verify {target}: REJECT (rewriter: {exc})")
        results.append({"target": target, "ok": False,
                        "error": f"rewriter: {exc}"})
        return False
    annotations = None if hostile else stats.annotations
    report = verify_program(rewritten, annotations=annotations,
                            protect_stack=protect_stack)
    print(report.format())
    entry = {
        "target": target,
        "mode": report.mode,
        "ok": report.ok,
        "findings": [_finding_json(f) for f in report.sorted_findings()],
        "stats": report.stats,
    }
    if report.ok:
        elided, result = apply_elision(rewritten, report.proofs)
        sites_total = report.stats.get("range", {}).get("sites_total", 0)
        entry["elision"] = {
            "sites_total": sites_total,
            "sites_proven": result.sites_elided,
            "anchors": result.anchors,
            "coverage": (result.sites_elided / sites_total
                         if sites_total else 0.0),
            "instructions_before": len(rewritten.instructions),
            "instructions_after": len(elided.instructions),
        }
        if elide_report:
            e = entry["elision"]
            print(f"elide {target}: {e['sites_proven']}/{e['sites_total']} "
                  f"fast-path sites proven "
                  f"({100 * e['coverage']:.0f}%), "
                  f"{e['anchors']} anchors, "
                  f"{e['instructions_before'] - e['instructions_after']} "
                  f"instructions dropped")
    results.append(entry)
    return report.ok


def _run_corpus(results: List[dict]) -> bool:
    ok = True
    for entry in build_negative_corpus():
        report = verify_program(entry.program,
                                protect_stack=entry.protect_stack)
        rejected = any(f.passname == entry.expect_pass
                       for f in report.errors)
        key_ok = (entry.expect_key is None
                  or any(f.key == entry.expect_key for f in report.errors))
        verdict = "rejected" if rejected and key_ok else "MISSED"
        expect = entry.expect_key or entry.expect_pass
        print(f"corpus {entry.name}: {verdict} "
              f"(expected {expect!r}, "
              f"{len(report.errors)} violation(s))")
        for finding in report.errors:
            print("  " + finding.format())
        results.append({
            "corpus": entry.name,
            "expect_pass": entry.expect_pass,
            "expect_key": entry.expect_key,
            "rejected": bool(rejected and key_ok),
            "findings": [_finding_json(f) for f in report.sorted_findings()],
        })
        if not (rejected and key_ok):
            ok = False
    return ok


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="statically verify rewritten driver binaries",
    )
    parser.add_argument("targets", nargs="*",
                        help="driver name (e1000, rtl8139) or .s file")
    parser.add_argument("--protect-stack", action="store_true",
                        help="rewrite and verify with §4.5.1 stack checks")
    parser.add_argument("--hostile", action="store_true",
                        help="verify without rewriter annotations")
    parser.add_argument("--corpus", action="store_true",
                        help="run the negative corpus instead of drivers")
    parser.add_argument("--elide-report", action="store_true",
                        help="print prove-then-elide coverage per target")
    parser.add_argument("--json", metavar="PATH",
                        help="write a machine-readable lint report")
    args = parser.parse_args(argv)

    if not args.targets and not args.corpus:
        parser.error("give at least one target or --corpus")

    ok = True
    targets: List[dict] = []
    corpus: List[dict] = []
    if args.corpus:
        ok = _run_corpus(corpus) and ok
    for target in args.targets:
        ok = _lint_target(target, args.protect_stack, args.hostile,
                          args.elide_report, targets) and ok
    if args.json:
        payload = {
            "schema": LINT_SCHEMA,
            "ok": ok,
            "targets": targets,
            "corpus": corpus,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
