"""A generic forward dataflow / abstract-interpretation solver.

The verifier grew several hand-rolled fixpoints (the must-TRANSLATED
register analysis, flags liveness, the stack walk); this module factors
the forward ones onto a single worklist solver over the existing
:class:`~repro.isa.cfg.ControlFlowGraph` so new analyses — the value
tracking in :mod:`repro.analysis.absint` in particular — share one
carefully-reviewed engine.

The solver is parameterized over the abstract domain:

* ``entry_state(block_start)`` — the state seeded at each entry block.
  Function entries are *re-seeded*, never joined into: a call does not
  flow the caller's state into the callee (the toy ABI's caller-saved
  contract is modelled inside the client's ``transfer`` instead), and an
  entry's seed must therefore already over-approximate every possible
  entry context.
* ``transfer(index, state)`` — one instruction's effect.
* ``join(a, b)`` — least upper bound (or meet, for must-analyses; the
  solver is agnostic as long as the operation is monotone and the chain
  is finite or ``widen`` is supplied).
* ``widen(old, new)`` — optional; applied at a block once more than
  ``max_joins`` state-changing joins have landed on it, to force loops
  with infinite ascending chains (interval bounds) to converge.

Blocks the entry set cannot reach get no state at all: the returned
per-instruction list holds ``None`` there, and clients must treat such
code pessimistically (it is still mappable and may be reached through a
translated function pointer the CFG cannot see).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from ..isa.cfg import ControlFlowGraph
from ..isa.program import Program


def solve_forward(program: Program,
                  *,
                  entries,
                  entry_state: Callable,
                  transfer: Callable,
                  join: Callable,
                  widen: Optional[Callable] = None,
                  cfg: Optional[ControlFlowGraph] = None,
                  max_joins: int = 4) -> List:
    """Run a forward analysis to fixpoint; return one *in*-state per
    instruction (``None`` for instructions no entry reaches).

    ``entries`` is an iterable of entry instruction indices; instruction 0
    is always included (the program's fall-in point). Entry blocks keep
    their seeded state: edges into them are not joined (see module doc).
    """
    n = len(program.instructions)
    if n == 0:
        return []
    cfg = cfg or ControlFlowGraph(program)
    entry_blocks = {index for index in entries if 0 <= index < n}
    entry_blocks.add(0)
    entry_blocks &= set(cfg.blocks)
    reachable = cfg.reachable_from(entry_blocks)

    block_in = {start: None for start in cfg.blocks}
    for start in entry_blocks:
        block_in[start] = entry_state(start)
    joins = {start: 0 for start in cfg.blocks}

    work = deque(sorted(entry_blocks))
    queued = set(work)
    while work:
        start = work.popleft()
        queued.discard(start)
        state = block_in[start]
        if state is None:
            continue
        block = cfg.blocks[start]
        for i in range(block.start, block.end):
            state = transfer(i, state)
        for succ in block.successors:
            if succ in entry_blocks:
                continue
            old = block_in[succ]
            if old is None:
                new = state
            else:
                new = join(old, state)
                if new == old:
                    continue
                joins[succ] += 1
                if widen is not None and joins[succ] > max_joins:
                    new = widen(old, new)
                    if new == old:
                        continue
            block_in[succ] = new
            if succ not in queued:
                queued.add(succ)
                work.append(succ)

    states: List = [None] * n
    for start, block in cfg.blocks.items():
        if start not in reachable:
            continue
        state = block_in[start]
        if state is None:
            continue
        for i in range(block.start, block.end):
            states[i] = state
            state = transfer(i, state)
    return states
