"""Forward abstract interpretation over rewritten driver binaries.

An eBPF-verifier-style value-tracking analysis on top of the generic
:func:`repro.analysis.dataflow.solve_forward` worklist solver. Per
register it tracks one of four abstract values (encoded as plain tuples
— the analysis runs on every driver load, so allocation discipline
matters):

* ``("T",)`` — top: any 32-bit value.
* ``("I", lo, hi)`` — an unsigned interval, ``0 <= lo <= hi < 2**32``.
* ``("S", base, lo, hi)`` — a *symbolic* value: ``env(base) + d`` for
  some ``d`` in ``[lo, hi]``, where ``base`` names a definition point
  (``("def", index, reg)`` or ``("entry", index, reg)``) and ``env``
  binds each base to the concrete value the register held the last time
  that definition executed.
* ``("X", origin, lo, hi)`` — a *translated* pointer: the result of the
  stlb fast path (``origin = ("site", lea_index)``) or of the
  ``__svm_translate`` helper (``origin = ("xlate", index)``), plus a
  constant delta in ``[lo, hi]``. ``origin is None`` means "some
  translation result" (the join of two different origins) — provenance
  is retained, the specific mapping is not.

Soundness hinges on two rules:

* **Def-point sweep** — when definition point ``i`` re-executes it
  rebinds its base, so every *stale* occurrence of that base elsewhere
  in the state (another register, a spill slot, an availability fact)
  is demoted. Without this, loop-carried copies of an old iteration's
  value would be claimed equal to the new one.
* **Spill-slot transparency** — the rewriter's ``__svm_spillN``
  save/restore traffic is tracked as state (a restore returns the saved
  abstract value; a first restore memoizes a fresh base into the slot),
  so a site whose base register was spilled does not lose its identity.
  Slots are killed at every call that is not a register-preserving SVM
  helper: an internal callee may spill over them.

On top of the fixpoint the module derives per-site **elision proofs**
(:class:`ProofAnnotation`): fast-path site ``S`` is elidable when some
earlier site ``A`` over the same symbolic base is *available* at ``S``'s
``lea`` — meaning every path from ``A``'s check to ``S`` re-executes
neither ``A``'s address definition nor any state-clobbering call — and
``S``'s constant address delta keeps the access inside ``A``'s 2-page
SVM pair mapping (``0 <= delta`` and ``delta + size <= PAGE_SIZE``, so
even a worst-case in-page offset of 4095 stays below the 8192-byte pair
bound). The loader may then replace ``S``'s ten-instruction check with a
single load of ``A``'s saved translation (see
:func:`repro.core.rewriter.apply_elision`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.rewriter import (
    CALL_XLATE_SYMBOL,
    SLOW_PATH_SYMBOL,
    STACK_FAULT_SYMBOL,
    TRANSLATE_SYMBOL,
)
from ..isa.cfg import ControlFlowGraph
from ..isa.instructions import Instruction
from ..isa.operands import Imm, Label, Mem, Reg
from ..isa.program import Program
from ..isa.registers import GPRS
from .dataflow import solve_forward
from .patterns import (
    _SPILL_PREFIX,
    SvmSite,
    TranslatePoint,
    find_fastpath_sites,
    find_translate_points,
    is_spill_restore,
    is_spill_save,
)

PAGE_SIZE = 4096
#: the SVM manager maps guest pages in contiguous 2-page pairs (§5.1)
PAIR_SPAN = 2 * PAGE_SIZE

M32 = 0xFFFFFFFF
_U32 = 1 << 32
_OFF_MIN = -(1 << 31)
_OFF_MAX = (1 << 31) - 1

TOP = ("T",)

_RI = {name: i for i, name in enumerate(GPRS)}
_NREGS = len(GPRS)

#: The toy ABI's callee-saved registers. The whole analysis stack (the
#: PR 1 must-TRANSLATED dataflow included) models internal calls as
#: preserving these; register-keyed availability facts inherit the same
#: contract, additionally guarded by a per-callee summary of which
#: fast-path sites the callee can transitively re-execute (re-executing
#: the anchor site rebinds its stored translation).
_CALLEE_SAVED = frozenset(("ebx", "esi", "edi", "ebp"))

#: runtime helpers that preserve all registers, spill slots, and every
#: installed SVM mapping (the slow path and translate helpers only ever
#: *add* mappings; eviction of an stlb entry does not unmap its pair)
_KEEP_CALLS = frozenset(
    (SLOW_PATH_SYMBOL, TRANSLATE_SYMBOL, CALL_XLATE_SYMBOL,
     STACK_FAULT_SYMBOL)
)

#: Imported support natives audited against the three ways a call can
#: invalidate availability facts or tracked spill slots: they do not
#: write the driver's runtime-data slots (those live in hypervisor data
#: pages no dom0 or guest mapping they operate through can reach), they
#: never unmap an SVM page pair (mappings are only ever added; stlb
#: *entry* eviction leaves the pair mapped), and they never synchronously
#: re-enter the driver binary (IRQ handlers and timers fire later, on a
#: clean stack). A call to one of these therefore only clobbers the ABI
#: scratch registers. ``memcpy_support``/``memset_support`` are excluded:
#: they write caller-chosen destinations. The audit applies to the
#: *import* — a binary that defines a label with one of these names gets
#: the pessimistic treatment for calls to it.
AUDITED_IMPORTS = frozenset((
    "netdev_alloc_skb", "dev_kfree_skb_any", "netif_rx",
    "dma_map_single", "dma_map_page", "dma_unmap_single", "dma_unmap_page",
    "spin_trylock", "spin_unlock_irqrestore", "eth_type_trans",
    "kmalloc", "kfree", "dma_alloc_coherent", "dma_free_coherent",
    "alloc_etherdev", "register_netdev", "unregister_netdev", "free_netdev",
    "netif_start_queue", "netif_stop_queue", "netif_wake_queue",
    "netif_queue_stopped", "netif_carrier_on", "netif_carrier_off",
    "ioremap", "iounmap",
    "pci_enable_device", "pci_disable_device", "pci_set_master",
    "pci_request_regions", "pci_release_regions",
    "request_irq", "free_irq",
    "spin_lock_init", "spin_lock_irqsave",
    "init_timer", "mod_timer", "del_timer_sync", "msleep", "udelay",
    "skb_reserve", "skb_put", "skb_headroom", "printk",
    "mii_check_link", "ethtool_op_get_link", "capable",
    "copy_from_user", "copy_to_user",
))


def _signed32(value: int) -> int:
    value &= M32
    return value if value < (1 << 31) else value - _U32


# ---------------------------------------------------------------------------
# value lattice
# ---------------------------------------------------------------------------


def join_value(a, b):
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    ka, kb = a[0], b[0]
    if ka == "T" or kb == "T":
        return TOP
    if ka == "I" and kb == "I":
        return ("I", min(a[1], b[1]), max(a[2], b[2]))
    if ka == "S" and kb == "S" and a[1] == b[1]:
        return ("S", a[1], min(a[2], b[2]), max(a[3], b[3]))
    if ka == "X" and kb == "X":
        origin = a[1] if a[1] == b[1] else None
        return ("X", origin, min(a[2], b[2]), max(a[3], b[3]))
    return TOP


def widen_value(old, new):
    """Widening: keep the kind and base, give up on the bounds."""
    joined = join_value(old, new)
    kind = joined[0]
    if kind == "I":
        return TOP
    if kind in ("S", "X"):
        return (kind, joined[1], _OFF_MIN, _OFF_MAX)
    return joined


def value_shift(value, lo: int, hi: int):
    """Add a constant range [lo, hi] to an abstract value."""
    kind = value[0]
    if kind == "I":
        nl, nh = value[1] + lo, value[2] + hi
        if nl < 0 or nh > M32:
            return TOP
        return ("I", nl, nh)
    if kind in ("S", "X"):
        nl, nh = value[2] + lo, value[3] + hi
        if nl < _OFF_MIN or nh > _OFF_MAX:
            return (kind, value[1], _OFF_MIN, _OFF_MAX)
        return (kind, value[1], nl, nh)
    return TOP


def value_contains(value, concrete: int, env: Dict) -> bool:
    """Does ``value`` contain the concrete 32-bit ``concrete`` under the
    base environment ``env``? (The soundness property the test suite
    checks against real executions.)"""
    concrete &= M32
    kind = value[0]
    if kind == "T":
        return True
    if kind == "I":
        return value[1] <= concrete <= value[2]
    if kind in ("S", "X"):
        if value[1] not in env:
            return True     # base never bound on this execution: vacuous
        delta = _signed32(concrete - env[value[1]])
        return value[2] <= delta <= value[3]
    return False


# ---------------------------------------------------------------------------
# state: (regs 8-tuple, availability facts, spill-slot contents)
# ---------------------------------------------------------------------------

_EMPTY_AVAIL = frozenset()


def entry_state(entry_index: int):
    regs = tuple(("S", ("entry", entry_index, name), 0, 0) for name in GPRS)
    return (regs, _EMPTY_AVAIL, ())


def join_state(a, b):
    if a == b:
        return a
    regs = tuple(join_value(x, y) for x, y in zip(a[0], b[0]))
    avail = a[1] & b[1]
    if a[2] == b[2]:
        slots = a[2]
    else:
        bs = dict(b[2])
        merged = []
        for key, value in a[2]:
            other = bs.get(key)
            if other is None:
                continue
            joined = join_value(value, other)
            if joined != TOP:
                merged.append((key, joined))
        slots = tuple(merged)
    return (regs, avail, slots)


def widen_state(old, new):
    regs = tuple(widen_value(x, y) for x, y in zip(old[0], new[0]))
    avail = old[1] & new[1]
    ns = dict(new[2])
    slots = []
    for key, value in old[2]:
        other = ns.get(key)
        if other is None:
            continue
        widened = widen_value(value, other)
        if widened != TOP:
            slots.append((key, widened))
    return (regs, avail, tuple(slots))


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProofAnnotation:
    """Site ``site_lea`` is statically proven to access memory inside the
    2-page SVM pair mapping installed by anchor site ``anchor_lea``; the
    loader may replace its stlb re-check with ``anchor + delta``."""

    site_lea: int       # lea index of the proven (elidable) site
    access: int         # index of its translated access
    anchor_lea: int     # lea index of the anchor site (stays materialized)
    delta: int          # constant byte offset from the anchor's address
    size: int           # access width in bytes
    #: optional scaled-index component: when set, the proven address is
    #: ``anchor + delta + index*scale`` with the index register's interval
    #: already folded into the in-pair bound, and the elided access keeps
    #: the index in its addressing mode
    index: Optional[str] = None
    scale: int = 1


@dataclass
class AbsintResult:
    """Fixpoint states plus everything the new verifier passes consume."""

    in_states: List                         # per-instruction state or None
    sites: List[SvmSite]
    translate_points: Dict[int, TranslatePoint]
    proofs: List[ProofAnnotation] = field(default_factory=list)
    #: sites whose in-bounds proof exists, before anchor-conflict
    #: resolution (the coverage metric); superset of {p.site_lea}
    proven_leas: Set[int] = field(default_factory=set)
    #: True when an unroutable control-flow construct (an indirect jmp)
    #: forced the analysis to renounce all proofs
    proofs_suppressed: bool = False

    def reg_value(self, index: int, reg: str):
        state = self.in_states[index]
        if state is None:
            return TOP
        return state[0][_RI[reg]]


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------


class _Analyzer:
    def __init__(self, program: Program, sites: Sequence[SvmSite],
                 translate_points: Dict[int, TranslatePoint],
                 cfg: Optional[ControlFlowGraph] = None):
        self.program = program
        self.sites = list(sites)
        self.translate_points = translate_points
        self.cfg = cfg or ControlFlowGraph(program)
        self.site_by_lea = {site.lea: site for site in self.sites}
        self.site_by_xor = {site.lea + 8: site for site in self.sites}
        self.call_reach = self._call_summaries()
        self.ops = [self._classify(i, ins)
                    for i, ins in enumerate(program.instructions)]
        # per-instruction register kill sets for the register-keyed
        # availability facts; "nop" ops (KEEP calls included) kill nothing
        self.reg_kills = [
            frozenset() if op[0] == "nop"
            else frozenset(ins.registers_written())
            for op, ins in zip(self.ops, program.instructions)
        ]

    # -- call summaries -----------------------------------------------------

    def _call_summaries(self):
        """Per internal callee entry: the set of fast-path site leas the
        call can transitively re-execute (re-executing an anchor rebinds
        its stored translation), or ``None`` when an indirect call inside
        the callee makes the set unbounded."""
        program, cfg = self.program, self.cfg
        n = len(program.instructions)
        entries = set()
        for ins in program.instructions:
            if ins.is_call and not ins.indirect and ins.operands \
                    and isinstance(ins.operands[0], Label):
                name = ins.operands[0].name
                if name in _KEEP_CALLS:
                    continue
                target = program.labels.get(name)
                if target is not None and target < n:
                    entries.add(target)
        info = {}
        for e in entries:
            leas, callees, poisoned = set(), set(), False
            for start in cfg.reachable_from([e]):
                block = cfg.blocks[start]
                for i in range(block.start, block.end):
                    ins = program.instructions[i]
                    if i in self.site_by_lea:
                        leas.add(i)
                    if ins.is_call:
                        if ins.indirect:
                            poisoned = True
                        elif ins.operands \
                                and isinstance(ins.operands[0], Label):
                            name = ins.operands[0].name
                            if name not in _KEEP_CALLS:
                                t = program.labels.get(name)
                                if t is not None and t < n:
                                    callees.add(t)
            info[e] = [leas, callees, poisoned]
        changed = True
        while changed:
            changed = False
            for rec in info.values():
                for callee in rec[1]:
                    crec = info[callee]
                    if crec[2] and not rec[2]:
                        rec[2] = True
                        changed = True
                    if not crec[0] <= rec[0]:
                        rec[0] |= crec[0]
                        changed = True
        return {e: (None if rec[2] else frozenset(rec[0]))
                for e, rec in info.items()}

    # -- static per-instruction classification ------------------------------

    def _classify(self, i: int, ins: Instruction):
        m = ins.mnemonic
        site = self.site_by_lea.get(i)
        if site is not None:
            return ("site_lea", site, _RI[ins.operands[1].parent],
                    ins.operands[0])
        xsite = self.site_by_xor.get(i)
        if xsite is not None:
            return ("site_xor", xsite, _RI[ins.operands[1].parent])
        point = self.translate_points.get(i)
        if point is not None:
            return ("xlate", _RI[point.dest])

        # hostile writes into spill-slot memory that are not the
        # rewriter's save idiom invalidate the tracked contents
        if ins.memory_access_kind() in ("write", "rw") and not is_spill_save(ins):
            mem = ins.memory_operand()
            if mem is not None and mem.symbol is not None \
                    and mem.symbol.startswith(_SPILL_PREFIX):
                key = mem.symbol if mem.base is None and mem.index is None \
                    else None
                return ("spill_clobber", key,
                        tuple(_RI[r] for r in ins.registers_written()))

        if is_spill_save(ins):
            return ("spill_save", _RI[ins.operands[0].parent],
                    ins.operands[1].symbol)
        if is_spill_restore(ins):
            return ("spill_load", ins.operands[0].symbol,
                    _RI[ins.operands[1].parent])

        if ins.is_call:
            target = None
            if not ins.indirect and ins.operands \
                    and isinstance(ins.operands[0], Label):
                target = ins.operands[0].name
            if target in _KEEP_CALLS:
                return ("nop",)
            internal = target is not None and target in self.program.labels
            if target in AUDITED_IMPORTS and not internal:
                return ("call_audited", i)
            if ins.indirect or target is None:
                reached = None          # control may land anywhere
            elif internal:
                reached = self.call_reach.get(self.program.labels[target])
            else:
                # non-audited import (memcpy_support and friends): runs no
                # driver code, so no anchor can be re-executed, but it may
                # write slots or arbitrary caller-chosen memory
                reached = _EMPTY_AVAIL
            return ("call", i, reached)
        if m == "ret":
            return ("esp_shift", 4, i)
        if m in ("push", "pushf"):
            return ("esp_shift", -4, i)
        if m == "popf":
            return ("esp_shift", 4, i)
        if m == "pop":
            dst = ins.dst
            if isinstance(dst, Reg):
                return ("pop", _RI[dst.parent], i)
            return ("esp_shift", 4, i)

        if m == "lea":
            return ("lea", ins.operands[0], _RI[ins.operands[1].parent])

        if m == "mov":
            src, dst = ins.operands
            if isinstance(dst, Reg):
                if ins.size < 4:
                    return ("fresh", (_RI[dst.parent],))
                if isinstance(src, Reg):
                    return ("mov_rr", _RI[src.parent], _RI[dst.parent])
                if isinstance(src, Imm) and src.symbol is None:
                    return ("mov_iv", ("I", src.value & M32, src.value & M32),
                            _RI[dst.parent])
                return ("fresh", (_RI[dst.parent],))
            return ("nop",)
        if m in ("movzb", "movzw"):
            if isinstance(ins.dst, Reg):
                bound = 0xFF if m == "movzb" else 0xFFFF
                return ("mov_iv", ("I", 0, bound), _RI[ins.dst.parent])
            return ("nop",)

        if m in ("add", "sub", "inc", "dec"):
            dst = ins.dst
            if not isinstance(dst, Reg):
                return ("nop",)
            d = _RI[dst.parent]
            if m in ("inc", "dec"):
                return ("shift", d, 1 if m == "inc" else -1)
            src = ins.src
            if isinstance(src, Imm) and src.symbol is None:
                sv = _signed32(src.value)
                return ("shift", d, sv if m == "add" else -sv)
            if isinstance(src, Reg):
                return ("addsub_rr", _RI[src.parent], d,
                        1 if m == "add" else -1)
            return ("fresh", (d,))
        if m == "and":
            dst = ins.dst
            if isinstance(dst, Reg):
                src = ins.src
                if isinstance(src, Imm) and src.symbol is None:
                    return ("mov_iv", ("I", 0, src.value & M32),
                            _RI[dst.parent])
                return ("fresh", (_RI[dst.parent],))
            return ("nop",)
        if m == "xor":
            src, dst = ins.src, ins.dst
            if isinstance(dst, Reg):
                if isinstance(src, Reg) and src.parent == dst.parent \
                        and ins.size == 4:
                    return ("mov_iv", ("I", 0, 0), _RI[dst.parent])
                return ("fresh", (_RI[dst.parent],))
            return ("nop",)
        if m in ("shl", "shr", "sar"):
            dst = ins.dst
            if isinstance(dst, Reg):
                src = ins.src
                if m != "sar" and isinstance(src, Imm) and src.symbol is None \
                        and 0 <= src.value < 32:
                    return ("shiftop", m, src.value, _RI[dst.parent])
                return ("fresh", (_RI[dst.parent],))
            return ("nop",)
        if m == "xchg":
            ops = ins.operands
            if len(ops) == 2 and isinstance(ops[0], Reg) \
                    and isinstance(ops[1], Reg) and ins.size == 4:
                return ("xchg", _RI[ops[0].parent], _RI[ops[1].parent])
            written = tuple(_RI[r] for r in ins.registers_written())
            return ("fresh", written) if written else ("nop",)

        written = tuple(_RI[r] for r in ins.registers_written())
        if written:
            return ("fresh", written)
        return ("nop",)

    # -- transfer helpers ---------------------------------------------------

    def _fresh(self, i: int, state, targets):
        """Redefine ``targets`` with fresh def-point bases, sweeping every
        stale occurrence of those bases out of the rest of the state."""
        regs, avail, slots = state
        bases = frozenset(("def", i, GPRS[t]) for t in targets)
        regs = list(regs)
        for j in range(_NREGS):
            v = regs[j]
            if v[0] in ("S", "X") and v[1] in bases:
                regs[j] = TOP
        for t in targets:
            regs[t] = ("S", ("def", i, GPRS[t]), 0, 0)
        if slots and any(v[0] in ("S", "X") and v[1] in bases
                         for _, v in slots):
            slots = tuple((k, v) for k, v in slots
                          if not (v[0] in ("S", "X") and v[1] in bases))
        if avail and any(f[1] in bases for f in avail):
            avail = frozenset(f for f in avail if f[1] not in bases)
        return (tuple(regs), avail, slots)

    @staticmethod
    def _sweep_origin(regs, slots, origin):
        """Demote stale copies of translated-pointer ``origin`` before it
        is rebound by a re-executing site xor / translate point."""
        if any(v[0] == "X" and v[1] == origin for v in regs):
            regs = [TOP if (v[0] == "X" and v[1] == origin) else v
                    for v in regs]
        if slots and any(v[0] == "X" and v[1] == origin for _, v in slots):
            slots = tuple((k, v) for k, v in slots
                          if not (v[0] == "X" and v[1] == origin))
        return regs, slots

    def eval_mem(self, regs, mem: Mem):
        """Abstract value of a memory operand's effective address."""
        if mem.symbol is not None:
            # a bare symbol reference is a link-time constant: a perfectly
            # good (never-rebound) symbolic base for anchoring
            if mem.base is None and mem.index is None:
                disp = _signed32(mem.disp)
                return ("S", ("sym", mem.symbol), disp, disp)
            return TOP
        if mem.base is not None:
            value = regs[_RI[mem.base]]
        else:
            value = ("I", 0, 0)
        disp = _signed32(mem.disp)
        if disp:
            value = value_shift(value, disp, disp)
        if mem.index is not None:
            iv = regs[_RI[mem.index]]
            if iv[0] != "I":
                return TOP
            value = value_shift(value, iv[1] * mem.scale, iv[2] * mem.scale)
        return value

    def addr_parts(self, regs, mem: Mem):
        """Decompose an effective address as ``env(base) + const +
        index*scale`` with an exactly-known constant part and the variable
        part carried by the operand's own index register (whose abstract
        value must be an interval). Returns ``(base, const, index, scale,
        ilo, ihi)`` or ``None``."""
        if mem.symbol is not None:
            if mem.base is None and mem.index is None:
                disp = _signed32(mem.disp)
                return (("sym", mem.symbol), disp, None, 1, 0, 0)
            return None
        if mem.base is None:
            return None
        bv = regs[_RI[mem.base]]
        if bv[0] != "S" or bv[2] != bv[3]:
            return None
        const = bv[2] + _signed32(mem.disp)
        if mem.index is None:
            return (bv[1], const, None, 1, 0, 0)
        iv = regs[_RI[mem.index]]
        if iv[0] != "I":
            return None
        return (bv[1], const, mem.index, mem.scale, iv[1], iv[2])

    # -- the transfer function ----------------------------------------------

    def transfer(self, i: int, state):
        op = self.ops[i]
        kind = op[0]
        if kind == "nop":
            return state
        regs, avail, slots = state

        # register-keyed facts assert "this register is unchanged since
        # site A's check": any write to the register retires them
        kills = self.reg_kills[i]
        if avail and kills and any(
                f[1][0] == "reg"
                and (f[1][1] in kills
                     or (f[1][2] is not None and f[1][2] in kills))
                for f in avail):
            avail = frozenset(
                f for f in avail
                if not (f[1][0] == "reg"
                        and (f[1][1] in kills
                             or (f[1][2] is not None
                                 and f[1][2] in kills))))
            state = (regs, avail, slots)

        if kind == "mov_rr":
            value = regs[op[1]]
            if regs[op[2]] == value:
                return state
            regs = list(regs)
            regs[op[2]] = value
            return (tuple(regs), avail, slots)

        if kind == "mov_iv":
            if regs[op[2]] == op[1]:
                return state
            regs = list(regs)
            regs[op[2]] = op[1]
            return (tuple(regs), avail, slots)

        if kind == "shift":
            d = op[1]
            value = value_shift(regs[d], op[2], op[2])
            if value == TOP:
                return self._fresh(i, state, (d,))
            regs = list(regs)
            regs[d] = value
            return (tuple(regs), avail, slots)

        if kind == "fresh":
            return self._fresh(i, state, op[1])

        if kind == "site_lea":
            site, d, mem = op[1], op[2], op[3]
            addr = self.eval_mem(regs, mem)
            if avail and any(f[0] == site.lea for f in avail):
                avail = frozenset(f for f in avail if f[0] != site.lea)
            gen = []
            if addr[0] == "S" and addr[2] == addr[3]:
                gen.append((site.lea, addr[1], addr[2]))
            if mem.symbol is None and mem.base is not None \
                    and mem.base != GPRS[d] \
                    and (mem.index is None or mem.index != GPRS[d]):
                # register-keyed fact: checked address = current(base)
                # [+ current(index)*scale] + disp (sound even when the
                # registers' abstract values are unknown)
                gen.append((site.lea,
                            ("reg", mem.base, mem.index,
                             mem.scale if mem.index is not None else 1),
                            _signed32(mem.disp)))
            if gen:
                avail = avail | frozenset(gen)
            if addr == TOP:
                return self._fresh(i, (regs, avail, slots), (d,))
            regs = list(regs)
            regs[d] = addr
            return (tuple(regs), avail, slots)

        if kind == "lea":
            addr = self.eval_mem(regs, op[1])
            if addr == TOP:
                return self._fresh(i, state, (op[2],))
            regs = list(regs)
            regs[op[2]] = addr
            return (tuple(regs), avail, slots)

        if kind == "site_xor":
            site, r2 = op[1], op[2]
            origin = ("site", site.lea)
            regs, slots = self._sweep_origin(regs, slots, origin)
            regs = list(regs)
            regs[r2] = ("X", origin, 0, 0)
            return (tuple(regs), avail, slots)

        if kind == "xlate":
            origin = ("xlate", i)
            regs, slots = self._sweep_origin(regs, slots, origin)
            regs = list(regs)
            regs[op[1]] = ("X", origin, 0, 0)
            return (tuple(regs), avail, slots)

        if kind == "call":
            # Non-helper call: the toy ABI lets the callee clobber
            # eax/ecx/edx; it may also spill over the tracked slots and
            # rebind any definition point it contains, so slots and
            # base-keyed facts do not survive. Register-keyed facts on
            # callee-saved registers do — the same preservation contract
            # the value tracking already relies on — provided the callee
            # cannot transitively re-execute the fact's anchor site
            # (op[2] is the summary; None means unbounded).
            reached = op[2]
            if avail and reached is not None:
                avail = frozenset(
                    f for f in avail
                    if f[1][0] == "reg" and f[1][1] in _CALLEE_SAVED
                    and (f[1][2] is None or f[1][2] in _CALLEE_SAVED)
                    and f[0] not in reached)
            else:
                avail = _EMPTY_AVAIL
            state = (regs, avail, ())
            return self._fresh(op[1], state, (_RI["eax"], _RI["ecx"],
                                              _RI["edx"]))

        if kind == "call_audited":
            # audited imported native (see AUDITED_IMPORTS): ABI scratch
            # clobber only — facts and slots survive
            return self._fresh(op[1], state, (_RI["eax"], _RI["ecx"],
                                              _RI["edx"]))

        if kind == "esp_shift":
            esp = _RI["esp"]
            value = value_shift(regs[esp], op[1], op[1])
            if value == TOP:
                return self._fresh(op[2], state, (esp,))
            regs = list(regs)
            regs[esp] = value
            return (tuple(regs), avail, slots)

        if kind == "pop":
            d, pop_i = op[1], op[2]
            esp = _RI["esp"]
            if d == esp:
                return self._fresh(pop_i, state, (esp,))
            regs = list(regs)
            regs[esp] = value_shift(regs[esp], 4, 4)
            return self._fresh(pop_i, (tuple(regs), avail, slots), (d,))

        if kind == "addsub_rr":
            s, d, sign = op[1], op[2], op[3]
            sv, dv = regs[s], regs[d]
            if sv[0] == "I":
                lo, hi = ((sv[1], sv[2]) if sign > 0 else (-sv[2], -sv[1]))
                value = value_shift(dv, lo, hi)
            elif sign > 0 and dv[0] == "I":
                value = value_shift(sv, dv[1], dv[2])
            else:
                value = TOP
            if value == TOP:
                return self._fresh(i, state, (d,))
            regs = list(regs)
            regs[d] = value
            return (tuple(regs), avail, slots)

        if kind == "shiftop":
            m, amount, d = op[1], op[2], op[3]
            v = regs[d]
            if v[0] == "I":
                if m == "shr":
                    value = ("I", v[1] >> amount, v[2] >> amount)
                else:                                  # shl
                    lo, hi = v[1] << amount, v[2] << amount
                    value = ("I", lo, hi) if hi <= M32 else TOP
            else:
                value = TOP
            if value == TOP:
                return self._fresh(i, state, (d,))
            regs = list(regs)
            regs[d] = value
            return (tuple(regs), avail, slots)

        if kind == "spill_save":
            s, key = op[1], op[2]
            value = regs[s]
            new = tuple(sorted(
                [(k, v) for k, v in slots if k != key] + [(key, value)]))
            # register-keyed facts follow the value into the slot: the
            # fact's checked address is now reachable from the slot too
            if avail:
                src = GPRS[s]
                twins = frozenset(
                    (f[0], ("slot", key), f[2]) for f in avail
                    if f[1] == ("reg", src, None, 1))
                avail = frozenset(
                    f for f in avail if f[1] != ("slot", key)) | twins
            return (regs, avail, new)

        if kind == "spill_load":
            key, d = op[1], op[2]
            # a slot-keyed fact rides the restore back into the register
            # (the prologue above already retired the stale reg facts)
            if avail:
                twins = frozenset(
                    (f[0], ("reg", GPRS[d], None, 1), f[2]) for f in avail
                    if f[1] == ("slot", key))
                if twins:
                    avail = avail | twins
            for k, v in slots:
                if k == key:
                    if regs[d] == v and avail == state[1]:
                        return state
                    regs = list(regs)
                    regs[d] = v
                    return (tuple(regs), avail, slots)
            # first restore from an untracked slot: memoize a fresh base
            # so later restores of the same (unwritten) slot share it
            state = self._fresh(i, (regs, avail, slots), (d,))
            regs, avail, slots = state
            new = tuple(sorted(list(slots) + [(key, regs[d])]))
            return (regs, avail, new)

        if kind == "spill_clobber":
            key, written = op[1], op[2]
            if key is None:
                slots = ()
                if avail:
                    avail = frozenset(f for f in avail
                                      if f[1][0] != "slot")
            else:
                slots = tuple((k, v) for k, v in slots if k != key)
                if avail:
                    avail = frozenset(f for f in avail
                                      if f[1] != ("slot", key))
            state = (regs, avail, slots)
            return self._fresh(i, state, written) if written else state

        if kind == "xchg":
            a, b = op[1], op[2]
            regs = list(regs)
            regs[a], regs[b] = regs[b], regs[a]
            return (tuple(regs), avail, slots)

        raise AssertionError(f"unhandled op {op!r}")     # pragma: no cover


# ---------------------------------------------------------------------------
# analysis driver + proof derivation
# ---------------------------------------------------------------------------


def analyze_program(program: Program,
                    sites: Optional[Sequence[SvmSite]] = None,
                    translate_points: Optional[Dict[int, TranslatePoint]] = None,
                    entries: Optional[Sequence[int]] = None,
                    cfg: Optional[ControlFlowGraph] = None) -> AbsintResult:
    """Run the abstract interpretation and derive elision proofs.

    ``entries`` are entry instruction indices (exported symbols plus
    direct call targets, as in the verifier); each is seeded with a
    fully-symbolic register file.
    """
    if sites is None:
        sites = find_fastpath_sites(program)
    if translate_points is None:
        translate_points = find_translate_points(program)
    if entries is None:
        entries = [index for index in program.labels.values()
                   if index < len(program.instructions)]
    analyzer = _Analyzer(program, sites, translate_points, cfg=cfg)
    in_states = solve_forward(
        program,
        entries=entries,
        entry_state=entry_state,
        transfer=analyzer.transfer,
        join=join_state,
        widen=widen_state,
        cfg=analyzer.cfg,
    )
    result = AbsintResult(in_states=in_states, sites=list(sites),
                          translate_points=translate_points)

    # An indirect jmp makes the CFG's successor sets conservative in a way
    # the fact lattice cannot absorb (control may materialize at any label
    # with any history), so proofs are renounced wholesale. The rewriter
    # never emits one; hostile binaries simply get no elision.
    if any(ins.mnemonic == "jmp" and ins.indirect
           for ins in program.instructions):
        result.proofs_suppressed = True
        return result

    by_lea = {site.lea: site for site in sites}
    proofs: List[ProofAnnotation] = []
    for site in sorted(sites, key=lambda s: s.lea):
        state = in_states[site.lea]
        if state is None:
            continue
        regs, avail, _ = state
        mem = site.mem
        size = max(1, program.instructions[site.access].size)
        parts = analyzer.addr_parts(regs, mem)
        bare = mem.symbol is None and mem.base is not None
        idx_iv = None
        if bare and mem.index is not None:
            iv = regs[_RI[mem.index]]
            if iv[0] == "I":
                idx_iv = (iv[1], iv[2])
        # each candidate is (delta, span_lo, span_hi, index, scale): the
        # access address is anchor + delta [+ index*scale], and the whole
        # span [span_lo, span_hi] must fit the forward pair window
        best = None                       # (anchor_lea, delta, index, scale)
        for fact in avail:
            if fact[0] == site.lea or fact[0] not in by_lea:
                continue
            key = fact[1]
            if key[0] == "slot":
                continue
            if key[0] == "reg":
                if not bare or mem.base != key[1]:
                    continue
                delta = _signed32(mem.disp) - fact[2]
                if key[2] is not None:
                    # indexed fact: the index term cancels when the site
                    # uses the identical index expression
                    if mem.index != key[2] or mem.scale != key[3]:
                        continue
                    cand = (delta, delta, delta, None, 1)
                elif mem.index is None:
                    cand = (delta, delta, delta, None, 1)
                elif idx_iv is not None:
                    cand = (delta, delta + mem.scale * idx_iv[0],
                            delta + mem.scale * idx_iv[1],
                            mem.index, mem.scale)
                else:
                    continue
            else:
                if parts is None or key != parts[0]:
                    continue
                _, const, pidx, pscale, ilo, ihi = parts
                delta = const - fact[2]
                cand = (delta, delta + pscale * ilo, delta + pscale * ihi,
                        pidx, pscale)
            delta, lo, hi, pindex, pscale = cand
            if 0 <= lo and hi + size <= PAGE_SIZE:
                if best is None or fact[0] < best[0]:
                    best = (fact[0], delta, pindex, pscale)
        if best is not None:
            proofs.append(ProofAnnotation(
                site_lea=site.lea, access=site.access, anchor_lea=best[0],
                delta=best[1], size=size, index=best[2], scale=best[3]))
    result.proven_leas = {p.site_lea for p in proofs}

    # anchor-conflict resolution: a site used as an anchor must keep its
    # full fast path materialized (it is what stores the translation), so
    # its own elision proof is dropped; iterate to a fixpoint.
    while True:
        anchors = {p.anchor_lea for p in proofs}
        kept = [p for p in proofs if p.site_lea not in anchors]
        if len(kept) == len(proofs):
            break
        proofs = kept
    result.proofs = proofs
    return result


# ---------------------------------------------------------------------------
# the range and provenance passes
# ---------------------------------------------------------------------------


def _site_by_lea(result: AbsintResult) -> Dict[int, SvmSite]:
    cached = getattr(result, "_by_lea", None)
    if cached is None:
        cached = {site.lea: site for site in result.sites}
        result._by_lea = cached
    return cached


def translated_address(result: AbsintResult, index: int,
                       mem: Mem) -> bool:
    """True when the effective address of ``mem`` at ``index`` is provably
    a translated pointer (possibly offset). The svm pass delegates such
    accesses to the range pass instead of reporting a generic miss."""
    state = result.in_states[index]
    if state is None or mem.symbol is not None or mem.base is None:
        return False
    return _addr_value(result, state, mem)[0] == "X"


def range_pass(program: Program, report, result: AbsintResult,
               sanctioned: Set[int]):
    """Prove translated-pointer accesses stay inside their 2-page SVM
    pair mapping. Sanctioned fast-path accesses get elision proofs (the
    positive side); unsanctioned accesses whose address is a translated
    pointer walked by a constant offset are flagged when the offset can
    leave the pair window (the hostile side — the svm pass delegates
    these instead of reporting a generic miss)."""
    stats = report.pass_stats("range")
    stats["sites_total"] = len(result.sites)
    stats["sites_proven"] = len(result.proven_leas)
    stats["sites_elided"] = len(result.proofs)
    checked = 0
    for i, ins in enumerate(program.instructions):
        if i in sanctioned or ins.is_string:
            continue
        if ins.memory_access_kind() is None:
            continue
        mem = ins.memory_operand()
        if mem is None or mem.symbol is not None or mem.is_stack_relative:
            continue
        state = result.in_states[i]
        if state is None:
            continue
        addr = _addr_value(result, state, mem)
        if addr[0] != "X":
            continue
        checked += 1
        size = max(1, ins.size)
        lo, hi = addr[2], addr[3]
        if lo < 0:
            report.add("range", i,
                       f"translated-pointer access {ins.format()!r} may "
                       f"underflow its SVM mapping (offset as low as {lo})",
                       key="range.underflow")
        elif hi + size > PAGE_SIZE:
            report.add("range", i,
                       f"translated-pointer access {ins.format()!r} may "
                       f"cross its 2-page SVM mapping (offset up to "
                       f"{hi} + {size})",
                       key="range.cross_page")
    stats["translated_offset_accesses"] = checked


def _addr_value(result: AbsintResult, state, mem: Mem):
    regs = state[0]
    if mem.symbol is not None or mem.base is None:
        return TOP
    value = regs[_RI[mem.base]]
    disp = _signed32(mem.disp)
    if disp:
        value = value_shift(value, disp, disp)
    if mem.index is not None:
        iv = regs[_RI[mem.index]]
        if iv[0] != "I":
            return TOP
        value = value_shift(value, iv[1] * mem.scale, iv[2] * mem.scale)
    return value


# ---------------------------------------------------------------------------
# the provenance pass
# ---------------------------------------------------------------------------

#: ALU forms that legitimately adjust a translated pointer (constant
#: walks); everything else operating on one is address forgery.
_PROV_ALLOWED_ALU = frozenset(("add", "sub", "inc", "dec"))


def provenance_pass(program: Program, report, result: AbsintResult,
                    sanctioned: Set[int]):
    """Catch hostile flows the pattern matcher cannot see: translated
    pointers laundered into guest-visible memory, arithmetic that forges
    dom0 addresses from them, and translation results fed back through
    the translation machinery."""
    stats = report.pass_stats("provenance")
    flagged = 0

    def is_x(index: int, reg: str) -> bool:
        return result.reg_value(index, reg)[0] == "X"

    for i, ins in enumerate(program.instructions):
        state = result.in_states[i]
        if state is None:
            continue

        # -- leak: a translated (hypervisor) pointer stored to memory the
        # guest can read back. Stack and spill-slot stores stay private.
        if ins.memory_access_kind() in ("write", "rw") \
                and ins.mnemonic == "mov":
            mem = ins.memory_operand()
            src = ins.operands[0]
            if (mem is not None and mem is ins.dst
                    and not mem.is_stack_relative
                    and not (mem.symbol is not None
                             and mem.symbol.startswith(_SPILL_PREFIX))
                    and isinstance(src, Reg) and is_x(i, src.parent)):
                report.add("provenance", i,
                           f"translated pointer %{src.parent} leaks to "
                           f"driver-reachable memory: {ins.format()!r}",
                           key="provenance.leak")
                flagged += 1
                continue

        # -- forge: non-walk arithmetic on a translated pointer
        if ins.mnemonic in ("and", "or", "xor", "imul", "shl", "shr",
                            "sar", "neg", "not"):
            if i in sanctioned:
                continue
            touched = [r for r in ins.registers_read() | ins.registers_written()
                       if is_x(i, r)]
            if ins.mnemonic == "xor" and isinstance(ins.src, Reg) \
                    and isinstance(ins.dst, Reg) \
                    and ins.src.parent == ins.dst.parent:
                touched = []            # self-xor only clears the register
            if touched:
                report.add("provenance", i,
                           f"address-forging arithmetic on translated "
                           f"pointer %{touched[0]}: {ins.format()!r}",
                           key="provenance.forge")
                flagged += 1
                continue
        if ins.mnemonic in ("add", "sub") and isinstance(ins.dst, Reg) \
                and isinstance(ins.src, Reg):
            sx = is_x(i, ins.src.parent)
            dx = is_x(i, ins.dst.parent)
            if sx or dx:
                # the only benign forms walk a translated pointer by a
                # bounded interval; everything else (pointer-pointer
                # arithmetic, subtracting a translation, adding an
                # unbounded value) forges or reveals dom0 addresses
                other = ins.dst.parent if sx else ins.src.parent
                walk = (not (sx and dx)
                        and result.reg_value(i, other)[0] == "I"
                        and not (ins.mnemonic == "sub" and sx))
                if not walk:
                    report.add("provenance", i,
                               f"address-forging arithmetic on translated "
                               f"pointer: {ins.format()!r}",
                               key="provenance.forge")
                    flagged += 1
                    continue

        # -- retranslate: a translation result fed back through the stlb
        # machinery (a second mapping forged from a hypervisor address)
        point = result.translate_points.get(i)
        if point is not None:
            push_index = i - 3
            if push_index >= 0 and is_x(push_index, point.source):
                report.add("provenance", i,
                           f"already-translated pointer %{point.source} "
                           f"passed to {TRANSLATE_SYMBOL}",
                           key="provenance.retranslate")
                flagged += 1
                continue
        site = _site_by_lea(result).get(i)
        if site is not None:
            addr = _addr_value(result, state, site.mem) \
                if site.mem.symbol is None else TOP
            if addr[0] == "X":
                report.add("provenance", i,
                           "already-translated pointer fed back through "
                           "an stlb fast-path check",
                           key="provenance.retranslate")
                flagged += 1

    stats["flagged"] = flagged
