"""Static driver-binary verification (load-time safety checks).

The analysis package proves — without running it — that a rewritten
driver binary upholds the SVM isolation contract: every memory access is
mediated, control flow is contained, the stack is disciplined, and the
instrumentation itself clobbers nothing live. The hypervisor loader
refuses binaries that fail (``repro.core.loader``); the lint CLI
(``python -m repro.analysis.lint``) runs the same checks standalone.
"""

from .absint import (
    AbsintResult,
    ProofAnnotation,
    analyze_program,
    value_contains,
)
from .corpus import CorpusEntry, build_negative_corpus
from .dataflow import solve_forward
from .patterns import (
    SvmSite,
    StackCheckSite,
    TranslatePoint,
    find_fastpath_sites,
    find_stack_check_sites,
    find_translate_points,
)
from .report import Finding, VerificationError, VerifyReport
from .verifier import verify_program

__all__ = [
    "AbsintResult",
    "CorpusEntry",
    "Finding",
    "ProofAnnotation",
    "StackCheckSite",
    "SvmSite",
    "TranslatePoint",
    "VerificationError",
    "VerifyReport",
    "analyze_program",
    "build_negative_corpus",
    "find_fastpath_sites",
    "find_stack_check_sites",
    "find_translate_points",
    "solve_forward",
    "value_contains",
    "verify_program",
]
