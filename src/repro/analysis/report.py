"""Verification findings and the per-binary :class:`VerifyReport`.

The verifier never raises on a bad binary — it returns a report listing
every violation with a precise instruction index, in the style of the eBPF
verifier's log. :class:`VerificationError` is raised by the *loader* when
it refuses to load a binary whose report is not clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Finding:
    """One verification violation, anchored to an instruction index."""

    passname: str       # 'svm' | 'stack' | 'flow' | 'clobber' | 'range' | ...
    index: int          # instruction index in the verified program
    message: str
    severity: str = "error"      # 'error' rejects the binary; 'note' doesn't
    #: stable machine-readable finding class, e.g. "range.cross_page";
    #: empty for the original passes' free-form diagnostics
    key: str = ""

    def format(self) -> str:
        tag = f" <{self.key}>" if self.key else ""
        return f"[{self.passname}] @{self.index}:{tag} {self.message}"


@dataclass
class VerifyReport:
    """The outcome of statically verifying one rewritten driver binary."""

    program_name: str
    mode: str                               # 'annotated' | 'hostile'
    findings: List[Finding] = field(default_factory=list)
    #: per-pass statistics, e.g. stats['svm']['fast_path_sites']
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    instructions: int = 0
    #: per-site elision proofs from the range pass
    #: (:class:`repro.analysis.absint.ProofAnnotation`); the loader may
    #: consume these to elide proven stlb re-checks
    proofs: List = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding survived: safe to load."""
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def add(self, passname: str, index: int, message: str,
            severity: str = "error", key: str = ""):
        self.findings.append(Finding(passname, index, message, severity, key))

    def pass_stats(self, passname: str) -> Dict[str, int]:
        return self.stats.setdefault(passname, {})

    def format(self) -> str:
        verdict = "PASS" if self.ok else "REJECT"
        lines = [
            f"verify {self.program_name}: {verdict} "
            f"({self.instructions} instructions, {self.mode} mode, "
            f"{len(self.errors)} violation(s))"
        ]
        for passname in sorted(self.stats):
            stats = self.stats[passname]
            body = ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))
            lines.append(f"  {passname}: {body}")
        for finding in self.sorted_findings():
            lines.append("  " + finding.format())
        return "\n".join(lines)

    def sorted_findings(self) -> List[Finding]:
        """Findings in the stable CI-diffable order: different passes
        reporting on the same instruction used to tie-break by insertion
        order, which varied across runs."""
        return sorted(self.findings,
                      key=lambda f: (f.index, f.passname, f.key, f.message))


class VerificationError(Exception):
    """The hypervisor refused to load a driver binary that failed (or
    skipped) static verification."""

    def __init__(self, report: VerifyReport):
        first = report.errors[0].format() if report.errors else "no findings"
        super().__init__(
            f"driver binary {report.program_name!r} failed static "
            f"verification ({len(report.errors)} violation(s); first: "
            f"{first})"
        )
        self.report = report
