"""Static verification of rewritten driver binaries.

Seven passes over a rewritten :class:`~repro.isa.program.Program`, in the
spirit of the eBPF verifier — the hypervisor proves the binary safe to run
instead of trusting the rewriter that produced it:

* **svm** — SVM completeness: every memory access is stack-relative with a
  constant offset, targets an ``__svm_*`` runtime slot under the read/write
  policy, is the translated output of a recognized fast-path / stack-check
  sequence, or (for string ops) runs with must-TRANSLATED pointers as
  established by a forward dataflow over ``__svm_translate`` results.
* **flow** — control-flow containment: direct branches stay inside the
  program, indirect calls/jumps are routed through ``__stlb_call_xlate``,
  and no label lets execution enter the middle of an instrumentation
  sequence (which would bypass the check that makes it safe).
* **stack** — abstract interpretation of the stack pointer per function:
  push/pop balance at every ``ret``, agreeing depths at joins, a bounded
  frame, no untracked writes to ``esp``, and (with ``protect_stack``) no
  stores that leak the stack pointer into driver-reachable memory.
* **clobber** — an independent liveness recomputation on the *rewritten*
  binary cross-checks the rewriter's scratch-register and ``pushf`` choices:
  a scratch register the sequence does not restore must be dead afterwards,
  and the condition codes must not be live across an unwrapped sequence.
* **range** — value-tracking abstract interpretation
  (:mod:`repro.analysis.absint`): proves per-site that a translated
  pointer's constant-offset accesses stay inside their 2-page SVM pair
  mapping (emitting elision :class:`~repro.analysis.absint.ProofAnnotation`
  records on the report), and flags translated-pointer walks that can
  leave the window.
* **provenance** — hostile flows the pattern matcher cannot see:
  translated pointers laundered into guest-reachable memory, arithmetic
  that forges dom0 addresses, translation results fed back through the
  translation machinery.
* **locks** — lockset/reentrancy discipline as SMP groundwork:
  acquire/release balance on every control-flow path, checked trylock
  results, and no may-block support call while a spinlock is held. (The
  bounded SVM helpers are exempt — the slow path runs under driver locks
  by construction; "blocking" means the routines that can sleep or
  re-enter the scheduler.)

The verifier never executes the binary and never raises on violations; it
returns a :class:`VerifyReport` whose findings carry precise instruction
indices. With ``annotations`` from :class:`~repro.core.rewriter.RewriteStats`
it additionally cross-checks each annotation against an independently
matched site ("annotated" mode); without them it runs exactly the same
safety passes on the bare binary ("hostile" mode).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.rewriter import (
    CALL_XLATE_SYMBOL,
    RET_SLOT_SYMBOL,
    SLOW_PATH_SYMBOL,
    STACK_FAULT_SYMBOL,
    STACK_HI_SYMBOL,
    STACK_LO_SYMBOL,
    STLB_SYMBOL,
    TRANSLATE_SYMBOL,
    SiteAnnotation,
)
from ..isa.cfg import ControlFlowGraph
from ..isa.instructions import (
    STRING_IMPLICIT_READS,
    STRING_IMPLICIT_WRITES,
    Instruction,
)
from ..isa.liveness import LivenessAnalysis
from ..isa.operands import Imm, Label, Mem, Reg
from ..isa.program import Program
from .absint import (
    AbsintResult,
    analyze_program,
    provenance_pass,
    range_pass,
    translated_address,
)
from .dataflow import solve_forward
from .patterns import (
    _SPILL_PREFIX,
    SvmSite,
    StackCheckSite,
    TranslatePoint,
    find_fastpath_sites,
    find_stack_check_sites,
    find_translate_points,
    is_routed_indirect,
    is_spill_restore,
    is_spill_save,
)
from .report import VerifyReport

#: Runtime data slots the driver may read but never write.
READ_ONLY_SLOTS = (RET_SLOT_SYMBOL, STACK_LO_SYMBOL, STACK_HI_SYMBOL)

#: Runtime helpers that preserve all registers (results come back through
#: the ``__svm_ret`` slot) — the register-clobber ABI does not apply.
PRESERVING_HELPERS = frozenset(
    (SLOW_PATH_SYMBOL, TRANSLATE_SYMBOL, CALL_XLATE_SYMBOL)
)

#: Largest stack frame (bytes below function-entry esp) the verifier
#: accepts; the hypervisor's per-instance driver stack is small.
FRAME_LIMIT = 4096


def _direct_call_target(ins: Instruction) -> Optional[str]:
    if ins.is_call and not ins.indirect and ins.operands \
            and isinstance(ins.operands[0], Label):
        return ins.operands[0].name
    return None


def _function_entries(program: Program) -> List[Tuple[str, int]]:
    """Entry points for per-function analyses: exported symbols plus every
    defined direct call target."""
    n = len(program.instructions)
    entries: Dict[int, str] = {}
    for name in program.globals_:
        index = program.labels.get(name)
        if index is not None and index < n:
            entries.setdefault(index, name)
    for ins in program.instructions:
        target = _direct_call_target(ins)
        if target is not None:
            index = program.labels.get(target)
            if index is not None and index < n:
                entries.setdefault(index, target)
    return sorted(((name, index) for index, name in entries.items()),
                  key=lambda e: e[1])


# ---------------------------------------------------------------------------
# TRANSLATED-pointer forward dataflow
# ---------------------------------------------------------------------------


def _translated_in_states(program: Program,
                          translate_points: Dict[int, TranslatePoint],
                          entries: Sequence[Tuple[str, int]],
                          cfg: Optional[ControlFlowGraph] = None
                          ) -> List[FrozenSet[str]]:
    """For each instruction: the registers that *must* hold an
    ``__svm_translate`` result on every path reaching it.

    Forward must-analysis (meet = intersection) on the shared
    :func:`~repro.analysis.dataflow.solve_forward` engine. Seeded at the
    ``mov __svm_ret, dest`` of each matched translate quadruple; plain
    ``mov`` propagates; any other write kills; the register-preserving
    runtime helpers kill nothing; function entries start empty. Blocks no
    entry reaches come back as ``None`` and get the pessimistic empty set
    — dead code is still mappable (and reachable through a translated
    function pointer), so nothing in it may be sanctioned."""

    def transfer(i: int, state: FrozenSet[str]) -> FrozenSet[str]:
        ins = program.instructions[i]
        if ins.is_call:
            target = _direct_call_target(ins)
            if target in PRESERVING_HELPERS or target == STACK_FAULT_SYMBOL:
                return state
        new = state - ins.registers_written()
        point = translate_points.get(i)
        if point is not None:
            return new | {point.dest}
        if (ins.mnemonic == "mov" and ins.size == 4
                and isinstance(ins.operands[0], Reg)
                and isinstance(ins.operands[1], Reg)
                and ins.operands[0].parent in state):
            new = new | {ins.operands[1].parent}
        return new

    states = solve_forward(
        program,
        entries=[index for _, index in entries],
        entry_state=lambda start: frozenset(),
        transfer=transfer,
        join=lambda a, b: a & b,
        cfg=cfg,
    )
    return [frozenset() if state is None else state for state in states]


# ---------------------------------------------------------------------------
# Pass 1: SVM completeness
# ---------------------------------------------------------------------------


def _sanctioned_indices(program: Program, sites: List[SvmSite],
                        stack_sites: List[StackCheckSite],
                        translate_points: Dict[int, TranslatePoint],
                        routed: Set[int]) -> Set[int]:
    """Instruction indices inside recognized instrumentation sequences —
    their accesses are what the sequences exist to perform."""
    sanctioned: Set[int] = set()
    for site in sites:
        sanctioned.update(range(site.start, site.end + 1))
        slow = program.labels[site.slow_label]
        sanctioned.update(range(slow, slow + 4))
    for site in stack_sites:
        sanctioned.update(range(site.start, site.end + 1))
        sanctioned.add(program.labels[site.fault_label])
    sanctioned.update(translate_points)
    sanctioned.update(routed)
    return sanctioned


def _svm_pass(program: Program, report: VerifyReport, protect_stack: bool,
              sites: List[SvmSite], stack_sites: List[StackCheckSite],
              translate_points: Dict[int, TranslatePoint],
              routed: Set[int],
              translated_in: List[FrozenSet[str]],
              sanctioned: Set[int],
              absres: Optional[AbsintResult] = None):
    stats = report.pass_stats("svm")
    stats["fast_path_sites"] = len(sites)
    stats["stack_check_sites"] = len(stack_sites)
    stats["translate_points"] = len(translate_points)
    stats["routed_indirects"] = len(routed)

    for i, ins in enumerate(program.instructions):
        if ins.is_string:
            needed = set(STRING_IMPLICIT_READS[ins.mnemonic])
            needed |= set(STRING_IMPLICIT_WRITES[ins.mnemonic])
            needed -= {"eax"}  # data register, not a pointer
            missing = sorted(needed - translated_in[i])
            if missing:
                report.add("svm", i,
                           f"string op {ins.format()!r} runs with "
                           f"untranslated pointer(s) "
                           f"{', '.join('%' + r for r in missing)}")
            else:
                stats["string_accesses"] = stats.get("string_accesses", 0) + 1
            continue
        if ins.memory_access_kind() is None or i in sanctioned:
            continue
        mem = ins.memory_operand()
        kind = ins.memory_access_kind()
        if mem.symbol is not None:
            if mem.base is not None or mem.index is not None:
                report.add("svm", i,
                           f"indexed access to runtime symbol "
                           f"{mem.symbol!r} outside an SVM sequence")
            elif mem.symbol.startswith(_SPILL_PREFIX):
                stats["spill_accesses"] = stats.get("spill_accesses", 0) + 1
            elif mem.symbol in READ_ONLY_SLOTS:
                if kind == "read":
                    stats["slot_reads"] = stats.get("slot_reads", 0) + 1
                else:
                    report.add("svm", i,
                               f"write to read-only runtime slot "
                               f"{mem.symbol!r}")
            elif mem.symbol == STLB_SYMBOL:
                report.add("svm", i,
                           "direct stlb access outside an SVM sequence")
            else:
                report.add("svm", i,
                           f"access to unknown symbol {mem.symbol!r} "
                           f"does not go through the stlb")
            continue
        if mem.is_stack_relative:
            if mem.index is None:
                stats["stack_constant_accesses"] = (
                    stats.get("stack_constant_accesses", 0) + 1)
            elif protect_stack:
                report.add("svm", i,
                           f"variable-offset stack access "
                           f"{mem.format()!r} lacks a bounds check")
            else:
                stats["stack_variable_accesses"] = (
                    stats.get("stack_variable_accesses", 0) + 1)
            continue
        if (mem.base is not None and mem.index is None and mem.disp == 0
                and mem.base in translated_in[i]):
            stats["translated_accesses"] = (
                stats.get("translated_accesses", 0) + 1)
            continue
        if absres is not None and translated_address(absres, i, mem):
            # provably a translated pointer walked by an offset: the range
            # pass decides whether the walk can leave the SVM pair window
            stats["range_delegated"] = stats.get("range_delegated", 0) + 1
            continue
        report.add("svm", i,
                   f"memory access {ins.format()!r} does not go through "
                   f"the stlb")


# ---------------------------------------------------------------------------
# Pass 2: control-flow containment
# ---------------------------------------------------------------------------


def _flow_pass(program: Program, report: VerifyReport,
               sites: List[SvmSite], stack_sites: List[StackCheckSite],
               translate_points: Dict[int, TranslatePoint],
               routed: Set[int]):
    stats = report.pass_stats("flow")
    n = len(program.instructions)
    label_at: Dict[int, List[str]] = {}
    for name, index in program.labels.items():
        label_at.setdefault(index, []).append(name)

    for i, ins in enumerate(program.instructions):
        if ins.indirect:
            if i in routed:
                continue
            report.add("flow", i,
                       f"indirect {ins.mnemonic} not routed through "
                       f"{CALL_XLATE_SYMBOL}")
        elif ins.is_jump:
            op = ins.operands[0] if ins.operands else None
            target = program.labels.get(op.name) \
                if isinstance(op, Label) else None
            if target is None or target >= n:
                report.add("flow", i,
                           f"branch target "
                           f"{op.format() if op is not None else '?'} "
                           f"is outside the program")
            else:
                stats["direct_branches"] = stats.get("direct_branches", 0) + 1
        elif ins.is_call:
            target = _direct_call_target(ins)
            if target is None:
                report.add("flow", i, "call without a label target")
            elif target in program.labels:
                stats["internal_calls"] = stats.get("internal_calls", 0) + 1
            else:
                stats["imported_calls"] = stats.get("imported_calls", 0) + 1

    def check_no_entry(first: int, last: int, what: str,
                       allowed: Dict[int, str]):
        """No label may land in [first, last] except the allowed ones —
        a branch into the middle of ``what`` would bypass its check."""
        for index in range(first, last + 1):
            for name in label_at.get(index, ()):
                if allowed.get(index) == name:
                    continue
                report.add("flow", index,
                           f"label {name!r} lands inside {what}")

    for site in sites:
        check_no_entry(site.start + 1, site.end, "an SVM fast-path sequence",
                       {site.lea: site.retry_label})
        slow = program.labels[site.slow_label]
        check_no_entry(slow + 1, slow + 3, "an SVM slow-path block", {})
    for site in stack_sites:
        check_no_entry(site.start + 1, site.end,
                       "a stack bounds-check sequence", {})
    for point in translate_points.values():
        check_no_entry(point.index - 2, point.index,
                       "a translate helper sequence", {})
    for index in sorted(routed):
        check_no_entry(index - 2, index,
                       "an indirect-transfer routing sequence", {})


# ---------------------------------------------------------------------------
# Pass 3: stack discipline
# ---------------------------------------------------------------------------


def _esp_effect(ins: Instruction) -> Optional[int]:
    """Static esp delta (positive = stack grows) for the simple cases;
    None when the instruction needs bespoke handling."""
    if ins.mnemonic in ("push", "pushf"):
        return 4
    if ins.mnemonic in ("pop", "popf"):
        return -4
    return None


def _walk_function(program: Program, report: VerifyReport, name: str,
                   entry: int, protect_stack: bool) -> int:
    """Abstract-interpret one function: esp tracked as a byte delta below
    entry esp, ebp as either unknown or an esp snapshot. Returns the
    largest frame depth seen."""
    ins_list = program.instructions
    n = len(ins_list)
    seen: Dict[int, Tuple[int, Optional[int]]] = {}
    reported: Set[str] = set()
    max_depth = 0

    def complain(index: int, key: str, message: str):
        if key not in reported:
            reported.add(key)
            report.add("stack", index, f"{message} (function {name!r})")

    work: List[Tuple[int, int, Optional[int]]] = [(entry, 0, None)]
    while work:
        i, delta, ebp = work.pop()
        while True:
            if i >= n:
                complain(n - 1 if n else 0, "fall-off",
                         "execution falls off the end of the program")
                break
            if i in seen:
                prev_delta, prev_ebp = seen[i]
                if prev_delta != delta:
                    complain(i, f"join:{i}",
                             f"inconsistent stack depth at join "
                             f"({prev_delta} vs {delta} bytes)")
                break
            seen[i] = (delta, ebp)
            ins = ins_list[i]
            effect = _esp_effect(ins)
            if effect is not None:
                delta += effect
                if ins.mnemonic == "pop" and isinstance(ins.dst, Reg):
                    if ins.dst.parent == "esp":
                        complain(i, f"esp:{i}", "pop into esp loses tracking")
                        break
                    if ins.dst.parent == "ebp":
                        ebp = None
            elif ins.mnemonic == "mov" and isinstance(ins.dst, Reg):
                if ins.dst.parent == "esp":
                    if isinstance(ins.src, Reg) and ins.src.parent == "ebp" \
                            and ebp is not None:
                        delta = ebp
                    elif isinstance(ins.src, Reg) and ins.src.parent == "esp":
                        pass
                    else:
                        complain(i, f"esp:{i}",
                                 f"untracked write to esp: {ins.format()!r}")
                        break
                elif ins.dst.parent == "ebp":
                    ebp = delta if (isinstance(ins.src, Reg)
                                    and ins.src.parent == "esp") else None
            elif ins.mnemonic in ("add", "sub") and isinstance(ins.dst, Reg) \
                    and ins.dst.parent == "esp":
                if isinstance(ins.src, Imm) and ins.src.symbol is None:
                    delta += ins.src.value if ins.mnemonic == "sub" \
                        else -ins.src.value
                else:
                    complain(i, f"esp:{i}",
                             f"non-constant esp adjustment: {ins.format()!r}")
                    break
            elif "esp" in ins.registers_written() and not ins.is_call \
                    and not ins.is_return:
                complain(i, f"esp:{i}",
                         f"untracked write to esp: {ins.format()!r}")
                break
            elif ins.is_call:
                if _direct_call_target(ins) == STACK_FAULT_SYMBOL:
                    break  # noreturn: driver aborted
            elif ins.is_return:
                if delta != 0:
                    complain(i, f"ret:{i}",
                             f"unbalanced stack at ret "
                             f"({delta} bytes left on the frame)")
                break
            elif ins.mnemonic == "jmp":
                if ins.indirect:
                    break  # routed transfer; flow pass enforces routing
                target = program.labels.get(ins.operands[0].name)
                if target is None or target >= n:
                    break  # flow pass reports it
                i = target
                continue
            elif ins.is_conditional:
                target = program.labels.get(ins.operands[0].name)
                if target is not None and target < n:
                    work.append((target, delta, ebp))
            if delta < 0:
                complain(i, f"under:{i}",
                         f"stack underflow ({-delta} bytes above the frame)")
                break
            if delta > FRAME_LIMIT:
                complain(i, "frame",
                         f"frame exceeds the {FRAME_LIMIT}-byte bound")
                break
            max_depth = max(max_depth, delta)
            i += 1
    return max_depth


def _stack_pass(program: Program, report: VerifyReport, protect_stack: bool,
                entries: Sequence[Tuple[str, int]]):
    stats = report.pass_stats("stack")
    stats["functions"] = len(entries)
    max_depth = 0
    for name, entry in entries:
        max_depth = max(max_depth,
                        _walk_function(program, report, name, entry,
                                       protect_stack))
    stats["max_frame_bytes"] = max_depth

    if protect_stack:
        # A store of esp/ebp through a translated (driver-reachable)
        # pointer would leak the hypervisor stack location to the guest.
        for i, ins in enumerate(program.instructions):
            if ins.memory_access_kind() not in ("write", "rw"):
                continue
            mem = ins.memory_operand()
            if mem is None or mem.is_stack_relative:
                continue
            src = ins.operands[0]
            if isinstance(src, Reg) and src.parent in ("esp", "ebp"):
                report.add("stack", i,
                           f"stack pointer escapes to driver memory: "
                           f"{ins.format()!r}")


# ---------------------------------------------------------------------------
# Pass 4: clobber / flags safety
# ---------------------------------------------------------------------------


def _flags_live_out(program: Program) -> List[bool]:
    """Per instruction: may the condition codes it leaves behind be read
    before being rewritten? Independent recomputation on the rewritten
    binary (deliberately not shared with the rewriter's own analysis)."""
    cfg = ControlFlowGraph(program)
    n = len(program.instructions)
    block_in: Dict[int, bool] = {start: False for start in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for start in sorted(cfg.blocks, reverse=True):
            block = cfg.blocks[start]
            live = any(block_in.get(s, False) for s in block.successors)
            for i in reversed(range(block.start, block.end)):
                ins = program.instructions[i]
                live = ins.reads_flags or (live and not ins.writes_flags)
            if live != block_in[start]:
                block_in[start] = live
                changed = True
    out = [False] * n
    for start, block in cfg.blocks.items():
        live = any(block_in.get(s, False) for s in block.successors)
        for i in reversed(range(block.start, block.end)):
            out[i] = live
            ins = program.instructions[i]
            live = ins.reads_flags or (live and not ins.writes_flags)
    return out


class _SpillTransparentLiveness(LivenessAnalysis):
    """Liveness on the rewritten binary with spill save/restore pairs
    modelled as transparent: ``mov %r, __svm_spillN`` does not *use* the
    value (it stashes it) and ``mov __svm_spillN, %r`` does not *define*
    it (it brings the same value back), so a register's liveness flows
    through the pair unchanged. Without this, a later site's spill-saves
    would make dead registers look live after an earlier site.

    Limitation: a slot restored into a *different* register than it was
    saved from is not tracked (the rewriter never does this; in hostile
    mode it can at worst hide a clobber diagnostic, never an isolation
    violation)."""

    def _transfer(self, index, live_out):
        ins = self.program.instructions[index]
        if is_spill_save(ins) or is_spill_restore(ins):
            return live_out
        return super()._transfer(index, live_out)


def _clobber_pass(program: Program, report: VerifyReport,
                  sites: List[SvmSite], stack_sites: List[StackCheckSite]):
    stats = report.pass_stats("clobber")
    liveness = _SpillTransparentLiveness(program)
    flags_out = _flags_live_out(program)

    def check_site(regs, restored, access_index, end, flags_wrapped):
        access = program.instructions[access_index]
        clobbered = set(regs) - set(restored) - set(access.registers_written())
        leaked = sorted(clobbered & liveness.live_out[end])
        for reg in leaked:
            report.add("clobber", end,
                       f"scratch register %{reg} is live after the "
                       f"instrumentation sequence but is not restored")
        if not flags_wrapped and not access.writes_flags and flags_out[end]:
            report.add("clobber", end,
                       "condition codes are live across an unwrapped "
                       "instrumentation sequence")
        stats["sites_checked"] = stats.get("sites_checked", 0) + 1

    for site in sites:
        check_site(site.regs, site.restored, site.access, site.end,
                   site.flags_wrapped)
    for site in stack_sites:
        check_site((site.reg,), site.restored, site.access, site.end,
                   site.flags_wrapped)


# ---------------------------------------------------------------------------
# Pass 7: lock / reentrancy discipline
# ---------------------------------------------------------------------------

#: Support routines that may sleep, wait, or re-enter the scheduler —
#: never legal while a spinlock is held. The bounded SVM helpers and the
#: non-blocking netdev/DMA fast-path calls are deliberately absent: the
#: shipped drivers (like their Linux ancestors) complete tx work,
#: including the SVM slow path, under the ring lock.
BLOCKING_CALLS = frozenset((
    "msleep", "spin_lock_irqsave", "del_timer_sync", "request_irq",
    "kmalloc", "dma_alloc_coherent", "copy_from_user", "copy_to_user",
))

_TRYLOCK = "spin_trylock"
_UNLOCK = "spin_unlock_irqrestore"
_BLOCKING_ACQUIRE = "spin_lock_irqsave"


def _match_trylock_check(program: Program, call_index: int
                         ) -> Optional[Tuple[int, bool]]:
    """Match the canonical checked-trylock shape right after ``call
    spin_trylock``::

        addl $4, %esp
        testl %eax, %eax        (or cmpl $0, %eax)
        je/jz not_acquired      (or jne/jnz acquired)

    Returns ``(jcc_index, taken_edge_is_held)`` or ``None`` when the
    result is not checked in this recognizable form."""
    ins_list = program.instructions
    if call_index + 3 >= len(ins_list):
        return None
    cleanup = ins_list[call_index + 1]
    if not (cleanup.mnemonic == "add" and isinstance(cleanup.dst, Reg)
            and cleanup.dst.parent == "esp"
            and isinstance(cleanup.src, Imm) and cleanup.src.symbol is None
            and cleanup.src.value == 4):
        return None
    test = ins_list[call_index + 2]
    test_ok = (
        (test.mnemonic == "test" and len(test.operands) == 2
         and all(isinstance(op, Reg) and op.parent == "eax"
                 for op in test.operands))
        or (test.mnemonic == "cmp" and len(test.operands) == 2
            and isinstance(test.operands[0], Imm)
            and test.operands[0].symbol is None
            and test.operands[0].value == 0
            and isinstance(test.operands[1], Reg)
            and test.operands[1].parent == "eax"))
    if not test_ok:
        return None
    jcc = ins_list[call_index + 3]
    if not jcc.is_conditional or not isinstance(jcc.operands[0], Label):
        return None
    if jcc.mnemonic in ("je", "jz"):
        return call_index + 3, False    # taken: eax == 0, lock NOT acquired
    if jcc.mnemonic in ("jne", "jnz"):
        return call_index + 3, True
    return None


def _walk_locks(program: Program, report: VerifyReport, name: str,
                entry: int) -> int:
    """DFS one function with the held-lock set as abstract state (a tuple
    of acquire-site indices, most recent last). Returns the number of
    acquire sites walked."""
    ins_list = program.instructions
    n = len(ins_list)
    seen: Dict[int, Tuple[int, ...]] = {}
    reported: Set[str] = set()
    acquires = 0

    def complain(index: int, key: str, dedup: str, message: str):
        if dedup not in reported:
            reported.add(dedup)
            report.add("locks", index, f"{message} (function {name!r})",
                       key=key)

    work: List[Tuple[int, Tuple[int, ...]]] = [(entry, ())]
    while work:
        i, held = work.pop()
        while True:
            if i >= n:
                break                   # stack pass reports the fall-off
            if i in seen:
                if seen[i] != held:
                    complain(i, "locks.inconsistent", f"join:{i}",
                             f"inconsistent lockset at join "
                             f"({len(seen[i])} vs {len(held)} lock(s) held)")
                break
            seen[i] = held
            ins = ins_list[i]
            if ins.is_call:
                target = _direct_call_target(ins)
                if target == _TRYLOCK:
                    acquires += 1
                    match = _match_trylock_check(program, i)
                    if match is None:
                        complain(i, "locks.unchecked_trylock", f"try:{i}",
                                 "spin_trylock result is not checked "
                                 "before proceeding")
                        i += 1          # analyzed as not acquired
                        continue
                    jcc_index, taken_is_held = match
                    jcc = ins_list[jcc_index]
                    target_index = program.labels.get(jcc.operands[0].name)
                    # the cleanup/test/jcc triple belongs to the idiom;
                    # record it under the pre-branch lockset
                    for j in range(i + 1, jcc_index + 1):
                        seen.setdefault(j, held)
                    token = i
                    if target_index is not None and target_index < n:
                        work.append((target_index,
                                     held + (token,) if taken_is_held
                                     else held))
                    held = held if taken_is_held else held + (token,)
                    i = jcc_index + 1
                    continue
                if target == _UNLOCK:
                    if held:
                        held = held[:-1]
                    else:
                        complain(i, "locks.release_unheld", f"rel:{i}",
                                 f"{_UNLOCK} with no lock held")
                elif target == _BLOCKING_ACQUIRE:
                    acquires += 1
                    if held:
                        complain(i, "locks.blocking_call", f"blk:{i}",
                                 f"blocking acquire {target!r} while "
                                 f"{len(held)} spinlock(s) held")
                    held = held + (i,)
                elif target in BLOCKING_CALLS and held:
                    complain(i, "locks.blocking_call", f"blk:{i}",
                             f"call to may-block routine {target!r} while "
                             f"{len(held)} spinlock(s) held")
                elif target == STACK_FAULT_SYMBOL:
                    break               # noreturn: driver aborted
            elif ins.is_return:
                if held:
                    complain(i, "locks.held_at_return", f"ret:{i}",
                             f"{len(held)} spinlock(s) still held at ret")
                break
            elif ins.mnemonic == "jmp":
                if ins.indirect:
                    break               # routed transfer; flow pass enforces
                target_index = program.labels.get(ins.operands[0].name)
                if target_index is None or target_index >= n:
                    break               # flow pass reports it
                i = target_index
                continue
            elif ins.is_conditional:
                target_index = program.labels.get(ins.operands[0].name)
                if target_index is not None and target_index < n:
                    work.append((target_index, held))
            i += 1
    return acquires


def _locks_pass(program: Program, report: VerifyReport,
                entries: Sequence[Tuple[str, int]]):
    stats = report.pass_stats("locks")
    stats["functions"] = len(entries)
    acquires = 0
    for name, entry in entries:
        acquires += _walk_locks(program, report, name, entry)
    stats["acquires_walked"] = acquires


# ---------------------------------------------------------------------------
# Annotation cross-checking (annotated mode only)
# ---------------------------------------------------------------------------


def _annotation_pass(program: Program, report: VerifyReport,
                     annotations: Sequence[SiteAnnotation],
                     sites: List[SvmSite],
                     stack_sites: List[StackCheckSite],
                     translate_points: Dict[int, TranslatePoint],
                     routed: Set[int]):
    stats = report.pass_stats("annot")
    stats["annotations"] = len(annotations)
    fast_by_start = {site.start: site for site in sites}
    stack_by_start = {site.start: site for site in stack_sites}

    def mismatch(ann: SiteAnnotation, why: str):
        report.add("annot", ann.start,
                   f"{ann.kind} annotation for input instruction "
                   f"{ann.input_index} does not match the binary: {why}")

    for ann in annotations:
        if ann.kind == "memory":
            site = fast_by_start.get(ann.start)
            if site is None or site.end + 1 != ann.end:
                mismatch(ann, "no fast-path sequence at its range")
            elif set(site.regs) != set(ann.scratch):
                mismatch(ann, f"scratch registers differ "
                              f"({sorted(site.regs)} matched)")
            elif site.flags_wrapped != ann.flags_wrapped \
                    or set(site.spilled) != set(ann.spilled):
                mismatch(ann, "spill/flags wrapping differs")
        elif ann.kind == "stack_checked":
            site = stack_by_start.get(ann.start)
            if site is None or site.end + 1 != ann.end:
                mismatch(ann, "no bounds-check sequence at its range")
        elif ann.kind == "indirect":
            last = ann.end - 1
            if last not in routed:
                mismatch(ann, "final transfer is not routed")
            elif ann.scratch and fast_by_start.get(ann.start) is None:
                mismatch(ann, "no fast-path sequence for the pointer load")
        elif ann.kind in ("string_single", "string_loop"):
            has_translate = any(ann.start <= p < ann.end
                                for p in translate_points)
            has_string = any(program.instructions[i].is_string
                             for i in range(ann.start,
                                            min(ann.end,
                                                len(program.instructions))))
            if not has_translate or not has_string:
                mismatch(ann, "no translate helper or string op in range")
        else:
            mismatch(ann, f"unknown site kind {ann.kind!r}")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def verify_program(program: Program,
                   annotations: Optional[Sequence[SiteAnnotation]] = None,
                   protect_stack: bool = False,
                   name: Optional[str] = None) -> VerifyReport:
    """Statically verify a rewritten driver binary.

    ``annotations`` (from :class:`RewriteStats`) switches on annotated
    mode: the same safety passes run, plus a cross-check of every
    annotation against an independently matched sequence. Pass ``None``
    for hostile mode — the binary is verified with no rewriter metadata.
    """
    report = VerifyReport(
        program_name=name or program.name,
        mode="hostile" if annotations is None else "annotated",
        instructions=len(program.instructions),
    )
    sites = find_fastpath_sites(program)
    stack_sites = find_stack_check_sites(program)
    translate_points = find_translate_points(program)
    routed = {
        i for i, ins in enumerate(program.instructions)
        if ins.indirect and is_routed_indirect(program, i)
    }
    entries = _function_entries(program)
    cfg = ControlFlowGraph(program)
    translated_in = _translated_in_states(program, translate_points, entries,
                                          cfg=cfg)
    sanctioned = _sanctioned_indices(program, sites, stack_sites,
                                     translate_points, routed)
    absres = analyze_program(program, sites=sites,
                             translate_points=translate_points,
                             entries=[index for _, index in entries],
                             cfg=cfg)

    _svm_pass(program, report, protect_stack, sites, stack_sites,
              translate_points, routed, translated_in, sanctioned, absres)
    _flow_pass(program, report, sites, stack_sites, translate_points, routed)
    _stack_pass(program, report, protect_stack, entries)
    _clobber_pass(program, report, sites, stack_sites)
    range_pass(program, report, absres, sanctioned)
    provenance_pass(program, report, absres, sanctioned)
    _locks_pass(program, report, entries)
    if annotations is not None:
        _annotation_pass(program, report, annotations, sites, stack_sites,
                         translate_points, routed)
    report.proofs = list(absres.proofs)
    return report
