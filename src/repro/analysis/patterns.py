"""Recognizers for the instruction idioms the rewriter emits.

These matchers are the verifier's ground truth: a memory access is only
accepted as "goes through the stlb" if it is literally the translated
output of one of these sequences (paper figure 4 / §5.1), with the
surrounding spill-slot saves and ``pushf``/``popf`` wrapping accounted
for. They operate on the *rewritten* binary alone — no annotations, no
trust in the rewriter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.rewriter import (
    CALL_XLATE_SYMBOL,
    RET_SLOT_SYMBOL,
    SLOW_PATH_SYMBOL,
    SPILL_SYMBOL,
    STACK_FAULT_SYMBOL,
    STACK_HI_SYMBOL,
    STACK_LO_SYMBOL,
    STLB_SYMBOL,
    TRANSLATE_SYMBOL,
)
from ..isa.instructions import Instruction
from ..isa.operands import Imm, Label, Mem, Reg
from ..isa.program import Program
from ..isa.registers import ALLOCATABLE

PAGE_MASK = 0xFFFFF000

#: spill-slot symbol prefix ("__svm_spill")
_SPILL_PREFIX = SPILL_SYMBOL.format("")


@dataclass(frozen=True)
class SvmSite:
    """A matched figure-4 fast-path site in the rewritten binary."""

    start: int          # first instruction (spill saves / pushf included)
    lea: int            # the `lea orig, r1` (the retry label points here)
    access: int         # the translated instruction using (r2)
    end: int            # last instruction (restores / popf included)
    regs: Tuple[str, str, str]
    mem: Mem            # the original (untranslated) memory operand
    restored: frozenset
    spilled: Tuple[str, ...]
    flags_wrapped: bool
    slow_label: str
    retry_label: str


@dataclass(frozen=True)
class StackCheckSite:
    """A matched §4.5.1 stack bounds-check site."""

    start: int
    lea: int
    access: int
    end: int
    reg: str
    mem: Mem
    restored: frozenset
    spilled: Tuple[str, ...]
    flags_wrapped: bool
    fault_label: str


@dataclass(frozen=True)
class TranslatePoint:
    """A ``push p / call __svm_translate / add $4,%esp / mov __svm_ret,d``
    quadruple: after ``index`` register ``dest`` holds a translated
    (hypervisor-safe) copy of pointer ``source``."""

    index: int          # index of the `mov __svm_ret, dest`
    source: str
    dest: str


def _is_reg(op, name: Optional[str] = None) -> bool:
    return isinstance(op, Reg) and (name is None or op.name == name)


def _is_imm(op, value: Optional[int] = None) -> bool:
    if not isinstance(op, Imm) or op.symbol is not None:
        return False
    return value is None or (op.value & 0xFFFFFFFF) == value


def _is_mem(op, symbol=None, disp=None, base=None, no_index=True) -> bool:
    if not isinstance(op, Mem):
        return False
    if symbol is not None and op.symbol != symbol:
        return False
    if symbol is None and op.symbol is not None:
        return False
    if disp is not None and op.disp != disp:
        return False
    if base is not None and op.base != base:
        return False
    if base is None and op.base is not None:
        return False
    return not (no_index and op.index is not None)


def is_spill_save(ins: Instruction) -> bool:
    """``mov %reg, __svm_spillN``"""
    return (ins.mnemonic == "mov" and len(ins.operands) == 2
            and _is_reg(ins.operands[0])
            and isinstance(ins.operands[1], Mem)
            and ins.operands[1].symbol is not None
            and ins.operands[1].symbol.startswith(_SPILL_PREFIX)
            and ins.operands[1].base is None)


def is_spill_restore(ins: Instruction) -> bool:
    """``mov __svm_spillN, %reg``"""
    return (ins.mnemonic == "mov" and len(ins.operands) == 2
            and isinstance(ins.operands[0], Mem)
            and ins.operands[0].symbol is not None
            and ins.operands[0].symbol.startswith(_SPILL_PREFIX)
            and ins.operands[0].base is None
            and _is_reg(ins.operands[1]))


def _call_to(ins: Instruction, symbol: str) -> bool:
    return (ins.is_call and not ins.indirect and ins.operands
            and isinstance(ins.operands[0], Label)
            and ins.operands[0].name == symbol)


def _index_mask_ok(value: int) -> bool:
    """``(entries-1) << 12`` for a power-of-two entry count."""
    value &= 0xFFFFFFFF
    if value == 0 or value & 0xFFF:
        return False
    entries = (value >> 12) + 1
    return entries & (entries - 1) == 0


def _wrap_extents(program: Program, first: int, last: int
                  ) -> Tuple[int, int, Tuple[str, ...], frozenset, bool]:
    """Extend a matched core [first, last] backwards over spill saves and
    an optional ``pushf``, forwards over restores and the matching
    ``popf``. Returns (start, end, spilled, restored, flags_wrapped)."""
    ins = program.instructions
    start = first
    flags_wrapped = False
    if start > 0 and ins[start - 1].mnemonic == "pushf":
        flags_wrapped = True
        start -= 1
    spilled: List[str] = []
    while start > 0 and is_spill_save(ins[start - 1]):
        spilled.append(ins[start - 1].operands[0].name)
        start -= 1
    spilled.reverse()
    end = last
    restored = set()
    while end + 1 < len(ins) and is_spill_restore(ins[end + 1]):
        restored.add(ins[end + 1].operands[1].name)
        end += 1
    if flags_wrapped and end + 1 < len(ins) and ins[end + 1].mnemonic == "popf":
        end += 1
    return start, end, tuple(spilled), frozenset(restored), flags_wrapped


def match_fastpath(program: Program, i: int) -> Optional[SvmSite]:
    """Match the 10-instruction figure-4 sequence with its ``lea`` at
    index ``i``; validates the slow-path block and the retry label."""
    ins = program.instructions
    if i + 9 >= len(ins):
        return None
    lea = ins[i]
    if lea.mnemonic != "lea" or len(lea.operands) != 2:
        return None
    mem, r1op = lea.operands
    if not isinstance(mem, Mem) or not isinstance(r1op, Reg):
        return None
    r1 = r1op.name
    # mov r1, r2
    if not (ins[i + 1].mnemonic == "mov" and _is_reg(ins[i + 1].operands[0], r1)
            and _is_reg(ins[i + 1].operands[1])):
        return None
    r2 = ins[i + 1].operands[1].name
    # and $0xFFFFF000, r1
    if not (ins[i + 2].mnemonic == "and"
            and _is_imm(ins[i + 2].operands[0], PAGE_MASK)
            and _is_reg(ins[i + 2].operands[1], r1)):
        return None
    # mov r1, r3
    if not (ins[i + 3].mnemonic == "mov" and _is_reg(ins[i + 3].operands[0], r1)
            and _is_reg(ins[i + 3].operands[1])):
        return None
    r3 = ins[i + 3].operands[1].name
    if len({r1, r2, r3}) != 3 or not {r1, r2, r3} <= set(ALLOCATABLE):
        return None
    # and $index_mask, r1
    if not (ins[i + 4].mnemonic == "and"
            and isinstance(ins[i + 4].operands[0], Imm)
            and ins[i + 4].operands[0].symbol is None
            and _index_mask_ok(ins[i + 4].operands[0].value)
            and _is_reg(ins[i + 4].operands[1], r1)):
        return None
    # shr $9, r1
    if not (ins[i + 5].mnemonic == "shr" and _is_imm(ins[i + 5].operands[0], 9)
            and _is_reg(ins[i + 5].operands[1], r1)):
        return None
    # cmp __stlb(r1), r3
    if not (ins[i + 6].mnemonic == "cmp"
            and _is_mem(ins[i + 6].operands[0], symbol=STLB_SYMBOL, disp=0,
                        base=r1)
            and _is_reg(ins[i + 6].operands[1], r3)):
        return None
    # jne slow
    if not (ins[i + 7].mnemonic == "jne"
            and isinstance(ins[i + 7].operands[0], Label)):
        return None
    slow_label = ins[i + 7].operands[0].name
    # xor __stlb+4(r1), r2
    if not (ins[i + 8].mnemonic == "xor"
            and _is_mem(ins[i + 8].operands[0], symbol=STLB_SYMBOL, disp=4,
                        base=r1)
            and _is_reg(ins[i + 8].operands[1], r2)):
        return None
    # the translated access through (r2)
    access = ins[i + 9]
    amem = access.memory_operand()
    if (amem is None or access.memory_access_kind() is None
            or not _is_mem(amem, disp=0, base=r2)):
        return None
    # slow-path block: push r2 / call __svm_slow_path / add $4,%esp /
    # jmp retry, with the retry label on the lea.
    s = program.labels.get(slow_label)
    if s is None or s + 3 >= len(ins) + 1 or s + 3 > len(ins) - 1:
        return None
    if not (ins[s].mnemonic == "push" and _is_reg(ins[s].operands[0], r2)):
        return None
    if not _call_to(ins[s + 1], SLOW_PATH_SYMBOL):
        return None
    if not (ins[s + 2].mnemonic == "add" and _is_imm(ins[s + 2].operands[0], 4)
            and _is_reg(ins[s + 2].operands[1], "esp")):
        return None
    if not (ins[s + 3].mnemonic == "jmp" and not ins[s + 3].indirect
            and isinstance(ins[s + 3].operands[0], Label)):
        return None
    retry_label = ins[s + 3].operands[0].name
    if program.labels.get(retry_label) != i:
        return None
    start, end, spilled, restored, flags_wrapped = _wrap_extents(
        program, i, i + 9)
    return SvmSite(start=start, lea=i, access=i + 9, end=end,
                   regs=(r1, r2, r3), mem=mem, restored=restored,
                   spilled=spilled, flags_wrapped=flags_wrapped,
                   slow_label=slow_label, retry_label=retry_label)


def match_stack_check(program: Program, i: int) -> Optional[StackCheckSite]:
    """Match the §4.5.1 bounds-check sequence with its ``lea`` at ``i``."""
    ins = program.instructions
    if i + 5 >= len(ins):
        return None
    lea = ins[i]
    if lea.mnemonic != "lea" or len(lea.operands) != 2:
        return None
    mem, r1op = lea.operands
    if not isinstance(mem, Mem) or not isinstance(r1op, Reg):
        return None
    if not (mem.is_stack_relative and mem.index is not None):
        return None
    r1 = r1op.name
    if r1 not in ALLOCATABLE:
        return None
    if not (ins[i + 1].mnemonic == "cmp"
            and _is_mem(ins[i + 1].operands[0], symbol=STACK_LO_SYMBOL, disp=0)
            and _is_reg(ins[i + 1].operands[1], r1)):
        return None
    if not (ins[i + 2].mnemonic == "jb"
            and isinstance(ins[i + 2].operands[0], Label)):
        return None
    fault_label = ins[i + 2].operands[0].name
    if not (ins[i + 3].mnemonic == "cmp"
            and _is_mem(ins[i + 3].operands[0], symbol=STACK_HI_SYMBOL, disp=0)
            and _is_reg(ins[i + 3].operands[1], r1)):
        return None
    if not (ins[i + 4].mnemonic == "jae"
            and isinstance(ins[i + 4].operands[0], Label)
            and ins[i + 4].operands[0].name == fault_label):
        return None
    access = ins[i + 5]
    if access.memory_operand() != mem or access.memory_access_kind() is None:
        return None
    f = program.labels.get(fault_label)
    if f is None or f >= len(ins) or not _call_to(ins[f], STACK_FAULT_SYMBOL):
        return None
    start, end, spilled, restored, flags_wrapped = _wrap_extents(
        program, i, i + 5)
    return StackCheckSite(start=start, lea=i, access=i + 5, end=end, reg=r1,
                          mem=mem, restored=restored, spilled=spilled,
                          flags_wrapped=flags_wrapped,
                          fault_label=fault_label)


def find_fastpath_sites(program: Program) -> List[SvmSite]:
    sites = []
    for i in range(len(program.instructions)):
        site = match_fastpath(program, i)
        if site is not None:
            sites.append(site)
    return sites


def find_stack_check_sites(program: Program) -> List[StackCheckSite]:
    sites = []
    for i in range(len(program.instructions)):
        site = match_stack_check(program, i)
        if site is not None:
            sites.append(site)
    return sites


def find_translate_points(program: Program) -> Dict[int, TranslatePoint]:
    """All ``__svm_translate`` helper invocations, keyed by the index of
    the ``mov __svm_ret, dest`` that publishes the result."""
    ins = program.instructions
    points: Dict[int, TranslatePoint] = {}
    for i in range(len(ins) - 3):
        if not (ins[i].mnemonic == "push" and len(ins[i].operands) == 1
                and _is_reg(ins[i].operands[0])):
            continue
        if not _call_to(ins[i + 1], TRANSLATE_SYMBOL):
            continue
        if not (ins[i + 2].mnemonic == "add"
                and _is_imm(ins[i + 2].operands[0], 4)
                and _is_reg(ins[i + 2].operands[1], "esp")):
            continue
        if not (ins[i + 3].mnemonic == "mov"
                and _is_mem(ins[i + 3].operands[0], symbol=RET_SLOT_SYMBOL,
                            disp=0)
                and _is_reg(ins[i + 3].operands[1])):
            continue
        points[i + 3] = TranslatePoint(
            index=i + 3,
            source=ins[i].operands[0].name,
            dest=ins[i + 3].operands[1].name,
        )
    return points


def is_routed_indirect(program: Program, i: int) -> bool:
    """True when the indirect call/jmp at ``i`` is the rewriter's routed
    form: target ``__svm_ret`` immediately after ``call __stlb_call_xlate;
    add $4, %esp`` (§5.1.2)."""
    ins = program.instructions
    instr = ins[i]
    if not instr.operands or not _is_mem(instr.operands[0],
                                         symbol=RET_SLOT_SYMBOL, disp=0):
        return False
    if i < 2:
        return False
    if not (ins[i - 1].mnemonic == "add" and _is_imm(ins[i - 1].operands[0], 4)
            and _is_reg(ins[i - 1].operands[1], "esp")):
        return False
    return _call_to(ins[i - 2], CALL_XLATE_SYMBOL)
