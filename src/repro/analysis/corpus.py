"""Negative corpus: broken driver binaries the verifier must reject.

Each entry is a small program that *looks* like rewriter output but
violates exactly one safety property — the regression suite proves the
verifier rejects every class, and the fault-injection example uses them
to demonstrate load-time refusal. The entries are deliberately built
through the normal assembler (or raw instructions where the assembler
itself would refuse) so they exercise the verifier, not the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa import Imm, Instruction, Label, Mem, Program, Reg, assemble

#: shared tail for hand-written fast-path sites
_SLOW_BLOCK = """
{slow}:
    push {r2}
    call __svm_slow_path
    addl $4, %esp
    jmp {retry}
"""


def _fastpath(retry: str, slow: str, mem: str, r1: str, r2: str, r3: str,
              access: str) -> str:
    """A syntactically valid figure-4 fast-path site (text form)."""
    return f"""
{retry}:
    leal {mem}, {r1}
    movl {r1}, {r2}
    andl $0xFFFFF000, {r1}
    movl {r1}, {r3}
    andl $0x00FFF000, {r1}
    shrl $9, {r1}
    cmpl __stlb({r1}), {r3}
    jne {slow}
    xorl __stlb+4({r1}), {r2}
    {access}
"""


@dataclass(frozen=True)
class CorpusEntry:
    """One broken binary plus the pass expected to reject it."""

    name: str
    description: str
    program: Program
    expect_pass: str            # pass name that must produce the finding
    protect_stack: bool = False
    #: exact finding key the pass must emit (None = any finding from the
    #: pass). The semantic passes (range/provenance/locks) always pin the
    #: key: these binaries are clean to every syntactic check, so the test
    #: must prove the *right* property caught them.
    expect_key: Optional[str] = None


def _uninstrumented_store() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    movl %eax, (%ebx)
    ret
""", name="corpus.uninstrumented_store")
    return CorpusEntry(
        name="uninstrumented_store",
        description="a raw store that bypasses the stlb entirely",
        program=program,
        expect_pass="svm",
    )


def _unbalanced_stack() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    push %eax
    push %ebx
    pop %ebx
    ret
""", name="corpus.unbalanced_stack")
    return CorpusEntry(
        name="unbalanced_stack",
        description="returns with 4 bytes still pushed on the frame",
        program=program,
        expect_pass="stack",
    )


def _raw_indirect_call() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    call *%eax
    ret
""", name="corpus.raw_indirect_call")
    return CorpusEntry(
        name="raw_indirect_call",
        description="indirect call not routed through __stlb_call_xlate",
        program=program,
        expect_pass="flow",
    )


def _wrong_scratch() -> CorpusEntry:
    # A well-formed fast-path site whose scratch register %esi carries a
    # live value that the sequence clobbers and never restores.
    text = """
    .globl corpus_entry
corpus_entry:
    push %ebp
    movl %esp, %ebp
    movl $5, %esi
""" + _fastpath("Lretry", "Lslow", "(%eax)", "%esi", "%ebx", "%ecx",
                "movl (%ebx), %edx") + """
    movl %esi, -4(%ebp)
    movl $0, %ebx
    pop %ebp
    ret
""" + _SLOW_BLOCK.format(slow="Lslow", r2="%ebx", retry="Lretry")
    program = assemble(text, name="corpus.wrong_scratch")
    return CorpusEntry(
        name="wrong_scratch",
        description="fast-path scratch register clobbers a live value",
        program=program,
        expect_pass="clobber",
    )


def _missing_flags_save() -> CorpusEntry:
    # Condition codes set before the site are consumed after it, but the
    # sequence (whose cmp overwrites them) is not pushf/popf-wrapped.
    text = """
    .globl corpus_entry
corpus_entry:
    cmpl $1, %edx
""" + _fastpath("Lretry", "Lslow", "(%edi)", "%eax", "%ecx", "%ebx",
                "movl (%ecx), %esi") + """
    je Lequal
    movl $0, %esi
Lequal:
    movl $0, %eax
    movl $0, %ebx
    movl $0, %esi
    ret
""" + _SLOW_BLOCK.format(slow="Lslow", r2="%ecx", retry="Lretry")
    program = assemble(text, name="corpus.missing_flags_save")
    return CorpusEntry(
        name="missing_flags_save",
        description="live condition codes cross an unwrapped SVM sequence",
        program=program,
        expect_pass="clobber",
    )


def _esp_escape() -> CorpusEntry:
    # The translated access itself stores the stack pointer into
    # driver-reachable memory — rejected when protect_stack is on.
    text = """
    .globl corpus_entry
corpus_entry:
""" + _fastpath("Lretry", "Lslow", "(%edi)", "%eax", "%ecx", "%ebx",
                "movl %esp, (%ecx)") + """
    movl $0, %eax
    movl $0, %ebx
    ret
""" + _SLOW_BLOCK.format(slow="Lslow", r2="%ecx", retry="Lretry")
    program = assemble(text, name="corpus.esp_escape")
    return CorpusEntry(
        name="esp_escape",
        description="stores the stack pointer through a translated pointer",
        program=program,
        expect_pass="stack",
        protect_stack=True,
    )


def _stlb_corruption() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    movl %eax, __stlb+4
    ret
""", name="corpus.stlb_corruption")
    return CorpusEntry(
        name="stlb_corruption",
        description="writes the stlb outside a recognized SVM sequence",
        program=program,
        expect_pass="svm",
    )


def _branch_outside() -> CorpusEntry:
    # The assembler refuses undefined branch targets, so this one is
    # built from raw instructions — exactly what a hostile or corrupted
    # binary handed to the loader could contain.
    program = Program(
        instructions=[
            Instruction("jmp", (Label("nowhere"),)),
            Instruction("ret", ()),
        ],
        labels={"corpus_entry": 0},
        globals_=("corpus_entry",),
        name="corpus.branch_outside",
    )
    return CorpusEntry(
        name="branch_outside",
        description="direct branch to a target outside the program",
        program=program,
        expect_pass="flow",
    )


# ---------------------------------------------------------------------------
# Semantically hostile binaries: every syntactic pass accepts these — the
# fast-path sites are shape-perfect, the stack balances, control flow is
# clean. Only the abstract-interpretation passes (range / provenance /
# locks) can prove them unsafe.
# ---------------------------------------------------------------------------


#: a legitimate translate point (the shape the rewriter emits for string
#: ops): translates the pointer in ``src`` and leaves the result in ``dst``
_TRANSLATE_POINT = """
    push {src}
    call __svm_translate
    addl $4, %esp
    movl __svm_ret, {dst}
"""


def _cross_page_walk() -> CorpusEntry:
    # A legitimately translated pointer walked past the checked two-page
    # window: 4093 + 4 bytes crosses out of the mapped pair.
    text = """
    .globl corpus_entry
corpus_entry:
""" + _TRANSLATE_POINT.format(src="%edi", dst="%ecx") + """
    movl 4093(%ecx), %eax
    ret
"""
    return CorpusEntry(
        name="cross_page_walk",
        description="translated access strides past the checked page pair",
        program=assemble(text, name="corpus.cross_page_walk"),
        expect_pass="range",
        expect_key="range.cross_page",
    )


def _negative_walk() -> CorpusEntry:
    # Walking *backwards* from a translated pointer: the pair mapping
    # only guarantees the two pages forward of the checked page.
    text = """
    .globl corpus_entry
corpus_entry:
""" + _TRANSLATE_POINT.format(src="%edi", dst="%ecx") + """
    movl -4(%ecx), %eax
    ret
"""
    return CorpusEntry(
        name="negative_walk",
        description="translated access walks below the checked page",
        program=assemble(text, name="corpus.negative_walk"),
        expect_pass="range",
        expect_key="range.underflow",
    )


def _laundered_pointer() -> CorpusEntry:
    # Stores one translated (hypervisor-window) pointer through another
    # into driver data, where dom0 could read it back — leaking the
    # hypervisor mapping.
    text = """
    .globl corpus_entry
corpus_entry:
""" + _TRANSLATE_POINT.format(src="%edi", dst="%ecx") \
        + _TRANSLATE_POINT.format(src="%esi", dst="%edx") + """
    movl %ecx, (%edx)
    ret
"""
    return CorpusEntry(
        name="laundered_pointer",
        description="stores a translated pointer into driver-visible memory",
        program=assemble(text, name="corpus.laundered_pointer"),
        expect_pass="provenance",
        expect_key="provenance.leak",
    )


def _forged_arithmetic() -> CorpusEntry:
    # Non-walk arithmetic on a translated pointer: shifting it forges a
    # new hypervisor-window address the stlb never checked.
    text = """
    .globl corpus_entry
corpus_entry:
""" + _TRANSLATE_POINT.format(src="%edi", dst="%ecx") + """
    shll $1, %ecx
    ret
"""
    return CorpusEntry(
        name="forged_arithmetic",
        description="shifts a translated pointer to forge a new address",
        program=assemble(text, name="corpus.forged_arithmetic"),
        expect_pass="provenance",
        expect_key="provenance.forge",
    )


def _retranslate() -> CorpusEntry:
    # Feeding an already-translated pointer back through __svm_translate:
    # the double translation lands outside anything that was checked.
    text = """
    .globl corpus_entry
corpus_entry:
""" + _TRANSLATE_POINT.format(src="%edi", dst="%ecx") \
        + _TRANSLATE_POINT.format(src="%ecx", dst="%eax") + """
    ret
"""
    return CorpusEntry(
        name="retranslate",
        description="passes a translated pointer back into __svm_translate",
        program=assemble(text, name="corpus.retranslate"),
        expect_pass="provenance",
        expect_key="provenance.retranslate",
    )


def _lock_held_at_return() -> CorpusEntry:
    # Properly checked trylock, but the acquired path returns to the
    # hypervisor still holding the dom0 lock.
    text = """
    .globl corpus_entry
corpus_entry:
    pushl $0
    call spin_trylock
    addl $4, %esp
    testl %eax, %eax
    jne Lheld
    ret
Lheld:
    ret
"""
    return CorpusEntry(
        name="lock_held_at_return",
        description="returns to the hypervisor still holding a dom0 lock",
        program=assemble(text, name="corpus.lock_held_at_return"),
        expect_pass="locks",
        expect_key="locks.held_at_return",
    )


def _release_unheld() -> CorpusEntry:
    text = """
    .globl corpus_entry
corpus_entry:
    pushl $0
    call spin_unlock_irqrestore
    addl $4, %esp
    ret
"""
    return CorpusEntry(
        name="release_unheld",
        description="releases a lock no path ever acquired",
        program=assemble(text, name="corpus.release_unheld"),
        expect_pass="locks",
        expect_key="locks.release_unheld",
    )


def _blocking_under_lock() -> CorpusEntry:
    # Checked trylock and a matching release — but the critical section
    # calls a may-sleep routine while holding the spinlock.
    text = """
    .globl corpus_entry
corpus_entry:
    pushl $0
    call spin_trylock
    addl $4, %esp
    testl %eax, %eax
    je Lout
    pushl $10
    call msleep
    addl $4, %esp
    pushl $0
    call spin_unlock_irqrestore
    addl $4, %esp
Lout:
    ret
"""
    return CorpusEntry(
        name="blocking_under_lock",
        description="calls a may-sleep routine while holding a spinlock",
        program=assemble(text, name="corpus.blocking_under_lock"),
        expect_pass="locks",
        expect_key="locks.blocking_call",
    )


def _unchecked_trylock() -> CorpusEntry:
    text = """
    .globl corpus_entry
corpus_entry:
    pushl $0
    call spin_trylock
    addl $4, %esp
    ret
"""
    return CorpusEntry(
        name="unchecked_trylock",
        description="ignores the trylock result entirely",
        program=assemble(text, name="corpus.unchecked_trylock"),
        expect_pass="locks",
        expect_key="locks.unchecked_trylock",
    )


def build_negative_corpus() -> List[CorpusEntry]:
    """All violation classes, at least one entry each."""
    return [
        _uninstrumented_store(),
        _unbalanced_stack(),
        _raw_indirect_call(),
        _wrong_scratch(),
        _missing_flags_save(),
        _esp_escape(),
        _stlb_corruption(),
        _branch_outside(),
        _cross_page_walk(),
        _negative_walk(),
        _laundered_pointer(),
        _forged_arithmetic(),
        _retranslate(),
        _lock_held_at_return(),
        _release_unheld(),
        _blocking_under_lock(),
        _unchecked_trylock(),
    ]
