"""Negative corpus: broken driver binaries the verifier must reject.

Each entry is a small program that *looks* like rewriter output but
violates exactly one safety property — the regression suite proves the
verifier rejects every class, and the fault-injection example uses them
to demonstrate load-time refusal. The entries are deliberately built
through the normal assembler (or raw instructions where the assembler
itself would refuse) so they exercise the verifier, not the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..isa import Imm, Instruction, Label, Mem, Program, Reg, assemble

#: shared tail for hand-written fast-path sites
_SLOW_BLOCK = """
{slow}:
    push {r2}
    call __svm_slow_path
    addl $4, %esp
    jmp {retry}
"""


def _fastpath(retry: str, slow: str, mem: str, r1: str, r2: str, r3: str,
              access: str) -> str:
    """A syntactically valid figure-4 fast-path site (text form)."""
    return f"""
{retry}:
    leal {mem}, {r1}
    movl {r1}, {r2}
    andl $0xFFFFF000, {r1}
    movl {r1}, {r3}
    andl $0x00FFF000, {r1}
    shrl $9, {r1}
    cmpl __stlb({r1}), {r3}
    jne {slow}
    xorl __stlb+4({r1}), {r2}
    {access}
"""


@dataclass(frozen=True)
class CorpusEntry:
    """One broken binary plus the pass expected to reject it."""

    name: str
    description: str
    program: Program
    expect_pass: str            # pass name that must produce the finding
    protect_stack: bool = False


def _uninstrumented_store() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    movl %eax, (%ebx)
    ret
""", name="corpus.uninstrumented_store")
    return CorpusEntry(
        name="uninstrumented_store",
        description="a raw store that bypasses the stlb entirely",
        program=program,
        expect_pass="svm",
    )


def _unbalanced_stack() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    push %eax
    push %ebx
    pop %ebx
    ret
""", name="corpus.unbalanced_stack")
    return CorpusEntry(
        name="unbalanced_stack",
        description="returns with 4 bytes still pushed on the frame",
        program=program,
        expect_pass="stack",
    )


def _raw_indirect_call() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    call *%eax
    ret
""", name="corpus.raw_indirect_call")
    return CorpusEntry(
        name="raw_indirect_call",
        description="indirect call not routed through __stlb_call_xlate",
        program=program,
        expect_pass="flow",
    )


def _wrong_scratch() -> CorpusEntry:
    # A well-formed fast-path site whose scratch register %esi carries a
    # live value that the sequence clobbers and never restores.
    text = """
    .globl corpus_entry
corpus_entry:
    push %ebp
    movl %esp, %ebp
    movl $5, %esi
""" + _fastpath("Lretry", "Lslow", "(%eax)", "%esi", "%ebx", "%ecx",
                "movl (%ebx), %edx") + """
    movl %esi, -4(%ebp)
    movl $0, %ebx
    pop %ebp
    ret
""" + _SLOW_BLOCK.format(slow="Lslow", r2="%ebx", retry="Lretry")
    program = assemble(text, name="corpus.wrong_scratch")
    return CorpusEntry(
        name="wrong_scratch",
        description="fast-path scratch register clobbers a live value",
        program=program,
        expect_pass="clobber",
    )


def _missing_flags_save() -> CorpusEntry:
    # Condition codes set before the site are consumed after it, but the
    # sequence (whose cmp overwrites them) is not pushf/popf-wrapped.
    text = """
    .globl corpus_entry
corpus_entry:
    cmpl $1, %edx
""" + _fastpath("Lretry", "Lslow", "(%edi)", "%eax", "%ecx", "%ebx",
                "movl (%ecx), %esi") + """
    je Lequal
    movl $0, %esi
Lequal:
    movl $0, %eax
    movl $0, %ebx
    movl $0, %esi
    ret
""" + _SLOW_BLOCK.format(slow="Lslow", r2="%ecx", retry="Lretry")
    program = assemble(text, name="corpus.missing_flags_save")
    return CorpusEntry(
        name="missing_flags_save",
        description="live condition codes cross an unwrapped SVM sequence",
        program=program,
        expect_pass="clobber",
    )


def _esp_escape() -> CorpusEntry:
    # The translated access itself stores the stack pointer into
    # driver-reachable memory — rejected when protect_stack is on.
    text = """
    .globl corpus_entry
corpus_entry:
""" + _fastpath("Lretry", "Lslow", "(%edi)", "%eax", "%ecx", "%ebx",
                "movl %esp, (%ecx)") + """
    movl $0, %eax
    movl $0, %ebx
    ret
""" + _SLOW_BLOCK.format(slow="Lslow", r2="%ecx", retry="Lretry")
    program = assemble(text, name="corpus.esp_escape")
    return CorpusEntry(
        name="esp_escape",
        description="stores the stack pointer through a translated pointer",
        program=program,
        expect_pass="stack",
        protect_stack=True,
    )


def _stlb_corruption() -> CorpusEntry:
    program = assemble("""
    .globl corpus_entry
corpus_entry:
    movl %eax, __stlb+4
    ret
""", name="corpus.stlb_corruption")
    return CorpusEntry(
        name="stlb_corruption",
        description="writes the stlb outside a recognized SVM sequence",
        program=program,
        expect_pass="svm",
    )


def _branch_outside() -> CorpusEntry:
    # The assembler refuses undefined branch targets, so this one is
    # built from raw instructions — exactly what a hostile or corrupted
    # binary handed to the loader could contain.
    program = Program(
        instructions=[
            Instruction("jmp", (Label("nowhere"),)),
            Instruction("ret", ()),
        ],
        labels={"corpus_entry": 0},
        globals_=("corpus_entry",),
        name="corpus.branch_outside",
    )
    return CorpusEntry(
        name="branch_outside",
        description="direct branch to a target outside the program",
        program=program,
        expect_pass="flow",
    )


def build_negative_corpus() -> List[CorpusEntry]:
    """All violation classes, one entry each."""
    return [
        _uninstrumented_store(),
        _unbalanced_stack(),
        _raw_indirect_call(),
        _wrong_scratch(),
        _missing_flags_save(),
        _esp_escape(),
        _stlb_corruption(),
        _branch_outside(),
    ]
