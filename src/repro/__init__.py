"""TwinDrivers (ASPLOS 2009) reproduction.

Semi-automatic derivation of fast and safe hypervisor network drivers
from guest OS drivers, rebuilt as a full-system simulation: a virtual
ISA whose driver binaries are genuinely rewritten (SVM instrumentation),
a simulated machine (paged memory, MMIO, an e1000-style NIC), a Xen-like
hypervisor, a mini-Linux kernel model, and the TwinDrivers core on top.

Quick start::

    from repro.configs import build
    system = build("domU-twin", n_nics=1)
    system.transmit_packets(100)
    print(system.snapshot())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured numbers.
"""

from . import configs, core, drivers, isa, machine, metrics, osmodel, workloads, xen

__version__ = "1.0.0"

__all__ = [
    "configs",
    "core",
    "drivers",
    "isa",
    "machine",
    "metrics",
    "osmodel",
    "workloads",
    "xen",
    "__version__",
]
