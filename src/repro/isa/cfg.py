"""Control-flow graph construction over a :class:`Program`.

The rewriter's register-liveness analysis (paper §4.1, footnote 3) needs a
CFG. Block leaders are: instruction 0, every label target, every direct
branch target, and every instruction following a control transfer.

Indirect jumps are treated conservatively: the block's successor list is
*all label targets*, and the block is additionally marked with
``unknown_successors=True`` so downstream analyses (liveness, the static
verifier) can distinguish a *conservative* CFG (the successor list is an
over-approximation forced by an indirect jump) from a *complete* one (the
successor list is exact). Indirect calls fall through like direct calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from .instructions import Instruction
from .operands import Label
from .program import Program


@dataclass
class BasicBlock:
    """Half-open instruction range [start, end) with CFG edges."""

    start: int                    # first instruction index
    end: int                      # one past the last instruction index
    successors: List[int] = field(default_factory=list)   # block start indices
    predecessors: List[int] = field(default_factory=list)
    #: True when the block ends in an indirect jump: ``successors`` is then
    #: the conservative over-approximation "every label target", not an
    #: exact edge list. Analyses that need exactness (e.g. the static
    #: verifier's stack tracking) must treat such blocks specially.
    unknown_successors: bool = False

    def instruction_indices(self):
        return range(self.start, self.end)


class ControlFlowGraph:
    """Basic blocks keyed by their start instruction index."""

    def __init__(self, program: Program):
        self.program = program
        self.blocks: Dict[int, BasicBlock] = {}
        self._build()

    # -- construction ---------------------------------------------------------

    def _leaders(self) -> Set[int]:
        program = self.program
        n = len(program.instructions)
        leaders = {0} if n else set()
        for index in program.labels.values():
            if index < n:
                leaders.add(index)
        for i, instr in enumerate(program.instructions):
            if instr.is_jump or instr.is_return:
                if i + 1 < n:
                    leaders.add(i + 1)
                target = self._direct_target(instr)
                if target is not None and target < n:
                    leaders.add(target)
        return leaders

    def _direct_target(self, instr: Instruction):
        if instr.is_jump and not instr.indirect and instr.operands:
            op = instr.operands[0]
            if isinstance(op, Label):
                return self.program.labels.get(op.name)
        return None

    def _build(self):
        program = self.program
        n = len(program.instructions)
        if n == 0:
            return
        leaders = sorted(self._leaders())
        for i, start in enumerate(leaders):
            end = leaders[i + 1] if i + 1 < len(leaders) else n
            self.blocks[start] = BasicBlock(start=start, end=end)

        all_label_blocks = sorted(
            {index for index in program.labels.values() if index < n}
        )
        for block in self.blocks.values():
            last = program.instructions[block.end - 1]
            succs: List[int] = []
            if last.is_return:
                pass
            elif last.mnemonic == "jmp":
                if last.indirect:
                    succs.extend(all_label_blocks)  # conservative
                    block.unknown_successors = True
                else:
                    target = self._direct_target(last)
                    if target is not None and target < n:
                        succs.append(target)
            elif last.is_conditional:
                target = self._direct_target(last)
                if target is not None and target < n:
                    succs.append(target)
                if block.end < n:
                    succs.append(block.end)
            else:
                if block.end < n:
                    succs.append(block.end)
            block.successors = sorted(set(succs))
        for block in self.blocks.values():
            for succ in block.successors:
                self.blocks[succ].predecessors.append(block.start)

    # -- queries ----------------------------------------------------------------

    def reachable_from(self, entries) -> Set[int]:
        """Block start indices reachable from the given entry *instruction*
        indices (each is mapped to its containing block; indices outside the
        program are ignored). Used by forward dataflow solvers to seed their
        worklists and to distinguish dead blocks, which need pessimistic
        treatment, from analyzed ones."""
        n = len(self.program.instructions)
        seen: Set[int] = set()
        stack: List[int] = []
        for index in entries:
            if 0 <= index < n:
                start = self.block_of(index).start
                if start not in seen:
                    seen.add(start)
                    stack.append(start)
        while stack:
            node = stack.pop()
            for succ in self.blocks[node].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def block_of(self, index: int) -> BasicBlock:
        starts = sorted(self.blocks)
        lo, hi = 0, len(starts) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            block = self.blocks[starts[mid]]
            if block.start <= index < block.end:
                return block
            if index < block.start:
                hi = mid - 1
            else:
                lo = mid + 1
        raise KeyError(f"no block containing instruction {index}")

    def reverse_postorder(self) -> List[int]:
        seen: Set[int] = set()
        order: List[int] = []

        def visit(start: int):
            stack = [(start, iter(self.blocks[start].successors))]
            seen.add(start)
            while stack:
                node, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].successors)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        for start in sorted(self.blocks):
            if start not in seen:
                visit(start)
        order.reverse()
        return order
