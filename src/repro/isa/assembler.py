"""AT&T-syntax assembler for the virtual ISA.

The paper's toolchain compiles the Linux driver to assembly and feeds the
assembly into an assembler-level rewriting tool. This module is our
assembler: it parses AT&T-flavoured text into a :class:`~repro.isa.program.
Program` that the rewriter, encoder and CPU interpreter all operate on.

Supported directives::

    .globl name          export a function symbol
    .comm  name, size    reserve zero-initialised data (allocated at load)
    # comment            (also ``;`` and trailing comments)

Assembler-time constants (struct field offsets such as ``SKB_LEN``) may be
supplied via ``constants=`` and are folded into displacements/immediates at
parse time, mimicking C-preprocessor offsets in real driver source.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Optional

from .instructions import (
    ALL_MNEMONICS,
    FLOW,
    JCC,
    STRING,
    Instruction,
)
from .operands import Imm, Label, Mem, Reg
from .program import Program
from .registers import is_register


class AssemblerError(ValueError):
    """Raised on any parse failure, with a line number."""


_SUFFIXES = {"b": 1, "w": 2, "l": 4}

_TOKEN_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")


def _split_operands(text: str) -> list:
    """Split an operand list on commas not inside parentheses."""
    parts, depth, cur = [], 0, ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur.strip())
            cur = ""
        else:
            cur += ch
    if cur.strip():
        parts.append(cur.strip())
    return parts


class Assembler:
    """Parses assembly text into :class:`Program` objects."""

    def __init__(self, constants: Optional[Dict[str, int]] = None):
        self.constants = dict(constants or {})

    # -- expressions ----------------------------------------------------------

    def _eval_term(self, term: str, line: int) -> tuple:
        """Evaluate a single term to (value, symbol)."""
        term = term.strip()
        if not term:
            raise AssemblerError(f"line {line}: empty expression term")
        neg = False
        if term.startswith("-"):
            neg, term = True, term[1:].strip()
        if term in self.constants:
            value, symbol = self.constants[term], None
        elif re.fullmatch(r"0[xX][0-9a-fA-F]+|\d+", term):
            value, symbol = int(term, 0), None
        elif _TOKEN_RE.match(term):
            value, symbol = 0, term
        else:
            raise AssemblerError(f"line {line}: bad expression term {term!r}")
        if neg:
            if symbol is not None:
                raise AssemblerError(f"line {line}: cannot negate symbol")
            value = -value
        return value, symbol

    def eval_expr(self, text: str, line: int) -> tuple:
        """Evaluate ``a+b-c`` style expressions to (value, symbol|None)."""
        # Normalise "a-b" into "a+-b" so we can split on '+'.
        text = text.strip().replace("-", "+-")
        if text.startswith("+-"):
            text = text[1:]
        value, symbol = 0, None
        for term in text.split("+"):
            if not term:
                continue
            tval, tsym = self._eval_term(term, line)
            value += tval
            if tsym is not None:
                if symbol is not None:
                    raise AssemblerError(
                        f"line {line}: more than one symbol in expression"
                    )
                symbol = tsym
        return value, symbol

    # -- operands -------------------------------------------------------------

    def parse_operand(self, text: str, line: int):
        text = text.strip()
        if text.startswith("$"):
            value, symbol = self.eval_expr(text[1:], line)
            return Imm(value=value, symbol=symbol)
        if text.startswith("%"):
            name = text[1:]
            if not is_register(name):
                raise AssemblerError(f"line {line}: unknown register {name!r}")
            return Reg(name)
        if "(" in text:
            pre, _, rest = text.partition("(")
            inner, _, after = rest.partition(")")
            if after.strip():
                raise AssemblerError(f"line {line}: junk after ')' in {text!r}")
            disp, symbol = (0, None)
            if pre.strip():
                disp, symbol = self.eval_expr(pre, line)
            parts = [p.strip() for p in inner.split(",")]
            base = index = None
            scale = 1
            if parts and parts[0]:
                if not parts[0].startswith("%"):
                    raise AssemblerError(f"line {line}: bad base in {text!r}")
                base = parts[0][1:]
            if len(parts) >= 2 and parts[1]:
                if not parts[1].startswith("%"):
                    raise AssemblerError(f"line {line}: bad index in {text!r}")
                index = parts[1][1:]
            if len(parts) >= 3 and parts[2]:
                scale = int(parts[2], 0)
            return Mem(disp=disp, base=base, index=index, scale=scale,
                       symbol=symbol)
        # bare expression: absolute memory reference or branch target;
        # disambiguated by the caller (branch targets become Labels).
        value, symbol = self.eval_expr(text, line)
        return Mem(disp=value, symbol=symbol)

    # -- instructions -----------------------------------------------------------

    def parse_instruction(self, text: str, line: int) -> Instruction:
        prefix = None
        parts = text.split(None, 1)
        word = parts[0]
        if word in ("rep", "repe", "repz", "repne", "repnz"):
            prefix = {"repz": "repe", "repnz": "repne"}.get(word, word)
            if len(parts) < 2:
                raise AssemblerError(f"line {line}: dangling prefix {word!r}")
            text = parts[1]
            parts = text.split(None, 1)
            word = parts[0]
        rest = parts[1] if len(parts) > 1 else ""

        mnemonic, size = self._parse_mnemonic(word, line)
        indirect = False

        if mnemonic in ("call", "jmp") and rest.strip().startswith("*"):
            indirect = True
            rest = rest.strip()[1:]

        raw_ops = _split_operands(rest) if rest.strip() else []
        operands = []
        for i, raw in enumerate(raw_ops):
            op = self.parse_operand(raw, line)
            # Direct branch targets parse as bare Mem(symbol=...); convert.
            if (
                mnemonic in FLOW
                and not indirect
                and isinstance(op, Mem)
                and op.is_absolute
                and op.symbol is not None
                and op.disp == 0
            ):
                op = Label(op.symbol)
            operands.append(op)

        instr = Instruction(
            mnemonic=mnemonic,
            operands=tuple(operands),
            size=size,
            prefix=prefix,
            indirect=indirect,
            line=line,
        )
        self._check_arity(instr, line)
        return instr

    def _parse_mnemonic(self, word: str, line: int) -> tuple:
        # movzbl / movzwl: zero-extending loads — the size is the *source*
        # width (must be resolved before generic suffix stripping).
        if word in ("movzbl", "movzb"):
            return "movzb", 1
        if word in ("movzwl", "movzw"):
            return "movzw", 2
        if word in ALL_MNEMONICS:  # suffix-less forms (jmp, ret, nop, ...)
            if word in STRING:
                raise AssemblerError(
                    f"line {line}: string instruction {word!r} needs a size "
                    "suffix"
                )
            return word, 4
        if word[:-1] in ALL_MNEMONICS and word[-1] in _SUFFIXES:
            base = word[:-1]
            if base in FLOW or base in ("nop", "ret"):
                raise AssemblerError(f"line {line}: bad suffix on {base!r}")
            return base, _SUFFIXES[word[-1]]
        raise AssemblerError(f"line {line}: unknown mnemonic {word!r}")

    def _check_arity(self, instr: Instruction, line: int):
        two_ops = {"mov", "lea", "add", "sub", "and", "or", "xor", "imul",
                   "cmp", "test", "shl", "shr", "sar", "xchg", "movzb",
                   "movzw", "movsx"}
        one_op = {"push", "pop", "inc", "dec", "neg", "not", "call", "jmp"}
        zero_op = {"ret", "nop", "int3", "ud2", "hlt", "pushf", "popf",
                   "cld", "std", "sti", "cli"} | STRING
        n = len(instr.operands)
        if instr.mnemonic in two_ops and n != 2:
            raise AssemblerError(
                f"line {line}: {instr.mnemonic} expects 2 operands, got {n}"
            )
        if instr.mnemonic in one_op and n != 1:
            raise AssemblerError(
                f"line {line}: {instr.mnemonic} expects 1 operand, got {n}"
            )
        if instr.mnemonic in JCC and n != 1:
            raise AssemblerError(f"line {line}: {instr.mnemonic} expects a target")
        if instr.mnemonic in zero_op and n != 0:
            raise AssemblerError(
                f"line {line}: {instr.mnemonic} takes no operands"
            )
        mems = [op for op in instr.operands if isinstance(op, Mem)]
        if len(mems) > 1:
            raise AssemblerError(f"line {line}: two memory operands")

    # -- whole files -------------------------------------------------------------

    def assemble(self, text: str, name: str = "program") -> Program:
        instructions = []
        labels: Dict[str, int] = {}
        globals_: list = []
        comm: Dict[str, int] = {}

        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line:
                continue
            while line.endswith(":") or (":" in line and _TOKEN_RE.match(
                    line.split(":", 1)[0].strip())):
                label, _, line = line.partition(":")
                label = label.strip()
                if not _TOKEN_RE.match(label):
                    raise AssemblerError(f"line {lineno}: bad label {label!r}")
                if label in labels:
                    raise AssemblerError(
                        f"line {lineno}: duplicate label {label!r}"
                    )
                labels[label] = len(instructions)
                line = line.strip()
                if not line:
                    break
            if not line:
                continue
            if line.startswith(".globl") or line.startswith(".global"):
                globals_.append(line.split(None, 1)[1].strip())
                continue
            if line.startswith(".comm"):
                body = line.split(None, 1)[1]
                sym, _, size_text = body.partition(",")
                value, symbol = self.eval_expr(size_text, lineno)
                if symbol is not None:
                    raise AssemblerError(
                        f"line {lineno}: .comm size must be constant"
                    )
                comm[sym.strip()] = value
                continue
            if line.startswith("."):
                raise AssemblerError(
                    f"line {lineno}: unsupported directive {line.split()[0]!r}"
                )
            instructions.append(self.parse_instruction(line, lineno))

        program = Program(
            instructions=instructions,
            labels=labels,
            globals_=tuple(globals_),
            comm=comm,
            name=name,
        )
        self._check_branch_targets(program)
        return program

    def _check_branch_targets(self, program: Program):
        defined = program.defined_symbols()
        for instr in program.instructions:
            if instr.is_jump and not instr.indirect:
                target = instr.operands[0]
                if isinstance(target, Label) and target.name not in defined:
                    raise AssemblerError(
                        f"line {instr.line}: undefined jump target "
                        f"{target.name!r}"
                    )


def assemble(text: str, constants: Optional[Dict[str, int]] = None,
             name: str = "program") -> Program:
    """Convenience wrapper: assemble ``text`` into a :class:`Program`."""
    return Assembler(constants=constants).assemble(text, name=name)
