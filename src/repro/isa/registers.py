"""Register definitions for the 32-bit virtual ISA.

The ISA mirrors the ia32 general-purpose register file that the paper's
rewriter works with: eight 32-bit registers plus the flags register. The
rewriter (``repro.core.rewriter``) needs to reason about which registers an
instruction reads and writes and which are free at a given program point, so
the helpers here are deliberately explicit.
"""

from __future__ import annotations

# General purpose registers, in ia32 encoding order.
GPRS = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")

#: Registers the rewriter may never allocate as scratch: the stack pointer
#: and frame pointer anchor stack-relative accesses which SVM leaves alone.
RESERVED = ("esp", "ebp")

#: Registers eligible to be SVM scratch registers.
ALLOCATABLE = tuple(r for r in GPRS if r not in RESERVED)

#: Sub-register names (low byte / low word) mapped to their parent register.
SUBREGISTERS = {
    "al": "eax", "ax": "eax",
    "cl": "ecx", "cx": "ecx",
    "dl": "edx", "dx": "edx",
    "bl": "ebx", "bx": "ebx",
    "si": "esi", "di": "edi",
}

REG_INDEX = {name: i for i, name in enumerate(GPRS)}

#: Caller-saved registers under the cdecl-like convention used by the toy
#: kernel ABI; a call may clobber these.
CALLER_SAVED = ("eax", "ecx", "edx")
CALLEE_SAVED = ("ebx", "esi", "edi", "ebp")


def parent_register(name: str) -> str:
    """Return the full 32-bit register backing ``name`` (identity for GPRs)."""
    if name in REG_INDEX:
        return name
    if name in SUBREGISTERS:
        return SUBREGISTERS[name]
    raise ValueError(f"unknown register {name!r}")


def is_register(name: str) -> bool:
    """True if ``name`` names a GPR or a sub-register of one."""
    return name in REG_INDEX or name in SUBREGISTERS
