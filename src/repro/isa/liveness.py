"""Register liveness analysis.

Paper §4.1, footnote 3: *"we avoid the cost of spilling registers most of
the time by doing a register liveness analysis to determine the set of
free registers available at each instruction."* This module is that
analysis: a standard backward may-analysis over the CFG.

Conservatism rules (soundness over precision — a wrongly-"free" register
would corrupt driver state, a wrongly-"live" one only costs a spill):

* at a ``ret``, the return value (eax) and all callee-saved registers are
  assumed live;
* across a ``call``, callee-saved registers and any argument registers are
  kept live via the call's read set plus callee-saved forced live-through;
* indirect control flow falls back to "everything live".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from .cfg import ControlFlowGraph
from .program import Program
from .registers import ALLOCATABLE, CALLEE_SAVED, GPRS

ALL_REGS = frozenset(GPRS)
_RET_LIVE = frozenset(("eax",)) | frozenset(CALLEE_SAVED) | frozenset(("esp", "ebp"))


class LivenessAnalysis:
    """Computes live-in sets per instruction index for a program."""

    def __init__(self, program: Program):
        self.program = program
        self.cfg = ControlFlowGraph(program)
        self.live_in: List[FrozenSet[str]] = [frozenset()] * len(program)
        self.live_out: List[FrozenSet[str]] = [frozenset()] * len(program)
        self._solve()

    def _transfer(self, index: int, live_out: FrozenSet[str]) -> FrozenSet[str]:
        instr = self.program.instructions[index]
        if instr.is_return:
            live_out = live_out | _RET_LIVE
        reads = instr.registers_read()
        writes = instr.registers_written()
        if instr.is_call:
            # Callee-saved registers survive the call; treat them as read so
            # they stay live through it, and keep esp live always.
            reads = reads | (live_out & frozenset(CALLEE_SAVED))
            reads = reads | frozenset(("esp",))
        live_in = (live_out - writes) | reads
        return live_in

    def _block_live_out(self, block_start: int,
                        block_live_in: Dict[int, FrozenSet[str]]) -> FrozenSet[str]:
        block = self.cfg.blocks[block_start]
        last = self.program.instructions[block.end - 1]
        if block.unknown_successors:
            return ALL_REGS  # conservative CFG: targets unknown
        out: FrozenSet[str] = frozenset()
        for succ in block.successors:
            out |= block_live_in.get(succ, frozenset())
        if not block.successors and not last.is_return:
            # Falls off the end of the program (e.g. into another function's
            # label in the same unit): assume everything live.
            out = ALL_REGS
        return out

    def _solve(self):
        program = self.program
        if not program.instructions:
            return
        block_live_in: Dict[int, FrozenSet[str]] = {
            start: frozenset() for start in self.cfg.blocks
        }
        changed = True
        order = self.cfg.reverse_postorder()
        while changed:
            changed = False
            for start in reversed(order):
                block = self.cfg.blocks[start]
                live = self._block_live_out(start, block_live_in)
                for index in reversed(range(block.start, block.end)):
                    live = self._transfer(index, live)
                if live != block_live_in[start]:
                    block_live_in[start] = live
                    changed = True
        # Final pass: record per-instruction sets.
        for start, block in self.cfg.blocks.items():
            live = self._block_live_out(start, block_live_in)
            for index in reversed(range(block.start, block.end)):
                self.live_out[index] = live
                live = self._transfer(index, live)
                self.live_in[index] = live

    # -- rewriter interface -------------------------------------------------------

    def free_registers_at(self, index: int) -> tuple:
        """Allocatable registers that are dead at ``index`` and not used by
        the instruction itself — safe SVM scratch registers."""
        instr = self.program.instructions[index]
        busy = (
            self.live_in[index]
            | self.live_out[index]
            | instr.registers_read()
            | instr.registers_written()
        )
        return tuple(r for r in ALLOCATABLE if r not in busy)
