"""Virtual 32-bit x86-like ISA: the substrate the rewriter operates on.

Public surface:

* :func:`assemble` -- AT&T-syntax text -> :class:`Program`
* :class:`Program` -- instruction stream + symbol tables
* :class:`Instruction`, operand types :class:`Imm`/:class:`Reg`/:class:`Mem`/
  :class:`Label`
* :mod:`~repro.isa.encoder` -- binary encode/decode and address layout
* :class:`ControlFlowGraph`, :class:`LivenessAnalysis` -- rewriter analyses
"""

from .assembler import Assembler, AssemblerError, assemble
from .cfg import BasicBlock, ControlFlowGraph
from .encoder import (
    code_size,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    instruction_length,
    layout,
)
from .instructions import (
    JCC,
    READS_FLAGS,
    STRING,
    WRITES_FLAGS,
    DefUse,
    Instruction,
)
from .liveness import LivenessAnalysis
from .operands import Imm, Label, Mem, Reg
from .program import Program
from .registers import ALLOCATABLE, CALLEE_SAVED, CALLER_SAVED, GPRS

__all__ = [
    "ALLOCATABLE",
    "Assembler",
    "AssemblerError",
    "BasicBlock",
    "CALLEE_SAVED",
    "CALLER_SAVED",
    "ControlFlowGraph",
    "DefUse",
    "GPRS",
    "Imm",
    "Instruction",
    "JCC",
    "Label",
    "LivenessAnalysis",
    "Mem",
    "Program",
    "READS_FLAGS",
    "Reg",
    "STRING",
    "WRITES_FLAGS",
    "assemble",
    "code_size",
    "decode_instruction",
    "decode_program",
    "encode_instruction",
    "encode_program",
    "instruction_length",
    "layout",
]
