"""Instruction model and static classification tables.

Instructions carry a mnemonic (without size suffix), an operand size in
bytes, a tuple of operands, and optional prefixes (``rep``/``repe``/
``repne`` for string instructions, ``*`` indirection for call/jmp).

The classification helpers answer the questions the rewriter and the
liveness analysis need:

* which registers does this instruction read / write,
* does it touch memory through a non-stack operand,
* does it read or write the flags register,
* is it a control transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .operands import Imm, Label, Mem, Reg
from .registers import parent_register

# ---------------------------------------------------------------------------
# Mnemonic groups
# ---------------------------------------------------------------------------

#: src, dst two-operand ALU instructions that write flags and dst.
ALU2 = {"add", "sub", "and", "or", "xor", "imul"}
#: two-operand instructions that write flags only.
CMP2 = {"cmp", "test"}
#: shifts: count (imm or %cl), dst.
SHIFTS = {"shl", "shr", "sar"}
#: single-operand read-modify-write, set flags.
ALU1 = {"inc", "dec", "neg", "not"}
#: data movement (no flags).
MOVES = {"mov", "lea", "xchg", "movzb", "movzw", "movsx"}
STACK = {"push", "pop", "pushf", "popf"}
#: conditional jumps -> flag reads.
JCC = {
    "je", "jne", "jz", "jnz", "jl", "jle", "jg", "jge",
    "jb", "jbe", "ja", "jae", "js", "jns",
}
FLOW = {"jmp", "call", "ret"} | JCC
STRING = {"movs", "stos", "lods", "cmps", "scas"}
MISC = {"nop", "int3", "ud2", "hlt", "cld", "std", "sti", "cli"}

ALL_MNEMONICS = ALU2 | CMP2 | SHIFTS | ALU1 | MOVES | STACK | FLOW | STRING | MISC

#: Instructions whose execution writes the flags register.
WRITES_FLAGS = ALU2 | CMP2 | SHIFTS | ALU1 | {"popf", "cmps", "scas", "cld", "std"}
#: Instructions whose semantics read the flags register.
READS_FLAGS = JCC | {"pushf"}

#: Implicit register usage of string instructions (per ia32).
STRING_IMPLICIT_READS = {
    "movs": ("esi", "edi"),
    "stos": ("edi", "eax"),
    "lods": ("esi",),
    "cmps": ("esi", "edi"),
    "scas": ("edi", "eax"),
}
STRING_IMPLICIT_WRITES = {
    "movs": ("esi", "edi"),
    "stos": ("edi",),
    "lods": ("esi", "eax"),
    "cmps": ("esi", "edi"),
    "scas": ("edi",),
}


@dataclass(frozen=True)
class DefUse:
    """Register/flags def-use summary of one instruction."""

    reads: frozenset
    writes: frozenset
    reads_flags: bool
    writes_flags: bool


@dataclass(frozen=True)
class Instruction:
    """One assembled instruction.

    ``size`` is the operand width in bytes (1, 2 or 4, from the AT&T
    suffix). ``prefix`` is one of ``None``/``"rep"``/``"repe"``/``"repne"``.
    ``indirect`` marks ``call *``/``jmp *`` forms.
    """

    mnemonic: str
    operands: tuple = ()
    size: int = 4
    prefix: Optional[str] = None
    indirect: bool = False
    line: int = 0

    def __post_init__(self):
        if self.mnemonic not in ALL_MNEMONICS:
            raise ValueError(f"unknown mnemonic {self.mnemonic!r}")
        if self.size not in (1, 2, 4):
            raise ValueError(f"bad operand size {self.size!r}")

    # -- operand helpers ----------------------------------------------------

    @property
    def src(self):
        return self.operands[0] if self.operands else None

    @property
    def dst(self):
        return self.operands[-1] if self.operands else None

    def memory_operand(self) -> Optional[Mem]:
        """The (single) explicit memory operand, if any."""
        for op in self.operands:
            if isinstance(op, Mem):
                return op
        return None

    @property
    def is_string(self) -> bool:
        return self.mnemonic in STRING

    @property
    def is_call(self) -> bool:
        return self.mnemonic == "call"

    @property
    def is_jump(self) -> bool:
        return self.mnemonic == "jmp" or self.mnemonic in JCC

    @property
    def is_conditional(self) -> bool:
        return self.mnemonic in JCC

    @property
    def is_return(self) -> bool:
        return self.mnemonic == "ret"

    @property
    def is_control_flow(self) -> bool:
        return self.mnemonic in FLOW

    @property
    def writes_flags(self) -> bool:
        return self.mnemonic in WRITES_FLAGS

    @property
    def reads_flags(self) -> bool:
        if self.mnemonic in READS_FLAGS:
            return True
        # A repe/repne prefix terminates on flag state set by the string op
        # itself, not on incoming flags, so it does not *read* flags.
        return False

    # -- register usage -----------------------------------------------------

    def registers_read(self) -> frozenset:
        """Registers whose incoming value this instruction may consume."""
        read = set()
        if self.is_string:
            read.update(STRING_IMPLICIT_READS[self.mnemonic])
            if self.prefix is not None:
                read.add("ecx")
            return frozenset(read)
        mem = self.memory_operand()
        if mem is not None:
            read.update(mem.registers())
        if self.mnemonic in ("push", "call", "jmp") or self.mnemonic in JCC:
            if isinstance(self.src, Reg):
                read.add(self.src.parent)
            if self.mnemonic in ("push", "call", "jmp"):
                read.add("esp") if self.mnemonic in ("push", "call") else None
        elif self.mnemonic == "pop":
            read.add("esp")
        elif self.mnemonic in ("pushf", "popf", "ret"):
            read.add("esp")
        elif self.mnemonic == "lea":
            pass  # address registers were added via mem.registers()
        elif self.mnemonic in ("mov", "movzb", "movzw", "movsx"):
            if isinstance(self.src, Reg):
                read.add(self.src.parent)
            # mov to a sub-register preserves the rest of the parent, and a
            # 1/2-byte store reads only part of the source: treat the
            # destination parent as read for partial-width writes.
            if isinstance(self.dst, Reg) and self.size < 4:
                read.add(self.dst.parent)
        elif self.mnemonic == "xchg":
            for op in self.operands:
                if isinstance(op, Reg):
                    read.add(op.parent)
        elif self.mnemonic in ALU2 | CMP2:
            for op in self.operands:
                if isinstance(op, Reg):
                    read.add(op.parent)
        elif self.mnemonic in SHIFTS:
            if isinstance(self.src, Reg):
                read.add(self.src.parent)  # %cl count
            if isinstance(self.dst, Reg):
                read.add(self.dst.parent)
        elif self.mnemonic in ALU1:
            if isinstance(self.dst, Reg):
                read.add(self.dst.parent)
        return frozenset(read)

    def registers_written(self) -> frozenset:
        """Registers this instruction overwrites (fully or partially)."""
        written = set()
        if self.is_string:
            written.update(STRING_IMPLICIT_WRITES[self.mnemonic])
            if self.prefix is not None:
                written.add("ecx")
            return frozenset(written)
        if self.mnemonic in ("push", "pop", "pushf", "popf", "call", "ret"):
            written.add("esp")
            if self.mnemonic == "pop" and isinstance(self.dst, Reg):
                written.add(self.dst.parent)
            if self.mnemonic == "call":
                # toy ABI: a call may clobber the caller-saved registers
                written.update(("eax", "ecx", "edx"))
            return frozenset(written)
        if self.mnemonic in ("mov", "lea", "movzb", "movzw", "movsx") or (
            self.mnemonic in ALU2 | SHIFTS | ALU1
        ):
            if isinstance(self.dst, Reg):
                written.add(self.dst.parent)
        elif self.mnemonic == "xchg":
            for op in self.operands:
                if isinstance(op, Reg):
                    written.add(op.parent)
        return frozenset(written)

    def defs_uses(self) -> "DefUse":
        """Complete def/use summary: the metadata an external analysis
        (e.g. the static driver verifier) needs without re-deriving the
        classification tables."""
        return DefUse(
            reads=self.registers_read(),
            writes=self.registers_written(),
            reads_flags=self.reads_flags,
            writes_flags=self.writes_flags,
        )

    # -- memory classification ----------------------------------------------

    def memory_access_kind(self) -> Optional[str]:
        """How this instruction touches its explicit memory operand.

        Returns ``None`` (no access), ``"read"``, ``"write"`` or ``"rw"``.
        ``lea`` computes an address without touching memory, so it returns
        ``None`` — the paper's rewriter likewise leaves ``lea`` alone.
        """
        if self.is_string:
            return "rw"  # handled specially by the rewriter
        mem = self.memory_operand()
        if mem is None or self.mnemonic == "lea":
            return None
        if self.mnemonic in ("mov", "movzb", "movzw", "movsx"):
            return "write" if mem is self.dst else "read"
        if self.mnemonic in CMP2:
            return "read"
        if self.mnemonic in ("push",):
            return "read"
        if self.mnemonic in ("pop",):
            return "write"
        if self.mnemonic in ALU2 | SHIFTS:
            return "rw" if mem is self.dst else "read"
        if self.mnemonic in ALU1:
            return "rw"
        if self.mnemonic in ("call", "jmp"):
            return "read"  # indirect through memory
        if self.mnemonic == "xchg":
            return "rw"
        return None

    # -- formatting ----------------------------------------------------------

    def format(self) -> str:
        suffix = {1: "b", 2: "w", 4: "l"}[self.size]
        name = self.mnemonic
        if name in ("nop", "ret", "int3", "ud2", "hlt", "pushf", "popf",
                    "cld", "std", "sti", "cli") or name in FLOW and name != "call":
            text = name
        elif name in STRING:
            text = name + suffix
        elif name in ("movzb", "movzw", "movsx"):
            text = name
        else:
            text = name + suffix
        if name == "call" or name == "jmp" or name in JCC:
            text = name
        if self.prefix:
            text = f"{self.prefix} {text}"
        ops = ", ".join(
            ("*" + op.format())
            if self.indirect and i == 0 and name in ("call", "jmp")
            else op.format()
            for i, op in enumerate(self.operands)
        )
        return f"{text} {ops}".strip()

    def replaced(self, **kw) -> "Instruction":
        return replace(self, **kw)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.format()
