"""Program container: an assembled unit of instructions plus symbol tables.

A :class:`Program` is the unit the rewriter transforms and the loaders lay
out in memory. It deliberately mirrors what an object file gives a binary
rewriting tool:

* ``instructions`` — the instruction stream,
* ``labels`` — name -> instruction index (functions and local labels),
* ``globals_`` — exported function symbols,
* ``comm`` — BSS-style data symbols (name -> size) the loader must allocate,
* ``imports`` — function symbols the loader must bind (support routines).

Symbolic operands (``Mem.symbol`` / ``Imm.symbol``) referring to data or
code are resolved at load time via :meth:`resolve`, which returns a new
program with displacements folded — the analogue of relocation processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .instructions import Instruction
from .operands import Imm, Label, Mem


@dataclass
class Program:
    """An assembled unit: instructions, labels, globals, BSS symbols."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    globals_: tuple = ()
    comm: Dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self):
        self._validate_labels()

    def _validate_labels(self):
        for label, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise ValueError(f"label {label!r} out of range")

    # -- symbol queries -------------------------------------------------------

    def defined_symbols(self) -> frozenset:
        return frozenset(self.labels) | frozenset(self.comm)

    def imports(self) -> frozenset:
        """Function symbols referenced by call/jmp but not defined here."""
        defined = self.defined_symbols()
        needed = set()
        for instr in self.instructions:
            for op in instr.operands:
                if isinstance(op, Label) and op.name not in defined:
                    needed.add(op.name)
        return frozenset(needed)

    def data_symbols_referenced(self) -> frozenset:
        """Data symbols referenced through memory or immediate operands."""
        refs = set()
        for instr in self.instructions:
            for op in instr.operands:
                if isinstance(op, Mem) and op.symbol is not None:
                    refs.add(op.symbol)
                elif isinstance(op, Imm) and op.symbol is not None:
                    refs.add(op.symbol)
        return frozenset(refs)

    # -- transformations ------------------------------------------------------

    def resolve(self, symbols: Dict[str, int]) -> "Program":
        """Return a copy with symbolic displacements/immediates folded.

        ``symbols`` maps data/code symbol names to absolute addresses.
        Unknown symbols are left symbolic (they may be resolved by a later
        pass; the loader raises if any remain at execution time).
        """
        new_instrs = []
        for instr in self.instructions:
            ops = []
            changed = False
            for op in instr.operands:
                if isinstance(op, Mem) and op.symbol in symbols:
                    ops.append(op.with_symbol_resolved(symbols[op.symbol]))
                    changed = True
                elif isinstance(op, Imm) and op.symbol in symbols:
                    ops.append(Imm(op.value + symbols[op.symbol]))
                    changed = True
                else:
                    ops.append(op)
            new_instrs.append(
                instr.replaced(operands=tuple(ops)) if changed else instr
            )
        return Program(
            instructions=new_instrs,
            labels=dict(self.labels),
            globals_=self.globals_,
            comm=dict(self.comm),
            name=self.name,
        )

    def label_at(self, index: int) -> Optional[str]:
        for label, i in self.labels.items():
            if i == index:
                return label
        return None

    def to_text(self) -> str:
        """Regenerate assembly text (round-trips through the assembler)."""
        lines = []
        for sym in self.globals_:
            lines.append(f".globl {sym}")
        for sym, size in self.comm.items():
            lines.append(f".comm {sym}, {size}")
        by_index: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        for i, instr in enumerate(self.instructions):
            for label in sorted(by_index.get(i, ())):
                lines.append(f"{label}:")
            lines.append(f"    {instr.format()}")
        for label in sorted(by_index.get(len(self.instructions), ())):
            lines.append(f"{label}:")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        return len(self.instructions)
