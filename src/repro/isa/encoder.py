"""Binary encoder/decoder for the virtual ISA.

Programs are encodable to a compact variable-length binary object format
and decodable back (the disassembler direction). The paper's pipeline is
``driver binary -> disassemble -> rewrite -> reassemble``; ours keeps the
same shape: tests round-trip programs through these bytes, and the loaders
use the encoded lengths to lay instructions out at non-uniform addresses,
so code addresses behave like real ones.

The format is TLV-like per instruction:

* opcode byte (index into the sorted mnemonic table),
* a flags byte (size, prefix, indirection, operand count),
* per operand: a tag byte and payload. Unresolved symbols are carried as
  length-prefixed names — the analogue of relocation entries in an object
  file.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .instructions import ALL_MNEMONICS, Instruction
from .operands import Imm, Label, Mem, Reg
from .program import Program

_OPCODES = {name: i for i, name in enumerate(sorted(ALL_MNEMONICS))}
_MNEMONICS = {i: name for name, i in _OPCODES.items()}

_REG_NAMES = (
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "al", "cl", "dl", "bl", "ax", "cx", "dx", "bx", "si", "di",
)
_REG_IDS = {name: i for i, name in enumerate(_REG_NAMES)}

_SIZES = {1: 0, 2: 1, 4: 2}
_SIZES_BACK = {v: k for k, v in _SIZES.items()}
_PREFIXES = {None: 0, "rep": 1, "repe": 2, "repne": 3}
_PREFIXES_BACK = {v: k for k, v in _PREFIXES.items()}

_TAG_IMM, _TAG_REG, _TAG_MEM, _TAG_LABEL = range(4)
_SCALES = {1: 0, 2: 1, 4: 2, 8: 3}
_SCALES_BACK = {v: k for k, v in _SCALES.items()}


class EncodingError(ValueError):
    """An instruction or operand cannot be encoded/decoded."""

    pass


def _encode_name(name: str) -> bytes:
    raw = name.encode("ascii")
    if len(raw) > 255:
        raise EncodingError(f"symbol too long: {name!r}")
    return bytes([len(raw)]) + raw


def _decode_name(data: bytes, pos: int) -> Tuple[str, int]:
    n = data[pos]
    return data[pos + 1: pos + 1 + n].decode("ascii"), pos + 1 + n


def encode_instruction(instr: Instruction) -> bytes:
    out = bytearray()
    out.append(_OPCODES[instr.mnemonic])
    flags = (
        _SIZES[instr.size]
        | (1 << 2 if instr.indirect else 0)
        | (_PREFIXES[instr.prefix] << 3)
        | (len(instr.operands) << 5)
    )
    out.append(flags)
    for op in instr.operands:
        if isinstance(op, Imm):
            out.append(_TAG_IMM | (0x10 if op.symbol else 0))
            out += struct.pack("<i", op.value)
            if op.symbol:
                out += _encode_name(op.symbol)
        elif isinstance(op, Reg):
            out.append(_TAG_REG)
            out.append(_REG_IDS[op.name])
        elif isinstance(op, Mem):
            mflags = _TAG_MEM
            if op.base is not None:
                mflags |= 0x10
            if op.index is not None:
                mflags |= 0x20
            if op.symbol is not None:
                mflags |= 0x40
            out.append(mflags)
            out.append(_SCALES[op.scale])
            out += struct.pack("<i", op.disp)
            if op.base is not None:
                out.append(_REG_IDS[op.base])
            if op.index is not None:
                out.append(_REG_IDS[op.index])
            if op.symbol is not None:
                out += _encode_name(op.symbol)
        elif isinstance(op, Label):
            out.append(_TAG_LABEL)
            out += _encode_name(op.name)
        else:  # pragma: no cover - defensive
            raise EncodingError(f"cannot encode operand {op!r}")
    return bytes(out)


def decode_instruction(data: bytes, pos: int = 0) -> Tuple[Instruction, int]:
    mnemonic = _MNEMONICS[data[pos]]
    flags = data[pos + 1]
    size = _SIZES_BACK[flags & 0x3]
    indirect = bool(flags & 0x4)
    prefix = _PREFIXES_BACK[(flags >> 3) & 0x3]
    nops = flags >> 5
    pos += 2
    operands = []
    for _ in range(nops):
        tag = data[pos]
        kind = tag & 0x0F
        if kind == _TAG_IMM:
            value = struct.unpack("<i", data[pos + 1: pos + 5])[0]
            pos += 5
            symbol = None
            if tag & 0x10:
                symbol, pos = _decode_name(data, pos)
            operands.append(Imm(value=value, symbol=symbol))
        elif kind == _TAG_REG:
            operands.append(Reg(_REG_NAMES[data[pos + 1]]))
            pos += 2
        elif kind == _TAG_MEM:
            scale = _SCALES_BACK[data[pos + 1]]
            disp = struct.unpack("<i", data[pos + 2: pos + 6])[0]
            p = pos + 6
            base = index = symbol = None
            if tag & 0x10:
                base = _REG_NAMES[data[p]]
                p += 1
            if tag & 0x20:
                index = _REG_NAMES[data[p]]
                p += 1
            if tag & 0x40:
                symbol, p = _decode_name(data, p)
            pos = p
            operands.append(
                Mem(disp=disp, base=base, index=index, scale=scale,
                    symbol=symbol)
            )
        elif kind == _TAG_LABEL:
            name, pos2 = _decode_name(data, pos + 1)
            pos = pos2
            operands.append(Label(name))
        else:
            raise EncodingError(f"bad operand tag {tag:#x} at {pos}")
    instr = Instruction(
        mnemonic=mnemonic,
        operands=tuple(operands),
        size=size,
        prefix=prefix,
        indirect=indirect,
    )
    return instr, pos


def instruction_length(instr: Instruction) -> int:
    """Encoded byte length; the loaders use this for address layout."""
    return len(encode_instruction(instr))


def encode_program(program: Program) -> bytes:
    """Encode the instruction stream (symbol tables travel separately)."""
    out = bytearray()
    for instr in program.instructions:
        out += encode_instruction(instr)
    return bytes(out)


def decode_program(data: bytes, labels: Dict[str, int] | None = None,
                   name: str = "decoded") -> Program:
    instructions = []
    pos = 0
    while pos < len(data):
        instr, pos = decode_instruction(data, pos)
        instructions.append(instr)
    return Program(instructions=instructions, labels=dict(labels or {}),
                   name=name)


def layout(program: Program, base: int) -> List[int]:
    """Per-instruction addresses when the program is loaded at ``base``."""
    addrs = []
    addr = base
    for instr in program.instructions:
        addrs.append(addr)
        addr += instruction_length(instr)
    return addrs


def code_size(program: Program) -> int:
    return sum(instruction_length(i) for i in program.instructions)
