"""Operand model for the virtual ISA.

Operands follow AT&T conventions:

* ``Imm``   -- ``$42`` or ``$sym`` (symbolic immediates resolve at load time)
* ``Reg``   -- ``%eax``
* ``Mem``   -- ``disp(%base,%index,scale)`` with an optional symbol in place
  of (or added to) the displacement, e.g. ``stlb+4(%ecx)``
* ``Label`` -- branch/call target by name

A ``Mem`` operand with ``base`` of ``esp``/``ebp`` is considered
stack-relative; the SVM rewriter leaves those untouched, exactly as the
paper does for stack accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from .registers import RESERVED, is_register, parent_register


def _canon32(value: int) -> int:
    """Canonical signed 32-bit two's-complement representative.

    All address arithmetic in the ISA is mod 2**32; operands store the
    signed representative so encodings are compact and formatting of
    negative displacements stays readable."""
    return ((value + 0x80000000) & 0xFFFFFFFF) - 0x80000000


@dataclass(frozen=True)
class Imm:
    """Immediate operand; ``symbol`` defers the value to link time."""

    value: int = 0
    symbol: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "value", _canon32(self.value))

    def format(self) -> str:
        if self.symbol is not None:
            if self.value:
                return f"${self.symbol}+{self.value}"
            return f"${self.symbol}"
        return f"${self.value}"


@dataclass(frozen=True)
class Reg:
    """Register operand. ``name`` may be a sub-register like ``al``."""

    name: str

    def __post_init__(self):
        if not is_register(self.name):
            raise ValueError(f"unknown register {self.name!r}")

    @property
    def parent(self) -> str:
        return parent_register(self.name)

    def format(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Mem:
    """Memory operand ``symbol+disp(%base,%index,scale)``."""

    disp: int = 0
    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    symbol: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "disp", _canon32(self.disp))
        if self.base is not None and not is_register(self.base):
            raise ValueError(f"bad base register {self.base!r}")
        if self.index is not None and not is_register(self.index):
            raise ValueError(f"bad index register {self.index!r}")
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale!r}")

    @property
    def is_stack_relative(self) -> bool:
        """Paper rule: accesses based off the stack/frame pointer are not
        rewritten (the hypervisor instance has a private, guarded stack)."""
        return self.base in RESERVED

    @property
    def is_absolute(self) -> bool:
        return self.base is None and self.index is None

    def registers(self) -> tuple[str, ...]:
        regs = []
        if self.base is not None:
            regs.append(parent_register(self.base))
        if self.index is not None:
            regs.append(parent_register(self.index))
        return tuple(regs)

    def with_symbol_resolved(self, value: int) -> "Mem":
        """Fold a resolved symbol address into the displacement."""
        return replace(self, disp=self.disp + value, symbol=None)

    def format(self) -> str:
        out = ""
        if self.symbol is not None:
            out += self.symbol
            if self.disp:
                out += f"+{self.disp}" if self.disp > 0 else f"{self.disp}"
        elif self.disp or (self.base is None and self.index is None):
            out += str(self.disp)
        if self.base is not None or self.index is not None:
            out += "("
            if self.base is not None:
                out += f"%{self.base}"
            if self.index is not None:
                out += f",%{self.index},{self.scale}"
            out += ")"
        return out


@dataclass(frozen=True)
class Label:
    """Direct branch / call target."""

    name: str

    def format(self) -> str:
        return self.name


Operand = object  # union marker for type hints: Imm | Reg | Mem | Label
