"""Software Virtual Memory (paper §4.1): the stlb and its slow path.

The stlb is a 4096-entry hash table *in simulated memory*: the rewritten
driver's 10-instruction fast path (emitted by :mod:`~repro.core.rewriter`)
indexes it with real loads, compares the tag, and XORs the mapped entry
into the address. This module owns:

* the table memory and the Python-side hash chains (the slow path walks
  chains on collision, exactly as §4.1 describes);
* the miss handler ``__svm_slow_path``: permission check (the page must
  belong to dom0's address space), allocation of **two consecutive**
  hypervisor virtual pages (unaligned accesses may straddle a page), page
  mapping, and table fill;
* protection: any access outside dom0's address space raises
  :class:`SvmProtectionFault` — "the driver is aborted";
* the identity mode used when the same rewritten binary runs as the VM
  instance inside dom0 (§5.1.2: identity mappings, "runs a little slower").

Entry layout (8 bytes): ``[tag | xormap]`` where ``tag`` is the dom0 page
address and ``xormap = dom0_page ^ mapped_page``, so the fast path
computes ``translated = address ^ xormap``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..machine.machine import Machine
from ..machine.memory import PAGE_SIZE
from ..machine.paging import AddressSpace, HYPERVISOR_BASE, PageFault, PageTable
from ..obs.events import (
    SVM_FAULT,
    SVM_FILL,
    SVM_FLUSH,
    SVM_HIT,
    SVM_INVALIDATE,
    SVM_MISS,
)

STLB_ENTRIES = 4096
STLB_ENTRY_SIZE = 8
STLB_BYTES = STLB_ENTRIES * STLB_ENTRY_SIZE       # 32 KiB, maps 16 MiB
PAGE_ADDR_MASK = 0xFFFFF000
INDEX_MASK = 0x00FFF000

#: Empty-slot tag. Valid tags are page addresses (low 12 bits zero) and
#: the fast path compares the tag against a page-aligned register, so an
#: all-ones tag can never match — unlike 0, which is dom0 page 0's tag.
EMPTY_TAG = 0xFFFFFFFF

#: Default size of the hypervisor VA window SVM maps dom0 pages into.
SVM_MAP_WINDOW = 64 * 1024 * 1024


class SvmMapExhausted(Exception):
    """The SVM mapping window ran out of hypervisor virtual addresses."""

    def __init__(self, page: int, base: int, end: int):
        super().__init__(
            f"SVM map window exhausted mapping {page:#010x} "
            f"(window {base:#010x}-{end:#010x})"
        )
        self.page = page


class SvmProtectionFault(Exception):
    """The driver touched memory outside dom0's address space."""

    def __init__(self, vaddr: int, why: str = "outside dom0 address space"):
        super().__init__(
            f"SVM protection fault: driver access to {vaddr:#010x} ({why})"
        )
        self.vaddr = vaddr


class StackProtectionFault(SvmProtectionFault):
    """§4.5.1 extension: a variable-offset stack access fell outside the
    driver-stack window (a buffer overflow / stack smash)."""

    def __init__(self, esp: int):
        super().__init__(esp, "stack access outside the driver stack")


def stlb_index(vaddr: int, entries: int = STLB_ENTRIES) -> int:
    """Hash: the low bits of the page number (paper fig. 4 lines 5-6;
    12 bits for the paper's 4096-entry table)."""
    return (vaddr >> 12) & (entries - 1)


class SvmManager:
    """One stlb instance: either the hypervisor's or dom0's identity one."""

    def __init__(self, machine: Machine, table_addr: int,
                 protected_space: AddressSpace,
                 identity: bool = False,
                 map_base: int = 0,
                 name: str = "svm",
                 entries: int = STLB_ENTRIES,
                 map_size: int = SVM_MAP_WINDOW):
        """``protected_space`` is the address space the driver is allowed
        to touch (dom0). In identity mode no mappings are created and the
        xormap is always zero; otherwise dom0 pages are mapped pairwise at
        ``map_base`` upward in the shared hypervisor page table.
        ``entries`` sizes the hash table (power of two; the paper uses
        4096, mapping 16 MiB)."""
        if entries & (entries - 1):
            raise ValueError("stlb entries must be a power of two")
        self.machine = machine
        self.entries = entries
        self.table_addr = table_addr
        self.protected_space = protected_space
        self.identity = identity
        self.map_base = map_base
        self.map_end = map_base + map_size
        self.name = name
        self._next_map = map_base
        #: full chain: dom0 page address -> xormap (survives hash eviction)
        self.chains: Dict[int, int] = {}
        #: dom0 page -> hypervisor page actually mapped (non-identity)
        self.mappings: Dict[int, int] = {}
        #: hypervisor page -> owning dom0 page (primary mappings only)
        self._va_owner: Dict[int, int] = {}
        #: dom0 pages whose VA was carved out of a neighbour's pair
        self._extended: set = set()
        #: reclaimed two-page chunks available for reallocation
        self._free_pairs: list = []
        #: pending injected faults (test hook; see inject_fault)
        self._inject_faults = 0
        # counters live in the machine-wide metrics registry under
        # ``svm.<name>.*`` (misses/hits/... stay readable as attributes)
        registry = machine.obs.registry
        self._tracer = machine.obs.tracer
        self._c_miss = registry.counter(f"svm.{name}.miss")
        self._c_hit = registry.counter(f"svm.{name}.hit")
        self._c_collision = registry.counter(f"svm.{name}.collision")
        self._c_eviction = registry.counter(f"svm.{name}.eviction")
        self._c_fault = registry.counter(f"svm.{name}.fault")
        self._c_flush = registry.counter(f"svm.{name}.flush")
        self._c_invalidate = registry.counter(f"svm.{name}.invalidate")
        self._c_reclaim = registry.counter(f"svm.{name}.reclaim")
        #: stlb checks skipped at runtime because the verifier proved the
        #: site's address stays inside an anchor's checked page pair
        #: (see :func:`repro.core.rewriter.apply_elision`).
        self._c_elided = registry.counter(f"svm.{name}.elided")
        self._table_space = AddressSpace(
            f"{name}-table", machine.phys, machine.hypervisor_table
        )
        self._reset_table()

    # -- counter views (registry-backed) ------------------------------------------

    @property
    def misses(self) -> int:
        return self._c_miss.value

    @property
    def hits(self) -> int:
        """Explicit stlb lookups (support routines / SvmView) answered
        without running the slow path."""
        return self._c_hit.value

    @property
    def collisions(self) -> int:
        return self._c_collision.value

    @property
    def evictions(self) -> int:
        return self._c_eviction.value

    @property
    def protection_faults(self) -> int:
        return self._c_fault.value

    @property
    def flushes(self) -> int:
        return self._c_flush.value

    def counters_snapshot(self) -> Dict[str, int]:
        """This instance's registry counters (``svm.<name>.*``)."""
        return {
            "miss": self._c_miss.value,
            "hit": self._c_hit.value,
            "collision": self._c_collision.value,
            "eviction": self._c_eviction.value,
            "fault": self._c_fault.value,
            "flush": self._c_flush.value,
            "invalidate": self._c_invalidate.value,
            "reclaim": self._c_reclaim.value,
            "elided": self._c_elided.value,
        }

    @property
    def elided(self) -> int:
        """Runtime stlb lookups avoided via proof-based check elision."""
        return self._c_elided.value

    # -- table memory -------------------------------------------------------------

    def _table_mem(self) -> AddressSpace:
        # The table may live in dom0 space (identity instance) or in the
        # hypervisor region; both are reachable through protected_space
        # combined with the shared hypervisor table.
        if self.table_addr >= HYPERVISOR_BASE:
            return self._table_space
        return self.protected_space

    def _reset_table(self):
        """Mark every entry empty (tag = EMPTY_TAG, xormap = 0)."""
        mem = self._table_mem()
        nbytes = self.entries * STLB_ENTRY_SIZE
        empty = EMPTY_TAG.to_bytes(4, "little") + b"\x00\x00\x00\x00"
        chunk = empty * (PAGE_SIZE // STLB_ENTRY_SIZE)
        for off in range(0, nbytes, PAGE_SIZE):
            mem.write_bytes(self.table_addr + off,
                            chunk[: min(PAGE_SIZE, nbytes - off)])

    def _write_entry(self, index: int, tag: int, xormap: int):
        mem = self._table_mem()
        mem.write_u32(self.table_addr + index * STLB_ENTRY_SIZE, tag)
        mem.write_u32(self.table_addr + index * STLB_ENTRY_SIZE + 4, xormap)

    def read_entry(self, index: int) -> Tuple[int, int]:
        mem = self._table_mem()
        return (
            mem.read_u32(self.table_addr + index * STLB_ENTRY_SIZE),
            mem.read_u32(self.table_addr + index * STLB_ENTRY_SIZE + 4),
        )

    def flush(self):
        """Invalidate every translation. The hash table *and* the Python
        chains are cleared, so every re-translation goes back through the
        slow path and re-runs the dom0 permission check; the hypervisor VA
        mappings are kept cached and reused (with their frames
        re-translated) when pages come back."""
        self._c_flush.value += 1
        if self._tracer.enabled:
            self._tracer.emit(SVM_FLUSH, stlb=self.name,
                              entries=self.entries)
        self._reset_table()
        self.chains.clear()

    def invalidate(self, vaddr: int):
        """Drop one page's translation and reclaim its mapping chunk when
        it is a standalone pair no neighbour extension depends on."""
        page = vaddr & PAGE_ADDR_MASK
        self._c_invalidate.value += 1
        if self._tracer.enabled:
            self._tracer.emit(SVM_INVALIDATE, stlb=self.name, page=page)
        self.chains.pop(page, None)
        index = stlb_index(page, self.entries)
        tag, _ = self.read_entry(index)
        if tag == page:
            self._write_entry(index, EMPTY_TAG, 0)
        hyp_page = self.mappings.pop(page, None)
        if hyp_page is None or self.identity:
            return
        self._va_owner.pop(hyp_page, None)
        if page in self._extended:
            # the VA was carved out of a neighbour's pair: not reclaimable
            # as a standalone chunk, just forget the ownership.
            self._extended.discard(page)
            return
        if hyp_page + PAGE_SIZE in self._va_owner:
            # another page's primary mapping extends into this chunk
            return
        table: PageTable = self.machine.hypervisor_table
        for va in (hyp_page, hyp_page + PAGE_SIZE):
            if table.lookup(va >> 12) is not None:
                table.unmap(va >> 12)
        self._free_pairs.append(hyp_page)
        self._c_reclaim.value += 1

    def invalidate_all(self):
        """Full teardown: no translation, chain, or hypervisor mapping
        survives. Used by recovery to quarantine a faulted instance."""
        self._c_invalidate.value += 1
        if self._tracer.enabled:
            self._tracer.emit(SVM_INVALIDATE, stlb=self.name, page=None,
                              full=True)
        self._reset_table()
        self.chains.clear()
        if not self.identity:
            table: PageTable = self.machine.hypervisor_table
            page = self.map_base
            while page < self._next_map:
                if table.lookup(page >> 12) is not None:
                    table.unmap(page >> 12)
                page += PAGE_SIZE
        self.mappings.clear()
        self._va_owner.clear()
        self._extended.clear()
        self._free_pairs.clear()
        self._next_map = self.map_base

    # -- fault injection (tests / fault-injection demos) -------------------------

    def inject_fault(self, count: int = 1):
        """Arm ``count`` one-shot transient protection faults: the next
        ``count`` slow-path translations raise ``SvmProtectionFault`` as
        if the permission check had failed."""
        self._inject_faults += count

    def _maybe_inject(self, vaddr: int):
        if self._inject_faults > 0:
            self._inject_faults -= 1
            self._note_fault(vaddr, "injected fault")
            raise SvmProtectionFault(vaddr, "injected fault")

    # -- permission check -----------------------------------------------------------

    def _check_permitted(self, page_addr: int):
        if page_addr >= HYPERVISOR_BASE:
            self._note_fault(page_addr, "hypervisor address")
            raise SvmProtectionFault(page_addr, "hypervisor address")
        try:
            self.protected_space.translate(page_addr)
        except PageFault:
            self._note_fault(page_addr, "outside dom0 address space")
            raise SvmProtectionFault(page_addr) from None

    def _note_fault(self, page_addr: int, why: str):
        self._c_fault.value += 1
        if self._tracer.enabled:
            self._tracer.emit(SVM_FAULT, stlb=self.name, vaddr=page_addr,
                              why=why)

    # -- miss handling -----------------------------------------------------------------

    def handle_miss(self, vaddr: int):
        """The ``__svm_slow_path`` body: chain lookup, permission check,
        pairwise page mapping, table fill."""
        self._c_miss.value += 1
        self._maybe_inject(vaddr)
        tracing = self._tracer.enabled
        if tracing:
            self._tracer.emit(SVM_MISS, stlb=self.name, vaddr=vaddr)
        page = vaddr & PAGE_ADDR_MASK
        index = stlb_index(vaddr, self.entries)
        if page in self.chains:
            # Hash collision evicted this page earlier: refill from chain.
            self._c_collision.value += 1
            self._write_entry(index, page, self.chains[page])
            if tracing:
                self._tracer.emit(SVM_FILL, stlb=self.name, page=page,
                                  index=index, refill=True)
            return
        self._check_permitted(page)
        tag, _ = self.read_entry(index)
        if tag != EMPTY_TAG and tag != page:
            self._c_eviction.value += 1
        xormap = 0 if self.identity else self._map_pair(page)
        self.chains[page] = xormap
        self._write_entry(index, page, xormap)
        if tracing:
            self._tracer.emit(SVM_FILL, stlb=self.name, page=page,
                              index=index, refill=False)

    def _map_pair(self, page: int) -> int:
        """Map ``page`` and ``page + PAGE_SIZE`` of dom0 at two consecutive
        hypervisor virtual pages (paper footnote 2: unaligned accesses may
        straddle a page boundary).

        Virtual addresses in the map window are a managed resource:
        a page that already owns a chunk reuses it (frames re-translated,
        so dom0 remaps take effect), a page whose lower neighbour owns the
        most recent chunk extends it by a single page, reclaimed chunks
        are recycled, and running past ``map_end`` raises
        :class:`SvmMapExhausted` instead of silently colliding."""
        table: PageTable = self.machine.hypervisor_table
        hyp_page = self.mappings.get(page)
        if hyp_page is None:
            lower = self.mappings.get(page - PAGE_SIZE)
            if (lower is not None
                    and lower + 2 * PAGE_SIZE == self._next_map):
                # the lower neighbour's pair already maps this page at its
                # second slot and owns the allocation frontier: extend the
                # chunk by one page instead of allocating a fresh pair.
                if self._next_map + PAGE_SIZE > self.map_end:
                    raise SvmMapExhausted(page, self.map_base, self.map_end)
                hyp_page = lower + PAGE_SIZE
                self._next_map += PAGE_SIZE
                self._extended.add(page)
            elif self._free_pairs:
                hyp_page = self._free_pairs.pop()
            else:
                if self._next_map + 2 * PAGE_SIZE > self.map_end:
                    raise SvmMapExhausted(page, self.map_base, self.map_end)
                hyp_page = self._next_map
                self._next_map += 2 * PAGE_SIZE
            self.mappings[page] = hyp_page
            self._va_owner[hyp_page] = page
        frame0 = self.protected_space.translate(page) >> 12
        table.map(hyp_page >> 12, frame0)
        neighbour = page + PAGE_SIZE
        try:
            frame1 = self.protected_space.translate(neighbour) >> 12
        except PageFault:
            frame1 = None
        if frame1 is not None:
            table.map((hyp_page >> 12) + 1, frame1)
        return page ^ hyp_page

    # -- translation API (used by hypervisor support routines, §4.3) ------------------

    def translate(self, vaddr: int, ensure: bool = True) -> int:
        """dom0 virtual address -> address usable from any guest context.

        Hypervisor support routines "make use of the stlb translation
        table explicitly"; this is that lookup (filling on miss when
        ``ensure``)."""
        page = vaddr & PAGE_ADDR_MASK
        if page not in self.chains:
            if not ensure:
                raise KeyError(f"no SVM mapping for {vaddr:#010x}")
            self.handle_miss(vaddr)
        else:
            self._maybe_inject(vaddr)
            self._c_hit.value += 1
            if self._tracer.enabled:
                self._tracer.emit(SVM_HIT, stlb=self.name, vaddr=vaddr)
        return vaddr ^ self.chains[page]

    def lookup_fast(self, vaddr: int) -> Optional[int]:
        """What the inline fast path would produce: None on table miss.

        Empty slots carry ``EMPTY_TAG``, not 0 — tag 0 is dom0 page 0's
        valid tag, which the old sentinel condemned to a permanent
        slow-path loop."""
        index = stlb_index(vaddr, self.entries)
        tag, xormap = self.read_entry(index)
        if tag != (vaddr & PAGE_ADDR_MASK):
            return None
        self._c_hit.value += 1
        if self._tracer.enabled:
            self._tracer.emit(SVM_HIT, stlb=self.name, vaddr=vaddr)
        return vaddr ^ xormap


class SvmView:
    """Address-space-like accessor that reaches dom0 data through SVM.

    This is what the hypervisor's fast-path support routines use to touch
    sk_buffs, locks and rings: every access translates through the stlb
    first, so the protection property holds for them too. The interface
    mirrors :class:`~repro.machine.paging.AddressSpace`.
    """

    def __init__(self, svm: SvmManager):
        self.svm = svm
        self._hyp = AddressSpace(
            f"{svm.name}-view", svm.machine.phys,
            svm.machine.hypervisor_table,
        )
        # identity instances resolve through dom0's own page tables
        self._backing = svm.protected_space if svm.identity else self._hyp

    @property
    def name(self) -> str:
        return f"svm:{self.svm.name}"

    def translate(self, vaddr: int, write: bool = False) -> int:
        return self._backing.translate(self.svm.translate(vaddr), write)

    def read(self, vaddr: int, size: int) -> int:
        if (vaddr & 0xFFF) + size > PAGE_SIZE:
            return int.from_bytes(self.read_bytes(vaddr, size), "little")
        return self._backing.read(self.svm.translate(vaddr), size)

    def write(self, vaddr: int, size: int, value: int):
        if (vaddr & 0xFFF) + size > PAGE_SIZE:
            self.write_bytes(
                vaddr,
                (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little"),
            )
            return
        self._backing.write(self.svm.translate(vaddr), size, value)

    def read_u32(self, vaddr: int) -> int:
        return self.read(vaddr, 4)

    def write_u32(self, vaddr: int, value: int):
        self.write(vaddr, 4, value)

    def read_bytes(self, vaddr: int, n: int) -> bytes:
        out = bytearray()
        while n > 0:
            chunk = min(n, PAGE_SIZE - (vaddr & 0xFFF))
            out += self._backing.read_bytes(self.svm.translate(vaddr), chunk)
            vaddr += chunk
            n -= chunk
        return bytes(out)

    def write_bytes(self, vaddr: int, payload: bytes):
        pos = 0
        while pos < len(payload):
            chunk = min(len(payload) - pos, PAGE_SIZE - (vaddr & 0xFFF))
            self._backing.write_bytes(
                self.svm.translate(vaddr), payload[pos: pos + chunk]
            )
            vaddr += chunk
            pos += chunk
