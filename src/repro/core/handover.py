"""Planned handover: live binary swap and guest re-homing (DESIGN.md §14).

Recovery (PR 3) reacts to a fault that already happened: quarantine the
instance, drop what cannot be saved, serve traffic on the slow dom0 path
until a reload sticks. A *planned* handover inverts the contract — the
operator (or an upgrade pipeline) asks for the swap ahead of time, so
nothing may be dropped and the dom0 path is never entered. The
:class:`HandoverManager` runs a fixed state machine over one twin::

    request -> drain -> freeze -> swap -> replay -> resume

* **request** — admission control. A degraded/broken instance has no
  live fast path to hand over; the request falls back to the existing
  recovery reload (``fallback="recovery"`` in the report). Otherwise the
  replacement binary is re-verified *first*: a verification failure
  raises :class:`HandoverVetoed` before the old instance is disturbed.
* **drain** — stop admitting work (NIC lines masked so new device
  interrupts latch in ICR instead of firing; ``twin.frozen`` parks new
  guest tx frames byte-snapshotted and defers interrupt replay), then
  complete what is already in flight: flush every rx queue shard and
  drain softirqs on every vCPU. Batches addressed to a virq-masked
  guest stay parked — their skbs remain valid across a planned swap
  and the guest's unmask hook is the single accounting event.
* **freeze** — assert quiescence: no driver invocation in flight, no
  pending softirqs, every queue shard empty. Anything the twin still
  holds is *accounted* (parked batches, frozen tx, deferred irqs), not
  in flight.
* **swap** — replace the binary via :meth:`reload_hyp_driver` (the
  CodeRegistry epoch bumps on unregister *and* register, so every JIT
  superblock compiled against the old program is invalidated), zero the
  ``__svm_anchorK`` elision anchor slots, flush the stlb and the
  indirect-call translation cache. For a re-homing handover this phase
  instead detaches the guest's :class:`TwinQueue` state from the source
  twin and adopts it on the target.
* **replay** — unfreeze, unmask the NIC lines (latched causes fire
  immediately and their masked-for latency is observed into the
  ``health.virq_defer_cycles`` histogram — the honest p99-blip metric
  the bench gates), re-run deferred interrupts in arrival order, replay
  frozen tx frames through whichever twin owns each device *now*, and
  re-fire unmask hooks for guests with parked batches.
* **resume** — drain the resulting softirqs and close the maintenance
  window.

The watchdog (``obs/health.py``) holds a maintenance window for the
whole drain..resume span: backlog the handover accounts for is not a
stall, and a critical finding inside the window is recorded but does
not arm recovery (which would dismantle the instance mid-swap). A
stall the handover does NOT account for still fires — the window
suppresses false positives, not the watchdog.

Determinism: the handover charges no cycles of its own on the default
path — a run that never requests a handover is bit-identical to one
built without a :class:`HandoverManager`, and two identical runs that
request the handover at the same packet index are bit-identical to
each other (every phase is driven off machine state and the virtual
cycle account; there is no wall clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..machine.nic import REG_ICR, REG_IMS

#: state-machine phases, in order (``idle`` between handovers).
HANDOVER_PHASES = ("request", "drain", "freeze", "swap", "replay", "resume")


class HandoverError(RuntimeError):
    """A handover invariant failed (quiescence not reached, re-entrant
    request, bad target)."""


class HandoverVetoed(HandoverError):
    """The replacement binary failed re-verification; the old instance
    was not disturbed (the veto happens before the drain phase)."""


@dataclass
class HandoverReport:
    """What one handover did — returned by :meth:`swap_binary` /
    :meth:`rehome_guest` and appended to ``HandoverManager.history``."""

    kind: str                      # "swap" | "rehome"
    ok: bool = False
    #: "recovery" when the request fell back to the PR 3 reload path
    #: (degraded/broken source), else None.
    fallback: Optional[str] = None
    phases: List[str] = field(default_factory=list)
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    #: cycles from the first NIC mask to the end of resume — the
    #: guest-visible blackout window.
    window_cycles: int = 0
    #: packets delivered to guests by the drain flush.
    drained_rx: int = 0
    #: packets carried across the swap in parked/pending form.
    carried_parked: int = 0
    #: NIC interrupts deferred during the freeze and replayed.
    replayed_irqs: int = 0
    #: guest tx frames admitted during the freeze and replayed.
    replayed_tx: int = 0
    epoch_before: int = 0
    epoch_after: int = 0


class HandoverManager:
    """Planned-handover state machine over one source twin."""

    def __init__(self, twin, health=None):
        self.twin = twin
        self.xen = twin.xen
        self.machine = twin.machine
        #: optional :class:`~repro.obs.health.HealthMonitor`; when set,
        #: the handover holds its maintenance window for the whole
        #: drain..resume span.
        self.health = health
        self.state = "idle"
        self.history: List[HandoverReport] = []
        registry = self.machine.obs.registry
        self._c = {name: registry.counter(f"handover.{name}")
                   for name in ("swap", "rehome", "fallback", "veto")}
        self._phase_start: Optional[Tuple[str, int]] = None

    # -- phase bookkeeping ---------------------------------------------------

    def _now(self) -> int:
        return self.machine.account.total

    def _begin(self, report: HandoverReport, phase: str):
        now = self._now()
        if self._phase_start is not None:
            prev, start = self._phase_start
            report.phase_cycles[prev] = now - start
        self._phase_start = (phase, now)
        self.state = phase
        report.phases.append(phase)

    def _finish(self, report: HandoverReport):
        if self._phase_start is not None:
            prev, start = self._phase_start
            report.phase_cycles[prev] = self._now() - start
            self._phase_start = None
        self.state = "idle"
        self.history.append(report)

    def _held_backlog(self) -> int:
        """Packets the handover deliberately holds — what the watchdog's
        stalled-rx probe subtracts inside the maintenance window."""
        twin = self.twin
        parked = sum(len(skbs) for _, skbs in twin._parked_batches)
        carried = sum(len(p) for _, p in twin._parked_payloads)
        return parked + carried

    def _assert_quiescent(self):
        if self.xen.driver_depth:
            raise HandoverError(
                "cannot freeze: a driver invocation is in flight")
        pending = sum(len(v.softirqs) for v in self.xen.vcpus)
        if pending:
            raise HandoverError(
                f"cannot freeze: {pending} softirqs pending after drain")
        queued = sum(len(q.rx) for q in self.twin.queues)
        if queued:
            raise HandoverError(
                f"cannot freeze: {queued} rx packets still queued")

    def _replay_parked(self, twin):
        """Re-fire the unmask hook for every domain that still has parked
        batches and an enabled virq — the swap must not leave packets
        waiting on an unmask edge that already happened."""
        domains = []
        for guest, _batch in list(twin._parked_batches) + list(
                twin._parked_payloads):
            domain = guest.kernel.domain
            if domain not in domains:
                domains.append(domain)
        for domain in domains:
            if domain.virq_enabled:
                twin._on_guest_virq_unmask(domain)

    # -- the two handover kinds ----------------------------------------------

    def swap_binary(self,
                    mid_window_hook: Optional[Callable[[], None]] = None
                    ) -> HandoverReport:
        """Swap in a freshly re-verified copy of the driver binary with
        zero packet loss. ``mid_window_hook`` (tests/bench) runs between
        swap and replay — the worst moment for traffic to arrive."""
        if self.state != "idle":
            raise HandoverError(f"handover already in progress "
                                f"(state={self.state!r})")
        twin = self.twin
        report = HandoverReport(kind="swap")
        self._phase_start = None
        self._begin(report, "request")

        recovery = twin.recovery
        if recovery is not None and recovery.degraded:
            # a quarantined (or crash-looping) instance has no live fast
            # path to drain — the existing recovery reload IS the swap
            report.fallback = "recovery"
            report.ok = recovery.attempt_reload()
            self._c["fallback"].value += 1
            self._finish(report)
            return report

        # re-verify BEFORE any disruption: a bad binary vetoes the
        # handover with the old instance untouched. Under elision the
        # pre-elision binary is what gets proved, exactly as recovery
        # does (the transform is a pure function of the proofs).
        from ..analysis.verifier import verify_program
        verify_report = verify_program(
            twin.rewritten, annotations=twin.rewrite_stats.annotations,
            protect_stack=twin.protect_stack,
            name=f"{twin.instance_name}:handover")
        if not verify_report.ok:
            self._c["veto"].value += 1
            self._finish(report)
            raise HandoverVetoed(
                "replacement binary failed re-verification; "
                "old instance left untouched")

        return self._run_window(report, twin,
                                swap=lambda: self._do_swap(
                                    report, verify_report, mid_window_hook))

    def _do_swap(self, report: HandoverReport, verify_report,
                 mid_window_hook: Optional[Callable[[], None]]):
        twin = self.twin
        report.epoch_before = self.machine.code.epoch
        # unregister + register both bump the epoch: every JIT superblock
        # compiled against the old program is invalidated
        twin.reload_hyp_driver(verify_report=verify_report)
        report.epoch_after = self.machine.code.epoch
        twin.reset_anchor_slots()
        twin.svm.flush()
        twin.hyp_runtime.call_xlate_cache.clear()
        if mid_window_hook is not None:
            mid_window_hook()

    def rehome_guest(self, dev, target) -> HandoverReport:
        """Move ``dev`` (its rx queue state, parked batches and unmask
        hook) from this twin to a second live twin instance with zero
        packet loss. A degraded source is *evacuated*: its queues were
        already torn down at quarantine, so the drain flush is skipped
        and the carried payload batches move to the target."""
        if self.state != "idle":
            raise HandoverError(f"handover already in progress "
                                f"(state={self.state!r})")
        twin = self.twin
        if target is twin:
            raise HandoverError("re-homing target is the source twin")
        if not target.netdev_order:
            raise HandoverError("re-homing target has no NIC attached")
        report = HandoverReport(kind="rehome")
        self._phase_start = None
        self._begin(report, "request")

        def do_rehome():
            report.epoch_before = report.epoch_after = self.machine.code.epoch
            pending = twin.detach_guest_device(dev)
            report.carried_parked = sum(len(p) for p in pending)
            target.adopt_guest_device(dev, pending)

        return self._run_window(report, twin, swap=do_rehome,
                                skip_flush=(twin.recovery is not None
                                            and twin.recovery.degraded),
                                extra_replay=target)

    # -- the shared drain..resume window -------------------------------------

    def _run_window(self, report: HandoverReport, twin,
                    swap: Callable[[], None],
                    skip_flush: bool = False,
                    extra_replay=None) -> HandoverReport:
        nics = list(twin.nics_by_irq.values())
        masked_at: Dict[int, int] = {}
        if self.health is not None:
            self.health.enter_maintenance(
                f"handover:{report.kind}:{twin.instance_name}",
                held_backlog=self._held_backlog)
        window_start = self._now()
        try:
            # drain: stop admission, complete what is in flight
            self._begin(report, "drain")
            for nic in nics:
                masked_at[nic.irq] = self._now()
                nic.mask_line()
            twin.frozen = True
            backlog_before = twin.rx_backlog
            if not skip_flush:
                twin.flush_rx()
                self.xen.drain_all_softirqs()
            report.drained_rx = max(0, backlog_before - twin.rx_backlog)

            # freeze: prove quiescence before touching the instance
            self._begin(report, "freeze")
            self._assert_quiescent()
            if report.kind == "swap":
                report.carried_parked = self._held_backlog()

            # swap (binary replace, or queue re-homing)
            self._begin(report, "swap")
            swap()

            # replay: deferred work re-runs in arrival order
            self._begin(report, "replay")
            twin.frozen = False
            report.replayed_irqs = len(twin._deferred_irqs)
            now = self._now()
            for nic in nics:
                if nic.regs[REG_ICR] & nic.regs[REG_IMS]:
                    # causes latched while masked: the unmask below fires
                    # them; observe how long they waited (the p99 blip)
                    twin._h_virq_defer.observe(now - masked_at[nic.irq])
                nic.unmask_line()
            twin.retry_deferred_interrupts()
            report.replayed_tx = len(twin.replay_frozen_tx())
            self._replay_parked(twin)
            if extra_replay is not None:
                self._replay_parked(extra_replay)

            # resume: settle and reopen
            self._begin(report, "resume")
            self.xen.drain_all_softirqs()
            report.ok = True
        finally:
            twin.frozen = False
            for nic in nics:
                if nic.line_masked:
                    nic.unmask_line()
            if self.health is not None and self.health.in_maintenance:
                self.health.exit_maintenance()
            report.window_cycles = self._now() - window_start
            self._finish(report)
        self._c[report.kind].value += 1
        return report
