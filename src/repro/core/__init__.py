"""TwinDrivers: the paper's contribution.

* :mod:`~repro.core.rewriter` -- assembler-level SVM instrumentation
* :mod:`~repro.core.svm` -- the stlb, slow path, protection
* :mod:`~repro.core.upcall` -- synchronous cross-address-space calls
* :mod:`~repro.core.hypsupport` -- the 10 fast-path hypervisor routines
* :mod:`~repro.core.loader` -- hypervisor module loader
* :mod:`~repro.core.paravirt` -- guest paravirtual driver
* :mod:`~repro.core.recovery` -- fault containment & driver recovery
* :mod:`~repro.core.handover` -- planned live upgrade / re-homing
* :mod:`~repro.core.twin` -- orchestration
"""

from .handover import (
    HandoverError,
    HandoverManager,
    HandoverReport,
    HandoverVetoed,
)
from .hypsupport import HYPERVISOR_FAST_PATH, HypervisorSupport, SkbPool
from .loader import (
    DriverAborted,
    HypAllocator,
    HypervisorDriver,
    HypervisorLoader,
    SvmRuntime,
    allocate_runtime_symbols,
)
from .paravirt import HEADER_COPY_BYTES, ParavirtNetDevice
from .rewriter import (
    CALL_XLATE_SYMBOL,
    RET_SLOT_SYMBOL,
    RUNTIME_DATA_SYMBOLS,
    RUNTIME_IMPORTS,
    SLOW_PATH_SYMBOL,
    STLB_SYMBOL,
    TRANSLATE_SYMBOL,
    RewriteStats,
    Rewriter,
    SiteAnnotation,
    UnsupportedInstruction,
    rewrite_driver,
)
from .recovery import RecoveryManager, RecoveryPolicy
from .svm import (
    EMPTY_TAG,
    STLB_ENTRIES,
    StackProtectionFault,
    SvmManager,
    SvmMapExhausted,
    SvmProtectionFault,
    SvmView,
    stlb_index,
)
from .twin import TwinDriverManager
from .upcall import UpcallAborted, UpcallManager

__all__ = [
    "CALL_XLATE_SYMBOL",
    "DriverAborted",
    "EMPTY_TAG",
    "HEADER_COPY_BYTES",
    "HYPERVISOR_FAST_PATH",
    "HandoverError",
    "HandoverManager",
    "HandoverReport",
    "HandoverVetoed",
    "HypAllocator",
    "HypervisorDriver",
    "HypervisorLoader",
    "HypervisorSupport",
    "ParavirtNetDevice",
    "RET_SLOT_SYMBOL",
    "RUNTIME_DATA_SYMBOLS",
    "RUNTIME_IMPORTS",
    "RecoveryManager",
    "RecoveryPolicy",
    "RewriteStats",
    "Rewriter",
    "STLB_ENTRIES",
    "STLB_SYMBOL",
    "SiteAnnotation",
    "StackProtectionFault",
    "SLOW_PATH_SYMBOL",
    "SkbPool",
    "SvmManager",
    "SvmMapExhausted",
    "SvmProtectionFault",
    "SvmRuntime",
    "SvmView",
    "TRANSLATE_SYMBOL",
    "TwinDriverManager",
    "UnsupportedInstruction",
    "UpcallAborted",
    "UpcallManager",
    "allocate_runtime_symbols",
    "rewrite_driver",
    "stlb_index",
]
