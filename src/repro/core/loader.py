"""Loading the rewritten driver into the hypervisor (paper §5.2).

The loader:

* resolves the driver's data symbols and imported Linux data symbols to
  the dom0 addresses saved by the dom0 module loader at VM-driver load
  time (so every data reference points into dom0);
* resolves the SVM runtime symbols (``__stlb``, spill slots, ``__svm_ret``)
  to hypervisor data;
* binds calls to support routines either to the hypervisor's own
  implementations (the Table-1 set) or to upcall stubs — one stub per
  unimplemented routine;
* lays the code out at ``HYP_CODE_BASE``; because the *same rewritten
  binary* is used for the VM instance, every routine's hypervisor address
  differs from its VM address by one constant (``code_offset``), which is
  what makes indirect-call translation trivial (§5.1.2);
* sets up the hypervisor driver stack with guard pages, and the
  ``stlb_call`` translation cache.

Also registers the per-instance SVM runtime natives (slow path, string
translate helper, call-translate) for both the hypervisor instance and
the dom0 identity instance.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..machine.cpu import (
    Cpu,
    CpuBudgetExceeded,
    ExecutionFault,
    LoadedProgram,
)
from ..machine.machine import Machine
from ..machine.memory import BusError, PAGE_SIZE
from ..machine.paging import AddressSpace, PageFault, ProtectionFault
from ..obs.events import DRIVER_ABORT
from ..osmodel.kernel import DriverModule
from ..xen.hypervisor import (
    HYP_DATA_BASE,
    HYP_STACK_BASE,
    HYP_STACK_PAGES,
    Hypervisor,
)
from .rewriter import (
    CALL_XLATE_SYMBOL,
    RET_SLOT_SYMBOL,
    RUNTIME_DATA_SYMBOLS,
    SLOW_PATH_SYMBOL,
    SPILL_SYMBOL,
    STACK_FAULT_SYMBOL,
    STACK_HI_SYMBOL,
    STACK_LO_SYMBOL,
    TRANSLATE_SYMBOL,
)
from .svm import (
    SvmManager,
    SvmMapExhausted,
    SvmProtectionFault,
    StackProtectionFault,
)
from .upcall import UpcallAborted


class DriverAborted(Exception):
    """The hypervisor driver instance faulted and was killed; the
    hypervisor itself is unaffected (the safety property of §4.5)."""

    def __init__(self, cause: Exception):
        super().__init__(f"hypervisor driver aborted: {cause}")
        self.cause = cause


class HypAllocator:
    """Bump allocator for hypervisor data (stlb, slots, pools)."""

    def __init__(self, machine: Machine, base: int = HYP_DATA_BASE):
        self.machine = machine
        self.base = base
        self._next = base

    def alloc(self, size: int, align: int = 8) -> int:
        addr = (self._next + align - 1) & ~(align - 1)
        end = addr + size
        page = addr & ~(PAGE_SIZE - 1)
        while page < end:
            if self.machine.hypervisor_table.lookup(page >> 12) is None:
                self.machine.hypervisor_table.map(
                    page >> 12, self.machine.phys.allocate_frame()
                )
            page += PAGE_SIZE
        self._next = end
        return addr


def allocate_runtime_symbols(alloc_fn) -> Dict[str, int]:
    """Allocate the SVM runtime data symbols via ``alloc_fn(size) -> addr``
    (works for both hypervisor data and dom0 module data)."""
    return {name: alloc_fn(size) for name, size in RUNTIME_DATA_SYMBOLS}


def install_elision_hooks(loaded: LoadedProgram, svm: SvmManager,
                          elided_indices) -> None:
    """Count proof-based check elisions at runtime: each execution of a
    ``mov __svm_anchorK, r2`` replacement is one stlb lookup the static
    proof made unnecessary. Hooks compile into the handler once, so the
    uninstrumented hot path is untouched. The sites are also tagged in
    the cycle-attribution profiler so anchor-reload cost shows up as an
    ``svm.anchor`` leaf in flamegraphs."""
    counter = svm._c_elided

    def bump(_cpu, _c=counter):
        _c.value += 1

    for index in elided_indices:
        loaded.instrument[index] = bump
    svm.machine.obs.profiler.tag_sites(loaded, elided_indices, "svm.anchor")


class SvmRuntime:
    """Per-instance SVM runtime: the natives the rewritten code calls and
    the data slots it reads/writes."""

    def __init__(self, machine: Machine, prefix: str, svm: SvmManager,
                 symbols: Dict[str, int], translate_code,
                 data_space: AddressSpace):
        self.machine = machine
        self.svm = svm
        self.symbols = symbols
        self.translate_code = translate_code
        self._data_space = data_space
        self.call_xlate_cache: Dict[int, int] = {}
        self.call_xlate_hits = 0
        self.call_xlate_misses = 0
        # The stlb table, spill slots and the return slot are cache-hot:
        # the SVM fast path touches them on every single memory access.
        lo = min(symbols[name] for name, _ in RUNTIME_DATA_SYMBOLS)
        hi = max(symbols[name] + size for name, size in RUNTIME_DATA_SYMBOLS)
        machine.cpu.add_hot_range(lo, hi)
        self.imports = {
            SLOW_PATH_SYMBOL: machine.register_native(
                f"{prefix}.{SLOW_PATH_SYMBOL}", self._slow_path, cost=60,
            ),
            TRANSLATE_SYMBOL: machine.register_native(
                f"{prefix}.{TRANSLATE_SYMBOL}", self._translate, cost=20,
            ),
            CALL_XLATE_SYMBOL: machine.register_native(
                f"{prefix}.{CALL_XLATE_SYMBOL}", self._call_xlate, cost=12,
            ),
            STACK_FAULT_SYMBOL: machine.register_native(
                f"{prefix}.{STACK_FAULT_SYMBOL}", self._stack_fault,
            ),
        }

    def set_stack_bounds(self, lo: int, hi: int):
        """Program the §4.5.1 stack window for bounds-checked accesses."""
        self._data_space.write_u32(self.symbols[STACK_LO_SYMBOL], lo)
        self._data_space.write_u32(self.symbols[STACK_HI_SYMBOL], hi)

    def _stack_fault(self, cpu: Cpu):
        raise StackProtectionFault(cpu.regs["esp"])

    def _write_ret(self, value: int):
        self._data_space.write_u32(self.symbols[RET_SLOT_SYMBOL], value)

    def _slow_path(self, cpu: Cpu):
        vaddr = cpu.read_stack_arg(0)
        self.svm.handle_miss(vaddr)
        return None              # must not clobber eax

    def _translate(self, cpu: Cpu):
        vaddr = cpu.read_stack_arg(0)
        self._write_ret(self.svm.translate(vaddr))
        return None

    def _call_xlate(self, cpu: Cpu):
        target = cpu.read_stack_arg(0)
        cached = self.call_xlate_cache.get(target)
        if cached is None:
            self.call_xlate_misses += 1
            cached = self.translate_code(target)
            self.call_xlate_cache[target] = cached
        else:
            self.call_xlate_hits += 1
        self._write_ret(cached)
        return None


class HypervisorDriver:
    """Handle on the loaded hypervisor driver instance."""

    def __init__(self, xen: Hypervisor, loaded: LoadedProgram,
                 vm_module: DriverModule, runtime: SvmRuntime,
                 stack_top: int):
        self.xen = xen
        self.loaded = loaded
        self.vm_module = vm_module
        self.runtime = runtime
        self.stack_top = stack_top
        self.code_offset = loaded.base - vm_module.code_base
        self.aborted = False
        self.abort_cause: Optional[Exception] = None
        self.invocations = 0

    def symbol(self, name: str) -> int:
        return self.loaded.symbol(name)

    def entry_for_vm_address(self, vm_addr: int) -> int:
        """Translate a VM-instance code address (e.g. a function pointer
        read from driver data) to the hypervisor instance."""
        return vm_addr + self.code_offset

    def invoke(self, entry: int, args, upcalls=None) -> int:
        """Invoke the hypervisor driver; faults abort the driver but never
        the hypervisor (§4.5)."""
        if self.aborted:
            raise DriverAborted(self.abort_cause)
        if upcalls is not None:
            upcalls.new_invocation()
        self.invocations += 1
        cpu = self.xen.machine.cpu
        self.xen.driver_depth += 1
        try:
            return cpu.call_function(entry, args, stack_top=self.stack_top,
                                     category="e1000")
        except (SvmProtectionFault, SvmMapExhausted, UpcallAborted,
                PageFault, ExecutionFault, CpuBudgetExceeded, BusError,
                ProtectionFault) as exc:
            self.aborted = True
            self.abort_cause = exc
            obs = self.xen.machine.obs
            obs.registry.counter("driver.abort").value += 1
            if obs.tracer.enabled:
                obs.tracer.emit(DRIVER_ABORT, cause=type(exc).__name__,
                                detail=str(exc))
            raise DriverAborted(exc) from exc
        finally:
            self.xen.driver_depth -= 1
            if self.xen.driver_depth == 0 and not self.aborted:
                # drain softirqs raised while the driver was running
                self.xen.run_softirqs()


class HypervisorLoader:
    """Loads the rewritten driver into the hypervisor (paper §5.2)."""

    def __init__(self, xen: Hypervisor, code_base: int, alloc: HypAllocator,
                 stack_base: int = HYP_STACK_BASE):
        self.xen = xen
        self.code_base = code_base
        self.alloc = alloc
        self.stack_base = stack_base

    def load(self, rewritten, vm_module: DriverModule,
             runtime: SvmRuntime,
             support_bindings: Dict[str, int],
             upcall_factory=None,
             name: str = "hyp:e1000",
             verify: bool = True,
             verify_report=None,
             annotations=None,
             protect_stack: bool = False,
             elided_indices=()) -> HypervisorDriver:
        """``support_bindings`` maps support-routine names to hypervisor
        native addresses; anything else becomes an upcall stub via
        ``upcall_factory(name, dom0_native_addr)``.

        By default the binary is statically verified before anything is
        mapped: a caller-supplied ``verify_report`` is honoured, otherwise
        the verifier runs here (in hostile mode unless rewriter
        ``annotations`` are given). A binary with violations is refused
        with :class:`~repro.analysis.report.VerificationError`; pass
        ``verify=False`` to load unverified (tests/benchmarks only).

        When loading an elision-transformed binary the caller must supply
        the *pre-elision* ``verify_report`` (the transformed code contains
        bare translated accesses the verifier would reject by design) plus
        the transform's ``elided_indices`` for runtime accounting."""
        if verify:
            # direct submodule import: safe during partial package init
            from ..analysis.report import VerificationError
            if verify_report is None:
                from ..analysis.verifier import verify_program
                verify_report = verify_program(
                    rewritten, annotations=annotations,
                    protect_stack=protect_stack, name=name,
                )
            if not verify_report.ok:
                raise VerificationError(verify_report)
        machine = self.xen.machine
        data_symbols = dict(vm_module.data_symbols)
        # data symbols point into dom0; runtime symbols into hypervisor data
        data_symbols.update(runtime.symbols)

        import_map: Dict[str, int] = dict(runtime.imports)
        for imp in rewritten.imports():
            if imp in import_map:
                continue
            if imp in support_bindings:
                import_map[imp] = support_bindings[imp]
            else:
                dom0_addr = vm_module.import_map.get(imp)
                if dom0_addr is None or upcall_factory is None:
                    raise KeyError(
                        f"no hypervisor binding or upcall target for {imp!r}"
                    )
                import_map[imp] = upcall_factory(imp, dom0_addr)

        zeros = {label: 0 for label in rewritten.labels}
        tentative = LoadedProgram(
            rewritten.resolve({**data_symbols, **zeros}),
            self.code_base, extern=import_map,
        )
        resolved = rewritten.resolve({**data_symbols, **tentative.symbols})
        loaded = machine.load_program(resolved, self.code_base,
                                      extern=import_map, name=name)
        if elided_indices:
            install_elision_hooks(loaded, runtime.svm, elided_indices)

        # Hypervisor driver stack with guard pages on both sides.
        table = machine.hypervisor_table
        for i in range(HYP_STACK_PAGES):
            page = self.stack_base + i * PAGE_SIZE
            if table.lookup(page >> 12) is None:
                table.map(page >> 12, machine.phys.allocate_frame())
        stack_top = self.stack_base + HYP_STACK_PAGES * PAGE_SIZE
        machine.cpu.add_hot_range(self.stack_base, stack_top)
        runtime.set_stack_bounds(self.stack_base, stack_top)

        driver = HypervisorDriver(self.xen, loaded, vm_module, runtime,
                                  stack_top)
        # code translation for indirect calls: VM range -> +offset.
        vm_loaded = vm_module.loaded

        def translate_code(addr: int, _driver=driver) -> int:
            if vm_loaded.base <= addr < vm_loaded.end:
                return addr + _driver.code_offset
            remapped = self._native_remap(vm_module, import_map).get(addr)
            if remapped is not None:
                return remapped
            if loaded.base <= addr < loaded.end:
                return addr
            raise SvmProtectionFault(addr, "indirect call to foreign code")

        runtime.translate_code = translate_code
        return driver

    @staticmethod
    def _native_remap(vm_module: DriverModule,
                      import_map: Dict[str, int]) -> Dict[int, int]:
        """dom0 support-routine addresses -> hypervisor bindings, for
        function pointers stored in shared driver data."""
        remap = {}
        for imp, dom0_addr in vm_module.import_map.items():
            hyp_addr = import_map.get(imp)
            if hyp_addr is not None:
                remap[dom0_addr] = hyp_addr
        return remap
