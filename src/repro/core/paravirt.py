"""The guest-side paravirtual network driver (paper §3.1, §5.3).

Guests do not run the NIC driver: they hand packets to the hypervisor
through a hypercall and receive packets through copies plus a virtual
interrupt. No domain switch happens anywhere on this path — that is the
entire point of TwinDrivers.

Transmit: the first 96 bytes of the guest packet are copied into a
pooled dom0 sk_buff; the rest is chained as page fragments referencing
the *guest's own machine pages* (the hypervisor's ``dma_map_page``
returns correct guest machine addresses). Receive: the hypervisor
demultiplexes on destination MAC, copies the packet into a guest buffer
when the guest is scheduled, and raises a virtual interrupt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..machine.memory import PAGE_SIZE
from ..osmodel import layout as L
from ..osmodel.kernel import BROADCAST_MAC, Kernel

if TYPE_CHECKING:  # pragma: no cover
    from .twin import TwinDriverManager

#: Bytes of packet header copied into the dom0 sk_buff on transmit.
HEADER_COPY_BYTES = 96


class ParavirtNetDevice:
    """A guest's virtual NIC backed by the TwinDrivers hypervisor driver."""

    def __init__(self, twin: "TwinDriverManager", guest_kernel: Kernel,
                 mac: bytes):
        self.twin = twin
        self.kernel = guest_kernel
        self.mac = bytes(mac)
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_busy = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_payloads: List[bytes] = []
        self.keep_rx_payloads = False
        #: guest buffer pages used to stage outgoing payloads
        self._tx_buf = guest_kernel.heap.alloc_pages(2)
        twin.register_guest_device(self)

    # -- transmit ------------------------------------------------------------

    def transmit(self, payload_len: int, dst_mac: bytes = BROADCAST_MAC,
                 payload: Optional[bytes] = None) -> bool:
        """Send one frame: guest TCP/IP stack -> hypercall -> hypervisor
        driver. Returns False if the driver reported ring-full."""
        costs = self.kernel.costs
        self.kernel.charge(costs.kernel_tx_stack)
        if self.kernel.paravirtual:
            self.kernel.charge(costs.pv_kernel_tx_overhead, "Xen")
        frame_len = L.ETH_HLEN + payload_len
        header = (bytes(dst_mac) + self.mac
                  + (0x0800).to_bytes(2, "big"))
        # Stage the frame in guest memory (header + payload).
        aspace = self.kernel.domain.aspace
        aspace.write_bytes(self._tx_buf, header)
        if payload is not None:
            aspace.write_bytes(self._tx_buf + L.ETH_HLEN,
                               payload[:payload_len])
        # hypercall into the hypervisor driver
        self.twin.xen.hypercall("twin-xmit")
        ok = self.twin.guest_transmit(self, self._tx_buf, frame_len)
        if ok:
            self.tx_packets += 1
            self.tx_bytes += frame_len
        else:
            self.tx_busy += 1
        return ok

    def guest_frame_fragments(self, buf: int, frame_len: int
                              ) -> Tuple[bytes, List[Tuple[int, int, int]]]:
        """Split the staged frame into the 96-byte header and machine-page
        fragments for the remainder."""
        aspace = self.kernel.domain.aspace
        head_len = min(HEADER_COPY_BYTES, frame_len)
        header = aspace.read_bytes(buf, head_len)
        frags: List[Tuple[int, int, int]] = []
        pos = head_len
        while pos < frame_len:
            vaddr = buf + pos
            chunk = min(frame_len - pos, PAGE_SIZE - (vaddr & 0xFFF))
            paddr = aspace.translate(vaddr)
            frags.append((paddr & ~0xFFF, paddr & 0xFFF, chunk))
            pos += chunk
        return header, frags

    # -- receive ------------------------------------------------------------------

    def deliver(self, payload: bytes):
        """Called by the hypervisor after copying a packet into the guest:
        virtual interrupt + guest stack processing."""
        costs = self.kernel.costs
        self.kernel.charge(costs.kernel_rx_stack)
        if self.kernel.paravirtual:
            self.kernel.charge(costs.pv_kernel_rx_overhead, "Xen")
        self.rx_packets += 1
        self.rx_bytes += len(payload)
        if self.keep_rx_payloads:
            self.rx_payloads.append(payload)
