"""The guest-side paravirtual network driver (paper §3.1, §5.3).

Guests do not run the NIC driver: they hand packets to the hypervisor
through a hypercall and receive packets through copies plus a virtual
interrupt. No domain switch happens anywhere on this path — that is the
entire point of TwinDrivers.

Transmit: the first 96 bytes of the guest packet are copied into a
pooled dom0 sk_buff; the rest is chained as page fragments referencing
the *guest's own machine pages* (the hypervisor's ``dma_map_page``
returns correct guest machine addresses). Receive: the hypervisor
demultiplexes on destination MAC, copies the packet into a guest buffer
when the guest is scheduled, and raises a virtual interrupt.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..machine.memory import PAGE_SIZE
from ..osmodel import layout as L
from ..osmodel.kernel import BROADCAST_MAC, Kernel

if TYPE_CHECKING:  # pragma: no cover
    from .twin import TwinDriverManager

#: Bytes of packet header copied into the dom0 sk_buff on transmit.
HEADER_COPY_BYTES = 96


class ParavirtNetDevice:
    """A guest's virtual NIC backed by the TwinDrivers hypervisor driver."""

    def __init__(self, twin: "TwinDriverManager", guest_kernel: Kernel,
                 mac: bytes):
        self.twin = twin
        self.kernel = guest_kernel
        self.mac = bytes(mac)
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_busy = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.rx_payloads: List[bytes] = []
        self.keep_rx_payloads = False
        #: number of coalesced rx interrupts this device has taken
        self.rx_interrupts = 0
        #: guest buffer pages used to stage outgoing payloads
        self._tx_buf = guest_kernel.heap.alloc_pages(2)
        #: extra 2-page staging slots, grown lazily by transmit_batch
        self._tx_slots: List[int] = [self._tx_buf]
        twin.register_guest_device(self)

    # -- transmit ------------------------------------------------------------

    def transmit(self, payload_len: int, dst_mac: bytes = BROADCAST_MAC,
                 payload: Optional[bytes] = None) -> bool:
        """Send one frame: guest TCP/IP stack -> hypercall -> hypervisor
        driver. Returns False if the driver reported ring-full."""
        costs = self.kernel.costs
        self.kernel.charge(costs.kernel_tx_stack, phase="tx_stack")
        if self.kernel.paravirtual:
            self.kernel.charge(costs.pv_kernel_tx_overhead, "Xen",
                               phase="pv_tx_overhead")
        frame_len = L.ETH_HLEN + payload_len
        header = (bytes(dst_mac) + self.mac
                  + (0x0800).to_bytes(2, "big"))
        # Stage the frame in guest memory (header + payload).
        aspace = self.kernel.domain.aspace
        aspace.write_bytes(self._tx_buf, header)
        if payload is not None:
            aspace.write_bytes(self._tx_buf + L.ETH_HLEN,
                               payload[:payload_len])
        # hypercall into the hypervisor driver
        self.twin.xen.hypercall("twin-xmit")
        ok = self.twin.guest_transmit(self, self._tx_buf, frame_len)
        if ok:
            self.tx_packets += 1
            self.tx_bytes += frame_len
        else:
            self.tx_busy += 1
        return ok

    def transmit_batch(self, payload_lens: List[int],
                       dst_mac: bytes = BROADCAST_MAC,
                       payloads: Optional[List[bytes]] = None) -> List[bool]:
        """Send a burst of frames with ONE hypercall: each frame is staged
        in its own guest slot, then the hypervisor driver transmits the
        whole burst (§5.3 batching). Per-frame guest-stack work is still
        charged — only the hypercall entry and the driver invoke setup are
        amortised. Returns one success flag per frame."""
        if not payload_lens:
            return []
        if len(payload_lens) > self.twin.tx_batch_max:
            raise ValueError(
                f"batch of {len(payload_lens)} exceeds tx_batch_max="
                f"{self.twin.tx_batch_max}")
        costs = self.kernel.costs
        aspace = self.kernel.domain.aspace
        while len(self._tx_slots) < len(payload_lens):
            self._tx_slots.append(self.kernel.heap.alloc_pages(2))
        header_base = bytes(dst_mac) + self.mac + (0x0800).to_bytes(2, "big")
        frames: List[Tuple[int, int]] = []
        for i, payload_len in enumerate(payload_lens):
            self.kernel.charge(costs.kernel_tx_stack, phase="tx_stack")
            if self.kernel.paravirtual:
                self.kernel.charge(costs.pv_kernel_tx_overhead, "Xen",
                               phase="pv_tx_overhead")
            buf = self._tx_slots[i]
            aspace.write_bytes(buf, header_base)
            if payloads is not None and payloads[i] is not None:
                aspace.write_bytes(buf + L.ETH_HLEN,
                                   payloads[i][:payload_len])
            frames.append((buf, L.ETH_HLEN + payload_len))
        # one hypercall for the whole burst
        self.twin.xen.hypercall("twin-xmit-batch")
        results = self.twin.guest_transmit_batch(self, frames)
        for ok, (_, frame_len) in zip(results, frames):
            if ok:
                self.tx_packets += 1
                self.tx_bytes += frame_len
            else:
                self.tx_busy += 1
        return results

    def guest_frame_fragments(self, buf: int, frame_len: int
                              ) -> Tuple[bytes, List[Tuple[int, int, int]]]:
        """Split the staged frame into the 96-byte header and machine-page
        fragments for the remainder."""
        aspace = self.kernel.domain.aspace
        head_len = min(HEADER_COPY_BYTES, frame_len)
        header = aspace.read_bytes(buf, head_len)
        frags: List[Tuple[int, int, int]] = []
        pos = head_len
        while pos < frame_len:
            vaddr = buf + pos
            chunk = min(frame_len - pos, PAGE_SIZE - (vaddr & 0xFFF))
            paddr = aspace.translate(vaddr)
            frags.append((paddr & ~0xFFF, paddr & 0xFFF, chunk))
            pos += chunk
        return header, frags

    # -- receive ------------------------------------------------------------------

    def deliver(self, payload: bytes):
        """Called by the hypervisor after copying a packet into the guest:
        virtual interrupt + guest stack processing."""
        self.deliver_batch([payload])

    def deliver_batch(self, payloads: List[bytes]):
        """Called by the hypervisor after copying a *batch* of packets
        into the guest under one coalesced virtual interrupt. Guest stack
        processing is still per packet — only interrupt delivery was
        amortised on the hypervisor side."""
        if not payloads:
            return
        costs = self.kernel.costs
        self.rx_interrupts += 1
        for payload in payloads:
            self.kernel.charge(costs.kernel_rx_stack, phase="rx_stack")
            if self.kernel.paravirtual:
                self.kernel.charge(costs.pv_kernel_rx_overhead, "Xen",
                               phase="pv_rx_overhead")
            self.rx_packets += 1
            self.rx_bytes += len(payload)
            if self.keep_rx_payloads:
                self.rx_payloads.append(payload)
