"""The assembler-level rewriting tool (paper §5.1).

Takes the VM driver program and produces the hypervisor driver program:

* every non-stack memory reference is replaced by the 10-instruction SVM
  fast path of figure 4 (tag compare against the ``__stlb`` hash table,
  XOR translation), with a per-site slow-path block appended at the end of
  the program that calls ``__svm_slow_path`` and retries;
* scratch registers come from a liveness analysis (footnote 3); when no
  dead register is available the rewriter spills to ``__svm_spillN`` slots
  in hypervisor data;
* flags liveness is tracked: if the condition codes are live across a
  rewritten instruction that does not itself set them, the translation
  sequence is wrapped in ``pushf``/``popf``;
* string instructions (§5.1.1) become loops that process page-bounded
  chunks, translating the source/destination pointer(s) each iteration
  (via the ``__svm_translate`` helper, which consults the same stlb) —
  including the early-exit flag semantics of ``repe``/``repne``;
* indirect calls and jumps (§5.1.2) are routed through
  ``__stlb_call_xlate``, which maps VM-driver code addresses to hypervisor
  driver addresses (a constant offset, because the same rewritten binary
  is used for both instances) and dom0 support-routine addresses to their
  hypervisor bindings.

The output program is a normal :class:`~repro.isa.program.Program`; run
over an *identity* stlb it behaves exactly like the input (that is how
the VM instance runs, and how the semantic-equivalence tests work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.cfg import ControlFlowGraph
from ..isa.instructions import Instruction
from ..isa.liveness import LivenessAnalysis
from ..isa.operands import Imm, Label, Mem, Reg
from ..isa.program import Program
from ..isa.registers import ALLOCATABLE

#: Symbols the rewritten code references; the loaders resolve them
#: per-instance (hypervisor stlb vs dom0 identity stlb).
STLB_SYMBOL = "__stlb"
SLOW_PATH_SYMBOL = "__svm_slow_path"
TRANSLATE_SYMBOL = "__svm_translate"
CALL_XLATE_SYMBOL = "__stlb_call_xlate"
RET_SLOT_SYMBOL = "__svm_ret"
SPILL_SYMBOL = "__svm_spill{}"
N_SPILL_SLOTS = 4
#: §4.5.1 stack protection (optional): bounds of the driver stack and the
#: fault handler for variable-offset stack accesses.
STACK_LO_SYMBOL = "__svm_stack_lo"
STACK_HI_SYMBOL = "__svm_stack_hi"
STACK_FAULT_SYMBOL = "__svm_stack_fault"
#: Per-anchor translation slots for proof-based check elision (see
#: :func:`apply_elision`): anchor site ``K`` stores its freshly checked
#: translated pointer here, elided sites reload it instead of re-running
#: the ten-instruction stlb check. Allocated per-binary by the loader.
ANCHOR_SYMBOL = "__svm_anchor{}"

RUNTIME_DATA_SYMBOLS = (
    (STLB_SYMBOL, 4096 * 8),
    (RET_SLOT_SYMBOL, 4),
    (SPILL_SYMBOL.format(0), 4),
    (SPILL_SYMBOL.format(1), 4),
    (SPILL_SYMBOL.format(2), 4),
    (SPILL_SYMBOL.format(3), 4),
    (STACK_LO_SYMBOL, 4),
    (STACK_HI_SYMBOL, 4),
)
RUNTIME_IMPORTS = (SLOW_PATH_SYMBOL, TRANSLATE_SYMBOL, CALL_XLATE_SYMBOL)


class UnsupportedInstruction(Exception):
    """The rewriter cannot soundly transform this instruction."""

    pass


@dataclass(frozen=True)
class SiteAnnotation:
    """Machine-readable record of one rewritten site.

    The static verifier (:mod:`repro.analysis`) consumes these to check the
    rewriter's work *exactly* (which instruction range realises which input
    instruction, with which scratch registers) rather than heuristically.
    The verifier also runs without them ("hostile" mode); annotations only
    add cross-checks.
    """

    #: 'memory' | 'string_single' | 'string_loop' | 'indirect' |
    #: 'stack_checked'
    kind: str
    #: index of the source instruction in the input program
    input_index: int
    #: [start, end) instruction range in the output program's main body
    #: (per-site slow-path tail blocks are located via their labels)
    start: int
    end: int
    #: scratch registers picked by the liveness analysis (footnote 3)
    scratch: Tuple[str, ...] = ()
    #: scratch registers that had to be spilled to ``__svm_spillN`` slots
    spilled: Tuple[str, ...] = ()
    #: whether the site is wrapped in ``pushf``/``popf``
    flags_wrapped: bool = False


@dataclass
class RewriteStats:
    """What the rewriter did — the §4.1 static numbers."""

    input_instructions: int = 0
    output_instructions: int = 0
    memory_rewritten: int = 0
    string_rewritten: int = 0
    indirect_rewritten: int = 0
    spills: int = 0
    flag_saves: int = 0
    #: §4.5.1: stack accesses proven safe statically (constant offset)
    stack_verified: int = 0
    #: §4.5.1: variable-offset stack accesses given runtime bounds checks
    stack_checked: int = 0
    #: per-category site counts (the §4.1 ablation breakdown the static
    #: verifier independently re-derives): keys are the SiteAnnotation
    #: kinds plus 'flags_wrapped_sites' and 'spill_slot_sites'.
    site_categories: Dict[str, int] = field(default_factory=dict)
    #: machine-readable per-site records for the static verifier
    annotations: List[SiteAnnotation] = field(default_factory=list)

    def note_site(self, annotation: SiteAnnotation):
        self.annotations.append(annotation)
        self.site_categories[annotation.kind] = (
            self.site_categories.get(annotation.kind, 0) + 1)
        if annotation.flags_wrapped:
            self.site_categories["flags_wrapped_sites"] = (
                self.site_categories.get("flags_wrapped_sites", 0) + 1)
        if annotation.spilled:
            self.site_categories["spill_slot_sites"] = (
                self.site_categories.get("spill_slot_sites", 0) + 1)

    @property
    def memory_fraction(self) -> float:
        """Fraction of input instructions that reference memory (the paper
        measures ~25% for network drivers)."""
        if self.input_instructions == 0:
            return 0.0
        return (self.memory_rewritten + self.string_rewritten
                + self.indirect_rewritten) / self.input_instructions

    @property
    def expansion_factor(self) -> float:
        if self.input_instructions == 0:
            return 1.0
        return self.output_instructions / self.input_instructions


def _spilled(saves: List[Instruction]) -> Tuple[str, ...]:
    """The registers a list of spill-save instructions preserves."""
    return tuple(s.operands[0].name for s in saves)


def _flags_liveness(program: Program) -> List[bool]:
    """Per-instruction: are the condition codes live *across* it?"""
    cfg = ControlFlowGraph(program)
    n = len(program.instructions)
    block_in: Dict[int, bool] = {s: False for s in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for start in sorted(cfg.blocks, reverse=True):
            block = cfg.blocks[start]
            live = any(block_in.get(s, False) for s in block.successors)
            for i in reversed(range(block.start, block.end)):
                ins = program.instructions[i]
                live = ins.reads_flags or (live and not ins.writes_flags)
            if live != block_in[start]:
                block_in[start] = live
                changed = True
    live_across = [False] * n
    for start, block in cfg.blocks.items():
        live = any(block_in.get(s, False) for s in block.successors)
        for i in reversed(range(block.start, block.end)):
            ins = program.instructions[i]
            live_across[i] = live and not ins.writes_flags
            live = ins.reads_flags or (live and not ins.writes_flags)
    return live_across


class Rewriter:
    """The assembler-level rewriting tool: SVM, strings, indirect calls."""

    def __init__(self, protect_stack: bool = False,
                 stlb_entries: int = 4096):
        """``protect_stack`` enables the §4.5.1 extension: variable-offset
        stack-relative accesses get runtime bounds checks against the
        driver-stack window (constant offsets are statically verified).
        ``stlb_entries`` sizes the hash table the emitted fast path
        indexes (power of two; the paper's table has 4096 entries)."""
        if stlb_entries & (stlb_entries - 1):
            raise ValueError("stlb_entries must be a power of two")
        self.protect_stack = protect_stack
        self.stlb_entries = stlb_entries
        self._counter = 0

    # ------------------------------------------------------------------ utils

    def _fresh(self, tag: str) -> str:
        self._counter += 1
        return f".Lsvm{self._counter}_{tag}"

    @staticmethod
    def _uses_registers(ins: Instruction) -> set:
        used = set(ins.registers_read()) | set(ins.registers_written())
        mem = ins.memory_operand()
        if mem is not None:
            used.update(mem.registers())
        # call clobber set is not a real "use"
        if ins.is_call:
            used -= {"eax", "ecx", "edx"} - set(
                op.parent for op in ins.operands if isinstance(op, Reg)
            )
        return used

    def _scratch(self, liveness: LivenessAnalysis, index: int,
                 ins: Instruction, k: int,
                 stats: RewriteStats) -> Tuple[List[str], List[Instruction],
                                               List[Instruction]]:
        """Pick ``k`` scratch registers; spill victims when too few are
        dead. Returns (registers, save-instrs, restore-instrs)."""
        free = list(liveness.free_registers_at(index))
        used = self._uses_registers(ins)
        free = [r for r in free if r not in used]
        regs = free[:k]
        saves: List[Instruction] = []
        restores: List[Instruction] = []
        if len(regs) < k:
            victims = [r for r in ALLOCATABLE
                       if r not in used and r not in regs]
            needed = k - len(regs)
            if needed > len(victims) or needed > N_SPILL_SLOTS:
                raise UnsupportedInstruction(
                    f"cannot find {k} scratch registers for "
                    f"{ins.format()!r}"
                )
            for slot, victim in enumerate(victims[:needed]):
                stats.spills += 1
                spill = Mem(symbol=SPILL_SYMBOL.format(slot))
                saves.append(Instruction("mov", (Reg(victim), spill)))
                restores.append(Instruction("mov", (spill, Reg(victim))))
                regs.append(victim)
        return regs, saves, restores

    # ------------------------------------------------------- SVM fast path

    def _emit_svm_sequence(self, mem: Mem, r1: str, r2: str, r3: str,
                           retry: str, slow: str) -> List[Instruction]:
        """The paper's figure-4 sequence; ``retry`` labels its first
        instruction, ``jne slow`` transfers to the slow-path block."""
        stlb = Mem(symbol=STLB_SYMBOL, base=r1)
        stlb4 = Mem(symbol=STLB_SYMBOL, disp=4, base=r1)
        # index mask: low log2(entries) bits of the page number; the entry
        # is 8 bytes, so the byte offset is (vaddr & mask) >> 9 for the
        # paper's 4096-entry table (mask 0x00FFF000).
        index_mask = (self.stlb_entries - 1) << 12
        return [
            Instruction("lea", (mem, Reg(r1))),                 # 1
            Instruction("mov", (Reg(r1), Reg(r2))),             # 2
            Instruction("and", (Imm(0xFFFFF000), Reg(r1))),     # 3
            Instruction("mov", (Reg(r1), Reg(r3))),             # 4
            Instruction("and", (Imm(index_mask), Reg(r1))),     # 5
            Instruction("shr", (Imm(9), Reg(r1))),              # 6
            Instruction("cmp", (stlb, Reg(r3))),                # 7
            Instruction("jne", (Label(slow),)),                 # 8
            Instruction("xor", (stlb4, Reg(r2))),               # 9
        ]

    def _slow_block(self, slow: str, retry: str, r2: str) -> List[Instruction]:
        return [
            Instruction("push", (Reg(r2),)),
            Instruction("call", (Label(SLOW_PATH_SYMBOL),)),
            Instruction("add", (Imm(4), Reg("esp"))),
            Instruction("jmp", (Label(retry),)),
        ]

    def _rewrite_memory(self, ins: Instruction, index: int,
                        liveness: LivenessAnalysis, flags_live: bool,
                        out: "_Emitter", stats: RewriteStats):
        mem = ins.memory_operand()
        regs, saves, restores = self._scratch(liveness, index, ins, 3, stats)
        r1, r2, r3 = regs
        retry = self._fresh("retry")
        slow = self._fresh("slow")
        for save in saves:
            out.emit(save)
        if flags_live:
            stats.flag_saves += 1
            out.emit(Instruction("pushf", ()))
        out.label(retry)
        for seq in self._emit_svm_sequence(mem, r1, r2, r3, retry, slow):
            out.emit(seq)
        translated = Mem(base=r2)
        new_ops = tuple(translated if op is mem else op
                        for op in ins.operands)
        out.emit(ins.replaced(operands=new_ops))
        for restore in restores:
            out.emit(restore)
        if flags_live:
            out.emit(Instruction("popf", ()))
        out.tail_block(slow, self._slow_block(slow, retry, r2))
        stats.memory_rewritten += 1
        return ("memory", tuple(regs), _spilled(saves), flags_live)

    # ------------------------------------------------------- stack checks

    def _rewrite_stack_checked(self, ins: Instruction, index: int,
                               liveness: LivenessAnalysis, flags_live: bool,
                               out: "_Emitter", stats: RewriteStats):
        """§4.5.1: a stack access whose offset is computed at runtime — a
        buffer-overflow candidate. Bounds-check the effective address
        against the driver stack window; out-of-range aborts the driver."""
        mem = ins.memory_operand()
        regs, saves, restores = self._scratch(liveness, index, ins, 1, stats)
        r1 = regs[0]
        fault = self._fresh("sfault")
        for save in saves:
            out.emit(save)
        if flags_live:
            stats.flag_saves += 1
            out.emit(Instruction("pushf", ()))
        out.emit(Instruction("lea", (mem, Reg(r1))))
        out.emit(Instruction("cmp", (Mem(symbol=STACK_LO_SYMBOL), Reg(r1))))
        out.emit(Instruction("jb", (Label(fault),)))
        out.emit(Instruction("cmp", (Mem(symbol=STACK_HI_SYMBOL), Reg(r1))))
        out.emit(Instruction("jae", (Label(fault),)))
        out.emit(ins)
        for restore in restores:
            out.emit(restore)
        if flags_live:
            out.emit(Instruction("popf", ()))
        out.tail_block(fault, [
            Instruction("call", (Label(STACK_FAULT_SYMBOL),)),
        ])
        stats.stack_checked += 1
        return ("stack_checked", tuple(regs), _spilled(saves), flags_live)

    # ------------------------------------------------------- indirect calls

    def _rewrite_indirect(self, ins: Instruction, index: int,
                          liveness: LivenessAnalysis, flags_live: bool,
                          out: "_Emitter", stats: RewriteStats):
        target = ins.operands[0]
        ret_slot = Mem(symbol=RET_SLOT_SYMBOL)
        regs: Tuple[str, ...] = ()
        saves = []
        if isinstance(target, Mem) and not target.is_stack_relative:
            # Load the function pointer through SVM first.
            regs, saves, restores = self._scratch(
                liveness, index, ins, 3, stats
            )
            r1, r2, r3 = regs
            retry = self._fresh("retry")
            slow = self._fresh("slow")
            for save in saves:
                out.emit(save)
            out.label(retry)
            for seq in self._emit_svm_sequence(target, r1, r2, r3, retry, slow):
                out.emit(seq)
            out.emit(Instruction("push", (Mem(base=r2),)))
            for restore in restores:
                out.emit(restore)
            out.tail_block(slow, self._slow_block(slow, retry, r2))
        else:
            # register target (or stack-relative pointer): push it directly
            out.emit(Instruction("push", (target,)))
        out.emit(Instruction("call", (Label(CALL_XLATE_SYMBOL),)))
        out.emit(Instruction("add", (Imm(4), Reg("esp"))))
        out.emit(ins.replaced(operands=(ret_slot,), indirect=True))
        stats.indirect_rewritten += 1
        return ("indirect", tuple(regs), _spilled(saves), False)

    # ------------------------------------------------------- string ops

    def _rewrite_string(self, ins: Instruction, index: int,
                        liveness: LivenessAnalysis, flags_live: bool,
                        out: "_Emitter", stats: RewriteStats):
        stats.string_rewritten += 1
        uses_esi = ins.mnemonic in ("movs", "lods", "cmps")
        uses_edi = ins.mnemonic in ("movs", "stos", "cmps", "scas")
        size = ins.size
        shift = {1: 0, 2: 1, 4: 2}[size]
        sets_flags = ins.mnemonic in ("cmps", "scas")

        if ins.prefix is None:
            return self._rewrite_string_single(ins, index, liveness,
                                               flags_live, out, stats,
                                               uses_esi, uses_edi, size,
                                               sets_flags)

        regs, saves, restores = self._scratch(liveness, index, ins, 3, stats)
        r1, r2, r3 = regs
        top = self._fresh("top")
        done = self._fresh("done")
        done_pop = self._fresh("donep")

        wrap_flags = flags_live and not sets_flags
        for save in saves:
            out.emit(save)
        if wrap_flags:
            stats.flag_saves += 1
            out.emit(Instruction("pushf", ()))

        out.label(top)
        out.emit(Instruction("test", (Reg("ecx"), Reg("ecx"))))
        out.emit(Instruction("je", (Label(done),)))
        # r1 = min bytes-to-page-end over used pointers (default: full page)
        out.emit(Instruction("mov", (Imm(0x1000), Reg(r1))))
        for used, pointer in ((uses_esi, "esi"), (uses_edi, "edi")):
            if not used:
                continue
            skip = self._fresh("pg")
            out.emit(Instruction("mov", (Reg(pointer), Reg(r2))))
            out.emit(Instruction("neg", (Reg(r2),)))
            out.emit(Instruction("and", (Imm(0xFFF), Reg(r2))))
            out.emit(Instruction("je", (Label(skip),)))      # aligned: full pg
            out.emit(Instruction("cmp", (Reg(r2), Reg(r1))))
            out.emit(Instruction("jbe", (Label(skip),)))
            out.emit(Instruction("mov", (Reg(r2), Reg(r1))))
            out.label(skip)
        if shift:
            out.emit(Instruction("shr", (Imm(shift), Reg(r1))))
        # zero-element chunk (pointer within `size` of the page end):
        # process one straddling element — pair-mapping makes it safe.
        nonzero = self._fresh("nz")
        out.emit(Instruction("test", (Reg(r1), Reg(r1))))
        out.emit(Instruction("jne", (Label(nonzero),)))
        out.emit(Instruction("mov", (Imm(1), Reg(r1))))
        out.label(nonzero)
        clamp = self._fresh("clamp")
        out.emit(Instruction("cmp", (Reg("ecx"), Reg(r1))))
        out.emit(Instruction("jbe", (Label(clamp),)))
        out.emit(Instruction("mov", (Reg("ecx"), Reg(r1))))
        out.label(clamp)
        # translate the pointers for this chunk
        if uses_esi:
            self._emit_translate(out, "esi", r2)
        if uses_edi:
            self._emit_translate(out, "edi", r3)
        # swap in translated pointers and the chunk count
        out.emit(Instruction("push", (Reg("ecx"),)))
        if uses_esi:
            out.emit(Instruction("push", (Reg("esi"),)))
        if uses_edi:
            out.emit(Instruction("push", (Reg("edi"),)))
        if uses_esi:
            out.emit(Instruction("mov", (Reg(r2), Reg("esi"))))
        if uses_edi:
            out.emit(Instruction("mov", (Reg(r3), Reg("edi"))))
        out.emit(Instruction("mov", (Reg(r1), Reg("ecx"))))
        out.emit(ins.replaced(line=0))
        out.emit(Instruction("mov", (Reg("ecx"), Reg(r2))))   # remaining
        # restore the originals first (mov/pop preserve the chunk's flags),
        # THEN save the flags for the repe/repne decision
        if uses_edi:
            out.emit(Instruction("pop", (Reg("edi"),)))
        if uses_esi:
            out.emit(Instruction("pop", (Reg("esi"),)))
        out.emit(Instruction("pop", (Reg("ecx"),)))
        if sets_flags:
            out.emit(Instruction("pushf", ()))                # chunk flags
        # consumed = chunk - remaining; advance originals
        out.emit(Instruction("sub", (Reg(r2), Reg(r1))))
        out.emit(Instruction("mov", (Reg(r1), Reg(r3))))
        if shift:
            out.emit(Instruction("shl", (Imm(shift), Reg(r3))))
        if uses_esi:
            out.emit(Instruction("add", (Reg(r3), Reg("esi"))))
        if uses_edi:
            out.emit(Instruction("add", (Reg(r3), Reg("edi"))))
        out.emit(Instruction("sub", (Reg(r1), Reg("ecx"))))
        if sets_flags:
            # restore the chunk-final compare flags, then decide
            out.emit(Instruction("popf", ()))
            if ins.prefix == "repe":
                out.emit(Instruction("jne", (Label(done),)))
            elif ins.prefix == "repne":
                out.emit(Instruction("je", (Label(done),)))
            # exhausted? preserve compare flags across the test
            out.emit(Instruction("pushf", ()))
            out.emit(Instruction("test", (Reg("ecx"), Reg("ecx"))))
            out.emit(Instruction("je", (Label(done_pop),)))
            out.emit(Instruction("popf", ()))
            out.emit(Instruction("jmp", (Label(top),)))
            out.label(done_pop)
            out.emit(Instruction("popf", ()))
        else:
            out.emit(Instruction("jmp", (Label(top),)))
        out.label(done)
        if wrap_flags:
            out.emit(Instruction("popf", ()))
        for restore in restores:
            out.emit(restore)
        return ("string_loop", tuple(regs), _spilled(saves), wrap_flags)

    def _rewrite_string_single(self, ins, index, liveness, flags_live,
                               out, stats, uses_esi, uses_edi, size,
                               sets_flags):
        """Unprefixed string op: translate, run one element, re-advance the
        original pointers (the op advanced the translated copies)."""
        regs, saves, restores = self._scratch(liveness, index, ins, 2, stats)
        r1, r2 = regs
        wrap_flags = flags_live and not sets_flags
        for save in saves:
            out.emit(save)
        if wrap_flags:
            stats.flag_saves += 1
            out.emit(Instruction("pushf", ()))
        if uses_esi:
            self._emit_translate(out, "esi", r1)
        if uses_edi:
            self._emit_translate(out, "edi", r2)
        if uses_esi:
            out.emit(Instruction("push", (Reg("esi"),)))
            out.emit(Instruction("mov", (Reg(r1), Reg("esi"))))
        if uses_edi:
            out.emit(Instruction("push", (Reg("edi"),)))
            out.emit(Instruction("mov", (Reg(r2), Reg("edi"))))
        out.emit(ins.replaced(line=0))
        if uses_edi:
            out.emit(Instruction("pop", (Reg("edi"),)))
        if uses_esi:
            out.emit(Instruction("pop", (Reg("esi"),)))
        if sets_flags:
            out.emit(Instruction("pushf", ()))
        if uses_esi:
            out.emit(Instruction("add", (Imm(size), Reg("esi"))))
        if uses_edi:
            out.emit(Instruction("add", (Imm(size), Reg("edi"))))
        if sets_flags:
            out.emit(Instruction("popf", ()))
        if wrap_flags:
            out.emit(Instruction("popf", ()))
        for restore in restores:
            out.emit(restore)
        return ("string_single", tuple(regs), _spilled(saves), wrap_flags)

    def _emit_translate(self, out: "_Emitter", pointer: str, dest: str):
        """Translate ``pointer`` through the stlb into ``dest`` via the
        register-preserving helper (result via the ``__svm_ret`` slot)."""
        out.emit(Instruction("push", (Reg(pointer),)))
        out.emit(Instruction("call", (Label(TRANSLATE_SYMBOL),)))
        out.emit(Instruction("add", (Imm(4), Reg("esp"))))
        out.emit(Instruction("mov", (Mem(symbol=RET_SLOT_SYMBOL), Reg(dest))))

    # ------------------------------------------------------- driver loop

    def rewrite(self, program: Program) -> Tuple[Program, RewriteStats]:
        for ins in program.instructions:
            if ins.mnemonic == "std":
                raise UnsupportedInstruction(
                    "backward (std) string operations are not supported"
                )
        stats = RewriteStats(input_instructions=len(program.instructions))
        liveness = LivenessAnalysis(program)
        flags_live = _flags_liveness(program)
        out = _Emitter()

        label_positions: Dict[int, List[str]] = {}
        for label, idx in program.labels.items():
            label_positions.setdefault(idx, []).append(label)

        for index, ins in enumerate(program.instructions):
            for label in label_positions.get(index, ()):
                out.label(label)
            mem = ins.memory_operand()
            site_start = len(out.instructions)
            site = None
            if ins.is_string:
                site = self._rewrite_string(ins, index, liveness,
                                            flags_live[index], out, stats)
            elif ins.indirect:
                site = self._rewrite_indirect(ins, index, liveness,
                                              flags_live[index], out, stats)
            elif (
                mem is not None
                and ins.mnemonic != "lea"
                and not mem.is_stack_relative
            ):
                site = self._rewrite_memory(ins, index, liveness,
                                            flags_live[index], out, stats)
            elif (
                self.protect_stack
                and mem is not None
                and ins.mnemonic != "lea"
                and mem.is_stack_relative
            ):
                if mem.index is None:
                    # constant offset from esp/ebp: statically verifiable
                    stats.stack_verified += 1
                    out.emit(ins)
                else:
                    site = self._rewrite_stack_checked(ins, index, liveness,
                                                       flags_live[index],
                                                       out, stats)
            else:
                out.emit(ins)
            if site is not None:
                kind, scratch, spilled, wrapped = site
                stats.note_site(SiteAnnotation(
                    kind=kind, input_index=index, start=site_start,
                    end=len(out.instructions), scratch=scratch,
                    spilled=spilled, flags_wrapped=wrapped,
                ))
        for label in label_positions.get(len(program.instructions), ()):
            out.label(label)
        out.flush_tails()

        rewritten = Program(
            instructions=out.instructions,
            labels=out.labels,
            globals_=program.globals_,
            comm=dict(program.comm),
            name=f"{program.name}.twin",
        )
        stats.output_instructions = len(rewritten.instructions)
        return rewritten, stats


class _Emitter:
    """Accumulates the output instruction stream, labels, and the slow-path
    blocks that are appended after the main body (so the fast path is
    fall-through, like the paper's figure 4)."""

    def __init__(self):
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self._tails: List[Tuple[str, List[Instruction]]] = []

    def emit(self, ins: Instruction):
        self.instructions.append(ins)

    def label(self, name: str):
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)

    def tail_block(self, label: str, instructions: List[Instruction]):
        self._tails.append((label, instructions))

    def flush_tails(self):
        for label, block in self._tails:
            self.label(label)
            for ins in block:
                self.emit(ins)
        self._tails = []


def rewrite_driver(program: Program,
                   protect_stack: bool = False,
                   stlb_entries: int = 4096
                   ) -> Tuple[Program, RewriteStats]:
    """Convenience: rewrite ``program`` with a fresh :class:`Rewriter`."""
    return Rewriter(protect_stack=protect_stack,
                    stlb_entries=stlb_entries).rewrite(program)


# ---------------------------------------------------------------------------
# Proof-based check elision (prove-then-elide)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ElisionResult:
    """What :func:`apply_elision` did to one verified binary."""

    sites_elided: int = 0
    anchors: int = 0
    #: data symbols the loader must allocate per instance: ((name, size),)
    anchor_symbols: Tuple[Tuple[str, int], ...] = ()
    #: output-program indices of the ``mov __svm_anchorK, r2`` replacements
    #: (runtime elision accounting hooks onto these: each execution is one
    #: stlb check the proof made unnecessary)
    elided_indices: Tuple[int, ...] = ()
    #: output-program indices of the ``mov r2, __svm_anchorK`` stores
    #: inserted into the anchor sites
    anchor_indices: Tuple[int, ...] = ()


def _elision_r2(program: Program, lea: int) -> str:
    """The site's translated-pointer register, read off the figure-4 xor
    (``xor __stlb+4(r1), r2``) — validating the shape on the way."""
    n = len(program.instructions)
    if lea + 9 >= n or program.instructions[lea].mnemonic != "lea":
        raise ValueError(f"no fast-path site at instruction {lea}")
    xor = program.instructions[lea + 8]
    mem = xor.memory_operand()
    if xor.mnemonic != "xor" or mem is None or mem.symbol != STLB_SYMBOL \
            or not isinstance(xor.operands[1], Reg):
        raise ValueError(f"no fast-path xor at instruction {lea + 8}")
    return xor.operands[1].parent


def apply_elision(program: Program, proofs) -> Tuple[Program, ElisionResult]:
    """Consume the verifier's :class:`~repro.analysis.absint.ProofAnnotation`
    list: replace each proven site's ten-instruction stlb check with a
    single reload of its anchor's stored translation, and make each anchor
    site store its freshly checked pointer.

    The transformation is justified by the proofs, so it must run on the
    **already verified** binary — the output intentionally contains bare
    translated accesses the verifier would reject. An elided site becomes::

        mov  __svm_anchorK, r2          # the anchor's checked translation
        <access Mem(base=r2, index, scale, disp=delta)>

    and its anchor grows one store between the xor and its access::

        xor  __stlb+4(r1), r2
        mov  r2, __svm_anchorK          # publish for the elided sites
        <original access (r2)>

    Spill saves/restores and ``pushf``/``popf`` wrapping are kept (the
    replacement clobbers a subset of what the original did, and writes no
    flags); the retry label is remapped to the replacement, leaving the
    per-site slow-path tail block as unreachable dead code."""
    anchor_prefix = ANCHOR_SYMBOL.format("")
    for label in program.labels:
        if label.startswith(anchor_prefix):
            raise ValueError(f"binary already defines {label!r}")
    for ins in program.instructions:
        for op in ins.operands:
            sym = getattr(op, "symbol", None) or getattr(op, "name", None)
            if isinstance(sym, str) and sym.startswith(anchor_prefix):
                raise ValueError(
                    f"binary already references {sym!r}: refusing to elide")

    proofs = sorted(proofs, key=lambda p: p.site_lea)
    by_site: Dict[int, object] = {}
    for p in proofs:
        if p.site_lea in by_site:
            raise ValueError(f"duplicate proof for site {p.site_lea}")
        if p.access != p.site_lea + 9:
            raise ValueError(f"proof access {p.access} does not follow "
                             f"site {p.site_lea}")
        by_site[p.site_lea] = p
    anchor_leas = sorted({p.anchor_lea for p in proofs})
    if any(lea in by_site for lea in anchor_leas):
        raise ValueError("a site cannot be both elided and an anchor")
    anchor_ids = {lea: k for k, lea in enumerate(anchor_leas)}
    r2_of = {lea: _elision_r2(program, lea)
             for lea in list(by_site) + anchor_leas}

    skip_owner: Dict[int, int] = {}
    for p in proofs:
        for j in range(p.site_lea + 1, p.site_lea + 9):
            skip_owner[j] = p.site_lea
    access_proof = {p.access: p for p in proofs}
    store_after = {lea + 8: lea for lea in anchor_leas}

    new_ins: List[Instruction] = []
    index_map: Dict[int, int] = {}
    repl_start: Dict[int, int] = {}
    elided_indices: List[int] = []
    anchor_indices: List[int] = []
    for i, ins in enumerate(program.instructions):
        owner = skip_owner.get(i)
        if owner is not None:
            index_map[i] = repl_start[owner]
            continue
        index_map[i] = len(new_ins)
        p = by_site.get(i)
        if p is not None:
            repl_start[i] = len(new_ins)
            elided_indices.append(len(new_ins))
            sym = ANCHOR_SYMBOL.format(anchor_ids[p.anchor_lea])
            new_ins.append(Instruction(
                "mov", (Mem(symbol=sym), Reg(r2_of[i]))))
            continue
        p = access_proof.get(i)
        if p is not None:
            r2 = r2_of[p.site_lea]
            translated = Mem(base=r2, index=p.index,
                             scale=p.scale if p.index is not None else 1,
                             disp=p.delta)
            new_ops = tuple(
                translated if (isinstance(op, Mem) and op.symbol is None
                               and op.base == r2 and op.index is None)
                else op
                for op in ins.operands)
            if translated not in new_ops:
                raise ValueError(
                    f"access at {i} does not use the site's translated "
                    f"pointer %{r2}")
            new_ins.append(ins.replaced(operands=new_ops))
        else:
            new_ins.append(ins)
        anchor = store_after.get(i)
        if anchor is not None:
            anchor_indices.append(len(new_ins))
            sym = ANCHOR_SYMBOL.format(anchor_ids[anchor])
            new_ins.append(Instruction(
                "mov", (Reg(r2_of[anchor]), Mem(symbol=sym))))
    index_map[len(program.instructions)] = len(new_ins)

    elided = Program(
        instructions=new_ins,
        labels={label: index_map[i] for label, i in program.labels.items()},
        globals_=program.globals_,
        comm=dict(program.comm),
        name=f"{program.name}.elided",
    )
    result = ElisionResult(
        sites_elided=len(proofs),
        anchors=len(anchor_leas),
        anchor_symbols=tuple((ANCHOR_SYMBOL.format(k), 4)
                             for k in range(len(anchor_leas))),
        elided_indices=tuple(elided_indices),
        anchor_indices=tuple(anchor_indices),
    )
    return elided, result
