"""TwinDrivers orchestration (paper §3, §5).

:class:`TwinDriverManager` performs the whole twinning flow:

1. assemble the VM driver and **rewrite** it (SVM instrumentation);
2. set up the dom0 *identity* SVM runtime and load the rewritten binary
   into dom0 as the **VM instance** (the same rewritten driver is used for
   both instances — §5.1.2 — so code addresses differ by a constant);
3. set up the hypervisor stlb, the hypervisor support routines (Table 1),
   the upcall stubs for everything else, and load the **hypervisor
   instance** at ``HYP_CODE_BASE``;
4. route NIC interrupts to the hypervisor instance (softirq context,
   honouring dom0's virtual interrupt flag — §4.4);
5. implement the guest transmit path (header copy + guest-page fragment
   chaining) and the receive path (MAC demux, copy into guest, virtual
   interrupt) for :class:`~repro.core.paravirt.ParavirtNetDevice`.

Management operations (probe, open, stats, ethtool, watchdog timers)
keep running in the **VM instance** inside dom0 via :meth:`vm_call` and
:meth:`run_vm_maintenance`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..drivers import DriverSpec, E1000_SPEC
from ..machine.nic import E1000Device, flow_hash
from ..machine.paging import AddressSpace
from ..osmodel import layout as L
from ..osmodel.kernel import Kernel
from ..obs.events import (
    PACKET_RX_DEMUX,
    SPAN_IRQ,
    SPAN_PACKET_RX,
    SPAN_PACKET_TX,
)
from ..obs.health import VIRQ_DEFER_HISTOGRAM
from ..osmodel.netdev import NetDevice
from ..osmodel.skbuff import SkBuff
from ..xen.hypervisor import (
    HYP_CODE_BASE,
    HYP_DATA_BASE,
    HYP_STACK_BASE,
    HYP_SVM_MAP_BASE,
    Hypervisor,
)
from .hypsupport import HYPERVISOR_FAST_PATH, HypervisorSupport
from .loader import (
    DriverAborted,
    HypAllocator,
    HypervisorLoader,
    SvmRuntime,
    allocate_runtime_symbols,
)
from .loader import install_elision_hooks
from .paravirt import ParavirtNetDevice
from .recovery import RecoveryManager, RecoveryPolicy
from .rewriter import STLB_SYMBOL, apply_elision, rewrite_driver
from .svm import SvmManager, SvmMapExhausted, SvmProtectionFault
from .upcall import UpcallAborted, UpcallManager

#: Faults the containment boundary catches at hypervisor entry points.
#: Python-glue support calls run outside ``HypervisorDriver.invoke``, so
#: raw SVM faults appear here alongside the wrapped ``DriverAborted``.
CONTAINABLE_FAULTS = (DriverAborted, SvmProtectionFault, SvmMapExhausted,
                      UpcallAborted)

#: NAPI-style receive budget: packets delivered per guest per
#: :meth:`TwinDriverManager.flush_rx` pass; leftovers are requeued and a
#: softirq continues the flush. Overridden via ``configs.RX_BATCH_BUDGET``.
DEFAULT_RX_BATCH_BUDGET = 64
#: Upper bound on frames accepted per :meth:`guest_transmit_batch` call.
#: Overridden via ``configs.TX_BATCH_MAX``.
DEFAULT_TX_BATCH_MAX = 32


class TwinQueue:
    """One shard of the twin's receive state (multiqueue RSS).

    Each queue owns its rx backlog, its NAPI budget, a lock-ownership
    word (which vCPU last flushed it — the contention model charges a
    cache-line handoff when that changes), and an stlb partition warmth
    tag (which guest's translations are hot in this queue's slice of the
    stlb — flushing a different guest pays a partition refill). With
    ``num_queues=1`` the single queue behaves exactly like the pre-SMP
    global rx queue and none of the contention charges fire."""

    def __init__(self, index: int, budget: int):
        self.index = index
        self.budget = budget
        #: queued (guest device, skb address) pairs awaiting flush.
        self.rx: List[Tuple["ParavirtNetDevice", int]] = []
        #: id of the vCPU that last held this queue's flush lock.
        self.lock_owner: Optional[int] = None
        #: MAC of the guest whose translations are hot in this queue's
        #: stlb partition (None = cold).
        self.last_guest: Optional[bytes] = None


class TwinDriverManager:
    """Orchestrates the whole twinning flow (paper §3/§5)."""

    def __init__(self, xen: Hypervisor, dom0_kernel: Kernel,
                 upcall_routines: Iterable[str] = (),
                 pool_size: int = 256,
                 program=None,
                 protect_stack: bool = False,
                 stlb_entries: int = 4096,
                 driver: Optional[DriverSpec] = None,
                 verify: bool = True,
                 recovery: bool = True,
                 recovery_policy: Optional[RecoveryPolicy] = None,
                 rx_batch_budget: int = DEFAULT_RX_BATCH_BUDGET,
                 tx_batch_max: int = DEFAULT_TX_BATCH_MAX,
                 elide: bool = False,
                 num_queues: int = 1,
                 instance_name: str = "hyp",
                 code_base: int = HYP_CODE_BASE,
                 data_base: int = HYP_DATA_BASE,
                 stack_base: int = HYP_STACK_BASE,
                 svm_map_base: int = HYP_SVM_MAP_BASE):
        """``upcall_routines``: fast-path routine names to serve via
        upcalls instead of hypervisor implementations (figure 10).
        ``protect_stack`` enables the §4.5.1 extension (bounds checks on
        variable-offset stack accesses). ``stlb_entries`` sizes the stlb
        hash table (the paper's is 4096 entries / 16 MiB). ``driver``
        selects which driver to twin (default: the e1000 spec).
        ``verify`` statically verifies the rewritten binary (annotated
        mode) before the hypervisor loads it; the report is kept on
        ``self.verify_report`` next to ``self.rewrite_stats``.
        ``recovery`` (default on) arms the fault-containment subsystem:
        faults at the hypervisor boundary quarantine the instance and
        degrade to the dom0 path instead of propagating; set it False to
        get the raw §4.5 abort semantics (tests).
        ``rx_batch_budget`` caps packets delivered per guest per
        :meth:`flush_rx` pass (NAPI-style); ``tx_batch_max`` caps frames
        per :meth:`guest_transmit_batch`.
        ``elide`` enables proof-based check elision: sites the verifier's
        abstract interpretation proved to stay inside an anchor's checked
        page pair reload the anchor's stored translation instead of
        re-running the stlb check. Requires ``verify=True`` (the proofs
        come from the verification report); both instances load the same
        transformed binary so ``code_offset`` stays a single constant.
        ``num_queues`` shards the receive path into N RSS queues, each
        with its own backlog, budget, lock ownership and stlb partition;
        1 (the default) reproduces the pre-SMP single-queue behaviour
        bit-for-bit.
        ``instance_name``/``code_base``/``data_base``/``stack_base``/
        ``svm_map_base`` place this twin at a distinct hypervisor VA
        layout and metric namespace so a SECOND live instance can coexist
        with the primary (queue re-homing, DESIGN.md §14); the defaults
        reproduce the single-instance layout exactly."""
        self.xen = xen
        self.machine = xen.machine
        self.dom0_kernel = dom0_kernel
        self.protect_stack = protect_stack
        self.instance_name = instance_name
        self.code_base = code_base
        self.data_base = data_base
        self.stack_base = stack_base
        self.svm_map_base = svm_map_base
        # the primary instance keeps the historical "hyp"/"dom0" prefixes
        # and "hyp-stlb"/"dom0-stlb" metric names bit-for-bit; secondary
        # instances derive theirs from instance_name
        primary = instance_name == "hyp"
        self._dom0_prefix = "dom0" if primary else f"{instance_name}.dom0"
        self._identity_svm_name = ("dom0-stlb" if primary
                                   else f"{instance_name}-dom0-stlb")
        self.upcall_routines = frozenset(upcall_routines)
        unknown = self.upcall_routines - frozenset(HYPERVISOR_FAST_PATH)
        if unknown:
            raise ValueError(f"not fast-path routines: {sorted(unknown)}")

        # 1. assemble + rewrite
        self.driver_spec = driver or E1000_SPEC
        self.program = (program if program is not None
                        else self.driver_spec.build_program())
        self.rewritten, self.rewrite_stats = rewrite_driver(
            self.program, protect_stack=protect_stack,
            stlb_entries=stlb_entries)
        # verify-then-load: the hypervisor proves the rewritten binary
        # safe before trusting it (annotated mode — the rewriter's site
        # annotations are cross-checked, not believed).
        self.verify_report = None
        if verify:
            from ..analysis.verifier import verify_program
            self.verify_report = verify_program(
                self.rewritten, annotations=self.rewrite_stats.annotations,
                protect_stack=protect_stack)
        # prove-then-elide: consume the verifier's proofs to drop stlb
        # re-checks on proven sites. ``self.rewritten`` stays pre-elision
        # (it is what recovery re-verifies); ``self.loadable`` is what
        # both instances actually load.
        self.elision = None
        self.loadable = self.rewritten
        if elide:
            if not verify or self.verify_report is None:
                raise ValueError("elide=True requires verify=True: the "
                                 "elision transform consumes the proofs")
            self.loadable, self.elision = apply_elision(
                self.rewritten, self.verify_report.proofs)

        # 2. dom0 identity runtime + VM instance
        dom0_syms = allocate_runtime_symbols(dom0_kernel.alloc_module_data)
        if self.elision is not None:
            # per-instance anchor slots (the identity instance stores raw
            # dom0 pointers, the hypervisor instance stores translated
            # ones — they must not share storage)
            self._alloc_anchor_slots(dom0_syms, dom0_kernel.alloc_module_data)
        self.identity_svm = SvmManager(
            self.machine, dom0_syms[STLB_SYMBOL],
            dom0_kernel.domain.aspace, identity=True,
            name=self._identity_svm_name,
            entries=stlb_entries,
        )
        self.dom0_runtime = SvmRuntime(
            self.machine, self._dom0_prefix, self.identity_svm, dom0_syms,
            translate_code=self._identity_translate_code,
            data_space=dom0_kernel.domain.aspace,
        )
        from ..osmodel import layout as _L
        self.dom0_runtime.set_stack_bounds(_L.KERNEL_STACK_BASE,
                                           _L.KERNEL_STACK_TOP)
        self.vm_module = dom0_kernel.load_driver(
            self.loadable,
            extra_symbols=dom0_syms,
            extra_imports=self.dom0_runtime.imports,
        )
        if self.elision is not None:
            install_elision_hooks(self.vm_module.loaded, self.identity_svm,
                                  self.elision.elided_indices)

        # 3. hypervisor side
        self.hyp_alloc = HypAllocator(self.machine, base=self.data_base)
        hyp_syms = allocate_runtime_symbols(self.hyp_alloc.alloc)
        if self.elision is not None:
            # placed in hyp runtime symbols so the loader's runtime
            # override wins over the dom0 addresses in vm_module
            self._alloc_anchor_slots(hyp_syms, self.hyp_alloc.alloc)
        self.svm = SvmManager(
            self.machine, hyp_syms[STLB_SYMBOL],
            dom0_kernel.domain.aspace, identity=False,
            map_base=self.svm_map_base, name=f"{instance_name}-stlb",
            entries=stlb_entries,
        )
        hyp_data_space = AddressSpace(
            f"{instance_name}-data", self.machine.phys,
            self.machine.hypervisor_table
        )
        self.hyp_runtime = SvmRuntime(
            self.machine, instance_name, self.svm, hyp_syms,
            translate_code=None,  # installed by the loader
            data_space=hyp_data_space,
        )
        self.upcalls = UpcallManager(xen, dom0_kernel)
        self.hyp_support = HypervisorSupport(
            xen, dom0_kernel, self.svm, self, pool_size=pool_size,
            prefix=instance_name,
        )
        support_bindings = {
            name: addr for name, addr in self.hyp_support.addresses.items()
            if name not in self.upcall_routines
        }
        loader = HypervisorLoader(xen, self.code_base, self.hyp_alloc,
                                  stack_base=self.stack_base)
        self.hyp_driver = loader.load(
            self.loadable, self.vm_module, self.hyp_runtime,
            support_bindings, upcall_factory=self.upcalls.make_stub,
            name=f"{instance_name}:{self.driver_spec.name}",
            verify=verify, verify_report=self.verify_report,
            protect_stack=protect_stack,
            elided_indices=(self.elision.elided_indices
                            if self.elision is not None else ()),
        )

        # guests & NICs
        self.guest_devices: List[ParavirtNetDevice] = []
        self.guests_by_mac: Dict[bytes, ParavirtNetDevice] = {}
        self.netdevs: Dict[int, int] = {}        # irq -> dom0 netdev addr
        self.netdev_order: List[int] = []
        self.nics_by_irq: Dict[int, E1000Device] = {}
        self.rx_dropped_no_guest = 0
        #: parked NIC interrupts: (irq, cycle-clock at defer time), so the
        #: replay path can observe delivery latency into the SLO histogram
        self._deferred_irqs: List[Tuple[int, int]] = []
        #: planned-handover admission gate: while True the twin accepts
        #: but defers all new work (tx frames parked, NIC irqs deferred)
        #: so the handover can swap/rehome against a quiescent instance.
        self.frozen = False
        #: guest tx frames admitted while frozen: (dev, buf, frame bytes)
        #: — the bytes are snapshotted at admission because the guest
        #: reuses its staging buffer on the next transmit; replay writes
        #: them back before invoking the (new) instance.
        self._frozen_tx: List[Tuple[ParavirtNetDevice, int, bytes]] = []

        # fast-path batching knobs (§5.3: one copy pass + one virtual
        # interrupt per scheduled guest, not per packet)
        if rx_batch_budget < 1:
            raise ValueError("rx_batch_budget must be >= 1")
        if tx_batch_max < 1:
            raise ValueError("tx_batch_max must be >= 1")
        if num_queues < 1:
            raise ValueError("num_queues must be >= 1")
        self.rx_batch_budget = rx_batch_budget
        self.tx_batch_max = tx_batch_max
        # multiqueue sharding: per-queue rx backlogs, budgets, lock
        # ownership and stlb partitions; guests are steered to a queue
        # by the RSS hash of their MAC
        self.num_queues = num_queues
        self.queues = [TwinQueue(i, rx_batch_budget)
                       for i in range(num_queues)]
        self._guest_rx_queue: Dict[bytes, int] = {}
        #: netdev addr -> id of the vCPU that last held its tx lock.
        self._tx_lock_owner: Dict[int, int] = {}
        #: batches addressed to a virq-masked guest, parked un-copied and
        #: un-charged until the guest unmasks (the skbs stay allocated);
        #: list of (guest device, [skb addrs]) in parking order.
        self._parked_batches: List[Tuple[ParavirtNetDevice, List[int]]] = []
        #: parked batches converted to payload bytes — what survives a
        #: quarantine (the skbs are reclaimed by the pool, the packets
        #: are not lost): (guest device, [payload bytes]) in order.
        self._parked_payloads: List[Tuple[ParavirtNetDevice, List[bytes]]] = []
        #: guest domid -> the installed unmask-hook callable (kept so a
        #: re-homed guest's hook can be removed from its Domain).
        self._hooked_guest_domids: Dict[int, object] = {}
        registry = self.machine.obs.registry
        self._h_rx_batch = registry.histogram("twin.rx_batch_size")
        self._h_tx_batch = registry.histogram("twin.tx_batch_size")
        #: deferred-virq replay latency (simulated cycles); the health
        #: watchdog checks its p99 against an SLO
        self._h_virq_defer = registry.histogram(VIRQ_DEFER_HISTOGRAM)

        # deferred NIC interrupts are replayed as soon as dom0 re-enables
        # its virtual interrupt flag (or is next scheduled with it set)
        dom0_kernel.domain.unmask_hooks.append(self._on_dom0_virq_unmask)

        # fault containment & recovery (None = raw abort semantics)
        self.recovery: Optional[RecoveryManager] = (
            RecoveryManager(self, recovery_policy) if recovery else None
        )

    # ------------------------------------------------------------------ setup

    def _alloc_anchor_slots(self, syms: Dict[str, int], alloc_fn) -> None:
        """Allocate this instance's ``__svm_anchorK`` slots into ``syms``.
        Elided sites reload them on every access, so they are cache-hot."""
        addrs = [alloc_fn(size) for _, size in self.elision.anchor_symbols]
        for (name, size), addr in zip(self.elision.anchor_symbols, addrs):
            syms[name] = addr
        if addrs:
            self.machine.cpu.add_hot_range(min(addrs), max(addrs) + 4)

    def attach_nic(self, nic: E1000Device) -> int:
        """Probe + open the NIC through the VM instance in dom0, then take
        over its interrupt line for the hypervisor driver. Returns the
        dom0 address of the net_device."""
        kernel = self.dom0_kernel
        ndev = kernel.create_netdev_for_nic(nic)
        kernel.domain.aspace.write_u32(ndev.addr + L.NDEV_MEM,
                                       nic.mmio.start)
        self.vm_call(self.driver_spec.probe_symbol, [ndev.addr])
        self.vm_call(self.driver_spec.open_symbol, [ndev.addr])
        self.xen.register_irq_handler(nic.irq, self._handle_nic_irq)
        self.netdevs[nic.irq] = ndev.addr
        self.netdev_order.append(ndev.addr)
        self.nics_by_irq[nic.irq] = nic
        return ndev.addr

    def register_guest_device(self, dev: ParavirtNetDevice):
        self.guest_devices.append(dev)
        self.guests_by_mac[dev.mac] = dev
        # RSS steering: this guest's flows land on one queue, keyed by
        # the deterministic flow hash of its MAC
        self._guest_rx_queue[dev.mac] = flow_hash(dev.mac) % self.num_queues
        domain = dev.kernel.domain
        if domain.domid not in self._hooked_guest_domids:
            hook = lambda d=domain: self._on_guest_virq_unmask(d)  # noqa: E731
            self._hooked_guest_domids[domain.domid] = hook
            domain.unmask_hooks.append(hook)
        if self.netdev_order:
            index = (len(self.guest_devices) - 1) % len(self.netdev_order)
            dev.netdev_addr = self.netdev_order[index]
        else:
            dev.netdev_addr = None

    # -- rx queue facade -----------------------------------------------------

    @property
    def _rx_queue(self) -> List[Tuple[ParavirtNetDevice, int]]:
        """Back-compat view of queue 0's backlog (THE rx queue before
        multiqueue sharding; still everything when ``num_queues=1``)."""
        return self.queues[0].rx

    @property
    def rx_backlog(self) -> int:
        """Total packets queued-but-undelivered across all rx queues,
        including batches parked for virq-masked guests (in skb form or
        carried across a quarantine in payload form)."""
        queued = sum(len(q.rx) for q in self.queues)
        parked = sum(len(skbs) for _, skbs in self._parked_batches)
        carried = sum(len(p) for _, p in self._parked_payloads)
        return queued + parked + carried

    def drop_rx_backlog(self):
        """Discard every queued and parked receive (recovery teardown —
        the skbs are reclaimed wholesale by the pool). Payload-form
        batches already carried across a quarantine are NOT dropped:
        they no longer reference instance state and stay deliverable."""
        for q in self.queues:
            q.rx.clear()
        self._parked_batches.clear()

    def preserve_parked_batches(self) -> int:
        """Carry parked masked-virq batches across a quarantine or
        planned teardown: convert each skb to payload bytes (read via
        dom0's own address space — the stlb may already be gone) and
        release the skb to the pool exactly once, even when a broadcast
        skb appears in several guests' batches. The packets move to
        ``_parked_payloads`` and are delivered — charged and counted
        once, as the parking contract promises — by the guest's unmask
        hook. Returns the number of packets carried."""
        if not self._parked_batches:
            return 0
        mem = self.dom0_kernel.memory_view()
        pool = self.hyp_support.pool
        carried = 0
        released: set = set()
        for guest, skbs in self._parked_batches:
            payloads: List[bytes] = []
            for skb_addr in skbs:
                skb = SkBuff(mem, skb_addr)
                payloads.append(mem.read_bytes(skb.data, skb.len))
                if skb_addr not in released:
                    released.add(skb_addr)
                    if skb.pool:
                        pool.release(skb_addr)
                    else:
                        skb.refcnt = 1
                        self.dom0_kernel.free_skb(skb_addr)
            self._parked_payloads.append((guest, payloads))
            carried += len(payloads)
        self._parked_batches.clear()
        return carried

    def _deliver_parked_payloads(self, guest: ParavirtNetDevice,
                                 payloads: List[bytes]):
        """Deliver a payload-form parked batch: the single accounting
        event for packets whose skbs were reclaimed at quarantine. Each
        packet is charged one copy (into the guest's buffers) and the
        batch one coalesced virq — the same shape as a normal flush,
        minus the dom0 bookkeeping share (dom0's skbs are already gone)."""
        costs = self.xen.costs
        for payload in payloads:
            self.xen.charge_xen(costs.copy_cost(len(payload))
                                + costs.twin_rx_copy_extra,
                                phase="twin:rx_copy")
        self._h_rx_batch.observe(len(payloads))
        self.xen.deliver_coalesced_virq(guest.kernel.domain, len(payloads))
        guest.deliver_batch(payloads)

    def bind_device(self, dev: ParavirtNetDevice, netdev_addr: int):
        dev.netdev_addr = netdev_addr

    # ------------------------------------------------------------ VM instance

    def vm_call(self, symbol: str, args) -> int:
        """Run a management routine in the VM instance (dom0 context)."""
        previous = self.xen.current
        self.xen.switch_to(self.dom0_kernel.domain)
        try:
            return self.dom0_kernel.call_driver(
                self.vm_module.symbol(symbol), args
            )
        finally:
            self.xen.switch_to(previous)

    def run_vm_maintenance(self) -> int:
        """Fire due dom0 timers (the VM instance's watchdog etc.)."""
        previous = self.xen.current
        self.xen.switch_to(self.dom0_kernel.domain)
        try:
            return self.dom0_kernel.run_due_timers()
        finally:
            self.xen.switch_to(previous)

    def reload_hyp_driver(self, verify_report=None) -> None:
        """Replace a quarantined hypervisor instance with a freshly loaded
        one at the same code base (``code_offset`` stays constant, so
        indirect-call translation is unchanged). The caller is expected to
        have re-verified the binary (recovery passes its report in).
        Under elision the *pre-elision* binary is what gets re-verified —
        the transform is a pure function of its proofs — and the elided
        binary is what gets reloaded."""
        if verify_report is None and self.elision is not None:
            # the elided binary intentionally fails hostile verification;
            # prove the pre-elision binary instead, as recovery does
            from ..analysis.verifier import verify_program
            verify_report = verify_program(
                self.rewritten, annotations=self.rewrite_stats.annotations,
                protect_stack=self.protect_stack)
        self.machine.code.unregister(self.hyp_driver.loaded)
        support_bindings = {
            name: addr for name, addr in self.hyp_support.addresses.items()
            if name not in self.upcall_routines
        }
        loader = HypervisorLoader(self.xen, self.code_base, self.hyp_alloc,
                                  stack_base=self.stack_base)
        self.hyp_driver = loader.load(
            self.loadable, self.vm_module, self.hyp_runtime,
            support_bindings, upcall_factory=self.upcalls.make_stub,
            name=f"{self.instance_name}:{self.driver_spec.name}",
            verify_report=verify_report,
            annotations=self.rewrite_stats.annotations,
            protect_stack=self.protect_stack,
            elided_indices=(self.elision.elided_indices
                            if self.elision is not None else ()),
        )

    def reset_anchor_slots(self) -> int:
        """Zero this instance's ``__svm_anchorK`` slots (hypervisor side).
        A planned swap must not let a translation stored by the OLD
        program be the first thing the NEW program's elided sites reload;
        every anchor site re-stores before its elided reads, so zeroing
        is free on the fast path. Returns the number of slots cleared."""
        if self.elision is None:
            return 0
        space = self.hyp_runtime._data_space
        symbols = self.hyp_runtime.symbols
        cleared = 0
        for name, _size in self.elision.anchor_symbols:
            space.write_u32(symbols[name], 0)
            cleared += 1
        return cleared

    def _identity_translate_code(self, addr: int) -> int:
        vm = self.vm_module.loaded
        if vm.base <= addr < vm.end:
            return addr
        if self.machine.natives.is_native(addr):
            return addr
        raise SvmProtectionFault(addr, "indirect call outside the driver")

    # -------------------------------------------------------------- interrupts

    def _handle_nic_irq(self, irq: int):
        """NIC interrupt: §4.4 — run the driver handler in a schedulable
        softirq context, honouring dom0's virtual interrupt flag. If a
        driver invocation is in flight the softirq is deferred until it
        completes (a nested invocation would re-enter the per-CPU SVM
        spill slots)."""
        self.xen.raise_softirq(lambda: self._run_interrupt(irq))
        if self.xen.driver_depth == 0:
            self.xen.run_softirqs()

    def _run_interrupt(self, irq: int):
        if self.frozen:
            # planned handover in progress: defer like a masked dom0 —
            # the handover's replay phase re-runs these in arrival order
            self._deferred_irqs.append((irq, self.machine.account.total))
            return
        if self.recovery is not None and self.recovery.degraded:
            self.recovery.degraded_interrupt(irq)
            return
        if not self.dom0_kernel.domain.virq_enabled:
            # dom0 masked driver interrupts (it may hold a shared lock):
            # defer until the flag is re-enabled.
            self._deferred_irqs.append((irq, self.machine.account.total))
            return
        entry_vm, arg = self.dom0_kernel.irq_handlers[irq]
        entry = self.hyp_driver.entry_for_vm_address(entry_vm)
        tracer = self.machine.obs.tracer
        span = (tracer.begin_span(SPAN_IRQ, irq=irq)
                if tracer.enabled else None)
        try:
            self.hyp_driver.invoke(entry, [irq, arg], upcalls=self.upcalls)
            self.flush_rx()
        except CONTAINABLE_FAULTS as exc:
            if self.recovery is None:
                raise
            self.recovery.handle_abort(exc)
            # serve this interrupt on the degraded dom0 path (the device
            # may still have unconsumed causes / ring entries)
            self.recovery.degraded_interrupt(irq)
        finally:
            if span is not None:
                tracer.end_span(span)

    def retry_deferred_interrupts(self):
        pending, self._deferred_irqs = self._deferred_irqs, []
        now = self.machine.account.total
        for irq, deferred_at in pending:
            self._h_virq_defer.observe(now - deferred_at)
            self._run_interrupt(irq)

    def _on_dom0_virq_unmask(self):
        """Domain unmask hook: dom0 re-enabled its virtual interrupt flag,
        so any NIC interrupts parked in ``_deferred_irqs`` can now run.
        Like :meth:`_handle_nic_irq`, the replay happens in softirq
        context and is deferred while a driver invocation is in flight."""
        if not self._deferred_irqs:
            return
        self.xen.raise_softirq(self.retry_deferred_interrupts)
        if self.xen.driver_depth == 0:
            self.xen.run_softirqs()

    def replay_frozen_tx(self) -> List[bool]:
        """Replay tx frames admitted during a handover freeze, in order.
        Each frame's bytes are restored into the guest's staging buffer
        (pure state restoration — the guest-side staging was charged at
        admission) and sent through whichever twin owns the device NOW,
        so frames from a re-homed guest go through the target instance."""
        if self.frozen:
            raise RuntimeError("cannot replay frozen tx while still frozen")
        pending, self._frozen_tx = self._frozen_tx, []
        results: List[bool] = []
        for dev, buf, frame in pending:
            dev.kernel.domain.aspace.write_bytes(buf, frame)
            results.append(dev.twin.guest_transmit(dev, buf, len(frame)))
        return results

    # --------------------------------------------------------------- re-homing

    def detach_guest_device(self, dev: ParavirtNetDevice):
        """Remove ``dev`` from this twin for re-homing to another live
        instance. Queued skbs and parked batches addressed to it are
        converted to payload bytes (released to THIS twin's pool) and
        returned as the list of pending (payload-form) batches the
        adopting twin must deliver. The guest's unmask hook is unhooked
        when no other device of that domain stays behind."""
        if dev not in self.guest_devices:
            raise ValueError(f"device {dev.mac.hex()} not on this twin")
        mem = self.dom0_kernel.memory_view()
        pool = self.hyp_support.pool
        pending: List[List[bytes]] = []

        def _to_payload(skb_addr: int) -> bytes:
            skb = SkBuff(mem, skb_addr)
            payload = mem.read_bytes(skb.data, skb.len)
            refs = skb.refcnt
            if refs > 1:
                # broadcast skb shared with batches staying behind:
                # this detach drops only its own reference
                skb.refcnt = refs - 1
            elif skb.pool:
                pool.release(skb_addr)
            else:
                self.dom0_kernel.free_skb(skb_addr)
            return payload

        for q in self.queues:
            mine = [s for g, s in q.rx if g is dev]
            if mine:
                q.rx = [(g, s) for g, s in q.rx if g is not dev]
                pending.append([_to_payload(s) for s in mine])
        still_parked: List[Tuple[ParavirtNetDevice, List[int]]] = []
        for guest, skbs in self._parked_batches:
            if guest is dev:
                pending.append([_to_payload(s) for s in skbs])
            else:
                still_parked.append((guest, skbs))
        self._parked_batches = still_parked
        still_carried: List[Tuple[ParavirtNetDevice, List[bytes]]] = []
        for guest, payloads in self._parked_payloads:
            if guest is dev:
                pending.append(payloads)
            else:
                still_carried.append((guest, payloads))
        self._parked_payloads = still_carried

        self.guest_devices.remove(dev)
        del self.guests_by_mac[dev.mac]
        self._guest_rx_queue.pop(dev.mac, None)
        domain = dev.kernel.domain
        if not any(d.kernel.domain is domain for d in self.guest_devices):
            hook = self._hooked_guest_domids.pop(domain.domid, None)
            if hook is not None and hook in domain.unmask_hooks:
                domain.unmask_hooks.remove(hook)
        dev.netdev_addr = None
        return pending

    def adopt_guest_device(self, dev: ParavirtNetDevice,
                           pending: Optional[List[List[bytes]]] = None):
        """Adopt a device detached from another twin: register it here
        (RSS steering, unmask hook, netdev binding) and deliver — or
        park, if the guest's virq is masked — the payload batches that
        were in flight on the source instance."""
        dev.twin = self
        self.register_guest_device(dev)
        for payloads in pending or []:
            if not payloads:
                continue
            if dev.kernel.domain.virq_enabled and not self.frozen:
                self._deliver_parked_payloads(dev, payloads)
            else:
                self._parked_payloads.append((dev, payloads))

    # ----------------------------------------------------------------- transmit

    def guest_transmit(self, dev: ParavirtNetDevice, buf: int,
                       frame_len: int) -> bool:
        """The hypervisor half of the paravirtual transmit path."""
        if dev.netdev_addr is None:
            raise RuntimeError("guest device not bound to a NIC")
        tracer = self.machine.obs.tracer
        if tracer.enabled:
            span = tracer.begin_span(SPAN_PACKET_TX, len=frame_len)
            try:
                return self._contained_transmit(dev, buf, frame_len)
            finally:
                tracer.end_span(span)
        return self._contained_transmit(dev, buf, frame_len)

    def _contained_transmit(self, dev: ParavirtNetDevice, buf: int,
                            frame_len: int) -> bool:
        """The containment boundary for the transmit path: while degraded
        route to dom0; on a fault, quarantine and serve the packet on the
        degraded path so the guest never sees the abort."""
        if self.frozen:
            # handover admission gate: accept the frame but park it; the
            # replay phase sends it through whichever twin owns the
            # device after the swap/rehome
            frame = dev.kernel.domain.aspace.read_bytes(buf, frame_len)
            self._frozen_tx.append((dev, buf, frame))
            return True
        if self.recovery is not None and self.recovery.degraded:
            return self.recovery.degraded_transmit(dev, buf, frame_len)
        try:
            return self._guest_transmit(dev, buf, frame_len)
        except CONTAINABLE_FAULTS as exc:
            if self.recovery is None:
                raise
            self.recovery.handle_abort(exc)
            return self.recovery.degraded_transmit(dev, buf, frame_len)

    def _guest_transmit(self, dev: ParavirtNetDevice, buf: int,
                        frame_len: int, entry: Optional[int] = None) -> bool:
        costs = self.xen.costs
        if self.driver_spec.scatter_gather:
            header, frags = dev.guest_frame_fragments(buf, frame_len)
        else:
            # the driver cannot do scatter/gather: hand it a linear skb
            # (the whole frame is copied, like NETIF_F_SG-less devices)
            header = dev.kernel.domain.aspace.read_bytes(buf, frame_len)
            frags = []

        skb_addr = self.hyp_support.netdev_alloc_skb(dev.netdev_addr,
                                                     frame_len)
        self._charge_support("netdev_alloc_skb")
        if skb_addr == 0:
            return False
        try:
            skb = SkBuff(self.hyp_support.view, skb_addr)
            # copy the header (or, without SG, the whole frame) into the
            # skb — these writes go through the stlb and can fault too
            skb.put(len(header))
            self.hyp_support.view.write_bytes(skb.data, header)
            self.xen.charge_xen(costs.copy_cost(len(header)),
                                phase="twin:tx_copy")
            # ... chain the rest of the guest packet as page fragments
            for page, off, size in frags:
                skb.add_frag(page, off, size)
                self.xen.charge_xen(costs.frag_chain, phase="twin:tx_frag")
            if entry is None:
                entry = self._xmit_entry(dev)
            result = self.hyp_driver.invoke(
                entry, [skb_addr, dev.netdev_addr], upcalls=self.upcalls)
        except CONTAINABLE_FAULTS:
            # the staged skb would otherwise stay 'outstanding' forever:
            # the faulting instance never gets to free it, and the
            # degraded path allocates its own
            self.hyp_support.pool.release(skb_addr)
            raise
        if result != 0:
            self.hyp_support.dev_kfree_skb_any(skb_addr)
            self._charge_support("dev_kfree_skb_any")
            return False
        return True

    def _xmit_entry(self, dev: ParavirtNetDevice) -> int:
        xmit_vm = NetDevice(self.dom0_kernel.domain.aspace,
                            dev.netdev_addr).hard_start_xmit
        return self.hyp_driver.entry_for_vm_address(xmit_vm)

    def guest_transmit_batch(self, dev: ParavirtNetDevice,
                             frames: List[Tuple[int, int]]) -> List[bool]:
        """Transmit a burst of staged guest frames (``(buf, len)`` pairs)
        under one span, resolving the driver's ``hard_start_xmit`` entry
        once for the whole batch. A containable fault mid-batch routes the
        faulting frame *and the rest of the burst* through the degraded
        per-packet path, so the guest still gets one result per frame."""
        if dev.netdev_addr is None:
            raise RuntimeError("guest device not bound to a NIC")
        if len(frames) > self.tx_batch_max:
            raise ValueError(
                f"batch of {len(frames)} exceeds tx_batch_max="
                f"{self.tx_batch_max}")
        if not frames:
            return []
        self._h_tx_batch.observe(len(frames))
        tracer = self.machine.obs.tracer
        total = sum(frame_len for _, frame_len in frames)
        span = (tracer.begin_span(SPAN_PACKET_TX, len=total,
                                  batch=len(frames))
                if tracer.enabled else None)
        try:
            return self._guest_transmit_burst(dev, frames)
        finally:
            if span is not None:
                tracer.end_span(span)

    def _guest_transmit_burst(self, dev: ParavirtNetDevice,
                              frames: List[Tuple[int, int]]) -> List[bool]:
        if self.frozen:
            aspace = dev.kernel.domain.aspace
            self._frozen_tx.extend(
                (dev, buf, aspace.read_bytes(buf, n)) for buf, n in frames)
            return [True] * len(frames)
        if self.recovery is not None and self.recovery.degraded:
            return [self.recovery.degraded_transmit(dev, buf, frame_len)
                    for buf, frame_len in frames]
        if self.num_queues > 1 and dev.netdev_addr is not None:
            # tx-lock contention model (the driver's xmit lock, which the
            # twin already takes): a burst from a vCPU that did not send
            # the previous burst on this netdev pays the cache-line
            # handoff; same-vCPU back-to-back bursts take it uncontended
            owner = self.xen._cur_vcpu.id
            last = self._tx_lock_owner.get(dev.netdev_addr)
            costs = self.xen.costs
            if last is None or last == owner:
                self.xen.charge_xen(costs.lock_uncontended,
                                    phase="twin:lock")
            else:
                self.xen.charge_xen(costs.lock_handoff,
                                    phase="twin:lock_handoff")
            self._tx_lock_owner[dev.netdev_addr] = owner
        entry = self._xmit_entry(dev)
        results: List[bool] = []
        for index, (buf, frame_len) in enumerate(frames):
            try:
                results.append(
                    self._guest_transmit(dev, buf, frame_len, entry=entry))
            except CONTAINABLE_FAULTS as exc:
                if self.recovery is None:
                    raise
                self.recovery.handle_abort(exc)
                # per-packet fallback: this frame and the remainder of
                # the burst go through the degraded dom0 path
                results.extend(
                    self.recovery.degraded_transmit(dev, b, n)
                    for b, n in frames[index:])
                break
        return results

    # ------------------------------------------------------------------ receive

    def hypervisor_netif_rx(self, skb_addr: int):
        """The hypervisor's netif_rx: demultiplex on destination MAC and
        queue for the owning guest (paper §5.3). Broadcast/multicast
        frames (group bit set) are queued for *every* guest — the skb's
        refcount is raised so each delivery drops one reference. Unicast
        frames with no owning guest are dropped and counted."""
        costs = self.xen.costs
        self.xen.charge_xen(costs.twin_rx_demux, phase="twin:rx_demux")
        skb = SkBuff(self.hyp_support.view, skb_addr)
        # eth_type_trans already pulled the header: MAC is at data - 14.
        dst_mac = self.hyp_support.view.read_bytes(skb.data - L.ETH_HLEN,
                                                   L.ETH_ALEN)
        if dst_mac[0] & 1:
            # broadcast / multicast: every guest gets a copy
            targets = list(self.guest_devices)
        else:
            guest = self.guests_by_mac.get(dst_mac)
            targets = [guest] if guest is not None else []
        tracer = self.machine.obs.tracer
        if tracer.enabled:
            tracer.emit(PACKET_RX_DEMUX, skb=skb_addr, len=skb.len,
                        matched=bool(targets), ntargets=len(targets))
        if not targets:
            self.rx_dropped_no_guest += 1
            self.hyp_support.dev_kfree_skb_any(skb_addr)
            self._charge_support("dev_kfree_skb_any")
            return
        if len(targets) > 1:
            skb.refcnt = skb.refcnt + len(targets) - 1
        multi = self.num_queues > 1
        for target in targets:
            if multi:
                # RSS queue selection per packet (hash + steering table)
                self.xen.charge_xen(costs.rss_demux, phase="twin:rss_demux")
            qi = self._guest_rx_queue.get(target.mac, 0)
            self.queues[qi].rx.append((target, skb_addr))

    def flush_rx(self):
        """'When the guest domain is scheduled next, the hypervisor copies
        the packets into guest domain buffers and raises a virtual
        interrupt' (§5.3).

        Packets are delivered per queue shard, in per-guest batches: each
        guest gets at most the queue's budget per pass (NAPI-style) under
        ONE coalesced virtual interrupt; packets over budget are requeued
        and a softirq continues the flush. Batches for a virq-masked
        guest are parked un-copied and un-charged; the guest's unmask
        hook replays them, so every packet is counted exactly once."""
        need_continuation = False
        for q in self.queues:
            if q.rx:
                need_continuation |= self._flush_queue(q)
        if need_continuation:
            # budget exhausted for at least one guest: requeue and let a
            # softirq continue (keeps any one guest from starving others)
            self.xen.raise_softirq(self.flush_rx)
            if self.xen.driver_depth == 0:
                self.xen.run_softirqs()

    def _flush_queue(self, q: TwinQueue) -> bool:
        """Flush one queue shard; returns True when leftovers remain."""
        costs = self.xen.costs
        tracer = self.machine.obs.tracer
        multi = self.num_queues > 1
        if multi:
            # flush-lock contention model: taking a queue lock last held
            # by another vCPU bounces its cache line across the socket
            owner = self.xen._cur_vcpu.id
            if q.lock_owner is None or q.lock_owner == owner:
                self.xen.charge_xen(costs.lock_uncontended,
                                    phase="twin:lock")
            else:
                self.xen.charge_xen(costs.lock_handoff,
                                    phase="twin:lock_handoff")
            q.lock_owner = owner
        queue, q.rx = q.rx, []

        # group into per-guest batches, preserving arrival order both
        # within a batch and across guests (first-seen order)
        batches: Dict[ParavirtNetDevice, List[int]] = {}
        order: List[ParavirtNetDevice] = []
        leftovers: List[Tuple[ParavirtNetDevice, int]] = []
        for guest, skb_addr in queue:
            batch = batches.get(guest)
            if batch is None:
                batch = batches[guest] = []
                order.append(guest)
            if len(batch) < q.budget:
                batch.append(skb_addr)
            else:
                leftovers.append((guest, skb_addr))

        for guest in order:
            batch = batches[guest]
            if not guest.kernel.domain.virq_enabled:
                # masked guest: park the whole batch for the unmask hook.
                # Nothing is copied, charged or counted yet — the replay
                # delivery is the single accounting event.
                self._parked_batches.append((guest, batch))
                continue
            if multi and q.last_guest != guest.mac:
                # this queue's stlb partition is warm for a different
                # guest's buffers; switching guests refills it
                self.xen.charge_xen(costs.stlb_partition_refill,
                                    phase="twin:stlb_partition")
                q.last_guest = guest.mac
            payloads: List[bytes] = []
            for skb_addr in batch:
                skb = SkBuff(self.hyp_support.view, skb_addr)
                payload = self.hyp_support.view.read_bytes(skb.data, skb.len)
                span = (tracer.begin_span(SPAN_PACKET_RX, len=len(payload))
                        if tracer.enabled else None)
                self.xen.charge_xen(costs.copy_cost(len(payload))
                                    + costs.twin_rx_copy_extra,
                                    phase="twin:rx_copy")
                prof = self.machine.obs.profiler
                if prof.enabled:
                    prof.push_phase("twin:rx_dom0_share")
                self.machine.account.charge("dom0", costs.twin_rx_dom0_share)
                if prof.enabled:
                    prof.pop_phase()
                self.hyp_support.dev_kfree_skb_any(skb_addr)
                self._charge_support("dev_kfree_skb_any")
                payloads.append(payload)
                if span is not None:
                    tracer.end_span(span)
            # ONE virtual interrupt for the whole batch (was one per
            # packet): the coalescing §5.3 promises
            self._h_rx_batch.observe(len(payloads))
            self.xen.deliver_coalesced_virq(guest.kernel.domain,
                                            len(payloads))
            guest.deliver_batch(payloads)

        if leftovers:
            q.rx.extend(leftovers)
            return True
        return False

    def _on_guest_virq_unmask(self, domain):
        """Guest unmask hook: batches parked while the guest's virq was
        masked go back on their queues and a softirq re-runs the flush
        (which copies, charges and delivers them — their first and only
        accounting). Payload-form batches carried across a quarantine
        are delivered directly. While frozen for a planned handover
        everything stays parked; the handover's replay phase re-fires
        this hook after the swap."""
        if self.frozen:
            return
        if not self._parked_batches and not self._parked_payloads:
            return
        still_parked: List[Tuple[ParavirtNetDevice, List[int]]] = []
        replayed = False
        for guest, skbs in self._parked_batches:
            if guest.kernel.domain is domain:
                qi = self._guest_rx_queue.get(guest.mac, 0)
                self.queues[qi].rx.extend((guest, s) for s in skbs)
                replayed = True
            else:
                still_parked.append((guest, skbs))
        self._parked_batches = still_parked
        still_carried: List[Tuple[ParavirtNetDevice, List[bytes]]] = []
        for guest, payloads in self._parked_payloads:
            if guest.kernel.domain is domain:
                self._deliver_parked_payloads(guest, payloads)
            else:
                still_carried.append((guest, payloads))
        self._parked_payloads = still_carried
        if replayed:
            self.xen.raise_softirq(self.flush_rx)
            if self.xen.driver_depth == 0:
                self.xen.run_softirqs()

    # ------------------------------------------------------------------- helpers

    def _charge_support(self, name: str):
        self.hyp_support.note_call(name, direct=True)
        self.xen.charge_xen(self.xen.costs.support_cost(name),
                            phase=f"support:{name}")

    @property
    def aborted(self) -> bool:
        return self.hyp_driver.aborted
