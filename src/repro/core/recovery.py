"""Fault containment and automatic twin-driver recovery.

The paper's safety story (§4.5) ends at "the driver is aborted"; this
module supplies the containment and recovery machinery that makes an
abort a survivable event instead of a simulation-ending crash:

1. **Quarantine** — when a driver invocation faults
   (:class:`~repro.core.svm.SvmProtectionFault`, a stack smash, an
   undeliverable upcall, ...), the faulting hypervisor instance is torn
   down: NIC lines are masked, in-flight upcall frames are unwound,
   dom0 locks the driver held are force-released, pool sk_buffs it was
   holding are reclaimed, every stlb translation and hypervisor mapping
   is invalidated, and the indirect-call cache is dropped. A flight
   recorder keeps the tail of the trace ring from the moment of the
   abort.

2. **Degraded mode** — guest traffic keeps flowing through the
   paravirtualized dom0 path: the fully-functional *VM instance* of the
   same driver (probe/open ran there) drives the NIC from dom0, with
   the hypervisor copying frames and demultiplexing receives by MAC.
   This is the classic split-driver data path: slower, but alive.

3. **Reload** — after a bounded backoff (counted in degraded
   operations), the rewritten binary is *re-verified* with the PR-1
   static verifier and reloaded at the same code base through the
   loader. A reload that faults again shortly after ("relapse") feeds a
   crash-loop circuit breaker; once the breaker opens the system stays
   on the degraded path permanently rather than thrashing.

Everything is observable: ``recovery.*`` counters in the metrics
registry, ``recovery.{quarantine,degraded,reload,breaker}`` trace
events, a ``recovery`` span around each quarantine, and the flight
recorder (``flight_records``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..obs.events import (
    RECOVERY_BREAKER,
    RECOVERY_DEGRADED,
    RECOVERY_QUARANTINE,
    RECOVERY_RELOAD,
    SPAN_RECOVERY,
)
from ..osmodel import layout as L
from ..osmodel.netdev import NetDevice
from ..osmodel.skbuff import SkBuff

if TYPE_CHECKING:  # pragma: no cover
    from .paravirt import ParavirtNetDevice
    from .twin import TwinDriverManager

#: Trace-ring records preserved per abort in the flight recorder.
FLIGHT_RECORD_TAIL = 32


@dataclass
class RecoveryPolicy:
    """Tunables for the retry/backoff/breaker state machine."""

    #: total reload attempts before the breaker opens unconditionally.
    max_reload_attempts: int = 5
    #: degraded operations to serve before the first reload attempt.
    backoff_initial: int = 2
    #: backoff growth per failed reload attempt.
    backoff_multiplier: int = 2
    #: consecutive relapses (abort soon after a reload) that open the
    #: crash-loop breaker.
    breaker_threshold: int = 3
    #: invocations a reloaded driver must survive for the relapse
    #: counter to reset.
    stable_invocations: int = 64


class RecoveryManager:
    """The containment/recovery state machine for one twin driver.

    States: ``active`` (hypervisor instance serving traffic),
    ``degraded`` (dom0 path serving traffic, reload pending), ``broken``
    (crash-loop breaker open; dom0 path permanently)."""

    def __init__(self, twin: "TwinDriverManager",
                 policy: Optional[RecoveryPolicy] = None):
        self.twin = twin
        self.xen = twin.xen
        self.machine = twin.machine
        self.policy = policy or RecoveryPolicy()
        self.state = "active"
        self.flight_records: List[List[Dict]] = []
        self.last_cause: Optional[Exception] = None
        self._reload_attempts = 0
        self._consecutive_relapses = 0
        self._ops_until_reload = 0
        self._reloaded_at_invocations: Optional[int] = None
        self._saved_rx_handler = None
        registry = self.machine.obs.registry
        self._tracer = self.machine.obs.tracer
        self._c = {
            name: registry.counter(f"recovery.{name}")
            for name in (
                "abort", "quarantine", "degraded_tx", "degraded_rx",
                "reload_attempt", "reload_success", "reload_failure",
                "breaker_open", "frames_unwound", "locks_released",
                "skbs_reclaimed", "recovered", "parked_carried",
            )
        }

    # -- state views ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while traffic must be served on the dom0 path."""
        return self.state in ("degraded", "broken")

    @property
    def broken(self) -> bool:
        return self.state == "broken"

    def counters_snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._c.items()}

    # -- abort entry point ---------------------------------------------------

    def handle_abort(self, exc: Exception):
        """Contain a faulted hypervisor driver instance: quarantine it and
        switch traffic to the degraded dom0 path."""
        self._c["abort"].value += 1
        self.last_cause = exc
        relapse = (
            self._reloaded_at_invocations is not None
            and self.twin.hyp_driver.invocations
            < self.policy.stable_invocations
        )
        if relapse:
            self._consecutive_relapses += 1
        else:
            self._consecutive_relapses = 0
        self._reloaded_at_invocations = None
        span = (self._tracer.begin_span(SPAN_RECOVERY,
                                        cause=type(exc).__name__)
                if self._tracer.enabled else None)
        try:
            self._quarantine(exc)
        finally:
            if span is not None:
                self._tracer.end_span(span)
        if (self._consecutive_relapses >= self.policy.breaker_threshold
                or self._reload_attempts >= self.policy.max_reload_attempts):
            self._open_breaker()
        else:
            self.state = "degraded"
            self._ops_until_reload = (
                self.policy.backoff_initial
                * self.policy.backoff_multiplier ** self._reload_attempts
            )
        # Unmask only now that the state says "degraded"/"broken": pending
        # interrupt causes replayed by the unmask must route to the dom0
        # path, not re-enter the instance being dismantled.
        self._unmask_lines()

    def _quarantine(self, exc: Exception):
        """Tear down every resource the faulted instance could have left
        in a dangerous state."""
        twin = self.twin
        # Freeze the interrupt lines while the instance is dismantled.
        for nic in twin.nics_by_irq.values():
            mask = getattr(nic, "mask_line", None)
            if mask is not None:
                mask()
        # Flight recorder: capture the trace tail before anything else
        # overwrites it (works whenever tracing is enabled).
        tail = self.machine.obs.tracer.tail(FLIGHT_RECORD_TAIL)
        if tail:
            self.flight_records.append([ev.to_dict() for ev in tail])
        # Unwind in-flight upcall frames.
        frames = twin.upcalls.abort_unwind()
        self._c["frames_unwound"].value += frames
        # Force-release dom0 locks the dead instance held, and make sure
        # dom0 can take interrupts again (the driver may have died inside
        # a spin_lock_irqsave window).
        locks = twin.hyp_support.release_held_locks()
        self._c["locks_released"].value += locks
        # Drop interrupts deferred on the virq mask BEFORE re-enabling it:
        # the domain's unmask hook would otherwise replay them into the
        # instance being dismantled. Nothing is lost — their causes are
        # still latched in the (masked) NICs and are replayed onto the
        # degraded path when handle_abort unmasks the lines.
        twin._deferred_irqs.clear()
        twin.dom0_kernel.domain.enable_virq()
        # Carry batches parked for virq-masked guests across the
        # teardown: their skbs are about to be reclaimed, but the
        # packets themselves must survive — they are delivered (and
        # accounted, exactly once) when the guest unmasks.
        carried = twin.preserve_parked_batches()
        self._c["parked_carried"].value += carried
        # Drop queued-but-undelivered receives and reclaim every pool
        # sk_buff the instance was holding.
        twin.drop_rx_backlog()
        skbs = twin.hyp_support.pool.reclaim_outstanding()
        self._c["skbs_reclaimed"].value += skbs
        # No stale translation survives: stlb table, chains, hypervisor
        # mappings and the indirect-call cache all go.
        twin.svm.invalidate_all()
        twin.hyp_runtime.call_xlate_cache.clear()
        # Route receives through dom0 while degraded.
        if self._saved_rx_handler is None:
            self._saved_rx_handler = twin.dom0_kernel.rx_handler
            twin.dom0_kernel.rx_handler = self._demux_rx
        self._c["quarantine"].value += 1
        if self._tracer.enabled:
            self._tracer.emit(
                RECOVERY_QUARANTINE, cause=type(exc).__name__,
                detail=str(exc), frames=frames, locks=locks, skbs=skbs,
            )

    def _unmask_lines(self):
        for nic in self.twin.nics_by_irq.values():
            unmask = getattr(nic, "unmask_line", None)
            if unmask is not None:
                unmask()

    def _open_breaker(self):
        self.state = "broken"
        self._c["breaker_open"].value += 1
        if self._tracer.enabled:
            self._tracer.emit(
                RECOVERY_BREAKER,
                reloads=self._reload_attempts,
                relapses=self._consecutive_relapses,
            )

    # -- degraded data path --------------------------------------------------

    def degraded_transmit(self, dev: "ParavirtNetDevice", buf: int,
                          frame_len: int) -> bool:
        """Serve one guest transmit on the dom0 path: copy the staged
        frame out of guest memory and push it through the VM instance
        (dom0's own twin) — the split-driver fallback."""
        self._c["degraded_tx"].value += 1
        if self._tracer.enabled:
            self._tracer.emit(RECOVERY_DEGRADED, op="tx", len=frame_len)
        twin = self.twin
        costs = self.xen.costs
        frame = dev.kernel.domain.aspace.read_bytes(buf, frame_len)
        self.xen.charge_xen(costs.copy_cost(frame_len))

        def run_in_dom0() -> bool:
            kernel = twin.dom0_kernel
            ndev = NetDevice(kernel.domain.aspace, dev.netdev_addr)
            skb = kernel.alloc_skb(frame_len)
            try:
                skb.put(frame_len)
                kernel.memory_view().write_bytes(skb.data, frame)
                skb.dev = ndev.addr
                return kernel.transmit_skb(skb, ndev)
            except Exception:
                # don't leak the staged skb when the dom0 xmit path
                # itself blows up mid-flight
                skb.refcnt = 1
                kernel.free_skb(skb.addr)
                raise

        ok = self.xen.run_in_domain(twin.dom0_kernel.domain, run_in_dom0)
        self._maybe_recover()
        return bool(ok)

    def degraded_interrupt(self, irq: int):
        """Serve a NIC interrupt in dom0: the VM instance runs its own
        ISR; receives are demultiplexed to guests by :meth:`_demux_rx`."""
        self._c["degraded_rx"].value += 1
        if self._tracer.enabled:
            self._tracer.emit(RECOVERY_DEGRADED, op="irq", irq=irq)
        twin = self.twin
        self.xen.charge_xen(self.xen.costs.virq_delivery)
        self.xen.run_in_domain(
            twin.dom0_kernel.domain,
            lambda: twin.dom0_kernel.handle_irq(irq),
        )
        self._maybe_recover()

    def _demux_rx(self, skb_addr: int):
        """dom0 ``netif_rx`` handler while degraded: deliver hypervisor
        pool buffers to the owning guest (by destination MAC), everything
        else to dom0's own stack."""
        twin = self.twin
        kernel = twin.dom0_kernel
        mem = kernel.memory_view()
        skb = SkBuff(mem, skb_addr)
        # eth_type_trans already pulled the header: MAC is at data - 14.
        dst_mac = mem.read_bytes(skb.data - L.ETH_HLEN, L.ETH_ALEN)
        costs = self.xen.costs
        pool = twin.hyp_support.pool
        is_pool = bool(skb.pool)
        if is_pool and skb.refcnt > 1:
            # A broadcast/multicast batch interrupted mid-drain leaves
            # extra references from deliveries that will never happen
            # (the faulted instance's queues were wiped). On the dom0
            # fallback path each skb is delivered exactly once below, so
            # a stale count would make every free a mere decrement and
            # leak the buffer out of the pool forever.
            skb.refcnt = 1
        if dst_mac[0] & 1:
            # broadcast/multicast: every guest gets a copy, and dom0's
            # own stack still sees the frame
            payload = mem.read_bytes(skb.data, skb.len)
            for guest in twin.guest_devices:
                self.xen.charge_xen(costs.copy_cost(len(payload)))
                self.xen.charge_xen(costs.virq_delivery)
                guest.deliver(payload)
            handler = self._saved_rx_handler or kernel._rx_deliver_local
            handler(skb_addr)
            if is_pool:
                pool.release(skb_addr)     # idempotent backstop
            return
        guest = twin.guests_by_mac.get(dst_mac)
        if guest is None:
            # unknown unicast belongs to dom0's own stack, not to
            # whichever guest happens to be first
            handler = self._saved_rx_handler or kernel._rx_deliver_local
            handler(skb_addr)
            if is_pool:
                pool.release(skb_addr)     # idempotent backstop
            return
        payload = mem.read_bytes(skb.data, skb.len)
        self.xen.charge_xen(costs.copy_cost(len(payload)))
        self.xen.charge_xen(costs.virq_delivery)
        if is_pool:
            # pool buffers go back to the pool, not through dom0's
            # slab bookkeeping
            pool.release(skb_addr)
        else:
            kernel.free_skb(skb_addr)
        guest.deliver(payload)

    # -- reload --------------------------------------------------------------

    def _maybe_recover(self):
        if self.state != "degraded":
            return
        self._ops_until_reload -= 1
        if self._ops_until_reload <= 0:
            self.attempt_reload()

    def attempt_reload(self) -> bool:
        """Re-verify the rewritten binary and reload the hypervisor
        instance. Returns True when the driver is active again."""
        if self.state != "degraded":
            return False
        self._reload_attempts += 1
        self._c["reload_attempt"].value += 1
        if self._tracer.enabled:
            self._tracer.emit(RECOVERY_RELOAD, attempt=self._reload_attempts)
        twin = self.twin
        try:
            # Re-verify before trusting the binary again (the PR-1 static
            # verifier; annotated mode cross-checks the rewriter's site
            # annotations rather than believing them).
            from ..analysis.verifier import verify_program
            report = verify_program(
                twin.rewritten,
                annotations=twin.rewrite_stats.annotations,
                protect_stack=twin.protect_stack,
                name="hyp:reload",
            )
            if not report.ok:
                from ..analysis.report import VerificationError
                raise VerificationError(report)
            twin.reload_hyp_driver(verify_report=report)
        except Exception as exc:   # verification or load failure
            self._c["reload_failure"].value += 1
            self._consecutive_relapses += 1
            if self._tracer.enabled:
                self._tracer.emit(RECOVERY_RELOAD,
                                  attempt=self._reload_attempts,
                                  ok=False, error=type(exc).__name__)
            if (self._consecutive_relapses >= self.policy.breaker_threshold
                    or self._reload_attempts
                    >= self.policy.max_reload_attempts):
                self._open_breaker()
            else:
                self._ops_until_reload = (
                    self.policy.backoff_initial
                    * self.policy.backoff_multiplier ** self._reload_attempts
                )
            return False
        # Back in business: restore the normal receive routing.
        if self._saved_rx_handler is not None:
            twin.dom0_kernel.rx_handler = self._saved_rx_handler
            self._saved_rx_handler = None
        self.state = "active"
        self._reloaded_at_invocations = 0
        self._c["reload_success"].value += 1
        self._c["recovered"].value += 1
        if self._tracer.enabled:
            self._tracer.emit(RECOVERY_RELOAD, attempt=self._reload_attempts,
                              ok=True)
        return True
