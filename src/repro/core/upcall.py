"""Upcalls: synchronous cross-address-space calls into dom0 (paper §4.2).

Driver calls to support routines the hypervisor does not implement are
bound to *stub* natives created here. A stub:

1. saves the call parameters and switches to the upcall stack (modelled;
   charged as part of the stub cost),
2. performs a synchronous domain switch to dom0 and delivers a
   synchronous virtual interrupt on the registered upcall port,
3. the dom0 upcall handler re-creates the call environment (the heap is
   shared — single data instance; the register/stack parameters are
   identical because the stub leaves the hypervisor stack in place and
   dom0 reads the parameters from it) and invokes the dom0 support
   routine,
4. the routine's return value travels back through a "return hypercall"
   and another domain switch.

The cycle cost is the mechanism costs (two domain switches, event
delivery, return hypercall) plus a calibrated cache-pollution residual so
one upcall per driver invocation costs ``UPCALL_ROUND_TRIP`` — which is
what collapses throughput in figure 10.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..machine.cpu import Cpu, NativeRoutine
from ..obs.events import SPAN_UPCALL_PREFIX
from ..obs.metrics import Counter
from ..osmodel.kernel import Kernel
from ..xen.hypervisor import HYP_UPCALL_STACK_BASE, Hypervisor


class UpcallManager:
    """Builds upcall stubs and runs the dom0 side of each upcall."""

    def __init__(self, xen: Hypervisor, dom0_kernel: Kernel):
        self.xen = xen
        self.machine = xen.machine
        self.dom0_kernel = dom0_kernel
        registry = self.machine.obs.registry
        self._tracer = self.machine.obs.tracer
        self._c_upcalls = registry.counter("upcall.calls")
        self._c_by_name: Dict[str, Counter] = {}
        self._invocation_upcalled = False
        #: dom0 registers a handler on this port to receive upcalls.
        self._pending: Optional[tuple] = None
        self._result: Optional[int] = None
        self.port = dom0_kernel.domain.bind_event_channel(self._dom0_handler)
        costs = xen.costs
        mechanics = (
            2 * costs.domain_switch
            + costs.event_channel_send
            + costs.virq_delivery
            + costs.hypercall            # the 'return' hypercall
        )
        #: residual charged so stub + mechanics == UPCALL_ROUND_TRIP.
        self.cache_residual = max(
            0, costs.upcall_round_trip - mechanics - costs.upcall_stub
        )

    # -- counter views (registry-backed) ----------------------------------------

    @property
    def upcalls(self) -> int:
        return self._c_upcalls.value

    @property
    def calls_by_name(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._c_by_name.items()
                if c.value}

    # -- per-invocation bookkeeping (figure 10 first-upcall extra) --------------

    def new_invocation(self):
        self._invocation_upcalled = False

    # -- the dom0 side ------------------------------------------------------------

    def _dom0_handler(self, port: int):
        """Runs in dom0 context: recover parameters, invoke the routine,
        save the return value for the 'return hypercall'."""
        routine, cpu = self._pending
        self._pending = None
        result = routine.fn(cpu)
        self._result = 0 if result is None else result

    # -- stub factory ----------------------------------------------------------------

    def make_stub(self, name: str, dom0_native_addr: int) -> int:
        """Create the hypervisor stub for an unimplemented support routine
        and return its native address."""
        dom0_routine = self.machine.natives.by_addr[dom0_native_addr]
        costs = self.xen.costs
        counter = self.machine.obs.registry.counter(f"upcall.{name}")
        self._c_by_name[name] = counter
        tracer = self._tracer
        span_name = SPAN_UPCALL_PREFIX + name

        def stub(cpu: Cpu):
            self._c_upcalls.value += 1
            counter.value += 1
            span = (tracer.begin_span(span_name)
                    if tracer.enabled else None)
            # stub bookkeeping: save parameters, switch to the upcall stack
            cpu.charge_raw(costs.upcall_stub, "Xen")
            if not self._invocation_upcalled:
                self._invocation_upcalled = True
                cpu.charge_raw(costs.upcall_first_extra, "Xen")
            cpu.charge_raw(self.cache_residual, "Xen")
            # synchronous virtual interrupt into dom0 (switches domains,
            # runs the handler under dom0 accounting, switches back)
            self._pending = (dom0_routine, cpu)
            self.xen.send_event(self.dom0_kernel.domain, self.port,
                                synchronous=True)
            # 'return' hypercall back into the hypervisor
            self.xen.hypercall(f"upcall-return:{name}")
            result = self._result
            self._result = None
            if span is not None:
                tracer.end_span(span)
            return result

        return self.machine.register_native(f"upcall.{name}", stub)
