"""Upcalls: synchronous cross-address-space calls into dom0 (paper §4.2).

Driver calls to support routines the hypervisor does not implement are
bound to *stub* natives created here. A stub:

1. saves the call parameters and switches to the upcall stack (modelled;
   charged as part of the stub cost),
2. performs a synchronous domain switch to dom0 and delivers a
   synchronous virtual interrupt on the registered upcall port,
3. the dom0 upcall handler re-creates the call environment (the heap is
   shared — single data instance; the register/stack parameters are
   identical because the stub leaves the hypervisor stack in place and
   dom0 reads the parameters from it) and invokes the dom0 support
   routine,
4. the routine's return value travels back through a "return hypercall"
   and another domain switch.

The cycle cost is the mechanism costs (two domain switches, event
delivery, return hypercall) plus a calibrated cache-pollution residual so
one upcall per driver invocation costs ``UPCALL_ROUND_TRIP`` — which is
what collapses throughput in figure 10.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..machine.cpu import Cpu, NativeRoutine
from ..obs.events import SPAN_UPCALL_PREFIX, UPCALL_ABORT
from ..obs.metrics import Counter
from ..osmodel.kernel import Kernel
from ..xen.hypervisor import HYP_UPCALL_STACK_BASE, Hypervisor


class UpcallAborted(Exception):
    """An in-flight upcall could not complete (the synchronous virtual
    interrupt was not deliverable, or the frame stack was unwound by
    recovery): the driver invocation must be aborted."""

    def __init__(self, name: str, why: str):
        super().__init__(f"upcall {name!r} aborted: {why}")
        self.name = name
        self.why = why


class UpcallFrame:
    """One in-flight upcall: saved call environment plus result slot."""

    __slots__ = ("name", "routine", "cpu", "result", "delivered")

    def __init__(self, name: str, routine: NativeRoutine, cpu: Cpu):
        self.name = name
        self.routine = routine
        self.cpu = cpu
        self.result: Optional[int] = None
        self.delivered = False


class UpcallManager:
    """Builds upcall stubs and runs the dom0 side of each upcall."""

    def __init__(self, xen: Hypervisor, dom0_kernel: Kernel):
        self.xen = xen
        self.machine = xen.machine
        self.dom0_kernel = dom0_kernel
        registry = self.machine.obs.registry
        self._tracer = self.machine.obs.tracer
        self._c_upcalls = registry.counter("upcall.calls")
        self._c_aborts = registry.counter("upcall.aborts")
        self._c_by_name: Dict[str, Counter] = {}
        self._invocation_upcalled = False
        #: in-flight upcall frames, outermost first (nested upcalls — a
        #: dom0 handler re-entering the driver — push on top).
        self._frames: List[UpcallFrame] = []
        #: stub natives are cached by routine name so a driver reload
        #: re-binds the same stubs instead of leaking new natives.
        self._stubs: Dict[str, int] = {}
        #: dom0 registers a handler on this port to receive upcalls.
        self.port = dom0_kernel.domain.bind_event_channel(self._dom0_handler)
        costs = xen.costs
        mechanics = (
            2 * costs.domain_switch
            + costs.event_channel_send
            + costs.virq_delivery
            + costs.hypercall            # the 'return' hypercall
        )
        #: residual charged so stub + mechanics == UPCALL_ROUND_TRIP.
        self.cache_residual = max(
            0, costs.upcall_round_trip - mechanics - costs.upcall_stub
        )

    # -- counter views (registry-backed) ----------------------------------------

    @property
    def upcalls(self) -> int:
        return self._c_upcalls.value

    @property
    def calls_by_name(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._c_by_name.items()
                if c.value}

    # -- per-invocation bookkeeping (figure 10 first-upcall extra) --------------

    def new_invocation(self):
        self._invocation_upcalled = False

    @property
    def in_flight(self) -> int:
        """Upcall frames currently on the stack (0 in steady state)."""
        return len(self._frames)

    # -- abort / unwind (fault containment) -------------------------------------

    def abort_unwind(self) -> int:
        """Drop every in-flight frame (recovery quarantining the driver).
        Returns the number of frames unwound."""
        count = len(self._frames)
        if count:
            self._c_aborts.value += count
            if self._tracer.enabled:
                self._tracer.emit(UPCALL_ABORT, frames=count,
                                  names=[f.name for f in self._frames])
            self._frames.clear()
        return count

    # -- the dom0 side ------------------------------------------------------------

    def _dom0_handler(self, port: int):
        """Runs in dom0 context: recover parameters from the topmost
        undelivered frame, invoke the routine, save the return value for
        the 'return hypercall'."""
        frame = None
        for candidate in reversed(self._frames):
            if not candidate.delivered:
                frame = candidate
                break
        if frame is None:
            return                       # stale queued event: ignore
        frame.delivered = True
        result = frame.routine.fn(frame.cpu)
        frame.result = 0 if result is None else result

    # -- stub factory ----------------------------------------------------------------

    def make_stub(self, name: str, dom0_native_addr: int) -> int:
        """Create (or return the cached) hypervisor stub for an
        unimplemented support routine; returns its native address."""
        cached = self._stubs.get(name)
        if cached is not None:
            return cached
        dom0_routine = self.machine.natives.by_addr[dom0_native_addr]
        costs = self.xen.costs
        counter = self.machine.obs.registry.counter(f"upcall.{name}")
        self._c_by_name[name] = counter
        tracer = self._tracer
        span_name = SPAN_UPCALL_PREFIX + name

        def stub(cpu: Cpu):
            self._c_upcalls.value += 1
            counter.value += 1
            span = (tracer.begin_span(span_name)
                    if tracer.enabled else None)
            # stub bookkeeping: save parameters, switch to the upcall stack
            cpu.charge_raw(costs.upcall_stub, "Xen")
            if not self._invocation_upcalled:
                self._invocation_upcalled = True
                cpu.charge_raw(costs.upcall_first_extra, "Xen")
            cpu.charge_raw(self.cache_residual, "Xen")
            # synchronous virtual interrupt into dom0 (switches domains,
            # runs the handler under dom0 accounting, switches back).
            # Each call gets its own frame so nested upcalls (a dom0
            # handler re-entering the driver) cannot clobber outer state.
            frame = UpcallFrame(name, dom0_routine, cpu)
            self._frames.append(frame)
            try:
                self.xen.send_event(self.dom0_kernel.domain, self.port,
                                    synchronous=True)
                if not frame.delivered:
                    # dom0 has virtual interrupts masked: the synchronous
                    # delivery was queued, so the call environment on the
                    # upcall stack will never be consumed. Unwind cleanly.
                    self._c_aborts.value += 1
                    if tracer.enabled:
                        tracer.emit(UPCALL_ABORT, frames=1, names=[name])
                    raise UpcallAborted(
                        name, "synchronous delivery blocked (virq masked)")
                # 'return' hypercall back into the hypervisor
                self.xen.hypercall(f"upcall-return:{name}")
                return frame.result
            finally:
                if frame in self._frames:
                    self._frames.remove(frame)
                if span is not None:
                    tracer.end_span(span)

        addr = self.machine.register_native(f"upcall.{name}", stub)
        self._stubs[name] = addr
        return addr
