"""Hypervisor implementations of the fast-path support routines (§4.3).

The paper implements exactly the ten Table-1 routines inside Xen (851
lines of C) so the error-free transmit/receive path never upcalls. These
are those ten routines: they access driver data in dom0 **explicitly
through the stlb** (via :class:`~repro.core.svm.SvmView`), and
``netdev_alloc_skb``/``dev_kfree_skb_any`` draw from a preallocated pool
of dom0 sk_buffs protected from the dom0 allocator by the refcount trick.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..machine.cpu import Cpu
from ..machine.paging import HYPERVISOR_BASE, PageFault
from ..obs.events import SUPPORT_CALL
from ..osmodel import layout as L
from ..osmodel.kernel import Kernel
from ..osmodel.skbuff import SkBuff, init_skb
from ..xen.hypervisor import Hypervisor
from .svm import SvmManager, SvmProtectionFault, SvmView

if TYPE_CHECKING:  # pragma: no cover
    from .twin import TwinDriverManager

#: Routines the hypervisor implements natively (paper Table 1).
HYPERVISOR_FAST_PATH = (
    "netdev_alloc_skb",
    "dev_kfree_skb_any",
    "netif_rx",
    "dma_map_single",
    "dma_map_page",
    "dma_unmap_single",
    "dma_unmap_page",
    "spin_trylock",
    "spin_unlock_irqrestore",
    "eth_type_trans",
)


class SkbPool:
    """Preallocated dom0 sk_buffs reserved for the hypervisor driver.

    Pool buffers carry ``SKB_POOL = 1`` and an extra reference so dom0
    kernel code that releases them hands them back here instead of to the
    dom0 slab (the paper's "simple reference counter trick")."""

    def __init__(self, dom0_kernel: Kernel, size: int = 256):
        self.dom0_kernel = dom0_kernel
        self.free: List[int] = []
        self._free_set: set = set()
        #: buffers currently held by the hypervisor driver (acquired but
        #: not yet released) — what recovery reclaims after a quarantine.
        self.outstanding: set = set()
        #: every buffer address this pool has ever owned, used to route a
        #: release to the right pool when several twin instances share the
        #: dom0 kernel.
        self.all_buffers: set = set()
        self.capacity = 0
        self.underflows = 0
        #: releases of a buffer already on the free list — the degraded
        #: path and recovery reclaim can both free the same skb; the pool
        #: absorbs the duplicate instead of corrupting its balance.
        self.double_releases = 0
        self._install_release_hook(dom0_kernel)
        self.grow(size)

    def _install_release_hook(self, dom0_kernel: Kernel):
        # Chain behind any pool already installed on this kernel: each
        # pool claims its own buffers and forwards the rest, so a second
        # twin instance doesn't capture the first pool's skbs.
        prev = getattr(dom0_kernel, "pool_release", None)

        def route(skb_addr: int, _pool=self, _prev=prev):
            if _prev is not None and skb_addr not in _pool.all_buffers:
                _prev(skb_addr)
            else:
                _pool.release(skb_addr)

        dom0_kernel.pool_release = route

    def grow(self, n: int):
        for _ in range(n):
            skb = self.dom0_kernel.alloc_skb(L.SKB_BUFFER_SIZE - L.NET_SKB_PAD)
            skb.pool = 1
            self.free.append(skb.addr)
            self._free_set.add(skb.addr)
            self.all_buffers.add(skb.addr)
        self.capacity += n

    def acquire(self) -> Optional[int]:
        if not self.free:
            self.underflows += 1
            return None
        addr = self.free.pop()
        self._free_set.discard(addr)
        self.outstanding.add(addr)
        return addr

    def release(self, skb_addr: int):
        if skb_addr in self._free_set:
            self.double_releases += 1
            return
        self.outstanding.discard(skb_addr)
        self.free.append(skb_addr)
        self._free_set.add(skb_addr)

    def reclaim_outstanding(self) -> int:
        """Return every driver-held buffer to the free list (the faulted
        instance will never release them itself). Returns the count."""
        count = len(self.outstanding)
        for addr in sorted(self.outstanding):
            if addr not in self._free_set:
                self.free.append(addr)
                self._free_set.add(addr)
        self.outstanding.clear()
        return count

    @property
    def available(self) -> int:
        return len(self.free)

    @property
    def balanced(self) -> bool:
        """Every buffer is on exactly one side of the ledger: free or
        outstanding, no duplicates, nothing lost."""
        return (len(self.free) == len(self._free_set)
                and not (self._free_set & self.outstanding)
                and len(self.free) + len(self.outstanding) == self.capacity)


class HypervisorSupport:
    """Registers the ten fast-path natives under the ``hyp.`` prefix.

    ``upcall_routines`` selects a subset to *not* implement natively —
    those calls fall back to upcall stubs instead (figure 10's sweep).
    """

    def __init__(self, xen: Hypervisor, dom0_kernel: Kernel,
                 svm: SvmManager, twin: "TwinDriverManager",
                 pool_size: int = 256, prefix: str = "hyp"):
        self.xen = xen
        self.machine = xen.machine
        self.dom0_kernel = dom0_kernel
        self.svm = svm
        self.view = SvmView(svm)
        self.twin = twin
        self.prefix = prefix
        self.pool = SkbPool(dom0_kernel, size=pool_size)
        #: dom0 lock words the driver currently holds (spin_trylock
        #: succeeded, spin_unlock not yet seen) — force-released by
        #: recovery so dom0 is never wedged by a dead driver instance.
        self.held_locks: set = set()
        self.addresses: Dict[str, int] = {}
        # per-routine call counters live in the machine-wide registry
        # under ``support.<name>``; ``calls`` stays readable as a dict.
        self._registry = self.machine.obs.registry
        self._tracer = self.machine.obs.tracer
        self._counters = {
            name: self._registry.counter(f"support.{name}")
            for name in HYPERVISOR_FAST_PATH
        }
        self._register_all()

    @property
    def calls(self) -> Dict[str, int]:
        """Driver-initiated fast-path calls per routine (registry view)."""
        return {name: c.value for name, c in self._counters.items()
                if c.value}

    def note_call(self, name: str, direct: bool = False):
        """Record a fast-path support call in the trace ring. ``direct``
        marks Python-level calls made by the hypervisor itself (the twin
        tx/rx glue) rather than by the driver binary; only driver calls
        count toward ``calls``."""
        if not direct:
            self._counters[name].value += 1
        if self._tracer.enabled:
            self._tracer.emit(SUPPORT_CALL, name=name, direct=direct)

    # -- registration ----------------------------------------------------------

    def _bind(self, name: str, impl: Callable, nargs: int):
        counter = self._counters[name]
        tracer = self._tracer

        def native(cpu: Cpu, _impl=impl, _nargs=nargs, _name=name):
            counter.value += 1
            if tracer.enabled:
                tracer.emit(SUPPORT_CALL, name=_name, direct=False)
            args = [cpu.read_stack_arg(i) for i in range(_nargs)]
            return _impl(*args)

        addr = self.machine.register_native(
            f"{self.prefix}.{name}", native,
            cost=self.xen.costs.support_cost(name),
            category="Xen",
        )
        self.addresses[name] = addr

    def _register_all(self):
        self._bind("netdev_alloc_skb", self.netdev_alloc_skb, 2)
        self._bind("dev_kfree_skb_any", self.dev_kfree_skb_any, 1)
        self._bind("netif_rx", self.netif_rx, 1)
        self._bind("dma_map_single", self.dma_map_single, 4)
        self._bind("dma_map_page", self.dma_map_page, 4)
        self._bind("dma_unmap_single", self.dma_unmap_single, 3)
        self._bind("dma_unmap_page", self.dma_unmap_page, 3)
        self._bind("spin_trylock", self.spin_trylock, 1)
        self._bind("spin_unlock_irqrestore", self.spin_unlock_irqrestore, 2)
        self._bind("eth_type_trans", self.eth_type_trans, 2)

    # -- implementations (all data access goes through the stlb view) -----------

    def netdev_alloc_skb(self, dev: int, size: int) -> int:
        skb_addr = self.pool.acquire()
        if skb_addr is None:
            return 0                      # driver's alloc-failure path
        try:
            skb = SkBuff(self.view, skb_addr)
            head = skb.head
            skb.data = head
            skb.tail = head
            skb.len = 0
            skb.nr_frags = 0
            skb._set(L.SKB_DATA_LEN, 0, 2)
            skb.refcnt = 1
            skb.reserve(L.NET_SKB_PAD)
            skb.dev = dev
        except Exception:
            # the init writes go through the stlb and can fault: don't
            # strand the just-acquired buffer in ``outstanding``
            self.pool.release(skb_addr)
            raise
        return skb_addr

    def dev_kfree_skb_any(self, skb_addr: int) -> int:
        skb = SkBuff(self.view, skb_addr)
        refs = skb.refcnt
        if refs > 1:
            skb.refcnt = refs - 1
            return 0
        if skb.pool:
            self.pool.release(skb_addr)
        else:
            # A non-pool dom0 skb freed from the hypervisor: hand it back
            # to dom0's allocator bookkeeping directly.
            self.dom0_kernel.free_skb(skb_addr)
        return 0

    def netif_rx(self, skb_addr: int) -> int:
        self.twin.hypervisor_netif_rx(skb_addr)
        return 0

    def dma_map_single(self, dev: int, vaddr: int, length: int,
                       direction: int) -> int:
        if vaddr >= HYPERVISOR_BASE:
            raise SvmProtectionFault(vaddr, "DMA map of hypervisor address")
        try:
            bus = self.dom0_kernel.dma_map(vaddr, length)
        except PageFault:
            raise SvmProtectionFault(vaddr, "DMA map of unmapped page") from None
        self._iommu_map(bus, length)
        return bus

    def dma_map_page(self, page: int, offset: int, length: int,
                     direction: int) -> int:
        # ``page`` is a machine page address — for guest fragments this is
        # how "the DMA mapping functions return the correct guest machine
        # page addresses" (paper §5.3, footnote 4).
        self._iommu_map(page + offset, length)
        return page + offset

    def dma_unmap_single(self, bus: int, length: int, direction: int) -> int:
        self._iommu_unmap(bus, length)
        return 0

    def dma_unmap_page(self, bus: int, length: int, direction: int) -> int:
        self._iommu_unmap(bus, length)
        return 0

    def _iommu_map(self, bus: int, length: int):
        if self.machine.iommu is not None:
            self.machine.iommu.map_window("*", bus, length)

    def _iommu_unmap(self, bus: int, length: int):
        if self.machine.iommu is not None:
            self.machine.iommu.unmap_window("*", bus, length)

    def spin_trylock(self, lock: int) -> int:
        if self.view.read_u32(lock):
            return 0
        self.view.write_u32(lock, 1)
        self.held_locks.add(lock)
        return 1

    def spin_unlock_irqrestore(self, lock: int, flags: int) -> int:
        self.view.write_u32(lock, 0)
        self.held_locks.discard(lock)
        if flags & 1:
            self.dom0_kernel.domain.enable_virq()
        return 0

    def release_held_locks(self) -> int:
        """Force-release locks a quarantined driver instance left held.
        Writes go through dom0's own address space (the stlb may already
        be torn down). Returns the count released."""
        count = len(self.held_locks)
        aspace = self.dom0_kernel.domain.aspace
        for lock in sorted(self.held_locks):
            aspace.write(lock, 4, 0)
        self.held_locks.clear()
        return count

    def eth_type_trans(self, skb_addr: int, dev: int) -> int:
        skb = SkBuff(self.view, skb_addr)
        raw = self.view.read_bytes(skb.data + 12, 2)
        protocol = int.from_bytes(raw, "big")
        skb.protocol = protocol
        skb.dev = dev
        skb.pull(L.ETH_HLEN)
        return protocol
