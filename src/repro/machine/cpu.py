"""CPU interpreter for the virtual ISA, with cycle accounting.

The interpreter executes loaded programs (the driver binaries — original
and rewritten) against an :class:`~repro.machine.paging.AddressSpace`.
Everything the paper's mechanisms rely on is modelled for real:

* memory operands are translated through page tables and can fault;
* MMIO accesses are dispatched to device models (the e1000);
* ``call`` targets may be *native routines* — Python implementations of
  kernel/hypervisor support functions, registered by the loaders. This is
  the boundary between "code the rewriter sees" (driver binary) and "the
  driver support API" (paper §4.3);
* every instruction charges cycles to the current accounting category, so
  the figure 7/8 per-packet breakdowns come from actual execution.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..metrics.cycles import CycleAccount
from ..obs.events import NATIVE_CALL
from ..isa.encoder import code_size, layout
from ..isa.instructions import Instruction
from ..isa.operands import Imm, Label, Mem, Reg
from ..isa.program import Program
from ..isa.registers import SUBREGISTERS
from .jit import JitState, compile_superblock
from .memory import PhysicalMemory
from .paging import AddressSpace

#: Return-address sentinel that terminates an invocation from Python.
SENTINEL_RETURN = 0xDEAD0000
#: Base of the native-routine plane (support routines live here).
NATIVE_BASE = 0xFFF00000

MASK32 = 0xFFFFFFFF


class ExecutionFault(Exception):
    """Control transferred outside any loaded program, or mid-instruction."""


class CpuBudgetExceeded(Exception):
    """Instruction budget blown — the paper's 'infinite loop in the driver'
    failure mode (§4.5.2); callers may treat it like a watchdog timeout."""


class UnresolvedSymbol(Exception):
    """An operand still carries a symbol at execution time: loader bug."""


@dataclass
class InstructionCosts:
    """Per-class cycle costs charged by the interpreter.

    These model amortised pipeline+cache behaviour, not latency of one
    instruction. They are part of the calibration story (DESIGN.md §5):
    the *ratio* between the rewritten and native driver (paper: 2-3x)
    emerges from instruction counts, while the absolute scale is set so
    the native e1000 transmit path costs ~960 cycles/packet (figure 7).
    """

    alu: int = 1
    #: extra cycles for a memory access that misses the hot set (driver
    #: data structures, sk_buffs, descriptor rings).
    mem: int = 6
    #: extra cycles for an access to a cache-hot region: the stack, the
    #: stlb table, the SVM spill slots. This is what keeps the paper's
    #: rewritten-driver slowdown in the 2-3x band: the 10-instruction SVM
    #: sequence is ALU work plus two L1-resident stlb loads.
    mem_hot: int = 2
    call: int = 10
    ret: int = 8
    mmio: int = 120
    string_per_unit: int = 2
    native_call: int = 12


class NativeRoutine:
    """A Python-implemented function callable from driver code."""

    def __init__(self, name: str, fn: Callable, cost: int = 0,
                 category: Optional[str] = None):
        self.name = name
        self.fn = fn
        self.cost = cost
        self.category = category
        self.calls = 0

    def __repr__(self):  # pragma: no cover
        return f"<native {self.name}>"


class _InstrumentMap(dict):
    """``index -> hook`` mapping that invalidates compiled state on every
    mutation. The PR 4 dispatch cache bakes the hook into the handler
    closure at first execution; without invalidation, a hook registered
    *after* warm-up (inline probes, elision counters attached to a
    running instance) silently never fires. Mutating this map drops the
    affected handlers and every superblock of the owning program."""

    def __init__(self, owner: "LoadedProgram"):
        super().__init__()
        self._owner = owner

    def __setitem__(self, index, hook):
        super().__setitem__(index, hook)
        self._owner._instrument_changed((index,))

    def __delitem__(self, index):
        super().__delitem__(index)
        self._owner._instrument_changed((index,))

    def pop(self, index, *default):
        had = index in self
        result = super().pop(index, *default)
        if had:
            self._owner._instrument_changed((index,))
        return result

    def clear(self):
        indices = tuple(self)
        super().clear()
        if indices:
            self._owner._instrument_changed(indices)

    def update(self, *args, **kwargs):
        incoming = dict(*args, **kwargs)
        super().update(incoming)
        if incoming:
            self._owner._instrument_changed(tuple(incoming))

    def setdefault(self, index, default=None):
        if index in self:
            return self[index]
        self[index] = default
        return default


class LoadedProgram:
    """A program laid out at a base address with resolved branch targets."""

    def __init__(self, program: Program, base: int,
                 extern: Optional[Dict[str, int]] = None,
                 name: Optional[str] = None):
        self.program = program
        self.base = base
        self.name = name or program.name
        self.addrs = layout(program, base)
        self.end = base + code_size(program)
        self.addr_to_index = {a: i for i, a in enumerate(self.addrs)}
        #: fall-through successor of each instruction (precomputed so the
        #: interpreter hot loop does no bounds arithmetic).
        self.next_addrs = [
            self.addrs[i + 1] if i + 1 < len(self.addrs) else self.end
            for i in range(len(self.addrs))
        ]
        #: per-instruction dispatch cache: compiled handler closures,
        #: filled lazily on first execution (see ``_compile_instruction``).
        self.handlers: List[Optional[Callable[["Cpu"], None]]] = (
            [None] * len(program.instructions)
        )
        #: optional per-instruction observers, wrapped into the compiled
        #: handler once at compile time so uninstrumented instructions pay
        #: nothing in the hot loop. Mutations invalidate the affected
        #: handlers (and all superblocks), so hooks registered after
        #: warm-up take effect on the next fetch.
        self.instrument: Dict[int, Callable[["Cpu"], None]] = (
            _InstrumentMap(self)
        )
        #: instrument generation, bumped on every hook change; running
        #: superblocks re-check it after hook/native boundaries.
        self._igen = 0
        #: lazily-created per-program JIT state (see ``jit_state``).
        self._jit: Optional[JitState] = None
        self.symbols = {
            label: (self.addrs[i] if i < len(self.addrs) else self.end)
            for label, i in program.labels.items()
        }
        extern = extern or {}
        self.targets: Dict[int, int] = {}
        for i, instr in enumerate(program.instructions):
            if instr.is_control_flow and not instr.indirect and instr.operands:
                op = instr.operands[0]
                if isinstance(op, Label):
                    if op.name in self.symbols:
                        self.targets[i] = self.symbols[op.name]
                    elif op.name in extern:
                        self.targets[i] = extern[op.name]
                    else:
                        raise UnresolvedSymbol(
                            f"{self.name}: unresolved call target {op.name!r}"
                        )

    def symbol(self, name: str) -> int:
        return self.symbols[name]

    def _instrument_changed(self, indices):
        """A hook was added/removed: drop the baked handlers for those
        sites and every superblock (traces may run through them)."""
        self._igen += 1
        n = len(self.handlers)
        for index in indices:
            if 0 <= index < n:
                self.handlers[index] = None
        if self._jit is not None:
            self._jit.counts.clear()
            self._jit.superblocks.clear()

    def jit_state(self, epoch: int) -> JitState:
        """This program's superblock cache, valid for registry ``epoch``
        (stale state from before a reload/re-verification is reset)."""
        js = self._jit
        if js is None:
            js = self._jit = JitState(self, epoch)
        elif js.epoch != epoch:
            js.reset(epoch)
        return js


class CodeRegistry:
    """Maps instruction addresses to loaded programs."""

    def __init__(self):
        self._bases: List[int] = []
        self._programs: List[LoadedProgram] = []
        #: bumped on every register/unregister so CPU-side program caches
        #: can tell when a cached LoadedProgram may be stale.
        self.epoch = 0

    def register(self, loaded: LoadedProgram):
        for base, prog in zip(self._bases, self._programs):
            if loaded.base < prog.end and base < loaded.end:
                raise ValueError(
                    f"code overlap: {loaded.name} with {prog.name}"
                )
        pos = bisect_right(self._bases, loaded.base)
        self._bases.insert(pos, loaded.base)
        self._programs.insert(pos, loaded)
        self.epoch += 1

    def unregister(self, loaded: LoadedProgram):
        """Remove a loaded program (driver quarantine/reload) so a new
        binary can occupy the same address range."""
        for pos, prog in enumerate(self._programs):
            if prog is loaded:
                del self._bases[pos]
                del self._programs[pos]
                self.epoch += 1
                return
        raise ValueError(f"program not registered: {loaded.name}")

    def lookup(self, addr: int) -> Tuple[LoadedProgram, int]:
        pos = bisect_right(self._bases, addr) - 1
        if pos >= 0:
            loaded = self._programs[pos]
            if loaded.base <= addr < loaded.end:
                index = loaded.addr_to_index.get(addr)
                if index is None:
                    raise ExecutionFault(
                        f"jump into the middle of an instruction at "
                        f"{addr:#010x} in {loaded.name}"
                    )
                return loaded, index
        raise ExecutionFault(f"execution of unmapped address {addr:#010x}")

    def contains(self, addr: int) -> bool:
        pos = bisect_right(self._bases, addr) - 1
        return pos >= 0 and self._programs[pos].base <= addr < self._programs[pos].end

    def program_at(self, addr: int) -> LoadedProgram:
        return self.lookup(addr)[0]


class NativeRegistry:
    """Allocates native-plane addresses and dispatches calls to them."""

    def __init__(self):
        self.by_addr: Dict[int, NativeRoutine] = {}
        self.by_name: Dict[str, int] = {}
        self._next = NATIVE_BASE

    def register(self, routine: NativeRoutine) -> int:
        addr = self._next
        self._next += 16
        self.by_addr[addr] = routine
        self.by_name[routine.name] = addr
        return addr

    def address_of(self, name: str) -> int:
        return self.by_name[name]

    def is_native(self, addr: int) -> bool:
        return addr in self.by_addr


class Cpu:
    """The interpreter. One CPU, as in the paper's uniprocessor profile."""

    def __init__(self, phys: PhysicalMemory, code: CodeRegistry,
                 natives: NativeRegistry, account: CycleAccount,
                 costs: Optional[InstructionCosts] = None):
        self.phys = phys
        self.code = code
        self.natives = natives
        self.account = account
        self.costs = costs or InstructionCosts()
        self.regs: Dict[str, int] = {
            r: 0 for r in
            ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
        }
        self.flags = {"zf": False, "sf": False, "cf": False, "of": False}
        self.df = False
        self.eip = SENTINEL_RETURN
        self.address_space: Optional[AddressSpace] = None
        self._category: List[str] = ["dom0"]
        self.executed = 0
        self.max_steps_per_call = 5_000_000
        #: virtual-address ranges treated as cache-hot (stacks, stlb).
        self.hot_ranges: List[Tuple[int, int]] = []
        #: multiplies interpreter cycle charges (driver-speed calibration).
        self.cycle_scale = 1.0
        #: bumped whenever the hypervisor rotates the active vCPU; JIT
        #: superblock world guards compare it so a mid-trace vCPU change
        #: (natives can run the scheduler) bails to the dispatcher.
        self.world_token = 0
        #: trace ring (set by Machine); None for bare test CPUs.
        self.tracer = None
        #: cycle-attribution profiler (set by Machine); None for bare
        #: test CPUs. Guarded exactly like the tracer on hot paths.
        self.profiler = None
        #: (LoadedProgram, registry-epoch) of the last fetch — straight-line
        #: execution skips the registry bisect entirely.
        self._prog_cache: Optional[Tuple[LoadedProgram, int]] = None
        #: trace-JIT (superblock compilation): off by default, enabled
        #: per-configuration via ``configs.build(..., jit=True)``.
        self.jit_enabled = False
        #: block-head executions before a trace is compiled.
        self.jit_threshold = 16
        #: compile-time stats (kept off the metrics registry so enabling
        #: the JIT does not perturb any observable counter set).
        self.jit_compiles = 0
        self.jit_blacklisted = 0

    # -- accounting ----------------------------------------------------------

    @property
    def category(self) -> str:
        return self._category[-1]

    def push_category(self, category: str):
        self._category.append(category)

    def pop_category(self):
        if len(self._category) == 1:
            raise RuntimeError("category stack underflow")
        self._category.pop()

    def charge(self, cycles: float, category: Optional[str] = None):
        self.account.charge(category or self.category,
                            int(round(cycles * self.cycle_scale)))

    def charge_raw(self, cycles: int, category: Optional[str] = None):
        """Charge un-scaled cycles (used by modelled kernel costs)."""
        self.account.charge(category or self.category, int(cycles))

    # -- registers -------------------------------------------------------------

    def get_reg(self, name: str) -> int:
        if name in self.regs:
            return self.regs[name]
        parent = SUBREGISTERS[name]
        value = self.regs[parent]
        return value & (0xFF if len(name) == 2 and name[1] == "l" else 0xFFFF)

    def set_reg(self, name: str, value: int):
        if name in self.regs:
            self.regs[name] = value & MASK32
            return
        parent = SUBREGISTERS[name]
        if len(name) == 2 and name[1] == "l":
            self.regs[parent] = (self.regs[parent] & ~0xFF) | (value & 0xFF)
        else:
            self.regs[parent] = (self.regs[parent] & ~0xFFFF) | (value & 0xFFFF)

    # -- stack -------------------------------------------------------------------

    def push(self, value: int):
        self.regs["esp"] = (self.regs["esp"] - 4) & MASK32
        self.write_mem(self.regs["esp"], 4, value)

    def pop(self) -> int:
        value = self.read_mem(self.regs["esp"], 4)
        self.regs["esp"] = (self.regs["esp"] + 4) & MASK32
        return value

    def read_stack_arg(self, index: int) -> int:
        """Argument ``index`` (0-based) for a native routine: the return
        address sits at ``esp``, arguments above it."""
        return self.read_mem(self.regs["esp"] + 4 + 4 * index, 4)

    # -- memory -------------------------------------------------------------------

    def add_hot_range(self, lo: int, hi: int):
        if (lo, hi) not in self.hot_ranges:
            self.hot_ranges.append((lo, hi))

    def _mem_cost(self, vaddr: int) -> int:
        for lo, hi in self.hot_ranges:
            if lo <= vaddr < hi:
                return self.costs.mem_hot
        return self.costs.mem

    def read_mem(self, vaddr: int, size: int) -> int:
        vaddr &= MASK32
        paddr = self.address_space.translate(vaddr)
        if self.phys.mmio_region_at(paddr) is not None:
            self.charge(self.costs.mmio)
        else:
            self.charge(self._mem_cost(vaddr))
        return self._phys_access(paddr, vaddr, size, None)

    def write_mem(self, vaddr: int, size: int, value: int):
        vaddr &= MASK32
        paddr = self.address_space.translate(vaddr, write=True)
        if self.phys.mmio_region_at(paddr) is not None:
            self.charge(self.costs.mmio)
        else:
            self.charge(self._mem_cost(vaddr))
        self._phys_access(paddr, vaddr, size, value)

    def _phys_access(self, paddr: int, vaddr: int, size: int,
                     value: Optional[int]):
        # Handle page-straddling accesses virtually (translations of the two
        # halves may be discontiguous).
        if (vaddr & 0xFFF) + size > 0x1000:
            if value is None:
                raw = self.address_space.read_bytes(vaddr, size)
                return int.from_bytes(raw, "little")
            self.address_space.write_bytes(
                vaddr, (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
            )
            return None
        if value is None:
            return self.phys.read(paddr, size)
        self.phys.write(paddr, size, value)
        return None

    # -- operand evaluation ----------------------------------------------------------

    def effective_address(self, mem: Mem) -> int:
        if mem.symbol is not None:
            raise UnresolvedSymbol(
                f"unresolved data symbol {mem.symbol!r} at execution"
            )
        addr = mem.disp
        if mem.base is not None:
            addr += self.get_reg(mem.base)
        if mem.index is not None:
            addr += self.get_reg(mem.index) * mem.scale
        return addr & MASK32

    def read_operand(self, op, size: int) -> int:
        if isinstance(op, Imm):
            if op.symbol is not None:
                raise UnresolvedSymbol(
                    f"unresolved immediate symbol {op.symbol!r}"
                )
            return op.value & ((1 << (size * 8)) - 1)
        if isinstance(op, Reg):
            return self.get_reg(op.name) & ((1 << (size * 8)) - 1)
        if isinstance(op, Mem):
            return self.read_mem(self.effective_address(op), size)
        raise ExecutionFault(f"cannot read operand {op!r}")

    def write_operand(self, op, size: int, value: int):
        if isinstance(op, Reg):
            if size == 4 or op.name not in self.regs:
                self.set_reg(op.name, value & ((1 << (size * 8)) - 1))
            else:
                # e.g. "movb $1, %eax" is rejected at parse; partial writes
                # to full registers only happen via sub-register names.
                masked = value & ((1 << (size * 8)) - 1)
                current = self.regs[op.name]
                self.regs[op.name] = (current & ~((1 << (size * 8)) - 1)) | masked
            return
        if isinstance(op, Mem):
            self.write_mem(self.effective_address(op), size, value)
            return
        raise ExecutionFault(f"cannot write operand {op!r}")

    # -- flags ------------------------------------------------------------------------

    def _set_zsf(self, result: int, size: int):
        bits = size * 8
        masked = result & ((1 << bits) - 1)
        self.flags["zf"] = masked == 0
        self.flags["sf"] = bool(masked & (1 << (bits - 1)))

    def _flags_add(self, a: int, b: int, size: int) -> int:
        bits = size * 8
        mask = (1 << bits) - 1
        r = (a + b) & mask
        sign = 1 << (bits - 1)
        self.flags["cf"] = (a + b) > mask
        self.flags["of"] = bool((~(a ^ b)) & (a ^ r) & sign)
        self._set_zsf(r, size)
        return r

    def _flags_sub(self, a: int, b: int, size: int) -> int:
        bits = size * 8
        mask = (1 << bits) - 1
        r = (a - b) & mask
        sign = 1 << (bits - 1)
        self.flags["cf"] = a < b
        self.flags["of"] = bool((a ^ b) & (a ^ r) & sign)
        self._set_zsf(r, size)
        return r

    def _flags_logic(self, r: int, size: int) -> int:
        self.flags["cf"] = False
        self.flags["of"] = False
        self._set_zsf(r, size)
        return r & ((1 << (size * 8)) - 1)

    def condition(self, cc: str) -> bool:
        f = self.flags
        return {
            "je": f["zf"], "jz": f["zf"],
            "jne": not f["zf"], "jnz": not f["zf"],
            "jl": f["sf"] != f["of"],
            "jge": f["sf"] == f["of"],
            "jle": f["zf"] or (f["sf"] != f["of"]),
            "jg": (not f["zf"]) and f["sf"] == f["of"],
            "jb": f["cf"],
            "jae": not f["cf"],
            "jbe": f["cf"] or f["zf"],
            "ja": not (f["cf"] or f["zf"]),
            "js": f["sf"],
            "jns": not f["sf"],
        }[cc]

    def flags_word(self) -> int:
        f = self.flags
        return (
            (1 if f["cf"] else 0)
            | (1 << 6 if f["zf"] else 0)
            | (1 << 7 if f["sf"] else 0)
            | (1 << 11 if f["of"] else 0)
            | (1 << 10 if self.df else 0)
        )

    def set_flags_word(self, word: int):
        self.flags["cf"] = bool(word & 1)
        self.flags["zf"] = bool(word & (1 << 6))
        self.flags["sf"] = bool(word & (1 << 7))
        self.flags["of"] = bool(word & (1 << 11))
        self.df = bool(word & (1 << 10))

    # -- invocation from Python ---------------------------------------------------------

    def call_function(self, addr: int, args=(), stack_top: Optional[int] = None,
                      category: Optional[str] = None) -> int:
        """Invoke a function at ``addr`` with integer args, cdecl-style.

        Used by the kernel/hypervisor layers to enter driver code. Nested
        invocations (native routine -> driver callback) are supported.
        """
        saved_eip = self.eip
        saved_esp = self.regs["esp"]
        if stack_top is not None:
            if self.eip != SENTINEL_RETURN:
                # Nested invocation (e.g. an interrupt handler invoked while
                # driver code is suspended): stack below the live frames
                # instead of clobbering them from stack_top.
                self.regs["esp"] = (saved_esp - 64) & ~0xF
            else:
                self.regs["esp"] = stack_top
        if category is not None:
            self.push_category(category)
        try:
            # Native target: dispatch directly.
            routine = self.natives.by_addr.get(addr)
            if routine is not None:
                for value in reversed(args):
                    self.push(value)
                self.push(SENTINEL_RETURN)
                self._invoke_native(routine)
                return self.regs["eax"]
            for value in reversed(args):
                self.push(value)
            self.push(SENTINEL_RETURN)
            self.eip = addr
            self._run_loop()
            return self.regs["eax"]
        finally:
            if category is not None:
                self.pop_category()
            self.regs["esp"] = saved_esp
            self.eip = saved_eip

    def _run_loop(self):
        if self.jit_enabled:
            self._run_loop_jit()
            return
        budget = self.max_steps_per_call
        steps = 0
        while self.eip != SENTINEL_RETURN:
            self.step()
            steps += 1
            if steps > budget:
                raise CpuBudgetExceeded(
                    f"driver executed more than {budget} instructions"
                )

    def _run_loop_jit(self):
        """The superblock dispatcher. Hot block heads are counted and
        promoted to compiled traces; everything else (cold code, heads
        under a charge shadow or a changed cycle scale, blacklisted
        heads) falls back to ``step()``, whose behaviour defines
        correctness. The budget is measured in executed instructions,
        like the interpreter loop's step count."""
        budget = self.max_steps_per_call
        start = self.executed
        code = self.code
        threshold = self.jit_threshold
        account_dict = self.account.__dict__
        while True:
            eip = self.eip
            if eip == SENTINEL_RETURN:
                return
            loaded = None
            cache = self._prog_cache
            if cache is not None and cache[1] == code.epoch:
                candidate = cache[0]
                if candidate.base <= eip < candidate.end:
                    loaded = candidate
            if loaded is None:
                # registry miss/stale: step() re-resolves (and raises
                # the right fault for unmapped/native addresses)
                self.step()
            else:
                js = loaded.jit_state(code.epoch)
                sb = js.superblocks.get(eip)
                if sb is None:
                    if eip in js.leaders:
                        count = js.counts.get(eip, 0) + 1
                        if count >= threshold:
                            compiled = compile_superblock(self, loaded, eip)
                            js.counts.pop(eip, None)
                            if compiled is None:
                                js.superblocks[eip] = False
                                self.jit_blacklisted += 1
                            else:
                                js.superblocks[eip] = compiled
                                self.jit_compiles += 1
                                continue
                        else:
                            js.counts[eip] = count
                    self.step()
                elif sb is False:
                    self.step()
                elif ("charge" not in account_dict
                        and sb.scale == self.cycle_scale):
                    sb.entries += 1
                    sb.fn(self)
                else:
                    self.step()
            if self.executed - start > budget:
                raise CpuBudgetExceeded(
                    f"driver executed more than {budget} instructions"
                )

    def _invoke_native(self, routine: NativeRoutine):
        routine.calls += 1
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(NATIVE_CALL, name=routine.name)
        prof = self.profiler
        profiled = prof is not None and prof.enabled
        if profiled:
            prof.push_phase("native:" + routine.name)
        try:
            self.charge(self.costs.native_call)
            if routine.cost:
                self.charge_raw(routine.cost, routine.category)
            if routine.category is not None:
                self.push_category(routine.category)
            try:
                result = routine.fn(self)
            finally:
                if routine.category is not None:
                    self.pop_category()
        finally:
            if profiled:
                prof.pop_phase()
        if result is not None:
            self.regs["eax"] = result & MASK32
        self.eip = self.pop()

    # -- the interpreter ---------------------------------------------------------------

    def step(self):
        eip = self.eip
        cache = self._prog_cache
        index = None
        if cache is not None and cache[1] == self.code.epoch:
            loaded = cache[0]
            if loaded.base <= eip < loaded.end:
                index = loaded.addr_to_index.get(eip)
        if index is None:
            loaded, index = self.code.lookup(eip)
            self._prog_cache = (loaded, self.code.epoch)
        self.executed += 1
        self.eip = loaded.next_addrs[index]
        handler = loaded.handlers[index]
        if handler is None:
            handler = _handler_for(loaded, index)
        handler(self)

    def jit_stats(self) -> Dict[str, int]:
        """Aggregate superblock statistics across cached programs (from
        the current prog-cache; compile counters are CPU-lifetime)."""
        stats = {"compiles": self.jit_compiles,
                 "blacklisted": self.jit_blacklisted,
                 "superblocks": 0, "entries": 0}
        cache = self._prog_cache
        if cache is not None and cache[0]._jit is not None:
            for sb in cache[0]._jit.superblocks.values():
                if sb:
                    stats["superblocks"] += 1
                    stats["entries"] += sb.entries
        return stats

    def _branch_target(self, instr: Instruction, loaded: LoadedProgram,
                       index: int) -> int:
        if instr.indirect:
            op = instr.operands[0]
            if isinstance(op, Reg):
                return self.get_reg(op.name)
            if isinstance(op, Mem):
                self.charge(self.costs.mem)
                return self.read_mem(self.effective_address(op), 4)
            raise ExecutionFault("bad indirect target operand")
        return loaded.targets[index]

    def _execute(self, instr: Instruction, loaded: LoadedProgram, index: int):
        m = instr.mnemonic
        size = instr.size
        costs = self.costs
        self.charge(costs.alu)

        if m == "nop" or m in ("cld", "std", "sti", "cli"):
            if m == "cld":
                self.df = False
            elif m == "std":
                self.df = True
            return
        if m in ("int3", "ud2", "hlt"):
            raise ExecutionFault(f"{m} executed at {loaded.name}[{index}]")

        if m == "mov":
            value = self.read_operand(instr.src, size)
            self.write_operand(instr.dst, size, value)
            return
        if m in ("movzb", "movzw"):
            value = self.read_operand(instr.src, size)
            self.write_operand(instr.dst, 4, value)
            return
        if m == "movsx":
            value = self.read_operand(instr.src, size)
            bits = size * 8
            if value & (1 << (bits - 1)):
                value |= MASK32 ^ ((1 << bits) - 1)
            self.write_operand(instr.dst, 4, value)
            return
        if m == "lea":
            self.write_operand(instr.dst, 4,
                               self.effective_address(instr.src))
            return
        if m == "xchg":
            a = self.read_operand(instr.src, size)
            b = self.read_operand(instr.dst, size)
            self.write_operand(instr.src, size, b)
            self.write_operand(instr.dst, size, a)
            return

        if m in ("add", "sub", "and", "or", "xor", "imul", "cmp", "test"):
            a = self.read_operand(instr.dst, size)
            b = self.read_operand(instr.src, size)
            if m == "add":
                r = self._flags_add(a, b, size)
            elif m in ("sub", "cmp"):
                r = self._flags_sub(a, b, size)
            elif m in ("and", "test"):
                r = self._flags_logic(a & b, size)
            elif m == "or":
                r = self._flags_logic(a | b, size)
            elif m == "xor":
                r = self._flags_logic(a ^ b, size)
            else:  # imul
                full = a * b
                r = full & ((1 << (size * 8)) - 1)
                self.flags["cf"] = self.flags["of"] = full != r
                self._set_zsf(r, size)
            if m not in ("cmp", "test"):
                self.write_operand(instr.dst, size, r)
            return

        if m in ("shl", "shr", "sar"):
            count = self.read_operand(instr.src, 1) & 0x1F
            value = self.read_operand(instr.dst, size)
            bits = size * 8
            if count == 0:
                return
            if m == "shl":
                r = value << count
                self.flags["cf"] = bool(r & (1 << bits))
                r &= (1 << bits) - 1
            elif m == "shr":
                self.flags["cf"] = bool((value >> (count - 1)) & 1)
                r = value >> count
            else:  # sar
                sign = value & (1 << (bits - 1))
                v = value
                for _ in range(count):
                    v = (v >> 1) | sign
                self.flags["cf"] = bool((value >> (count - 1)) & 1)
                r = v & ((1 << bits) - 1)
            self.flags["of"] = False
            self._set_zsf(r, size)
            self.write_operand(instr.dst, size, r)
            return

        if m in ("inc", "dec", "neg", "not"):
            value = self.read_operand(instr.dst, size)
            cf = self.flags["cf"]
            if m == "inc":
                r = self._flags_add(value, 1, size)
                self.flags["cf"] = cf  # inc/dec preserve CF
            elif m == "dec":
                r = self._flags_sub(value, 1, size)
                self.flags["cf"] = cf
            elif m == "neg":
                r = self._flags_sub(0, value, size)
            else:
                r = (~value) & ((1 << (size * 8)) - 1)
            self.write_operand(instr.dst, size, r)
            return

        if m == "push":
            self.push(self.read_operand(instr.src, 4))
            return
        if m == "pop":
            self.write_operand(instr.dst, 4, self.pop())
            return
        if m == "pushf":
            self.push(self.flags_word())
            return
        if m == "popf":
            self.set_flags_word(self.pop())
            return

        if m == "call":
            self.charge(costs.call)
            target = self._branch_target(instr, loaded, index)
            routine = self.natives.by_addr.get(target)
            if routine is not None:
                self.push(self.eip)
                self._invoke_native(routine)
                return
            self.push(self.eip)
            self.eip = target
            return
        if m == "ret":
            self.charge(costs.ret)
            self.eip = self.pop()
            return
        if m == "jmp":
            target = self._branch_target(instr, loaded, index)
            routine = self.natives.by_addr.get(target)
            if routine is not None:
                # Tail call into a native routine: return address is the
                # caller's, already on the stack.
                self._invoke_native(routine)
                return
            self.eip = target
            return
        if instr.is_conditional:
            if self.condition(m):
                self.eip = loaded.targets[index]
            return

        if instr.is_string:
            self._execute_string(instr)
            return

        raise ExecutionFault(f"unimplemented mnemonic {m!r}")  # pragma: no cover

    # -- string instructions ----------------------------------------------------------

    def _string_element(self, instr: Instruction) -> bool:
        """One element of a string op; returns the zf produced (for cmps/scas)."""
        size = instr.size
        step = -size if self.df else size
        m = instr.mnemonic
        if m == "movs":
            value = self.read_mem(self.regs["esi"], size)
            self.write_mem(self.regs["edi"], size, value)
            self.regs["esi"] = (self.regs["esi"] + step) & MASK32
            self.regs["edi"] = (self.regs["edi"] + step) & MASK32
        elif m == "stos":
            self.write_mem(self.regs["edi"], size,
                           self.get_reg("eax"))
            self.regs["edi"] = (self.regs["edi"] + step) & MASK32
        elif m == "lods":
            value = self.read_mem(self.regs["esi"], size)
            mask = (1 << (size * 8)) - 1
            self.regs["eax"] = (self.regs["eax"] & ~mask) | (value & mask)
            self.regs["esi"] = (self.regs["esi"] + step) & MASK32
        elif m == "cmps":
            a = self.read_mem(self.regs["esi"], size)
            b = self.read_mem(self.regs["edi"], size)
            self._flags_sub(a, b, size)
            self.regs["esi"] = (self.regs["esi"] + step) & MASK32
            self.regs["edi"] = (self.regs["edi"] + step) & MASK32
        elif m == "scas":
            a = self.get_reg("eax") & ((1 << (size * 8)) - 1)
            b = self.read_mem(self.regs["edi"], size)
            self._flags_sub(a, b, size)
            self.regs["edi"] = (self.regs["edi"] + step) & MASK32
        return self.flags["zf"]

    def _execute_string(self, instr: Instruction):
        if instr.prefix is None:
            self.charge(self.costs.string_per_unit)
            self._string_element(instr)
            return
        while self.regs["ecx"] != 0:
            self.charge(self.costs.string_per_unit)
            zf = self._string_element(instr)
            self.regs["ecx"] = (self.regs["ecx"] - 1) & MASK32
            if instr.prefix == "repe" and not zf:
                break
            if instr.prefix == "repne" and zf:
                break


# ---------------------------------------------------------------------------
# Instruction dispatch cache
# ---------------------------------------------------------------------------
#
# ``step()`` used to re-dispatch every instruction on its mnemonic string
# (a chain of comparisons plus a per-call condition-table rebuild). The
# compiler below turns each instruction into a specialized closure — the
# mnemonic test, operand decoding and branch-target resolution happen once,
# at first execution, and the closure is cached on the LoadedProgram keyed
# by instruction index. Cycle accounting is bit-identical to ``_execute``:
# the same ``charge`` calls happen in the same order with the same values.

#: full (32-bit) register names — sub-register access goes through
#: get_reg/set_reg, full registers are read/written directly.
_FULL_REGS = frozenset(
    ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"))

_CONDITIONS: Dict[str, Callable[[Dict[str, bool]], bool]] = {
    "je": lambda f: f["zf"], "jz": lambda f: f["zf"],
    "jne": lambda f: not f["zf"], "jnz": lambda f: not f["zf"],
    "jl": lambda f: f["sf"] != f["of"],
    "jge": lambda f: f["sf"] == f["of"],
    "jle": lambda f: f["zf"] or (f["sf"] != f["of"]),
    "jg": lambda f: (not f["zf"]) and f["sf"] == f["of"],
    "jb": lambda f: f["cf"],
    "jae": lambda f: not f["cf"],
    "jbe": lambda f: f["cf"] or f["zf"],
    "ja": lambda f: not (f["cf"] or f["zf"]),
    "js": lambda f: f["sf"],
    "jns": lambda f: not f["sf"],
}


def _handler_for(loaded: LoadedProgram, index: int) -> Callable[[Cpu], None]:
    """Compile (and cache) the handler for one instruction, wrapping the
    instrument hook registered for that site. Shared by ``step()`` and
    the superblock compiler so both see identical hook semantics."""
    handler = _compile_instruction(
        loaded.program.instructions[index], loaded, index
    )
    hook = loaded.instrument.get(index)
    if hook is not None:
        inner = handler

        def handler(cpu, _hook=hook, _inner=inner):
            _hook(cpu)
            _inner(cpu)
    loaded.handlers[index] = handler
    return handler


def _ea_thunk(mem: Mem) -> Callable[[Cpu], int]:
    """Compile an effective-address computation for one Mem operand."""
    if mem.symbol is not None:
        symbol = mem.symbol

        def unresolved(cpu: Cpu) -> int:
            raise UnresolvedSymbol(
                f"unresolved data symbol {symbol!r} at execution"
            )
        return unresolved
    disp, base, index, scale = mem.disp, mem.base, mem.index, mem.scale
    if base is None and index is None:
        addr = disp & MASK32
        return lambda cpu: addr
    if index is None:
        return lambda cpu: (cpu.get_reg(base) + disp) & MASK32
    if base is None:
        return lambda cpu: (cpu.get_reg(index) * scale + disp) & MASK32
    return lambda cpu: (
        cpu.get_reg(base) + cpu.get_reg(index) * scale + disp
    ) & MASK32


def _read_thunk(op, size: int) -> Callable[[Cpu], int]:
    """Compile an operand read (mirrors ``Cpu.read_operand``)."""
    mask = (1 << (size * 8)) - 1
    if isinstance(op, Imm):
        if op.symbol is not None:
            symbol = op.symbol

            def unresolved(cpu: Cpu) -> int:
                raise UnresolvedSymbol(
                    f"unresolved immediate symbol {symbol!r}"
                )
            return unresolved
        value = op.value & mask
        return lambda cpu: value
    if isinstance(op, Reg):
        name = op.name
        if name in _FULL_REGS and size == 4:
            return lambda cpu: cpu.regs[name] & MASK32
        return lambda cpu: cpu.get_reg(name) & mask
    if isinstance(op, Mem):
        ea = _ea_thunk(op)
        return lambda cpu: cpu.read_mem(ea(cpu), size)

    def unreadable(cpu: Cpu) -> int:
        raise ExecutionFault(f"cannot read operand {op!r}")
    return unreadable


def _write_thunk(op, size: int) -> Callable[[Cpu, int], None]:
    """Compile an operand write (mirrors ``Cpu.write_operand``)."""
    mask = (1 << (size * 8)) - 1
    if isinstance(op, Reg):
        name = op.name
        if name in _FULL_REGS:
            if size == 4:
                def write_full(cpu: Cpu, value: int):
                    cpu.regs[name] = value & MASK32
                return write_full

            def write_partial(cpu: Cpu, value: int):
                cpu.regs[name] = (cpu.regs[name] & ~mask) | (value & mask)
            return write_partial

        def write_sub(cpu: Cpu, value: int):
            cpu.set_reg(name, value & mask)
        return write_sub
    if isinstance(op, Mem):
        ea = _ea_thunk(op)

        def write_mem(cpu: Cpu, value: int):
            cpu.write_mem(ea(cpu), size, value)
        return write_mem

    def unwritable(cpu: Cpu, value: int):
        raise ExecutionFault(f"cannot write operand {op!r}")
    return unwritable


def _target_thunk(instr: Instruction, loaded: LoadedProgram,
                  index: int) -> Callable[[Cpu], int]:
    """Compile branch-target resolution (mirrors ``_branch_target``)."""
    if instr.indirect:
        op = instr.operands[0]
        if isinstance(op, Reg):
            name = op.name
            return lambda cpu: cpu.get_reg(name)
        if isinstance(op, Mem):
            ea = _ea_thunk(op)

            def mem_target(cpu: Cpu) -> int:
                cpu.charge(cpu.costs.mem)
                return cpu.read_mem(ea(cpu), 4)
            return mem_target

        def bad_target(cpu: Cpu) -> int:
            raise ExecutionFault("bad indirect target operand")
        return bad_target
    target = loaded.targets[index]
    return lambda cpu: target


def _compile_instruction(instr: Instruction, loaded: LoadedProgram,
                         index: int) -> Callable[[Cpu], None]:
    """Build the specialized handler closure for one instruction.

    Invariant: by the time a handler runs, ``step()`` has already set
    ``cpu.eip`` to the fall-through successor — exactly the state
    ``_execute`` saw."""
    m = instr.mnemonic
    size = instr.size

    if m in ("nop", "sti", "cli"):
        return lambda cpu: cpu.charge(cpu.costs.alu)
    if m == "cld":
        def op_cld(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu.df = False
        return op_cld
    if m == "std":
        def op_std(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu.df = True
        return op_std
    if m in ("int3", "ud2", "hlt"):
        message = f"{m} executed at {loaded.name}[{index}]"

        def op_trap(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            raise ExecutionFault(message)
        return op_trap

    if m == "mov":
        read_src = _read_thunk(instr.src, size)
        write_dst = _write_thunk(instr.dst, size)

        def op_mov(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            write_dst(cpu, read_src(cpu))
        return op_mov
    if m in ("movzb", "movzw"):
        read_src = _read_thunk(instr.src, size)
        write_dst = _write_thunk(instr.dst, 4)

        def op_movz(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            write_dst(cpu, read_src(cpu))
        return op_movz
    if m == "movsx":
        read_src = _read_thunk(instr.src, size)
        write_dst = _write_thunk(instr.dst, 4)
        bits = size * 8
        sign = 1 << (bits - 1)
        extend = MASK32 ^ ((1 << bits) - 1)

        def op_movsx(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            value = read_src(cpu)
            if value & sign:
                value |= extend
            write_dst(cpu, value)
        return op_movsx
    if m == "lea":
        ea = _ea_thunk(instr.src)
        write_dst = _write_thunk(instr.dst, 4)

        def op_lea(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            write_dst(cpu, ea(cpu))
        return op_lea
    if m == "xchg":
        read_src = _read_thunk(instr.src, size)
        write_src = _write_thunk(instr.src, size)
        read_dst = _read_thunk(instr.dst, size)
        write_dst = _write_thunk(instr.dst, size)

        def op_xchg(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            a = read_src(cpu)
            b = read_dst(cpu)
            write_src(cpu, b)
            write_dst(cpu, a)
        return op_xchg

    if m in ("add", "sub", "and", "or", "xor", "imul", "cmp", "test"):
        read_dst = _read_thunk(instr.dst, size)
        read_src = _read_thunk(instr.src, size)
        writeback = (None if m in ("cmp", "test")
                     else _write_thunk(instr.dst, size))
        if m == "add":
            def combine(cpu, a, b):
                return cpu._flags_add(a, b, size)
        elif m in ("sub", "cmp"):
            def combine(cpu, a, b):
                return cpu._flags_sub(a, b, size)
        elif m in ("and", "test"):
            def combine(cpu, a, b):
                return cpu._flags_logic(a & b, size)
        elif m == "or":
            def combine(cpu, a, b):
                return cpu._flags_logic(a | b, size)
        elif m == "xor":
            def combine(cpu, a, b):
                return cpu._flags_logic(a ^ b, size)
        else:  # imul
            mask = (1 << (size * 8)) - 1

            def combine(cpu, a, b):
                full = a * b
                r = full & mask
                cpu.flags["cf"] = cpu.flags["of"] = full != r
                cpu._set_zsf(r, size)
                return r

        def op_arith(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            r = combine(cpu, read_dst(cpu), read_src(cpu))
            if writeback is not None:
                writeback(cpu, r)
        return op_arith

    if m in ("shl", "shr", "sar"):
        read_count = _read_thunk(instr.src, 1)
        read_dst = _read_thunk(instr.dst, size)
        write_dst = _write_thunk(instr.dst, size)
        bits = size * 8

        def op_shift(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            count = read_count(cpu) & 0x1F
            value = read_dst(cpu)
            if count == 0:
                return
            if m == "shl":
                r = value << count
                cpu.flags["cf"] = bool(r & (1 << bits))
                r &= (1 << bits) - 1
            elif m == "shr":
                cpu.flags["cf"] = bool((value >> (count - 1)) & 1)
                r = value >> count
            else:  # sar
                sign = value & (1 << (bits - 1))
                v = value
                for _ in range(count):
                    v = (v >> 1) | sign
                cpu.flags["cf"] = bool((value >> (count - 1)) & 1)
                r = v & ((1 << bits) - 1)
            cpu.flags["of"] = False
            cpu._set_zsf(r, size)
            write_dst(cpu, r)
        return op_shift

    if m in ("inc", "dec", "neg", "not"):
        read_dst = _read_thunk(instr.dst, size)
        write_dst = _write_thunk(instr.dst, size)
        mask = (1 << (size * 8)) - 1

        def op_unary(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            value = read_dst(cpu)
            cf = cpu.flags["cf"]
            if m == "inc":
                r = cpu._flags_add(value, 1, size)
                cpu.flags["cf"] = cf  # inc/dec preserve CF
            elif m == "dec":
                r = cpu._flags_sub(value, 1, size)
                cpu.flags["cf"] = cf
            elif m == "neg":
                r = cpu._flags_sub(0, value, size)
            else:
                r = (~value) & mask
            write_dst(cpu, r)
        return op_unary

    if m == "push":
        read_src = _read_thunk(instr.src, 4)

        def op_push(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu.push(read_src(cpu))
        return op_push
    if m == "pop":
        write_dst = _write_thunk(instr.dst, 4)

        def op_pop(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            write_dst(cpu, cpu.pop())
        return op_pop
    if m == "pushf":
        def op_pushf(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu.push(cpu.flags_word())
        return op_pushf
    if m == "popf":
        def op_popf(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu.set_flags_word(cpu.pop())
        return op_popf

    if m == "call":
        resolve = _target_thunk(instr, loaded, index)

        def op_call(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu.charge(cpu.costs.call)
            target = resolve(cpu)
            routine = cpu.natives.by_addr.get(target)
            cpu.push(cpu.eip)
            if routine is not None:
                cpu._invoke_native(routine)
                return
            cpu.eip = target
        return op_call
    if m == "ret":
        def op_ret(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu.charge(cpu.costs.ret)
            cpu.eip = cpu.pop()
        return op_ret
    if m == "jmp":
        resolve = _target_thunk(instr, loaded, index)

        def op_jmp(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            target = resolve(cpu)
            routine = cpu.natives.by_addr.get(target)
            if routine is not None:
                # Tail call into a native routine: return address is the
                # caller's, already on the stack.
                cpu._invoke_native(routine)
                return
            cpu.eip = target
        return op_jmp
    if instr.is_conditional:
        cond = _CONDITIONS[m]
        target = loaded.targets[index]

        def op_jcc(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            if cond(cpu.flags):
                cpu.eip = target
        return op_jcc

    if instr.is_string:
        def op_string(cpu: Cpu):
            cpu.charge(cpu.costs.alu)
            cpu._execute_string(instr)
        return op_string

    def op_unknown(cpu: Cpu):  # pragma: no cover
        cpu.charge(cpu.costs.alu)
        raise ExecutionFault(f"unimplemented mnemonic {m!r}")
    return op_unknown
