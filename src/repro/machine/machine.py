"""The Machine: one box wiring memory, CPU, interrupts and devices.

This is the paper's server: a 3.0 GHz Xeon with up to five gigabit NICs.
Higher layers (the Xen model, the kernels, TwinDrivers) all hang off one
``Machine`` instance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics.cycles import CycleAccount
from ..metrics.throughput import CPU_HZ
from ..obs import Obs
from .cpu import (
    CodeRegistry,
    Cpu,
    InstructionCosts,
    LoadedProgram,
    NativeRegistry,
    NativeRoutine,
)
from .interrupts import InterruptController
from .iommu import Iommu
from .memory import PhysicalMemory
from .nic import E1000Device, Wire
from .paging import PageTable
from .rtl8139 import Rtl8139Device

#: Physical base of NIC MMIO apertures (one 16 KiB window per NIC).
NIC_MMIO_PHYS_BASE = 0xFEB00000
NIC_MMIO_STRIDE = 0x4000
NIC_IRQ_BASE = 16


class Machine:
    """The simulated server: memory, CPU, interrupts, NICs, the wire."""

    def __init__(self, frames: int = 65536,
                 costs: Optional[InstructionCosts] = None,
                 cpu_hz: int = CPU_HZ):
        self.phys = PhysicalMemory(frames=frames)
        self.intc = InterruptController()
        self.code = CodeRegistry()
        self.natives = NativeRegistry()
        #: observability: the metrics registry (always on) and the trace
        #: ring (off by default), shared by every layer on this machine.
        self.obs = Obs()
        self.account = CycleAccount(registry=self.obs.registry)
        self.obs.set_clock(lambda: self.account.total)
        self.cpu = Cpu(self.phys, self.code, self.natives, self.account,
                       costs=costs)
        self.cpu.tracer = self.obs.tracer
        # the profiler shadows account.charge when enabled; bind it to
        # this machine's CPU (pc capture + symbolization) and account
        self.obs.profiler.bind(self.cpu, self.account)
        self.cpu.profiler = self.obs.profiler
        self.cpu_hz = cpu_hz
        #: hypervisor page table, shared into every domain's address space.
        self.hypervisor_table = PageTable()
        self.nics: List[E1000Device] = []
        self.wire = Wire()
        #: optional DMA protection; attach with :meth:`attach_iommu`.
        self.iommu: Optional[Iommu] = None

    # -- devices ----------------------------------------------------------------

    def add_nic(self, mac: Optional[bytes] = None,
                model: str = "e1000", num_queues: int = 1) -> E1000Device:
        index = len(self.nics)
        mac = mac or bytes((0x00, 0x16, 0x3E, 0x00, 0x00, index + 1))
        device_cls = {"e1000": E1000Device, "rtl8139": Rtl8139Device}[model]
        nic = device_cls(
            self.phys,
            self.intc,
            irq=NIC_IRQ_BASE + index,
            mmio_phys_base=NIC_MMIO_PHYS_BASE + index * NIC_MMIO_STRIDE,
            mac=mac,
            name=f"eth{index}",
        )
        if num_queues != 1:
            nic.set_num_queues(num_queues)
        if self.iommu is not None:
            nic.iommu = self.iommu
        nic.tracer = self.obs.tracer
        self.wire.attach(nic)
        self.nics.append(nic)
        return nic

    def attach_iommu(self) -> Iommu:
        """Enable DMA protection: all NICs (present and future) get their
        transfers checked against programmed windows."""
        if self.iommu is None:
            self.iommu = Iommu()
        for nic in self.nics:
            nic.iommu = self.iommu
        return self.iommu

    def nic_by_irq(self, irq: int) -> Optional[E1000Device]:
        for nic in self.nics:
            if nic.irq == irq:
                return nic
        return None

    # -- native routines ------------------------------------------------------------

    def register_native(self, name: str, fn, cost: int = 0,
                        category: Optional[str] = None) -> int:
        return self.natives.register(
            NativeRoutine(name, fn, cost=cost, category=category)
        )

    # -- code -------------------------------------------------------------------------

    def load_program(self, program, base: int,
                     extern: Optional[Dict[str, int]] = None,
                     name: Optional[str] = None) -> LoadedProgram:
        loaded = LoadedProgram(program, base, extern=extern, name=name)
        self.code.register(loaded)
        return loaded

    def load_linked_program(self, program, base: int,
                            symbols: Optional[Dict[str, int]] = None,
                            extern: Optional[Dict[str, int]] = None,
                            name: Optional[str] = None) -> LoadedProgram:
        """Load with full linking: data ``symbols`` and code-symbol
        immediates (e.g. ``movl $handler, ...``) are resolved to final
        addresses. Two passes because code addresses depend on the layout,
        which is invariant once symbols are folded."""
        symbols = dict(symbols or {})
        zeros = {label: 0 for label in program.labels}
        tentative = LoadedProgram(
            program.resolve({**symbols, **zeros}), base, extern=extern
        )
        resolved = program.resolve({**symbols, **tentative.symbols})
        return self.load_program(resolved, base, extern=extern, name=name)

    # -- time --------------------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.account.total

    @property
    def seconds(self) -> float:
        return self.cycles / self.cpu_hz
