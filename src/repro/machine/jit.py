"""Trace-JIT: superblock compilation for the twin interpreter.

PR 4 replaced the mnemonic-dispatch interpreter with per-instruction
compiled closures (~26%). This module is the next rung on the same
ladder, the one the dynamic-translation literature (QEMU's TCG, the
software-only passthrough line of work) climbs after per-instruction
caching: *superblocks*. When a basic-block head gets hot, the chain of
blocks starting there is compiled into a single straight-line Python
function — operand thunks fused into expressions, per-instruction
``charge()`` calls batched into one accumulated charge per block, the
registry/handler/dispatch overhead of ``step()`` paid once per entry
instead of once per instruction. The 10-instruction SVM fast path (and
its proof-elided anchor-reload form) inlines like any other run of
straight-line code, which is the point: that sequence dominates the
twin driver's dynamic instruction count.

Correctness contract (the part worth reading twice):

* **Cycle accounting is bit-identical.** ``Cpu.charge`` rounds each
  charge independently (``int(round(c * cycle_scale))``), so batching
  must sum the *per-charge rounded* values, never round the sum. Every
  constant cost is pre-scaled at compile time; data-dependent costs
  (hot-range memory pricing, MMIO) replicate the interpreter's exact
  decision procedure. The accumulator is flushed before anything that
  can observe the clock — native routines (the tracer timestamps spans
  with ``account.total``) and MMIO dispatch (device models emit
  events) — and a ``finally`` flush covers faults, so totals and
  ordering across observable boundaries match ``step()`` exactly.
* **Side exits are precise.** Before any operation that can fault or
  escape (memory access, native call, delegated handler), the emitted
  code materializes ``cpu.eip`` (the faulting instruction's
  fall-through, exactly what ``step()`` leaves there) and
  ``cpu.executed``. Registers and flags are always architectural —
  superblocks write them in interpreter order, never cache them.
* **Superblocks never run under a charge shadow.** The dispatcher
  checks ``"charge" not in account.__dict__`` (the profiler or any
  other shadow) and ``sb.scale == cpu.cycle_scale`` before entering;
  otherwise it falls back to ``step()``, whose behaviour is the
  definition of correct.
* **Invalidation.** Superblocks cache on the ``LoadedProgram`` keyed by
  the ``CodeRegistry`` epoch (reload/recovery/re-verification bumps it,
  exactly like the PR 4 handler tables) and by the program's
  instrument generation (hooks registered after warm-up must fire).
  Both are also re-checked after any mid-trace native call, because a
  native can reload programs or install shadows.

Trace shape: straight-line through fall-throughs and followed direct
jumps; conditional branches are predicted not-taken and compile to a
guarded side exit; a branch back to the trace head turns the whole
trace into a capped loop (the common ``while`` shape of the driver's
copy and descriptor-ring loops); indirect branches, traps and
unsupported forms end the trace *before* the instruction so ``step()``
executes it from an architecturally clean state.
"""

from __future__ import annotations

from struct import Struct
from typing import Dict, List, Optional

from ..isa.instructions import Instruction
from ..isa.operands import Imm, Mem, Reg
from ..isa.registers import SUBREGISTERS

MASK32 = 0xFFFFFFFF

#: growth caps: instructions per trace, and loop iterations a compiled
#: back-edge may take before returning to the dispatcher (which
#: re-checks the call budget).
MAX_TRACE_INSTRS = 512
LOOP_CAP = 1024

#: little-endian accessors baked into every superblock namespace for the
#: inline RAM fast path (one frame-dict ``get`` + one struct call).
_MEM_HELPERS = {
    "u2": Struct("<H").unpack_from,
    "u4": Struct("<I").unpack_from,
    "p2": Struct("<H").pack_into,
    "p4": Struct("<I").pack_into,
}

_FULL_REGS = frozenset(
    ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"))

#: condition expressions over the hoisted flags dict ``f`` — same truth
#: tables as ``Cpu.condition``.
_COND_EXPR = {
    "je": "f['zf']", "jz": "f['zf']",
    "jne": "not f['zf']", "jnz": "not f['zf']",
    "jl": "f['sf'] != f['of']",
    "jge": "f['sf'] == f['of']",
    "jle": "f['zf'] or f['sf'] != f['of']",
    "jg": "not f['zf'] and f['sf'] == f['of']",
    "jb": "f['cf']",
    "jae": "not f['cf']",
    "jbe": "f['cf'] or f['zf']",
    "ja": "not (f['cf'] or f['zf'])",
    "js": "f['sf']",
    "jns": "not f['sf']",
}


class Superblock:
    """One compiled trace: entry point plus the metadata the dispatcher
    needs to decide whether it may run."""

    __slots__ = ("fn", "head", "scale", "n_instrs", "source", "entries")

    def __init__(self, fn, head: int, scale: float, n_instrs: int,
                 source: str):
        self.fn = fn
        self.head = head
        self.scale = scale
        self.n_instrs = n_instrs
        self.source = source
        self.entries = 0

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"<superblock @{self.head:#010x} {self.n_instrs} instrs "
                f"{self.entries} entries>")


class JitState:
    """Per-LoadedProgram JIT state: hot counters keyed by block-head
    address, compiled superblocks, and the registry epoch they are
    valid for. ``False`` in ``superblocks`` blacklists a head whose
    trace could not be compiled."""

    __slots__ = ("epoch", "counts", "superblocks", "leaders")

    def __init__(self, loaded, epoch: int):
        self.leaders = _block_leaders(loaded)
        self.counts: Dict[int, int] = {}
        self.superblocks: Dict[int, object] = {}
        self.epoch = epoch

    def reset(self, epoch: int):
        self.counts.clear()
        self.superblocks.clear()
        self.epoch = epoch


def _block_leaders(loaded) -> frozenset:
    """Addresses where a superblock may start: function entries, branch
    targets, and fall-throughs of control flow (so side-exit landing
    pads are themselves promotable — nested loops each get their own
    trace)."""
    addrs = loaded.addrs
    if not addrs:
        return frozenset()
    leaders = {addrs[0]}
    for addr in loaded.symbols.values():
        if addr in loaded.addr_to_index:
            leaders.add(addr)
    for i, instr in enumerate(loaded.program.instructions):
        if instr.is_control_flow:
            if i + 1 < len(addrs):
                leaders.add(addrs[i + 1])
            target = loaded.targets.get(i)
            if target is not None and target in loaded.addr_to_index:
                leaders.add(target)
    return frozenset(leaders)


class _Unsupported(Exception):
    """Raised by the emitter to end the trace before an instruction."""


class _Emitter:
    """Generates the superblock's Python source for one trace."""

    def __init__(self, cpu, loaded, head_index: int):
        self.cpu = cpu
        self.loaded = loaded
        self.head_index = head_index
        self.head_addr = loaded.addrs[head_index]
        self.costs = cpu.costs
        self.scale = cpu.cycle_scale
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {}
        #: compile-time-constant scaled cycles not yet materialized
        self.buf = 0
        #: the runtime accumulator ``acc`` may be non-zero
        self.acc_dirty = False
        #: instructions consumed but not yet added to ``cpu.executed``
        self.pending = 0
        #: compile-time knowledge of ``cpu.eip`` on the main path
        self.cur_eip: Optional[int] = self.head_addr
        self.tmp = 0
        self.uses_mem = False
        self.uses_natives = False
        self.has_backedge = False
        self.n_instrs = 0

    # -- infrastructure ------------------------------------------------------

    def scaled(self, cycles: int) -> int:
        return int(round(cycles * self.scale))

    def emit(self, text: str, ind: int = 0):
        self.lines.append("    " * ind + text)

    def temp(self, prefix: str = "t") -> str:
        self.tmp += 1
        return f"{prefix}{self.tmp}"

    def bake(self, prefix: str, obj) -> str:
        name = f"{prefix}{len(self.ns)}"
        self.ns[name] = obj
        return name

    def charge_const(self, cycles: int):
        self.buf += self.scaled(cycles)

    def sync(self, next_addr: int, ind: int = 0):
        """Materialize eip/executed/buffered charges before a
        potentially-faulting or observing operation."""
        if self.buf:
            self.emit(f"acc += {self.buf}", ind)
            self.buf = 0
            self.acc_dirty = True
        if self.cur_eip != next_addr:
            self.emit(f"cpu.eip = {next_addr}", ind)
            self.cur_eip = next_addr
        if self.pending:
            self.emit(f"cpu.executed += {self.pending}", ind)
            self.pending = 0

    def flush(self, ind: int = 0):
        """Push the accumulator into the account (before anything that
        observes the simulated clock)."""
        if self.buf and not self.acc_dirty:
            self.emit(f"charge(cat, {self.buf})", ind)
            self.buf = 0
            return
        if self.buf:
            self.emit(f"acc += {self.buf}", ind)
            self.buf = 0
            self.acc_dirty = True
        if self.acc_dirty:
            self.emit("charge(cat, acc)", ind)
            self.emit("acc = 0", ind)
            self.acc_dirty = False

    def emit_side_exit(self, eip_expr: str, ind: int):
        """Exit code inside a conditional branch: materialize state and
        return (the ``finally`` flush drains ``acc``). Compile-time
        state is untouched — the fall-through path continues."""
        if self.buf:
            self.emit(f"acc += {self.buf}", ind)
        self.emit(f"cpu.eip = {eip_expr}", ind)
        if self.pending:
            self.emit(f"cpu.executed += {self.pending}", ind)
        self.emit("return", ind)

    def end_trace(self, eip_expr: str, ind: int = 0):
        """Unconditional trace end on the main path."""
        if self.buf:
            self.emit(f"acc += {self.buf}", ind)
            self.buf = 0
        self.emit(f"cpu.eip = {eip_expr}", ind)
        if self.pending:
            self.emit(f"cpu.executed += {self.pending}", ind)
            self.pending = 0
        self.emit("return", ind)

    def rehoist(self, ind: int = 0):
        """Re-read translation state after anything that can run model
        code (a native, a hook, an MMIO dispatch): an upcall may have
        switched ``cpu.address_space``, and any of them may have
        remapped pages, so the micro-TLB is dropped. Forces the memory
        hoists on: later memory ops in the trace depend on the re-read
        even when none were emitted yet."""
        self.uses_mem = True
        self.emit("trans = cpu.address_space.translate", ind)
        self.emit("asr = cpu.address_space.read_bytes", ind)
        self.emit("asw = cpu.address_space.write_bytes", ind)
        self.emit("tlb.clear()", ind)

    def native_guard(self, next_addr: int, ind: int = 0):
        """After a mid-trace native call or delegated handler: bail to
        the dispatcher unless the world still matches what the rest of
        the trace was compiled against."""
        self.emit(
            f"if (cpu.eip != {next_addr} or cpu.code.epoch != ep0 "
            f"or L._igen != ig0 or cpu._category[-1] != cat "
            f"or cpu.world_token != wt0 or 'charge' in accd):", ind)
        self.emit("return", ind + 1)
        self.rehoist(ind)
        self.cur_eip = next_addr

    # -- operand expressions -------------------------------------------------

    def reg_read(self, name: str, size: int) -> str:
        mask = (1 << (size * 8)) - 1
        if name in _FULL_REGS:
            if size == 4:
                return f"r['{name}']"
            return f"(r['{name}'] & {mask})"
        parent = SUBREGISTERS[name]
        sub = 0xFF if len(name) == 2 and name[1] == "l" else 0xFFFF
        return f"(r['{parent}'] & {sub & mask})"

    def reg_read_full(self, name: str) -> str:
        """``get_reg`` semantics (used for effective addresses and
        branch targets): full value for GPRs, masked for subregisters."""
        if name in _FULL_REGS:
            return f"r['{name}']"
        parent = SUBREGISTERS[name]
        sub = 0xFF if len(name) == 2 and name[1] == "l" else 0xFFFF
        return f"(r['{parent}'] & {sub})"

    def reg_write(self, name: str, size: int, expr: str, ind: int = 0):
        mask = (1 << (size * 8)) - 1
        if name in _FULL_REGS:
            if size == 4:
                self.emit(f"r['{name}'] = ({expr}) & {MASK32}", ind)
            else:
                self.emit(
                    f"r['{name}'] = (r['{name}'] & {MASK32 ^ mask}) "
                    f"| (({expr}) & {mask})", ind)
            return
        parent = SUBREGISTERS[name]
        if len(name) == 2 and name[1] == "l":
            sub = 0xFF
        else:
            sub = 0xFFFF
        self.emit(
            f"r['{parent}'] = (r['{parent}'] & {MASK32 ^ sub}) "
            f"| (({expr}) & {sub & mask})", ind)

    def ea_expr(self, mem: Mem) -> str:
        if mem.symbol is not None:
            raise _Unsupported("unresolved data symbol")
        parts = []
        if mem.base is not None:
            parts.append(self.reg_read_full(mem.base))
        if mem.index is not None:
            idx = self.reg_read_full(mem.index)
            parts.append(f"{idx} * {mem.scale}" if mem.scale != 1 else idx)
        if mem.disp or not parts:
            parts.append(str(mem.disp))
        if len(parts) == 1 and mem.base is None and mem.index is None:
            return str(mem.disp & MASK32)
        return f"({' + '.join(parts)}) & {MASK32}"

    # -- memory --------------------------------------------------------------

    def emit_cost(self, va: str, ind: int):
        """Inline ``Cpu._mem_cost`` pricing into the accumulator."""
        memc = self.scaled(self.costs.mem)
        hotc = self.scaled(self.costs.mem_hot)
        c = self.temp("c")
        self.emit(f"{c} = {memc}", ind)
        self.emit("for lohi in hr:", ind)
        self.emit(f"if lohi[0] <= {va} < lohi[1]:", ind + 1)
        self.emit(f"{c} = {hotc}", ind + 2)
        self.emit("break", ind + 2)
        self.emit(f"acc += {c}", ind)
        self.acc_dirty = True

    def _ram_read(self, va: str, pa: str, v: str, d: str, size: int,
                  pa_expr: Optional[str], ind: int):
        """RAM access body: unpack straight out of the frame bytearray
        (one dict ``get`` + one ``Struct`` call); ``pr`` remains the
        fallback for unallocated frames (BusError). ``pa_expr`` (TLB
        hit) defers the physical address to the non-straddle branch."""
        if size > 1:
            self.emit(f"if ({va} & 4095) + {size} > 4096:", ind)
            self.emit(
                f"{v} = int.from_bytes(asr({va}, {size}), 'little')",
                ind + 1)
            self.emit("else:", ind)
            if pa_expr is not None:
                self.emit(f"{pa} = {pa_expr}", ind + 1)
            self.emit(f"{d} = fget({pa} >> 12)", ind + 1)
            un = "u2" if size == 2 else "u4"
            self.emit(
                f"{v} = {un}({d}, {pa} & 4095)[0] "
                f"if {d} is not None else pr({pa}, {size})", ind + 1)
        else:
            if pa_expr is not None:
                self.emit(f"{pa} = {pa_expr}", ind)
            self.emit(f"{d} = fget({pa} >> 12)", ind)
            self.emit(
                f"{v} = {d}[{pa} & 4095] "
                f"if {d} is not None else pr({pa}, 1)", ind)

    def mem_read(self, ea: str, size: int, next_addr: int,
                 ind: int = 0) -> str:
        """Inline ``Cpu.read_mem``; returns the value variable.

        Repeat translations of a page are served by the per-entry
        micro-TLB ``tlb`` (vpage -> frame base, read and write keys
        disjoint). Only pages whose physical page intersects no MMIO
        region are cached, so a hit is always plain RAM; the TLB is
        dropped at every point model code can run (:meth:`rehoist`).
        Faults keep interpreter semantics: a miss calls ``trans``
        (PageFault / ProtectionFault) with state already synced."""
        self.uses_mem = True
        self.sync(next_addr, ind)
        va = self.temp("va")
        pa = self.temp("pa")
        v = self.temp("v")
        d = self.temp("d")
        e = self.temp("e")
        self.emit(f"{va} = {ea}", ind)
        self.emit(f"{e} = tlb.get({va} >> 12)", ind)
        self.emit(f"if {e} is not None:", ind)
        self.emit_cost(va, ind + 1)
        self._ram_read(va, pa, v, d, size,
                       pa_expr=f"{e} + ({va} & 4095)", ind=ind + 1)
        self.emit("else:", ind)
        self.emit(f"{pa} = trans({va})", ind + 1)
        self.emit(f"if mio({pa}) is None:", ind + 1)
        self.emit(f"if not mpg({pa} >> 12):", ind + 2)
        self.emit(f"tlb[{va} >> 12] = {pa} - ({va} & 4095)", ind + 3)
        self.emit_cost(va, ind + 2)
        self._ram_read(va, pa, v, d, size, pa_expr=None, ind=ind + 2)
        self.emit("else:", ind + 1)
        self.emit(f"acc += {self.scaled(self.costs.mmio)}", ind + 2)
        self.emit("charge(cat, acc)", ind + 2)
        self.emit("acc = 0", ind + 2)
        if size > 1:
            self.emit(f"if ({va} & 4095) + {size} > 4096:", ind + 2)
            self.emit(
                f"{v} = int.from_bytes(asr({va}, {size}), 'little')",
                ind + 3)
            self.emit("else:", ind + 2)
            self.emit(f"{v} = pr({pa}, {size})", ind + 3)
        else:
            self.emit(f"{v} = pr({pa}, 1)", ind + 2)
        # the device model may have re-entered the kernel and remapped
        # pages or switched address spaces
        self.rehoist(ind + 2)
        self.acc_dirty = True        # branches disagree; finally covers it
        return v

    def _ram_write(self, va: str, pa: str, d: str, value: str, size: int,
                   pa_expr: Optional[str], ind: int):
        """RAM write body: pack straight into the frame bytearray."""
        mask = (1 << (size * 8)) - 1
        if size > 1:
            self.emit(f"if ({va} & 4095) + {size} > 4096:", ind)
            self.emit(
                f"asw({va}, (({value}) & {mask}).to_bytes({size}, "
                f"'little'))", ind + 1)
            self.emit("else:", ind)
            if pa_expr is not None:
                self.emit(f"{pa} = {pa_expr}", ind + 1)
            self.emit(f"{d} = fget({pa} >> 12)", ind + 1)
            self.emit(f"if {d} is None:", ind + 1)
            self.emit(f"pw({pa}, {size}, {value})", ind + 2)
            self.emit("else:", ind + 1)
            pk = "p2" if size == 2 else "p4"
            self.emit(f"{pk}({d}, {pa} & 4095, ({value}) & {mask})",
                      ind + 2)
        else:
            if pa_expr is not None:
                self.emit(f"{pa} = {pa_expr}", ind)
            self.emit(f"{d} = fget({pa} >> 12)", ind)
            self.emit(f"if {d} is None:", ind)
            self.emit(f"pw({pa}, 1, {value})", ind + 1)
            self.emit("else:", ind)
            self.emit(f"{d}[{pa} & 4095] = ({value}) & 255", ind + 1)

    def mem_write(self, ea: str, size: int, value: str, next_addr: int,
                  ind: int = 0):
        """Inline ``Cpu.write_mem``: micro-TLB (write keys offset by
        ``2**20``, so read permission never satisfies a write) and the
        packed RAM fast path, mirroring :meth:`mem_read`."""
        self.uses_mem = True
        self.sync(next_addr, ind)
        va = self.temp("va")
        pa = self.temp("pa")
        d = self.temp("d")
        e = self.temp("e")
        mask = (1 << (size * 8)) - 1
        self.emit(f"{va} = {ea}", ind)
        self.emit(f"{e} = tlb.get(({va} >> 12) + 1048576)", ind)
        self.emit(f"if {e} is not None:", ind)
        self.emit_cost(va, ind + 1)
        self._ram_write(va, pa, d, value, size,
                        pa_expr=f"{e} + ({va} & 4095)", ind=ind + 1)
        self.emit("else:", ind)
        self.emit(f"{pa} = trans({va}, True)", ind + 1)
        self.emit(f"if mio({pa}) is None:", ind + 1)
        self.emit(f"if not mpg({pa} >> 12):", ind + 2)
        self.emit(f"tlb[({va} >> 12) + 1048576] = {pa} - ({va} & 4095)",
                  ind + 3)
        self.emit_cost(va, ind + 2)
        self._ram_write(va, pa, d, value, size, pa_expr=None, ind=ind + 2)
        self.emit("else:", ind + 1)
        self.emit(f"acc += {self.scaled(self.costs.mmio)}", ind + 2)
        self.emit("charge(cat, acc)", ind + 2)
        self.emit("acc = 0", ind + 2)
        if size > 1:
            self.emit(f"if ({va} & 4095) + {size} > 4096:", ind + 2)
            self.emit(
                f"asw({va}, (({value}) & {mask}).to_bytes({size}, "
                f"'little'))", ind + 3)
            self.emit("else:", ind + 2)
            self.emit(f"pw({pa}, {size}, {value})", ind + 3)
        else:
            self.emit(f"pw({pa}, 1, {value})", ind + 2)
        self.rehoist(ind + 2)
        self.acc_dirty = True

    # -- operand read/write (mirrors the PR 4 thunks) ------------------------

    def read_operand(self, op, size: int, next_addr: int,
                     ind: int = 0) -> str:
        mask = (1 << (size * 8)) - 1
        if isinstance(op, Imm):
            if op.symbol is not None:
                raise _Unsupported("unresolved immediate symbol")
            return str(op.value & mask)
        if isinstance(op, Reg):
            return self.reg_read(op.name, size)
        if isinstance(op, Mem):
            return self.mem_read(self.ea_expr(op), size, next_addr, ind)
        raise _Unsupported(f"unreadable operand {op!r}")

    def as_var(self, expr: str, ind: int = 0) -> str:
        """Bind an expression to a temp when it will be used twice."""
        if expr.isidentifier() or expr.isdigit():
            return expr
        v = self.temp()
        self.emit(f"{v} = {expr}", ind)
        return v

    def write_operand(self, op, size: int, value: str, next_addr: int,
                      ind: int = 0):
        if isinstance(op, Reg):
            self.reg_write(op.name, size, value, ind)
            return
        if isinstance(op, Mem):
            self.mem_write(self.ea_expr(op), size, value, next_addr, ind)
            return
        raise _Unsupported(f"unwritable operand {op!r}")

    # -- flags ---------------------------------------------------------------

    def emit_zsf(self, r: str, sign: int, ind: int):
        self.emit(f"f['zf'] = {r} == 0", ind)
        self.emit(f"f['sf'] = ({r} & {sign}) != 0", ind)

    def emit_flags_add(self, a: str, b: str, size: int, ind: int,
                       set_cf: bool = True) -> str:
        bits = size * 8
        mask = (1 << bits) - 1
        sign = 1 << (bits - 1)
        s = self.temp("s")
        rv = self.temp("x")
        self.emit(f"{s} = {a} + {b}", ind)
        self.emit(f"{rv} = {s} & {mask}", ind)
        if set_cf:
            self.emit(f"f['cf'] = {s} > {mask}", ind)
        self.emit(
            f"f['of'] = ((~({a} ^ {b})) & ({a} ^ {rv}) & {sign}) != 0", ind)
        self.emit_zsf(rv, sign, ind)
        return rv

    def emit_flags_sub(self, a: str, b: str, size: int, ind: int,
                       set_cf: bool = True) -> str:
        bits = size * 8
        mask = (1 << bits) - 1
        sign = 1 << (bits - 1)
        rv = self.temp("x")
        self.emit(f"{rv} = ({a} - {b}) & {mask}", ind)
        if set_cf:
            self.emit(f"f['cf'] = {a} < {b}", ind)
        self.emit(
            f"f['of'] = (({a} ^ {b}) & ({a} ^ {rv}) & {sign}) != 0", ind)
        self.emit_zsf(rv, sign, ind)
        return rv

    def emit_flags_logic(self, expr: str, size: int, ind: int) -> str:
        sign = 1 << (size * 8 - 1)
        rv = self.temp("x")
        self.emit(f"{rv} = {expr}", ind)
        self.emit("f['cf'] = False", ind)
        self.emit("f['of'] = False", ind)
        self.emit_zsf(rv, sign, ind)
        return rv

    # -- per-instruction emission --------------------------------------------

    def emit_instruction(self, index: int) -> Optional[int]:
        """Emit one instruction; returns the next trace index, or None
        when the trace ends here. Raises _Unsupported to end the trace
        *before* this instruction."""
        loaded = self.loaded
        instr: Instruction = loaded.program.instructions[index]
        m = instr.mnemonic
        size = instr.size
        next_addr = loaded.next_addrs[index]
        next_index = index + 1

        # forms that always end the trace before executing. All checks
        # that can reject the instruction must run before any emission:
        # a partially-emitted instruction would corrupt the trace.
        if m in ("int3", "ud2", "hlt"):
            raise _Unsupported("trap")
        if instr.is_control_flow and instr.indirect:
            raise _Unsupported("indirect branch")
        for op in instr.operands:
            if isinstance(op, (Mem, Imm)) and op.symbol is not None:
                raise _Unsupported("unresolved symbol")
        if m in ("mov", "movzb", "movzw", "movsx", "lea", "add", "sub",
                 "and", "or", "xor", "imul", "inc", "dec", "neg", "not",
                 "shl", "shr", "sar", "pop"):
            if not isinstance(instr.dst, (Reg, Mem)):
                raise _Unsupported("unwritable destination")
        if m == "xchg" and not (isinstance(instr.src, (Reg, Mem))
                                and isinstance(instr.dst, (Reg, Mem))):
            raise _Unsupported("unwritable xchg operand")
        if index in loaded.instrument:
            if instr.is_control_flow:
                raise _Unsupported("instrumented control flow")
            return self.delegate(index, next_addr, next_index)

        self.pending += 1
        self.n_instrs += 1
        self.charge_const(self.costs.alu)

        if m in ("nop", "sti", "cli"):
            return next_index
        if m == "cld":
            self.emit("cpu.df = False")
            return next_index
        if m == "std":
            self.emit("cpu.df = True")
            return next_index

        if m == "mov":
            v = self.read_operand(instr.src, size, next_addr)
            self.write_operand(instr.dst, size, v, next_addr)
            return next_index
        if m in ("movzb", "movzw"):
            v = self.read_operand(instr.src, size, next_addr)
            self.write_operand(instr.dst, 4, v, next_addr)
            return next_index
        if m == "movsx":
            bits = size * 8
            sign = 1 << (bits - 1)
            extend = MASK32 ^ ((1 << bits) - 1)
            v = self.as_var(self.read_operand(instr.src, size, next_addr))
            if v.isdigit():
                value = int(v)
                if value & sign:
                    value |= extend
                self.write_operand(instr.dst, 4, str(value), next_addr)
                return next_index
            self.emit(f"if {v} & {sign}:")
            self.emit(f"{v} |= {extend}", 1)
            self.write_operand(instr.dst, 4, v, next_addr)
            return next_index
        if m == "lea":
            if not isinstance(instr.src, Mem):
                raise _Unsupported("lea from non-memory operand")
            ea = self.ea_expr(instr.src)
            self.write_operand(instr.dst, 4, ea, next_addr)
            return next_index
        if m == "xchg":
            a = self.as_var(
                self.read_operand(instr.src, size, next_addr))
            b = self.as_var(
                self.read_operand(instr.dst, size, next_addr))
            self.write_operand(instr.src, size, b, next_addr)
            self.write_operand(instr.dst, size, a, next_addr)
            return next_index

        if m in ("add", "sub", "and", "or", "xor", "imul", "cmp", "test"):
            a = self.as_var(
                self.read_operand(instr.dst, size, next_addr))
            b = self.as_var(
                self.read_operand(instr.src, size, next_addr))
            if m == "add":
                rv = self.emit_flags_add(a, b, size, 0)
            elif m in ("sub", "cmp"):
                rv = self.emit_flags_sub(a, b, size, 0)
            elif m in ("and", "test"):
                rv = self.emit_flags_logic(f"{a} & {b}", size, 0)
            elif m == "or":
                rv = self.emit_flags_logic(f"{a} | {b}", size, 0)
            elif m == "xor":
                rv = self.emit_flags_logic(f"{a} ^ {b}", size, 0)
            else:  # imul
                mask = (1 << (size * 8)) - 1
                sign = 1 << (size * 8 - 1)
                fu = self.temp("s")
                rv = self.temp("x")
                self.emit(f"{fu} = {a} * {b}")
                self.emit(f"{rv} = {fu} & {mask}")
                self.emit(f"f['cf'] = f['of'] = {fu} != {rv}")
                self.emit_zsf(rv, sign, 0)
            if m not in ("cmp", "test"):
                self.write_operand(instr.dst, size, rv, next_addr)
            return next_index

        if m in ("shl", "shr", "sar"):
            if isinstance(instr.dst, Mem):
                # a conditionally-skipped memory write would fork the
                # accounting state; the handler does it exactly
                return self.delegate(index, next_addr, next_index,
                                     undo_inline=True)
            bits = size * 8
            mask = (1 << bits) - 1
            sign = 1 << (bits - 1)
            c = self.temp("n")
            self.emit(
                f"{c} = ({self.read_operand(instr.src, 1, next_addr)})"
                f" & 31")
            v = self.as_var(self.read_operand(instr.dst, size, next_addr))
            rv = self.temp("x")
            self.emit(f"if {c}:")
            if m == "shl":
                self.emit(f"{rv} = {v} << {c}", 1)
                self.emit(f"f['cf'] = ({rv} & {1 << bits}) != 0", 1)
                self.emit(f"{rv} &= {mask}", 1)
            elif m == "shr":
                self.emit(f"f['cf'] = (({v} >> ({c} - 1)) & 1) != 0", 1)
                self.emit(f"{rv} = {v} >> {c}", 1)
            else:  # sar
                sg = self.temp("g")
                self.emit(f"{sg} = {v} & {sign}", 1)
                self.emit(f"{rv} = {v}", 1)
                self.emit(f"for _ in range({c}):", 1)
                self.emit(f"{rv} = ({rv} >> 1) | {sg}", 2)
                self.emit(f"f['cf'] = (({v} >> ({c} - 1)) & 1) != 0", 1)
                self.emit(f"{rv} &= {mask}", 1)
            self.emit("f['of'] = False", 1)
            self.emit(f"f['zf'] = {rv} == 0", 1)
            self.emit(f"f['sf'] = ({rv} & {sign}) != 0", 1)
            self.reg_write(instr.dst.name, size, rv, 1)
            return next_index

        if m in ("inc", "dec", "neg", "not"):
            mask = (1 << (size * 8)) - 1
            v = self.as_var(
                self.read_operand(instr.dst, size, next_addr))
            if m == "inc":
                # inc/dec preserve CF: the interpreter saves/restores it
                # around _flags_add, net effect is "don't touch cf"
                rv = self.emit_flags_add(v, "1", size, 0, set_cf=False)
            elif m == "dec":
                rv = self.emit_flags_sub(v, "1", size, 0, set_cf=False)
            elif m == "neg":
                rv = self.emit_flags_sub("0", v, size, 0)
            else:
                rv = self.temp("x")
                self.emit(f"{rv} = (~{v}) & {mask}")
            self.write_operand(instr.dst, size, rv, next_addr)
            return next_index

        if m == "push":
            v = self.as_var(self.read_operand(instr.src, 4, next_addr))
            self.emit_push(v, next_addr)
            return next_index
        if m == "pop":
            v = self.emit_pop(next_addr)
            self.write_operand(instr.dst, 4, v, next_addr)
            return next_index
        if m == "pushf":
            w = self.temp("w")
            self.emit(
                f"{w} = ((1 if f['cf'] else 0) | (64 if f['zf'] else 0)"
                f" | (128 if f['sf'] else 0) | (2048 if f['of'] else 0)"
                f" | (1024 if cpu.df else 0))")
            self.emit_push(w, next_addr)
            return next_index
        if m == "popf":
            v = self.emit_pop(next_addr)
            self.emit(f"f['cf'] = ({v} & 1) != 0")
            self.emit(f"f['zf'] = ({v} & 64) != 0")
            self.emit(f"f['sf'] = ({v} & 128) != 0")
            self.emit(f"f['of'] = ({v} & 2048) != 0")
            self.emit(f"cpu.df = ({v} & 1024) != 0")
            return next_index

        if m == "call":
            self.charge_const(self.costs.call)
            target = loaded.targets.get(index)
            if target is None:
                raise _Unsupported("call without resolved target")
            routine = self.cpu.natives.by_addr.get(target)
            self.sync(next_addr)
            self.emit_push(str(next_addr), next_addr)
            if routine is None:
                # transfer into interpreted code: the callee's head gets
                # its own superblock, so end the trace here
                self.end_trace(str(target))
                return None
            self.uses_natives = True
            name = self.bake("N", routine)
            self.flush()
            self.emit(f"cpu._invoke_native({name})")
            self.native_guard(next_addr)
            return next_index
        if m == "ret":
            self.charge_const(self.costs.ret)
            v = self.emit_pop(next_addr)
            self.end_trace(v)
            return None
        if m == "jmp":
            target = loaded.targets.get(index)
            if target is None:
                raise _Unsupported("jmp without resolved target")
            routine = self.cpu.natives.by_addr.get(target)
            if routine is not None:
                # tail call: return address is the caller's, already on
                # the stack; eip after the native is unknowable here
                self.uses_natives = True
                name = self.bake("N", routine)
                self.sync(next_addr)
                self.flush()
                self.emit(f"cpu._invoke_native({name})")
                self.emit("return")
                return None
            if target == self.head_addr:
                self.emit_backedge(None)
                return None
            t_index = loaded.addr_to_index.get(target)
            if t_index is None:
                self.end_trace(str(target))
                return None
            self.cur_eip = None
            return t_index
        if instr.is_conditional:
            target = loaded.targets.get(index)
            if target is None:
                raise _Unsupported("jcc without resolved target")
            cond = _COND_EXPR[m]
            if target == self.head_addr:
                self.emit_backedge(cond)
                self.cur_eip = None
                return next_index
            self.emit(f"if {cond}:")
            self.emit_side_exit(str(target), 1)
            self.cur_eip = None
            return next_index

        if instr.is_string:
            return self.delegate(index, next_addr, next_index,
                                 undo_inline=True)

        raise _Unsupported(f"unhandled mnemonic {m!r}")

    # -- composite helpers ---------------------------------------------------

    def emit_push(self, value: str, next_addr: int, ind: int = 0):
        sp = self.temp("sp")
        self.emit(f"{sp} = (r['esp'] - 4) & {MASK32}", ind)
        self.emit(f"r['esp'] = {sp}", ind)
        self.mem_write(sp, 4, value, next_addr, ind)

    def emit_pop(self, next_addr: int, ind: int = 0) -> str:
        v = self.mem_read("r['esp']", 4, next_addr, ind)
        self.emit(f"r['esp'] = (r['esp'] + 4) & {MASK32}", ind)
        return v

    def delegate(self, index: int, next_addr: int,
                 next_index: int, undo_inline: bool = False) -> int:
        """Run one instruction through its compiled PR 4 handler (string
        ops, instrumented sites, shift-to-memory): sync and flush so the
        handler sees exactly the state ``step()`` would give it."""
        from .cpu import _handler_for    # deferred: avoids module cycle
        if undo_inline:
            # emit_instruction already consumed the instruction and its
            # base ALU charge; the handler charges it itself
            self.pending -= 1
            self.n_instrs -= 1
            self.buf -= self.scaled(self.costs.alu)
        self.pending += 1
        self.n_instrs += 1
        self.sync(next_addr)
        self.flush()
        handler = self.loaded.handlers[index]
        if handler is None:
            handler = _handler_for(self.loaded, index)
        name = self.bake("H", handler)
        self.emit(f"{name}(cpu)")
        if index in self.loaded.instrument:
            # hooks are arbitrary code: re-validate the world
            self.native_guard(next_addr)
        else:
            # the handler may touch MMIO and re-enter model code
            self.rehoist()
        return next_index

    def emit_backedge(self, cond: Optional[str]):
        """Branch back to the trace head: compile the trace as a capped
        loop. Loop-top invariant: eip/executed/acc fully materialized."""
        self.has_backedge = True
        ind = 0
        if cond is not None:
            self.emit(f"if {cond}:")
            ind = 1
        if self.buf:
            self.emit(f"acc += {self.buf}", ind)
            if cond is None:
                self.buf = 0
        self.emit(f"cpu.eip = {self.head_addr}", ind)
        if self.pending:
            self.emit(f"cpu.executed += {self.pending}", ind)
            if cond is None:
                self.pending = 0
        self.emit("charge(cat, acc)", ind)
        self.emit("acc = 0", ind)
        self.emit("it -= 1", ind)
        self.emit("if it == 0:", ind)
        self.emit("return", ind + 1)
        self.emit("continue", ind)
        if cond is None:
            self.acc_dirty = False

    # -- trace construction --------------------------------------------------

    def build(self) -> Optional[str]:
        """Walk the trace from the head, emitting each instruction.
        Returns the superblock source, or None if no progress could be
        compiled."""
        loaded = self.loaded
        n = len(loaded.program.instructions)
        index = self.head_index
        visited = set()
        while True:
            if index is None:
                break
            if index >= n:
                # fell off the end of the program: step() faults there
                self.end_trace(str(loaded.end))
                break
            if index in visited:
                # rejoined an already-emitted address (jmp into the
                # trace body): exit and let the dispatcher continue
                self.end_trace(str(loaded.addrs[index]))
                break
            if self.n_instrs >= MAX_TRACE_INSTRS:
                self.end_trace(str(loaded.addrs[index]))
                break
            visited.add(index)
            mark = (len(self.lines), self.buf, self.pending,
                    self.n_instrs, self.cur_eip, self.acc_dirty)
            try:
                index = self.emit_instruction(index)
            except _Unsupported:
                # roll back anything the rejected instruction emitted,
                # then end the trace just before it
                (n_lines, self.buf, self.pending, self.n_instrs,
                 self.cur_eip, self.acc_dirty) = mark
                del self.lines[n_lines:]
                if self.n_instrs == 0:
                    return None
                self.end_trace(str(loaded.addrs[index]))
                break
        if self.n_instrs == 0:
            return None
        return self.render()

    def render(self) -> str:
        body = self.lines
        prologue = [
            "r = cpu.regs",
            "f = cpu.flags",
            "charge = cpu.account.charge",
            "cat = cpu._category[-1]",
            "acc = 0",
        ]
        if self.uses_mem:
            prologue += [
                "trans = cpu.address_space.translate",
                "asr = cpu.address_space.read_bytes",
                "asw = cpu.address_space.write_bytes",
                "pr = cpu.phys.read",
                "pw = cpu.phys.write",
                "mio = cpu.phys.mmio_region_at",
                "mpg = cpu.phys._mmio_pages.get",
                "fget = cpu.phys._frames.get",
                "hr = cpu.hot_ranges",
                "tlb = {}",
            ]
        if self.uses_natives or self.ns:
            prologue += [
                "accd = cpu.account.__dict__",
                "ep0 = cpu.code.epoch",
                "ig0 = L._igen",
                "wt0 = cpu.world_token",
            ]
        if self.has_backedge:
            body = ([f"it = {LOOP_CAP}", "while 1:"]
                    + ["    " + line for line in body])
        out = ["def __sb__(cpu):"]
        out += ["    " + line for line in prologue]
        out.append("    try:")
        out += ["        " + line for line in body]
        # every trace path ends in return/continue; this is unreachable
        # but keeps the block syntactically closed for empty loop tails
        out.append("        return")
        out.append("    finally:")
        out.append("        if acc:")
        out.append("            charge(cat, acc)")
        return "\n".join(out) + "\n"


def compile_superblock(cpu, loaded, head_addr: int) -> Optional[Superblock]:
    """Compile the trace starting at ``head_addr``; None if the head's
    first instruction is not compilable (the dispatcher blacklists it)."""
    head_index = loaded.addr_to_index[head_addr]
    emitter = _Emitter(cpu, loaded, head_index)
    source = emitter.build()
    if source is None:
        return None
    emitter.ns["L"] = loaded
    emitter.ns.update(_MEM_HELPERS)
    code = compile(source, f"<sb {loaded.name}@{head_addr:#x}>", "exec")
    exec(code, emitter.ns)
    return Superblock(emitter.ns["__sb__"], head_addr, cpu.cycle_scale,
                      emitter.n_instrs, source)
