"""e1000-style NIC device model: MMIO registers, descriptor rings, DMA.

The device is programmed exactly the way the driver binary programs it:
by writing ring base/head/tail registers through MMIO and by placing
legacy-style 16-byte descriptors in (physical) memory. Transmit works by
the driver advancing TDT; the device DMAs the buffers out and raises a
TXDW interrupt. Receive works by the device DMAing an incoming frame into
the next free rx descriptor's buffer and raising RXT0.

Register offsets loosely follow the Intel 8254x datasheet so the driver
assembly reads like a real e1000 driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..obs.events import NIC_DESC, NIC_DMA_FAULT, NIC_IRQ, NIC_RX, NIC_TX
from .interrupts import InterruptController
from .iommu import Iommu, IommuFault
from .memory import PhysicalMemory

# Register offsets (bytes from the MMIO base).
REG_CTRL = 0x0000
REG_STATUS = 0x0008
REG_ICR = 0x00C0      # interrupt cause read (read-to-clear)
REG_IMS = 0x00D0      # interrupt mask set
REG_IMC = 0x00D8      # interrupt mask clear
REG_RCTL = 0x0100
REG_TCTL = 0x0400
REG_RDBAL = 0x2800
REG_RDLEN = 0x2808
REG_RDH = 0x2810
REG_RDT = 0x2818
REG_TDBAL = 0x3800
REG_TDLEN = 0x3808
REG_TDH = 0x3810
REG_TDT = 0x3818

MMIO_SIZE = 0x4000

# Interrupt cause bits.
ICR_TXDW = 0x01       # transmit descriptor written back
ICR_LSC = 0x04        # link status change
ICR_RXT0 = 0x80       # receiver timer / packet received

# Control/status bits.
CTRL_RST = 0x04000000
STATUS_LU = 0x02      # link up
TCTL_EN = 0x02
RCTL_EN = 0x02

# Descriptor layout (16 bytes, legacy-ish).
DESC_ADDR = 0         # u32 buffer physical address
DESC_LEN = 8          # u32 length
DESC_FLAGS = 12       # u32: bit0 DD (device done), bit1 EOP
DESC_SIZE = 16
DESC_DD = 0x1
DESC_EOP = 0x2


#: FNV-1a offset basis / prime (32-bit).
_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193
#: Bytes of the frame fed to the RSS hash: enough to cover the Ethernet
#: header plus an IPv4 header's address/port words (dst 6 + src 6 +
#: ethertype 2 + 20 IP == 34), like a Toeplitz hash over the 4-tuple.
RSS_HASH_BYTES = 34


def flow_hash(frame: bytes) -> int:
    """Deterministic 32-bit RSS flow hash (FNV-1a over the headers).

    Explicitly NOT Python's builtin ``hash``: that is randomized per
    process (PYTHONHASHSEED), and queue selection must be bit-identical
    across runs for the determinism gates."""
    h = _FNV_OFFSET
    for b in frame[:RSS_HASH_BYTES]:
        h = ((h ^ b) * _FNV_PRIME) & 0xFFFFFFFF
    return h


@dataclass
class NicQueueStats:
    """Counters for one tx/rx queue pair of a multiqueue NIC."""

    index: int
    tx_packets: int = 0
    tx_bytes: int = 0
    rx_packets: int = 0
    rx_bytes: int = 0


@dataclass
class NicStats:
    """Per-device counters (packets, bytes, drops, interrupts, faults)."""

    tx_packets: int = 0
    tx_bytes: int = 0
    rx_packets: int = 0
    rx_bytes: int = 0
    rx_dropped_no_desc: int = 0
    interrupts: int = 0
    dma_faults: int = 0


class E1000Device:
    """One simulated NIC attached to physical memory and an IRQ line."""

    def __init__(self, phys: PhysicalMemory, intc: InterruptController,
                 irq: int, mmio_phys_base: int, mac: bytes,
                 name: str = "eth0"):
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self.phys = phys
        self.intc = intc
        self.irq = irq
        self.mac = bytes(mac)
        self.name = name
        self.regs = {
            REG_CTRL: 0,
            REG_STATUS: STATUS_LU,
            REG_ICR: 0,
            REG_IMS: 0,
            REG_RCTL: 0,
            REG_TCTL: 0,
            REG_RDBAL: 0, REG_RDLEN: 0, REG_RDH: 0, REG_RDT: 0,
            REG_TDBAL: 0, REG_TDLEN: 0, REG_TDH: 0, REG_TDT: 0,
        }
        self.stats = NicStats()
        self.on_transmit: Optional[Callable[["E1000Device", bytes], None]] = None
        self.mmio = phys.add_mmio_region(mmio_phys_base, MMIO_SIZE, self)
        self._tx_fragments: List[bytes] = []
        #: interrupt coalescing: raise the line only every Nth cause (the
        #: 8254x's interrupt throttling timers, simplified). 1 = immediate.
        self.interrupt_batch = 1
        self._coalesced = 0
        #: line-level mask (hypervisor-side, distinct from the device's
        #: IMS register): recovery masks the line while it tears down and
        #: reloads the driver, then unmasks to pick up pending causes.
        self.line_masked = False
        #: optional DMA protection (paper §4.5): when set, every DMA this
        #: device performs is checked against programmed windows.
        self.iommu: Optional[Iommu] = None
        #: trace ring (set by Machine.add_nic); None for bare devices.
        self.tracer = None
        #: multiqueue (RSS): N tx/rx queue pairs demuxed by flow hash.
        #: The descriptor rings stay shared (the driver binary programs
        #: one ring); queues model the per-flow steering and carry the
        #: per-queue counters the twin shards its state by.
        self.num_queues = 1
        self.queues: List[NicQueueStats] = [NicQueueStats(0)]
        #: queue the most recent rx / tx frame was steered to.
        self.last_rx_queue = 0
        self.last_tx_queue = 0

    def set_num_queues(self, n: int):
        """Resize to ``n`` tx/rx queue pairs (resets per-queue stats)."""
        if n < 1:
            raise ValueError(f"need at least one queue, got {n}")
        self.num_queues = n
        self.queues = [NicQueueStats(i) for i in range(n)]
        self.last_rx_queue = 0
        self.last_tx_queue = 0

    def rss_queue(self, frame: bytes) -> int:
        """RSS steering: which queue this frame's flow hashes to."""
        if self.num_queues == 1:
            return 0
        return flow_hash(frame) % self.num_queues

    def _trace(self, kind: str, **args):
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(kind, nic=self.name, **args)

    # -- MMIO interface ------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        value = self.regs.get(offset, 0)
        if offset == REG_ICR:
            # read-to-clear, as on real hardware
            self.regs[REG_ICR] = 0
        return value & ((1 << (size * 8)) - 1)

    def mmio_write(self, offset: int, size: int, value: int):
        if offset == REG_ICR:
            self.regs[REG_ICR] &= ~value
            return
        if offset == REG_IMS:
            self.regs[REG_IMS] |= value
            self._maybe_interrupt()
            return
        if offset == REG_IMC:
            self.regs[REG_IMS] &= ~value
            return
        if offset == REG_CTRL and value & CTRL_RST:
            self._reset()
            return
        self.regs[offset] = value
        if offset == REG_TDT:
            self._process_tx()

    def _reset(self):
        for off in (REG_RDBAL, REG_RDLEN, REG_RDH, REG_RDT,
                    REG_TDBAL, REG_TDLEN, REG_TDH, REG_TDT,
                    REG_ICR, REG_IMS, REG_RCTL, REG_TCTL):
            self.regs[off] = 0
        self.regs[REG_STATUS] = STATUS_LU

    # -- DMA (IOMMU-checked when protection is enabled) --------------------------

    def _dma_read_bytes(self, paddr: int, n: int) -> bytes:
        if self.iommu is not None:
            self.iommu.check(self.name, paddr, n, write=False)
        return self.phys.read_bytes(paddr, n)

    def _dma_write_bytes(self, paddr: int, payload: bytes):
        if self.iommu is not None:
            self.iommu.check(self.name, paddr, len(payload), write=True)
        self.phys.write_bytes(paddr, payload)

    # descriptor-ring accesses are DMA too, but the ring was mapped by
    # dma_alloc_coherent which programs a persistent window; device models
    # commonly treat ring traffic as covered by that window.
    def _dma_read_u32(self, paddr: int) -> int:
        if self.iommu is not None:
            self.iommu.check(self.name, paddr, 4, write=False)
        return self.phys.read_u32(paddr)

    def _dma_write_u32(self, paddr: int, value: int):
        if self.iommu is not None:
            self.iommu.check(self.name, paddr, 4, write=True)
        self.phys.write_u32(paddr, value)

    # -- descriptors -----------------------------------------------------------

    def _ring_entries(self, len_reg: int) -> int:
        return self.regs[len_reg] // DESC_SIZE

    def _desc_addr(self, base_reg: int, index: int) -> int:
        return self.regs[base_reg] + index * DESC_SIZE

    # -- transmit ------------------------------------------------------------------

    def _process_tx(self):
        if not self.regs[REG_TCTL] & TCTL_EN:
            return
        entries = self._ring_entries(REG_TDLEN)
        if entries == 0:
            return
        did_work = False
        while self.regs[REG_TDH] != self.regs[REG_TDT]:
            head = self.regs[REG_TDH]
            desc = self._desc_addr(REG_TDBAL, head)
            try:
                addr = self._dma_read_u32(desc + DESC_ADDR)
                length = self._dma_read_u32(desc + DESC_LEN)
                flags = self._dma_read_u32(desc + DESC_FLAGS)
                payload = (self._dma_read_bytes(addr, length)
                           if length else b"")
            except IommuFault:
                # the IOMMU blocked the transfer: drop this descriptor,
                # exactly what protects memory from a rogue bus address
                self.stats.dma_faults += 1
                self._trace(NIC_DMA_FAULT, ring="tx", index=head)
                self._tx_fragments = []
                self.regs[REG_TDH] = (head + 1) % entries
                did_work = True
                continue
            self._tx_fragments.append(payload)
            if flags & DESC_EOP:
                packet = b"".join(self._tx_fragments)
                self._tx_fragments = []
                self.stats.tx_packets += 1
                self.stats.tx_bytes += len(packet)
                q = self.rss_queue(packet)
                self.last_tx_queue = q
                qs = self.queues[q]
                qs.tx_packets += 1
                qs.tx_bytes += len(packet)
                self._trace(NIC_TX, len=len(packet))
                if self.on_transmit is not None:
                    self.on_transmit(self, packet)
            self._dma_write_u32(desc + DESC_FLAGS, flags | DESC_DD)
            self._trace(NIC_DESC, ring="tx", index=head)
            self.regs[REG_TDH] = (head + 1) % entries
            did_work = True
        if did_work:
            self.regs[REG_ICR] |= ICR_TXDW
            self._maybe_interrupt()

    # -- receive -----------------------------------------------------------------------

    def rx_slots_free(self) -> int:
        entries = self._ring_entries(REG_RDLEN)
        if entries == 0:
            return 0
        head, tail = self.regs[REG_RDH], self.regs[REG_RDT]
        return (tail - head) % entries

    def receive(self, packet: bytes) -> bool:
        """Deliver a frame from the wire into the rx ring. Returns False
        (and counts a drop) when the ring has no free descriptors."""
        # RSS steering happens in the MAC before ring availability is
        # known — the steered queue is visible even for dropped frames
        q = self.rss_queue(packet)
        self.last_rx_queue = q
        if not self.regs[REG_RCTL] & RCTL_EN or self.rx_slots_free() == 0:
            self.stats.rx_dropped_no_desc += 1
            return False
        entries = self._ring_entries(REG_RDLEN)
        head = self.regs[REG_RDH]
        desc = self._desc_addr(REG_RDBAL, head)
        try:
            addr = self._dma_read_u32(desc + DESC_ADDR)
            self._dma_write_bytes(addr, packet)
            self._dma_write_u32(desc + DESC_LEN, len(packet))
            self._dma_write_u32(desc + DESC_FLAGS, DESC_DD | DESC_EOP)
        except IommuFault:
            self.stats.dma_faults += 1
            self._trace(NIC_DMA_FAULT, ring="rx", index=head)
            return False
        self._trace(NIC_DESC, ring="rx", index=head)
        self.regs[REG_RDH] = (head + 1) % entries
        self.stats.rx_packets += 1
        self.stats.rx_bytes += len(packet)
        qs = self.queues[q]
        qs.rx_packets += 1
        qs.rx_bytes += len(packet)
        self._trace(NIC_RX, len=len(packet))
        self.regs[REG_ICR] |= ICR_RXT0
        self._maybe_interrupt()
        return True

    # -- interrupts -------------------------------------------------------------------------

    def _maybe_interrupt(self):
        if self.line_masked:
            return
        if not self.regs[REG_ICR] & self.regs[REG_IMS]:
            return
        self._coalesced += 1
        if self._coalesced < self.interrupt_batch:
            return
        self._coalesced = 0
        self.stats.interrupts += 1
        self._trace(NIC_IRQ, irq=self.irq, icr=self.regs[REG_ICR])
        self.intc.raise_irq(self.irq)

    def flush_interrupts(self):
        """Deliver any coalesced-but-unraised interrupt immediately."""
        if self.line_masked:
            return
        self._coalesced = 0
        if self.regs[REG_ICR] & self.regs[REG_IMS]:
            self.stats.interrupts += 1
            self._trace(NIC_IRQ, irq=self.irq, icr=self.regs[REG_ICR],
                        flushed=True)
            self.intc.raise_irq(self.irq)

    def mask_line(self):
        """Mask the interrupt line at the hypervisor (teardown window)."""
        self.line_masked = True

    def unmask_line(self):
        """Unmask the line and deliver any cause that accrued meanwhile."""
        self.line_masked = False
        self.flush_interrupts()


class Wire:
    """The network: sinks transmitted frames, injects received ones.

    Benchmarks use it as a traffic generator/sink rather than simulating
    the five client machines packet-by-packet."""

    def __init__(self):
        self.transmitted: List[bytes] = []
        self.keep_payloads = False
        self.tx_count = 0
        self.tx_bytes = 0

    def attach(self, nic: E1000Device):
        nic.on_transmit = self._on_transmit

    def _on_transmit(self, nic: E1000Device, packet: bytes):
        self.tx_count += 1
        self.tx_bytes += len(packet)
        if self.keep_payloads:
            self.transmitted.append(packet)

    def inject(self, nic: E1000Device, packet: bytes) -> bool:
        return nic.receive(packet)
