"""RTL8139-style NIC device model: the *other* classic programming model.

Where the e1000 uses descriptor rings and scatter/gather DMA, the 8139
uses four fixed transmit slots (the driver copies each packet into a
pre-mapped bounce buffer and writes its length to a TSD register) and a
single contiguous receive ring that the device fills with
``[status|len]``-headed records. Having a second, structurally different
driver+device pair demonstrates that the TwinDrivers pipeline is
driver-agnostic — the paper's "semi-automatic" claim.

Register map (u32, simplified from the RTL8139C datasheet):

========  =====================================================
0x10-0x1C TSD0..TSD3   transmit status/command (write len to send)
0x20-0x2C TSAD0..TSAD3 transmit buffer bus addresses
0x30      RBSTART      receive ring bus address
0x34      CR           command: TE, RE; read: BUFE
0x38      CAPR         driver's read offset into the rx ring
0x3C      CBR          device's write offset (read-only)
0x40      IMR          interrupt mask
0x44      ISR          interrupt status (write-1-to-clear)
========  =====================================================
"""

from __future__ import annotations

from typing import Callable, Optional

from ..obs.events import NIC_DMA_FAULT, NIC_IRQ, NIC_RX, NIC_TX
from .interrupts import InterruptController
from .iommu import Iommu, IommuFault
from .memory import PhysicalMemory
from .nic import NicQueueStats, NicStats, flow_hash

R_TSD0 = 0x10
R_TSAD0 = 0x20
R_RBSTART = 0x30
R_CR = 0x34
R_CAPR = 0x38
R_CBR = 0x3C
R_IMR = 0x40
R_ISR = 0x44

RTL_MMIO_SIZE = 0x100

CR_BUFE = 0x01         # rx buffer empty (read-only)
CR_TE = 0x04           # transmitter enable
CR_RE = 0x08           # receiver enable

TSD_TOK = 0x8000       # transmit OK (set by the device when sent)
TSD_LEN_MASK = 0x1FFF

ISR_TOK = 0x04
ISR_ROK = 0x01

#: rx ring geometry: 16 KiB, records 4-byte aligned, wrap when fewer than
#: 2 KiB remain (the driver mirrors this rule).
RX_RING_BYTES = 16 * 1024
RX_WRAP_THRESHOLD = RX_RING_BYTES - 2048
RX_RECORD_HEADER = 4
RX_STATUS_ROK = 0x0001

N_TX_SLOTS = 4
TX_SLOT_BYTES = 2048


class Rtl8139Device:
    """The device half; constructor-compatible with E1000Device so the
    Machine can host either model."""

    def __init__(self, phys: PhysicalMemory, intc: InterruptController,
                 irq: int, mmio_phys_base: int, mac: bytes,
                 name: str = "eth0"):
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self.phys = phys
        self.intc = intc
        self.irq = irq
        self.mac = bytes(mac)
        self.name = name
        self.regs = {R_RBSTART: 0, R_CR: 0, R_CAPR: 0, R_CBR: 0,
                     R_IMR: 0, R_ISR: 0}
        for i in range(N_TX_SLOTS):
            self.regs[R_TSD0 + 4 * i] = TSD_TOK      # slots start free
            self.regs[R_TSAD0 + 4 * i] = 0
        self.stats = NicStats()
        self.on_transmit: Optional[Callable] = None
        self.mmio = phys.add_mmio_region(mmio_phys_base, RTL_MMIO_SIZE, self)
        self.interrupt_batch = 1
        self._coalesced = 0
        self.iommu: Optional[Iommu] = None
        #: trace ring (set by Machine.add_nic); None for bare devices.
        self.tracer = None
        #: multiqueue (RSS) — same facade as E1000Device so the Machine
        #: and twin treat both models uniformly. The 8139 hardware never
        #: had RSS; queues model the steering layer above the one ring.
        self.num_queues = 1
        self.queues = [NicQueueStats(0)]
        self.last_rx_queue = 0
        self.last_tx_queue = 0

    def set_num_queues(self, n: int):
        """Resize to ``n`` queue pairs (resets per-queue stats)."""
        if n < 1:
            raise ValueError(f"need at least one queue, got {n}")
        self.num_queues = n
        self.queues = [NicQueueStats(i) for i in range(n)]
        self.last_rx_queue = 0
        self.last_tx_queue = 0

    def rss_queue(self, frame: bytes) -> int:
        if self.num_queues == 1:
            return 0
        return flow_hash(frame) % self.num_queues

    def _trace(self, kind: str, **args):
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.emit(kind, nic=self.name, **args)

    # -- MMIO ------------------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == R_CR:
            value = self.regs[R_CR] & ~CR_BUFE
            if self.regs[R_CBR] == self.regs[R_CAPR]:
                value |= CR_BUFE
            return value
        return self.regs.get(offset, 0) & ((1 << (size * 8)) - 1)

    def mmio_write(self, offset: int, size: int, value: int):
        if offset == R_ISR:
            self.regs[R_ISR] &= ~value            # write-1-to-clear
            return
        if R_TSD0 <= offset < R_TSD0 + 4 * N_TX_SLOTS:
            self._transmit_slot((offset - R_TSD0) // 4, value)
            return
        if offset == R_CBR:
            return                                # read-only
        self.regs[offset] = value

    # -- transmit ------------------------------------------------------------------

    def _transmit_slot(self, slot: int, tsd_value: int):
        if not self.regs[R_CR] & CR_TE:
            return
        length = tsd_value & TSD_LEN_MASK
        if length == 0:
            return
        bus = self.regs[R_TSAD0 + 4 * slot]
        try:
            if self.iommu is not None:
                self.iommu.check(self.name, bus, length, write=False)
            payload = self.phys.read_bytes(bus, length)
        except IommuFault:
            self.stats.dma_faults += 1
            self._trace(NIC_DMA_FAULT, ring="tx", index=slot)
            self.regs[R_TSD0 + 4 * slot] = TSD_TOK
            return
        self.stats.tx_packets += 1
        self.stats.tx_bytes += length
        q = self.rss_queue(payload)
        self.last_tx_queue = q
        self.queues[q].tx_packets += 1
        self.queues[q].tx_bytes += length
        self._trace(NIC_TX, len=length)
        if self.on_transmit is not None:
            self.on_transmit(self, payload)
        self.regs[R_TSD0 + 4 * slot] = length | TSD_TOK
        self.regs[R_ISR] |= ISR_TOK
        self._maybe_interrupt()

    # -- receive -----------------------------------------------------------------------

    def _rx_free_bytes(self) -> int:
        # Both pointers live in [0, RX_WRAP_THRESHOLD) — they snap to 0 at
        # the threshold; the slack above it is the overflow area for a
        # record that *starts* just below it. Free space is the circular
        # distance from the write pointer back to the read pointer.
        cbr, capr = self.regs[R_CBR], self.regs[R_CAPR]
        used = (cbr - capr) % RX_WRAP_THRESHOLD
        return RX_WRAP_THRESHOLD - used

    def receive(self, packet: bytes) -> bool:
        q = self.rss_queue(packet)
        self.last_rx_queue = q
        if not self.regs[R_CR] & CR_RE or self.regs[R_RBSTART] == 0:
            self.stats.rx_dropped_no_desc += 1
            return False
        record = RX_RECORD_HEADER + len(packet)
        record_aligned = (record + 3) & ~3
        if self._rx_free_bytes() <= record_aligned + 4:
            self.stats.rx_dropped_no_desc += 1
            return False
        cbr = self.regs[R_CBR]
        base = self.regs[R_RBSTART]
        header = RX_STATUS_ROK | (len(packet) << 16)
        try:
            if self.iommu is not None:
                self.iommu.check(self.name, base + cbr, record_aligned,
                                 write=True)
            self.phys.write_u32(base + cbr, header)
            self.phys.write_bytes(base + cbr + RX_RECORD_HEADER, packet)
        except IommuFault:
            self.stats.dma_faults += 1
            self._trace(NIC_DMA_FAULT, ring="rx", index=cbr)
            return False
        self._trace(NIC_RX, len=len(packet))
        cbr += record_aligned
        if cbr >= RX_WRAP_THRESHOLD:
            cbr = 0
        self.regs[R_CBR] = cbr
        self.stats.rx_packets += 1
        self.stats.rx_bytes += len(packet)
        self.queues[q].rx_packets += 1
        self.queues[q].rx_bytes += len(packet)
        self.regs[R_ISR] |= ISR_ROK
        self._maybe_interrupt()
        return True

    def rx_slots_free(self) -> int:
        """Approximate parity with the e1000 facade: MTU records left."""
        return self._rx_free_bytes() // (1518 + RX_RECORD_HEADER)

    # -- interrupts ------------------------------------------------------------------------

    def _maybe_interrupt(self):
        if not self.regs[R_ISR] & self.regs[R_IMR]:
            return
        self._coalesced += 1
        if self._coalesced < self.interrupt_batch:
            return
        self._coalesced = 0
        self.stats.interrupts += 1
        self._trace(NIC_IRQ, irq=self.irq, isr=self.regs[R_ISR])
        self.intc.raise_irq(self.irq)

    def flush_interrupts(self):
        self._coalesced = 0
        if self.regs[R_ISR] & self.regs[R_IMR]:
            self.stats.interrupts += 1
            self.intc.raise_irq(self.irq)
