"""Simulated hardware: memory, paging, CPU interpreter, interrupts, NICs."""

from .cpu import (
    CodeRegistry,
    Cpu,
    CpuBudgetExceeded,
    ExecutionFault,
    InstructionCosts,
    LoadedProgram,
    NativeRegistry,
    NativeRoutine,
    NATIVE_BASE,
    SENTINEL_RETURN,
)
from .interrupts import InterruptController
from .iommu import DmaWindow, Iommu, IommuFault
from .machine import Machine, NIC_IRQ_BASE, NIC_MMIO_PHYS_BASE, NIC_MMIO_STRIDE
from .memory import (
    BusError,
    MMIORegion,
    OFFSET_MASK,
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    PhysicalMemory,
)
from .nic import E1000Device, NicStats, Wire
from .paging import (
    AddressSpace,
    HYPERVISOR_BASE,
    PageFault,
    PageTable,
    ProtectionFault,
)

__all__ = [
    "AddressSpace",
    "BusError",
    "CodeRegistry",
    "Cpu",
    "CpuBudgetExceeded",
    "E1000Device",
    "ExecutionFault",
    "HYPERVISOR_BASE",
    "InstructionCosts",
    "DmaWindow",
    "Iommu",
    "IommuFault",
    "InterruptController",
    "LoadedProgram",
    "MMIORegion",
    "Machine",
    "NATIVE_BASE",
    "NIC_IRQ_BASE",
    "NIC_MMIO_PHYS_BASE",
    "NIC_MMIO_STRIDE",
    "NativeRegistry",
    "NativeRoutine",
    "NicStats",
    "OFFSET_MASK",
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageFault",
    "PageTable",
    "PhysicalMemory",
    "ProtectionFault",
    "SENTINEL_RETURN",
    "Wire",
]
