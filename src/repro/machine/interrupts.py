"""Interrupt controller: device lines into the hypervisor.

Devices assert an IRQ line; the controller records it and, if a dispatcher
is installed (the hypervisor registers one), delivers synchronously. The
hypervisor decides routing — native kernel handler, dom0 virtual IRQ, or
the TwinDrivers hypervisor-driver softirq path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class InterruptController:
    """Device IRQ lines with masking and a pluggable dispatcher."""

    def __init__(self):
        self.pending: List[int] = []
        self.masked: Dict[int, bool] = {}
        self.dispatcher: Optional[Callable[[int], None]] = None
        self.raised_count: Dict[int, int] = {}
        self._in_dispatch = False

    def set_dispatcher(self, dispatcher: Callable[[int], None]):
        self.dispatcher = dispatcher

    def mask(self, irq: int):
        self.masked[irq] = True

    def unmask(self, irq: int):
        self.masked[irq] = False
        self._drain()

    def raise_irq(self, irq: int):
        self.raised_count[irq] = self.raised_count.get(irq, 0) + 1
        self.pending.append(irq)
        self._drain()

    def _drain(self):
        # Avoid re-entrant dispatch when a handler's actions raise further
        # interrupts (e.g. the driver refilling the rx ring).
        if self.dispatcher is None or self._in_dispatch:
            return
        self._in_dispatch = True
        try:
            while self.pending:
                irq = self.pending[0]
                if self.masked.get(irq):
                    break
                self.pending.pop(0)
                self.dispatcher(irq)
        finally:
            self._in_dispatch = False
