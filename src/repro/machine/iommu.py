"""IOMMU: DMA protection (paper §4.5, "a complete solution ... requires
the use of an IOMMU that can be programmed to restrict the memory regions
accessible from the network card").

The paper leaves this future work — the dom0 driver model shares the same
exposure. We implement it as an opt-in extension: when an IOMMU is
attached to a device, every DMA the device performs is checked against
the windows programmed for it. The hypervisor's DMA-map support routines
program windows on ``dma_map_*`` and tear them down on ``dma_unmap_*``,
so a buggy/malicious driver that writes a wild bus address into a
descriptor gets an IOMMU fault instead of silent memory corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


class IommuFault(Exception):
    """A device DMA fell outside every programmed window."""

    def __init__(self, device: str, paddr: int, write: bool):
        kind = "write" if write else "read"
        super().__init__(
            f"IOMMU fault: device {device} DMA {kind} at {paddr:#010x} "
            "outside any mapped window"
        )
        self.paddr = paddr
        self.write = write


@dataclass(frozen=True)
class DmaWindow:
    """One contiguous physical range a device may DMA to/from."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length

    def covers(self, paddr: int, length: int) -> bool:
        return self.start <= paddr and paddr + length <= self.end


class Iommu:
    """Per-device DMA windows with fault accounting."""

    def __init__(self):
        self._windows: Dict[str, List[DmaWindow]] = {}
        self.faults = 0
        self.checks = 0

    # -- programming -----------------------------------------------------------

    def map_window(self, device: str, paddr: int, length: int) -> DmaWindow:
        window = DmaWindow(start=paddr, length=length)
        self._windows.setdefault(device, []).append(window)
        return window

    def unmap_window(self, device: str, paddr: int, length: int) -> bool:
        windows = self._windows.get(device, [])
        for window in windows:
            if window.start == paddr and window.length == length:
                windows.remove(window)
                return True
        return False

    def windows_of(self, device: str) -> Tuple[DmaWindow, ...]:
        return tuple(self._windows.get(device, ()))

    def reset_device(self, device: str):
        self._windows.pop(device, None)

    # -- enforcement ---------------------------------------------------------------

    def check(self, device: str, paddr: int, length: int, write: bool):
        """Raise :class:`IommuFault` unless the access falls inside one
        programmed window."""
        self.checks += 1
        for key in (device, "*"):
            for window in self._windows.get(key, ()):
                if window.covers(paddr, length):
                    return
        self.faults += 1
        raise IommuFault(device, paddr, write)
