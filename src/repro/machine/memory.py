"""Physical memory: frames, a frame allocator, and an MMIO bus.

All state the simulated system touches — driver data structures, sk_buffs,
NIC descriptor rings, page tables' targets, stacks — lives in instances of
:class:`PhysicalMemory`. Accessing an unallocated frame raises
:class:`BusError`, which catches stray DMA addresses and loader bugs.

Device registers are claimed as MMIO regions: physical accesses that fall
inside a region are dispatched to the owning device model instead of RAM,
exactly how the driver's register reads/writes reach our e1000 model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = ~(PAGE_SIZE - 1) & 0xFFFFFFFF
OFFSET_MASK = PAGE_SIZE - 1


class BusError(Exception):
    """Physical access to memory that is neither RAM nor MMIO."""

    def __init__(self, paddr: int, why: str = "unallocated frame"):
        super().__init__(f"bus error at physical {paddr:#010x}: {why}")
        self.paddr = paddr


class MMIORegion:
    """A physical address range owned by a device model."""

    def __init__(self, start: int, size: int, device):
        self.start = start
        self.end = start + size
        self.device = device

    def contains(self, paddr: int) -> bool:
        return self.start <= paddr < self.end


class PhysicalMemory:
    """Frame-granular RAM plus MMIO dispatch."""

    def __init__(self, frames: int = 65536):
        self.max_frames = frames
        self._frames: Dict[int, bytearray] = {}
        self._next_frame = 1  # frame 0 reserved: catches null-ish DMA
        self._mmio: List[MMIORegion] = []
        #: page -> tuple of regions intersecting that page (almost always
        #: empty), filled lazily; regions are only ever added, so the
        #: cache is simply cleared on registration.
        self._mmio_pages: Dict[int, Tuple[MMIORegion, ...]] = {}

    # -- allocation --------------------------------------------------------------

    def allocate_frame(self) -> int:
        """Allocate one zeroed frame, returning its frame number."""
        if self._next_frame >= self.max_frames:
            raise MemoryError("physical memory exhausted")
        frame = self._next_frame
        self._next_frame += 1
        self._frames[frame] = bytearray(PAGE_SIZE)
        return frame

    def allocate_frames(self, n: int) -> List[int]:
        return [self.allocate_frame() for _ in range(n)]

    def frame_allocated(self, frame: int) -> bool:
        return frame in self._frames

    @property
    def allocated_frames(self) -> int:
        return len(self._frames)

    # -- MMIO --------------------------------------------------------------------

    def add_mmio_region(self, start: int, size: int, device) -> MMIORegion:
        region = MMIORegion(start, size, device)
        for other in self._mmio:
            if region.start < other.end and other.start < region.end:
                raise ValueError("overlapping MMIO regions")
        self._mmio.append(region)
        self._mmio_pages.clear()
        return region

    def mmio_region_at(self, paddr: int) -> Optional[MMIORegion]:
        page = paddr >> PAGE_SHIFT
        regions = self._mmio_pages.get(page)
        if regions is None:
            base = page << PAGE_SHIFT
            regions = tuple(r for r in self._mmio
                            if r.start < base + PAGE_SIZE and base < r.end)
            self._mmio_pages[page] = regions
        for region in regions:
            if region.contains(paddr):
                return region
        return None

    # -- access ------------------------------------------------------------------

    def _frame_data(self, paddr: int) -> Tuple[bytearray, int]:
        frame = paddr >> PAGE_SHIFT
        data = self._frames.get(frame)
        if data is None:
            raise BusError(paddr)
        return data, paddr & OFFSET_MASK

    def read(self, paddr: int, size: int) -> int:
        """Little-endian read of 1/2/4 bytes, MMIO-aware."""
        region = self.mmio_region_at(paddr)
        if region is not None:
            return region.device.mmio_read(paddr - region.start, size)
        return int.from_bytes(self.read_bytes(paddr, size), "little")

    def write(self, paddr: int, size: int, value: int):
        region = self.mmio_region_at(paddr)
        if region is not None:
            region.device.mmio_write(paddr - region.start, size,
                                     value & ((1 << (size * 8)) - 1))
            return
        self.write_bytes(paddr, (value & ((1 << (size * 8)) - 1))
                         .to_bytes(size, "little"))

    def read_bytes(self, paddr: int, n: int) -> bytes:
        out = bytearray()
        while n > 0:
            data, off = self._frame_data(paddr)
            chunk = min(n, PAGE_SIZE - off)
            out += data[off: off + chunk]
            paddr += chunk
            n -= chunk
        return bytes(out)

    def write_bytes(self, paddr: int, payload: bytes):
        pos = 0
        n = len(payload)
        while pos < n:
            data, off = self._frame_data(paddr)
            chunk = min(n - pos, PAGE_SIZE - off)
            data[off: off + chunk] = payload[pos: pos + chunk]
            paddr += chunk
            pos += chunk

    def read_u32(self, paddr: int) -> int:
        return self.read(paddr, 4)

    def write_u32(self, paddr: int, value: int):
        self.write(paddr, 4, value)
