"""Virtual memory: page tables and address spaces.

Each domain gets an :class:`AddressSpace`. Xen-style, the hypervisor's own
mappings live in a :class:`PageTable` that is *shared* into every address
space above ``HYPERVISOR_BASE`` — that is exactly the property TwinDrivers
exploits: hypervisor code, its stack, the stlb table and the SVM-created
mappings of dom0 pages are visible from any guest context, so the
hypervisor driver instance runs without an address-space switch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .memory import OFFSET_MASK, PAGE_SHIFT, PAGE_SIZE, PhysicalMemory

#: Virtual addresses at or above this are hypervisor territory (mirrors
#: Xen living in the top of every address space).
HYPERVISOR_BASE = 0xF0000000


class PageFault(Exception):
    """Translation of an unmapped virtual address."""

    def __init__(self, vaddr: int, write: bool, space: str):
        kind = "write" if write else "read"
        super().__init__(
            f"page fault: {kind} of {vaddr:#010x} in address space {space}"
        )
        self.vaddr = vaddr
        self.write = write
        self.space = space


class ProtectionFault(Exception):
    """Write to a read-only mapping."""

    def __init__(self, vaddr: int, space: str):
        super().__init__(
            f"protection fault: write to read-only {vaddr:#010x} in {space}"
        )
        self.vaddr = vaddr


class PageTable:
    """vpage -> (frame, writable). Aliasing is allowed: several virtual
    pages may map the same frame (SVM relies on this)."""

    def __init__(self):
        self.entries: Dict[int, Tuple[int, bool]] = {}

    def map(self, vpage: int, frame: int, writable: bool = True):
        self.entries[vpage] = (frame, writable)

    def unmap(self, vpage: int):
        self.entries.pop(vpage, None)

    def lookup(self, vpage: int) -> Optional[Tuple[int, bool]]:
        return self.entries.get(vpage)

    def __len__(self):
        return len(self.entries)


class AddressSpace:
    """A domain's virtual address space, with the hypervisor region shared.

    ``hypervisor_table`` (if given) services translations at or above
    ``HYPERVISOR_BASE``; per-domain mappings may not be created there.
    """

    def __init__(self, name: str, phys: PhysicalMemory,
                 hypervisor_table: Optional[PageTable] = None):
        self.name = name
        self.phys = phys
        self.table = PageTable()
        self.hypervisor_table = hypervisor_table

    # -- mapping -------------------------------------------------------------

    def map_page(self, vaddr: int, frame: int, writable: bool = True):
        if vaddr & OFFSET_MASK:
            raise ValueError("vaddr must be page aligned")
        if vaddr >= HYPERVISOR_BASE and self.hypervisor_table is not None:
            raise ValueError(
                "domain mappings may not shadow the hypervisor region"
            )
        self.table.map(vaddr >> PAGE_SHIFT, frame, writable)

    def unmap_page(self, vaddr: int):
        self.table.unmap(vaddr >> PAGE_SHIFT)

    def map_new_pages(self, vaddr: int, n: int, writable: bool = True):
        """Allocate ``n`` fresh frames and map them at ``vaddr``."""
        for i in range(n):
            frame = self.phys.allocate_frame()
            self.map_page(vaddr + i * PAGE_SIZE, frame, writable)

    def is_mapped(self, vaddr: int) -> bool:
        try:
            self.translate(vaddr)
            return True
        except PageFault:
            return False

    def pages_mapped(self) -> Iterable[int]:
        return (vpage << PAGE_SHIFT for vpage in self.table.entries)

    # -- translation -----------------------------------------------------------

    def translate(self, vaddr: int, write: bool = False) -> int:
        vaddr &= 0xFFFFFFFF
        vpage = vaddr >> PAGE_SHIFT
        entry = None
        if vaddr >= HYPERVISOR_BASE and self.hypervisor_table is not None:
            entry = self.hypervisor_table.lookup(vpage)
        if entry is None:
            entry = self.table.lookup(vpage)
        if entry is None:
            raise PageFault(vaddr, write, self.name)
        frame, writable = entry
        if write and not writable:
            raise ProtectionFault(vaddr, self.name)
        return (frame << PAGE_SHIFT) | (vaddr & OFFSET_MASK)

    def frame_of(self, vaddr: int) -> int:
        return self.translate(vaddr) >> PAGE_SHIFT

    # -- convenience memory access (Python-side kernel code) ---------------------

    def read(self, vaddr: int, size: int, write_check: bool = False) -> int:
        return self._access(vaddr, size, None)

    def write(self, vaddr: int, size: int, value: int):
        self._access(vaddr, size, value)

    def _access(self, vaddr: int, size: int, value: Optional[int]):
        # Accesses may straddle a page boundary; split on page lines.
        if (vaddr & OFFSET_MASK) + size <= PAGE_SIZE:
            paddr = self.translate(vaddr, write=value is not None)
            if value is None:
                return self.phys.read(paddr, size)
            self.phys.write(paddr, size, value)
            return None
        if value is None:
            raw = self.read_bytes(vaddr, size)
            return int.from_bytes(raw, "little")
        self.write_bytes(vaddr, (value & ((1 << (size * 8)) - 1))
                         .to_bytes(size, "little"))
        return None

    def read_u32(self, vaddr: int) -> int:
        return self.read(vaddr, 4)

    def write_u32(self, vaddr: int, value: int):
        self.write(vaddr, 4, value)

    def read_bytes(self, vaddr: int, n: int) -> bytes:
        out = bytearray()
        while n > 0:
            chunk = min(n, PAGE_SIZE - (vaddr & OFFSET_MASK))
            paddr = self.translate(vaddr)
            out += self.phys.read_bytes(paddr, chunk)
            vaddr += chunk
            n -= chunk
        return bytes(out)

    def write_bytes(self, vaddr: int, payload: bytes):
        pos = 0
        while pos < len(payload):
            chunk = min(len(payload) - pos,
                        PAGE_SIZE - (vaddr & OFFSET_MASK))
            paddr = self.translate(vaddr, write=True)
            self.phys.write_bytes(paddr, payload[pos: pos + chunk])
            vaddr += chunk
            pos += chunk
