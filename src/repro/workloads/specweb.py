"""SPECweb99-like static file-set (paper §6.3).

The web-server workload serves files "generated from the file size
distribution specified in the static content part of SPECweb99", from a
single directory, fully cached in memory. SPECweb99's static mix has four
size classes with fixed access weights and nine file sizes per class;
within a class, access skews toward the middle sizes (we use the
benchmark's published within-class weights, approximated by a triangular
profile).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

#: (class base size in bytes, access weight). Mean works out to ~14.7 KB.
CLASS_BASES = (102, 1024, 10240, 102400)
CLASS_WEIGHTS = (0.35, 0.50, 0.14, 0.01)
#: nine files per class: base * multiplier
FILE_MULTIPLIERS = (1, 2, 3, 4, 5, 6, 7, 8, 9)
#: within-class access profile (SPECweb99 favours mid-sized files).
WITHIN_CLASS_WEIGHTS = (1, 2, 3, 4, 5, 4, 3, 2, 1)


@dataclass(frozen=True)
class WebFile:
    """One static file of the SPECweb99-like set."""

    name: str
    size: int


class FileSet:
    """The single-directory static file set."""

    def __init__(self):
        self.files: List[WebFile] = []
        self._weights: List[float] = []
        total_within = sum(WITHIN_CLASS_WEIGHTS)
        for cls, (base, cls_weight) in enumerate(
                zip(CLASS_BASES, CLASS_WEIGHTS)):
            for i, mult in enumerate(FILE_MULTIPLIERS):
                self.files.append(
                    WebFile(name=f"class{cls}_{i}", size=base * mult)
                )
                self._weights.append(
                    cls_weight * WITHIN_CLASS_WEIGHTS[i] / total_within
                )

    @property
    def mean_size(self) -> float:
        return sum(f.size * w for f, w in zip(self.files, self._weights))

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self.files)

    def sample(self, rng: random.Random) -> WebFile:
        return rng.choices(self.files, weights=self._weights, k=1)[0]

    def sample_sizes(self, n: int, seed: int = 99) -> Sequence[int]:
        rng = random.Random(seed)
        return [self.sample(rng).size for _ in range(n)]
