"""The netperf-style TCP streaming microbenchmark (figures 5, 6, 10).

The paper streams TCP over five gigabit NICs and reports aggregate
throughput plus CPU utilisation. We measure steady-state cycles/packet by
actually pushing MTU frames through the full simulated stack, convert the
single-NIC profile figure to a 5-NIC streaming figure with the per-config
batching-efficiency factor (see ``MULTI_NIC_EFFICIENCY`` in
:mod:`repro.xen.costs`), and apply the line-rate cap — exactly the
arithmetic of :func:`repro.metrics.throughput.throughput_from_cycles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..configs import UPCALL_SWEEP_ORDER, build
from ..metrics.throughput import (
    DEFAULT_NICS,
    ThroughputResult,
    improvement_factor,
    throughput_from_cycles,
)
from ..xen.costs import CostModel, MULTI_NIC_EFFICIENCY
from .profile import DEFAULT_PACKETS, DEFAULT_WARMUP, profile_direction

ALL_CONFIGS = ("domU", "domU-twin", "dom0", "linux")


def run_netperf(name: str, direction: str,
                packets: int = DEFAULT_PACKETS,
                warmup: int = DEFAULT_WARMUP,
                nics: int = DEFAULT_NICS,
                costs: Optional[CostModel] = None,
                **build_kwargs) -> ThroughputResult:
    """One bar of figure 5 (tx) or figure 6 (rx)."""
    system = build(name, n_nics=nics, costs=costs, **build_kwargs)
    prof = profile_direction(system, direction, packets=packets,
                             warmup=warmup)
    efficiency = MULTI_NIC_EFFICIENCY.get((name, direction), 1.0)
    result = throughput_from_cycles(
        config=name,
        direction=direction,
        cycles_per_packet=prof.total_per_packet * efficiency,
        nics=nics,
    )
    result.counters = dict(prof.counters)
    return result


def figure5_transmit(packets: int = DEFAULT_PACKETS
                     ) -> List[ThroughputResult]:
    """Transmit throughput for domU / domU-twin / dom0 / Linux."""
    return [run_netperf(name, "tx", packets=packets)
            for name in ALL_CONFIGS]


def figure6_receive(packets: int = DEFAULT_PACKETS
                    ) -> List[ThroughputResult]:
    """Receive throughput for domU / domU-twin / dom0 / Linux."""
    return [run_netperf(name, "rx", packets=packets)
            for name in ALL_CONFIGS]


@dataclass
class UpcallSweepPoint:
    """One bar of figure 10: throughput at k upcalled routines."""

    n_upcalls: int
    throughput_mbps: float
    upcalls_per_packet: float
    cycles_per_packet: float


def figure10_upcall_sweep(max_upcalls: int = len(UPCALL_SWEEP_ORDER),
                          packets: int = 256,
                          costs: Optional[CostModel] = None
                          ) -> List[UpcallSweepPoint]:
    """Transmit throughput as fast-path routines are progressively served
    by upcalls instead of hypervisor implementations (figure 10)."""
    points = []
    for k in range(max_upcalls + 1):
        system = build("domU-twin", n_nics=DEFAULT_NICS, n_upcalls=k,
                       costs=costs)
        prof = profile_direction(system, "tx", packets=packets,
                                 warmup=DEFAULT_WARMUP)
        upcalls = system.twin.upcalls.upcalls
        efficiency = MULTI_NIC_EFFICIENCY[("domU-twin", "tx")]
        result = throughput_from_cycles(
            config=f"domU-twin+{k}upcalls",
            direction="tx",
            cycles_per_packet=prof.total_per_packet * efficiency,
            nics=DEFAULT_NICS,
        )
        points.append(UpcallSweepPoint(
            n_upcalls=k,
            throughput_mbps=result.throughput_mbps,
            upcalls_per_packet=upcalls / max(1, prof.packets + DEFAULT_WARMUP),
            cycles_per_packet=prof.total_per_packet,
        ))
    return points


def summarize(results: List[ThroughputResult]) -> Dict[str, float]:
    """The paper's headline factors, computed from a result set."""
    by_name = {r.config: r for r in results}
    out: Dict[str, float] = {}
    if "domU-twin" in by_name and "domU" in by_name:
        out["twin_vs_domU_cpu_scaled"] = improvement_factor(
            by_name["domU-twin"], by_name["domU"]
        )
    if "domU-twin" in by_name and "linux" in by_name:
        out["twin_fraction_of_linux_cpu_scaled"] = (
            by_name["domU-twin"].cpu_scaled_mbps
            / by_name["linux"].cpu_scaled_mbps
        )
    if "domU-twin" in by_name and "dom0" in by_name:
        out["twin_fraction_of_dom0"] = (
            by_name["domU-twin"].throughput_mbps
            / by_name["dom0"].throughput_mbps
        )
    return out
