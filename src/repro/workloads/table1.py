"""Table 1 reproduction: discover the fast-path support-routine set.

The paper's Table 1 lists the ten Linux support routines called during
*error-free* execution of the e1000 transmit and receive paths, against
97 routines used by the driver overall. We reproduce it dynamically: run
steady-state transmit and receive through the TwinDrivers configuration
and record which hypervisor support routines (or upcall stubs) the driver
binary actually invoked; then exercise the management surface (probe,
open, stats, ethtool, mtu, watchdog, close) through the VM instance and
count the full support surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..configs import build
from ..osmodel.support import FAST_PATH_ROUTINES


@dataclass
class Table1Result:
    """The dynamically traced fast-path set and the full support surface."""

    fast_path: Set[str] = field(default_factory=set)
    fast_path_counts: Dict[str, int] = field(default_factory=dict)
    all_routines: Set[str] = field(default_factory=set)
    driver_imports: Set[str] = field(default_factory=set)

    @property
    def matches_paper(self) -> bool:
        return self.fast_path == set(FAST_PATH_ROUTINES)

    def format(self) -> str:
        lines = [
            "Table 1: support routines on the error-free tx/rx fast path",
            "-" * 60,
        ]
        for name in sorted(self.fast_path):
            lines.append(f"  {name:28s} {self.fast_path_counts.get(name, 0):8d} calls")
        lines.append("-" * 60)
        lines.append(f"fast-path routines : {len(self.fast_path)} "
                     f"(paper: {len(FAST_PATH_ROUTINES)})")
        lines.append(f"routines used by the driver overall: "
                     f"{len(self.all_routines)} (paper: 97 for the real e1000)")
        lines.append(f"matches the paper's set: {self.matches_paper}")
        return "\n".join(lines)


def run_table1(packets: int = 256) -> Table1Result:
    system = build("domU-twin", n_nics=1)
    twin = system.twin
    dom0 = system.dom0_kernel

    # -- steady state first (ring filled, stlb warm), then trace ------------
    system.transmit_packets(64)
    system.receive_packets(64)
    before = dict(twin.hyp_support.calls)
    system.transmit_packets(packets)
    system.receive_packets(packets)
    after = dict(twin.hyp_support.calls)

    counts = {
        name: after.get(name, 0) - before.get(name, 0)
        for name in after
        if after.get(name, 0) > before.get(name, 0)
    }
    # upcall stubs count too (when some routines are demoted — not here,
    # but keep the accounting honest)
    for name, n in twin.upcalls.calls_by_name.items():
        counts[name] = counts.get(name, 0) + n

    result = Table1Result(
        fast_path=set(counts),
        fast_path_counts=counts,
        driver_imports=set(twin.program.imports()),
    )

    # -- full management surface through the VM instance ---------------------
    ndev_addr = twin.netdev_order[0]
    mac_buf = dom0.heap.alloc(8)
    dom0.memory_view().write_bytes(mac_buf, b"\x02\x00\x00\x00\x00\x07")
    twin.vm_call("e1000_get_stats", [ndev_addr])
    twin.vm_call("e1000_set_mac", [ndev_addr, mac_buf])
    twin.vm_call("e1000_change_mtu", [ndev_addr, 1400])
    twin.vm_call("e1000_change_mtu", [ndev_addr, 1500])
    twin.vm_call("e1000_ethtool_get_link", [ndev_addr])
    twin.run_vm_maintenance()
    twin.vm_call("e1000_close", [ndev_addr])

    result.all_routines = (
        set(dom0.support_call_counts) | set(counts)
    )
    return result
