"""Per-packet CPU profiles (figures 7 and 8).

Runs a warmup phase (fills the stlb, rx rings, caches), then measures the
cycle delta per category over a steady-state batch of packets — the
simulator's equivalent of the paper's single-NIC oprofile run.

The measurement itself is a thin view over the machine-wide metrics
registry: the category breakdown is the delta of the ``cycles.*``
counters and every other counter that moved (stlb misses, support calls,
upcalls, NIC stats) lands in :attr:`PacketProfile.counters`.

With ``profiled=True`` the measured batch also runs under the
cycle-attribution profiler (:mod:`repro.obs.prof`): the per-category
figure numbers are then taken **from the profiler's sample sums**, which
are verified bit-equal to the registry counter movement before being
used — the figures are regenerated from attribution data, not from the
hand-maintained account, and any disagreement raises.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..configs import SystemUnderTest, build
from ..metrics.cycles import CATEGORIES, CYCLES_PREFIX, PacketProfile
from ..xen.costs import CostModel

DEFAULT_WARMUP = 128
DEFAULT_PACKETS = 512


class AttributionMismatch(RuntimeError):
    """The profiler's per-category sums disagree with the ``cycles.*``
    counter movement — by construction this should be impossible, so it
    indicates a charge that bypassed ``CycleAccount.charge``."""


def profile_direction(system: SystemUnderTest, direction: str,
                      packets: int = DEFAULT_PACKETS,
                      warmup: int = DEFAULT_WARMUP,
                      profiled: bool = False) -> PacketProfile:
    if direction not in ("tx", "rx"):
        raise ValueError("direction must be 'tx' or 'rx'")
    op = (system.transmit_packets if direction == "tx"
          else system.receive_packets)
    done = op(warmup)
    if done < warmup:
        raise RuntimeError(
            f"{system.name}: only {done}/{warmup} warmup packets flowed"
        )
    registry = system.machine.obs.registry
    profiler = system.machine.obs.profiler
    if profiled:
        profiler.reset()
        profiler.enable()
    snap = registry.counters_snapshot()
    done = op(packets)
    moved = registry.delta_since(snap)
    attribution: Optional[Dict] = None
    if profiled:
        profiler.disable()
    if done < packets:
        raise RuntimeError(
            f"{system.name}: only {done}/{packets} packets flowed"
        )
    plen = len(CYCLES_PREFIX)
    delta = {name[plen:]: value for name, value in moved.items()
             if name.startswith(CYCLES_PREFIX)}
    counters = {name: value for name, value in moved.items()
                if value and not name.startswith(CYCLES_PREFIX)}
    if profiled:
        attribution = profiler.snapshot(meta={
            "config": system.name,
            "direction": direction,
            "packets": packets,
            "warmup": warmup,
        })
        prof_cycles = attribution["categories"]
        for category in CATEGORIES:
            got = prof_cycles.get(category, 0)
            want = delta.get(category, 0)
            if got != want:
                raise AttributionMismatch(
                    f"{system.name}/{direction}: profiler attributed "
                    f"{got} cycles to {category!r} but the account moved "
                    f"{want} — a charge bypassed CycleAccount.charge"
                )
        # the figure numbers now come from the attribution data itself
        delta = {c: prof_cycles.get(c, 0) for c in CATEGORIES}
    return PacketProfile(
        config=system.name,
        direction=direction,
        packets=packets,
        cycles=delta,
        counters=counters,
        attribution=attribution,
    )


def profile_config(name: str, direction: str,
                   packets: int = DEFAULT_PACKETS,
                   warmup: int = DEFAULT_WARMUP,
                   n_nics: int = 1,
                   costs: Optional[CostModel] = None,
                   profiled: bool = False,
                   **build_kwargs) -> PacketProfile:
    """Build a fresh system (single NIC, like the paper's profile run) and
    measure one direction."""
    system = build(name, n_nics=n_nics, costs=costs, **build_kwargs)
    return profile_direction(system, direction, packets=packets,
                             warmup=warmup, profiled=profiled)


def figure7_profiles(packets: int = DEFAULT_PACKETS,
                     profiled: bool = False) -> List[PacketProfile]:
    """Transmit cycles/packet for all four configurations (figure 7)."""
    return [profile_config(name, "tx", packets=packets, profiled=profiled)
            for name in ("linux", "dom0", "domU-twin", "domU")]


def figure8_profiles(packets: int = DEFAULT_PACKETS,
                     profiled: bool = False) -> List[PacketProfile]:
    """Receive cycles/packet for all four configurations (figure 8)."""
    return [profile_config(name, "rx", packets=packets, profiled=profiled)
            for name in ("linux", "dom0", "domU-twin", "domU")]
