"""Benchmark workloads: netperf streaming, per-packet profiles, the
SPECweb99 web-server workload, and the Table-1 fast-path trace."""

from .netperf import (
    ALL_CONFIGS,
    UpcallSweepPoint,
    figure5_transmit,
    figure6_receive,
    figure10_upcall_sweep,
    run_netperf,
    summarize,
)
from .profile import (
    figure7_profiles,
    figure8_profiles,
    profile_config,
    profile_direction,
)
from .specweb import FileSet, WebFile
from .table1 import Table1Result, run_table1
from .webserver import (
    RequestShape,
    WebServerCapacity,
    WebServerCurve,
    WebServerPoint,
    capacity_for,
    figure9_curves,
    measure_packet_costs,
    run_webserver_curve,
    simulate_requests,
)

__all__ = [
    "ALL_CONFIGS",
    "FileSet",
    "RequestShape",
    "Table1Result",
    "UpcallSweepPoint",
    "WebFile",
    "WebServerCapacity",
    "WebServerCurve",
    "WebServerPoint",
    "capacity_for",
    "figure10_upcall_sweep",
    "figure5_transmit",
    "figure6_receive",
    "figure7_profiles",
    "figure8_profiles",
    "figure9_curves",
    "measure_packet_costs",
    "profile_config",
    "profile_direction",
    "run_netperf",
    "run_table1",
    "run_webserver_curve",
    "simulate_requests",
    "summarize",
]
