"""The web-server workload (figure 9): knot + httperf over SPECweb99.

Model structure:

* per-packet network costs come from *measured* steady-state profiles of
  the real simulated stack (the same numbers as figures 7/8);
* a request costs: application work (accept/parse/file-cache/syscalls,
  scaled by the per-config virtualization factor) plus the network cost
  of its TCP exchange — connection setup/teardown and ACK packets are
  small-packet crossings that hit the split-driver path hardest
  (``REQRESP_PACKET_FACTOR``);
* httperf drives an *open loop*: offered connection rates are swept and
  responses that miss the timeout are discarded, so past saturation the
  delivered throughput degrades toward ``OVERLOAD_EFFICIENCY`` x capacity
  (domU's receive-livelock behaviour).

The capacity calculation is analytic on top of measured per-packet
profiles; ``simulate_requests`` additionally pushes whole request
exchanges through the real stack for validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..configs import build
from ..metrics.throughput import CPU_HZ
from ..xen.costs import (
    CostModel,
    OVERLOAD_EFFICIENCY,
    REQRESP_PACKET_FACTOR,
    VIRT_APP_FACTOR,
)
from .profile import profile_direction
from .specweb import FileSet

#: TCP maximum segment size for response data.
MSS = 1448
#: HTTP response header bytes.
HTTP_HEADER = 290
#: response timeout behaviour is folded into OVERLOAD_EFFICIENCY.
DEFAULT_RATES = tuple(range(1000, 20001, 1000))


@dataclass
class RequestShape:
    """Packet counts for one HTTP/1.0-style request over its own TCP
    connection (as httperf issues them)."""

    response_bytes: int

    @property
    def data_packets(self) -> int:
        return max(1, math.ceil((self.response_bytes + HTTP_HEADER) / MSS))

    @property
    def tx_packets(self) -> int:
        # SYN-ACK + data + FIN + ACK of the request
        return self.data_packets + 3

    @property
    def rx_packets(self) -> int:
        # SYN + request + client ACKs (~every 2 segments) + FIN
        return 3 + math.ceil(self.data_packets / 2)

    @property
    def response_bits(self) -> int:
        return (self.response_bytes + HTTP_HEADER) * 8


@dataclass
class WebServerCapacity:
    """Per-configuration request cost and saturation rate."""

    config: str
    cycles_per_request: float
    requests_per_second: float
    mean_response_bits: float

    @property
    def saturation_mbps(self) -> float:
        return self.requests_per_second * self.mean_response_bits / 1e6


@dataclass
class WebServerPoint:
    """One (offered rate, delivered throughput) point of figure 9."""

    request_rate: int
    delivered_rps: float
    throughput_mbps: float
    cpu_utilization: float


@dataclass
class WebServerCurve:
    """A full figure-9 curve for one configuration."""

    config: str
    capacity: WebServerCapacity
    points: List[WebServerPoint] = field(default_factory=list)

    @property
    def peak_mbps(self) -> float:
        return max(p.throughput_mbps for p in self.points)


def measure_packet_costs(name: str, packets: int = 256,
                         costs: Optional[CostModel] = None
                         ) -> Dict[str, float]:
    """Steady-state per-packet cycles for both directions (one NIC, like
    the web server's single active path per connection)."""
    tx_sys = build(name, n_nics=1, costs=costs)
    tx = profile_direction(tx_sys, "tx", packets=packets)
    rx_sys = build(name, n_nics=1, costs=costs)
    rx = profile_direction(rx_sys, "rx", packets=packets)
    return {"tx": tx.total_per_packet, "rx": rx.total_per_packet}


def capacity_for(name: str, fileset: Optional[FileSet] = None,
                 packet_costs: Optional[Dict[str, float]] = None,
                 samples: int = 2000,
                 costs: Optional[CostModel] = None) -> WebServerCapacity:
    fileset = fileset or FileSet()
    packet_costs = packet_costs or measure_packet_costs(name, costs=costs)
    cost_model = costs or CostModel()
    app = _app_request_cycles(cost_model) * VIRT_APP_FACTOR[name]
    pkt_factor = REQRESP_PACKET_FACTOR[name]
    total_cycles = 0.0
    total_bits = 0.0
    for size in fileset.sample_sizes(samples):
        shape = RequestShape(size)
        net = (shape.tx_packets * packet_costs["tx"]
               + shape.rx_packets * packet_costs["rx"]) * pkt_factor
        total_cycles += app + net
        total_bits += shape.response_bits
    mean_cycles = total_cycles / samples
    return WebServerCapacity(
        config=name,
        cycles_per_request=mean_cycles,
        requests_per_second=CPU_HZ / mean_cycles,
        mean_response_bits=total_bits / samples,
    )


def _app_request_cycles(costs: CostModel) -> float:
    from ..xen.costs import APP_REQUEST_CYCLES
    return APP_REQUEST_CYCLES


def delivered_rate(offered: float, capacity_rps: float,
                   overload_eff: float) -> float:
    """Open-loop delivery: below saturation everything is served; above
    it, timeouts and interrupt pressure pull goodput toward
    ``overload_eff * capacity`` as offered load grows."""
    if offered <= capacity_rps:
        return offered
    # smooth decline: at offered == capacity, full capacity; as
    # offered -> infinity, capacity * overload_eff.
    excess = capacity_rps / offered
    return capacity_rps * (overload_eff + (1.0 - overload_eff) * excess)


def run_webserver_curve(name: str,
                        rates: Sequence[int] = DEFAULT_RATES,
                        fileset: Optional[FileSet] = None,
                        packet_costs: Optional[Dict[str, float]] = None,
                        costs: Optional[CostModel] = None) -> WebServerCurve:
    capacity = capacity_for(name, fileset=fileset,
                            packet_costs=packet_costs, costs=costs)
    eff = OVERLOAD_EFFICIENCY[name]
    curve = WebServerCurve(config=name, capacity=capacity)
    for rate in rates:
        served = delivered_rate(rate, capacity.requests_per_second, eff)
        curve.points.append(WebServerPoint(
            request_rate=rate,
            delivered_rps=served,
            throughput_mbps=served * capacity.mean_response_bits / 1e6,
            cpu_utilization=min(
                1.0, rate / capacity.requests_per_second
            ),
        ))
    return curve


def figure9_curves(rates: Sequence[int] = DEFAULT_RATES,
                   costs: Optional[CostModel] = None) -> List[WebServerCurve]:
    fileset = FileSet()
    return [
        run_webserver_curve(name, rates=rates, fileset=fileset, costs=costs)
        for name in ("linux", "dom0", "domU-twin", "domU")
    ]


def simulate_requests(name: str, n_requests: int = 20,
                      costs: Optional[CostModel] = None) -> Dict[str, float]:
    """Validation: push whole request exchanges (receive the request
    packets, transmit the response packets) through the real stack and
    report measured cycles/request."""
    fileset = FileSet()
    system = build(name, n_nics=1, costs=costs)
    # warm up
    system.transmit_packets(64)
    system.receive_packets(64)
    sizes = fileset.sample_sizes(n_requests, seed=7)
    snap = system.snapshot()
    total_bits = 0
    for size in sizes:
        shape = RequestShape(size)
        system.receive_packets(shape.rx_packets, payload_len=256)
        system.transmit_packets(shape.data_packets)
        system.transmit_packets(3, payload_len=40)   # SYN-ACK/FIN/ACK
        total_bits += shape.response_bits
    delta = system.delta_since(snap)
    cycles = sum(delta.values())
    return {
        "cycles_per_request": cycles / n_requests,
        "requests_per_second": CPU_HZ / (cycles / n_requests),
        "mean_response_bits": total_bits / n_requests,
    }
