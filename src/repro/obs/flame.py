"""Self-contained profile exporters: flamegraph SVG and Chrome trace.

No third-party dependencies: the SVG is generated directly from the
call tree (widths proportional to total cycles, one row per stack
depth, deterministic layer colors) and the Chrome export synthesizes
``trace_event`` "X" records by a depth-first walk with cumulative
offsets, so a profile — which has no timeline — still renders as a
flame chart in ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

from typing import Dict, List

from .prof import call_tree

#: Fill colors by profile category (figure 7/8 legend order); frames
#: deeper in a stack inherit their root category's hue.
LAYER_COLORS = {
    "dom0": (87, 148, 87),      # green: driver-domain / native kernel
    "domU": (87, 116, 180),     # blue: guest kernel
    "Xen": (196, 146, 64),      # amber: hypervisor
    "e1000": (185, 84, 84),     # red: the driver binary itself
}
_DEFAULT_COLOR = (130, 130, 130)

_ROW_H = 17
_MIN_W = 0.4          # px: drop boxes narrower than this
_FONT = "monospace"


def _color(layer: str, name: str) -> str:
    r, g, b = LAYER_COLORS.get(layer, _DEFAULT_COLOR)
    # deterministic per-frame jitter so adjacent boxes are discernible
    salt = sum(ord(c) for c in name) % 32
    return f"rgb({min(255, r + salt)},{min(255, g + salt)},{min(255, b + salt)})"


def _escape(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def flamegraph_svg(doc: Dict, title: str = "", width: int = 1200) -> str:
    """Render the profile as a flamegraph SVG string (root at the
    bottom, like the classic tool)."""
    root = call_tree(doc)
    total = root["total"]
    title = title or doc.get("meta", {}).get("title", "cycle profile")

    def depth_of(node) -> int:
        kids = node["children"].values()
        return 1 + max((depth_of(k) for k in kids), default=0)

    depth = depth_of(root)
    height = (depth + 2) * _ROW_H + 24
    scale = (width - 20) / total if total else 0.0
    boxes: List[str] = []

    def emit(node, x: float, level: int, layer: str):
        w = node["total"] * scale
        if w < _MIN_W:
            return
        y = height - (level + 2) * _ROW_H
        name = node["name"]
        pct = 100.0 * node["total"] / total if total else 0.0
        label = name if w > 8 * len(name) * 0.7 else (
            name[: max(0, int(w / 7)) - 1] + "…" if w > 21 else "")
        boxes.append(
            f'<g><title>{_escape(name)}: {node["total"]} cycles '
            f'({pct:.2f}%), self={node["self"]}</title>'
            f'<rect x="{x:.2f}" y="{y}" width="{max(w, _MIN_W):.2f}" '
            f'height="{_ROW_H - 1}" fill="{_color(layer, name)}" '
            f'rx="1"/>'
            + (f'<text x="{x + 2:.2f}" y="{y + 12}" font-size="11" '
               f'font-family="{_FONT}">{_escape(label)}</text>'
               if label else "")
            + "</g>"
        )
        cx = x
        for child in sorted(node["children"].values(),
                            key=lambda c: (-c["total"], c["name"])):
            emit(child, cx, level + 1,
                 layer if level > 0 else child["name"])
            cx += child["total"] * scale

    # the root row spans everything; children of root are the layers
    emit(root, 10.0, 0, "")
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="{_FONT}">'
        f'<rect width="100%" height="100%" fill="#fdfdfd"/>'
        f'<text x="{width / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="13">{_escape(title)} — {total} cycles</text>'
    )
    return head + "".join(boxes) + "</svg>"


def chrome_trace_profile(doc: Dict, cpu_hz: int = 3_000_000_000) -> Dict:
    """Synthesize a Chrome ``trace_event`` document from the profile:
    a DFS over the call tree lays frames out as complete ("X") events
    with cumulative cycle offsets converted to microseconds."""
    scale_us = 1e6 / cpu_hz
    events: List[Dict] = []

    def walk(node, start: int, depth: int):
        cursor = start
        for child in sorted(node["children"].values(),
                            key=lambda c: (-c["total"], c["name"])):
            events.append({
                "name": child["name"],
                "ph": "X",
                "ts": cursor * scale_us,
                "dur": child["total"] * scale_us,
                "pid": 1,
                "tid": 1,
                "args": {"cycles": child["total"],
                         "self_cycles": child["self"]},
            })
            walk(child, cursor, depth + 1)
            cursor += child["total"]

    root = call_tree(doc)
    walk(root, 0, 0)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "metadata": dict(doc.get("meta", {}), schema=doc.get("schema"),
                         total_cycles=root["total"]),
    }
