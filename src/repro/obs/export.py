"""Exporters: JSON snapshot, text dashboard, Chrome ``trace_event``.

A *trace file* is one JSON document::

    {"schema": "repro-trace/v1", "meta": {...},
     "counters": {...}, "histograms": {...},
     "events": [...], "spans": [...]}

written by :meth:`repro.obs.Obs.save` and consumed by the
``python -m repro.obs`` CLI. The Chrome exporter produces the
``trace_event`` JSON-object format loadable in ``chrome://tracing`` /
Perfetto: spans become complete ("X") events, point records become
instants ("i"), timestamps are virtual cycles converted to microseconds
at the machine's clock rate.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

TRACE_SCHEMA = "repro-trace/v1"
#: fallback clock for traces without meta (the paper's 3.0 GHz Xeon)
DEFAULT_CPU_HZ = 3_000_000_000


def load_trace(path: str) -> Dict:
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: not a {TRACE_SCHEMA} trace (schema={doc.get('schema')!r})"
        )
    return doc


# ---------------------------------------------------------------------------
# text dashboard
# ---------------------------------------------------------------------------

def render_dashboard(doc: Dict) -> str:
    """Counters + histogram summaries as a terminal table."""
    lines: List[str] = []
    meta = doc.get("meta") or {}
    title = "observability dashboard"
    if meta.get("config"):
        title += f" — {meta['config']}"
    lines += [title, "=" * len(title)]
    counters = doc.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("counters")
        width = max(len(k) for k in counters)
        for name, value in sorted(counters.items()):
            if value:
                lines.append(f"  {name:<{width}}  {value:>12}")
    hists = doc.get("histograms") or {}
    if hists:
        lines.append("")
        lines.append("histograms (cycles)")
        for name, h in sorted(hists.items()):
            if h.get("count"):
                lines.append(
                    f"  {name}: n={h['count']} mean={h['mean']:.0f} "
                    f"min={h['min']} p50~{h['p50']} p99~{h['p99']} "
                    f"max={h['max']}"
                )
    events = doc.get("events") or []
    lines.append("")
    lines.append(f"trace ring: {len(events)} records, "
                 f"{len(doc.get('spans') or [])} completed spans, "
                 f"{(doc.get('meta') or {}).get('dropped', 0)} overwritten")
    return "\n".join(lines)


def format_event(ev: Dict) -> str:
    args = " ".join(
        f"{k}={_fmt_val(v)}" for k, v in (ev.get("args") or {}).items()
    )
    span = f" span={ev['span']}" if ev.get("span") else ""
    return f"[{ev['ts']:>10}] #{ev['seq']:<6} {ev['kind']:<16}{span} {args}"


def _fmt_val(v) -> str:
    if isinstance(v, int) and v > 0xFFFF:
        return f"{v:#x}"
    return str(v)


def render_tail(events: List[Dict], n: int = 16,
                title: str = "trace ring tail") -> str:
    """The crash-forensics view: the last ``n`` ring records."""
    chosen = events[-n:]
    lines = [f"{title} (last {len(chosen)} of {len(events)} records)"]
    lines += ["  " + format_event(ev) for ev in chosen]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# span rendering (per-packet reconstruction)
# ---------------------------------------------------------------------------

def _span_children(spans: List[Dict]) -> Dict[int, List[Dict]]:
    children: Dict[int, List[Dict]] = {}
    for s in spans:
        children.setdefault(s["parent"], []).append(s)
    return children


def _subtree_ids(root: Dict, children: Dict[int, List[Dict]]) -> List[int]:
    ids = [root["id"]]
    queue = [root["id"]]
    while queue:
        for s in children.get(queue.pop(), ()):
            ids.append(s["id"])
            queue.append(s["id"])
    return ids


def render_span(doc: Dict, root: Dict, show_events: bool = True) -> str:
    """One span subtree as an indented timeline — the reconstruction of
    a single packet's path through the stack."""
    spans = doc.get("spans") or []
    events = doc.get("events") or []
    children = _span_children(spans)
    ids = set(_subtree_ids(root, children))
    depth_of = {root["id"]: 0}
    rows = []  # (t0, kind, text)

    def walk(span: Dict, depth: int):
        dur = (span["t1"] - span["t0"]) if span.get("t1") is not None else 0
        rows.append((span["t0"], 0, span["id"],
                     "  " * depth + f"▶ {span['name']} "
                     f"[span {span['id']}] +{dur} cyc "
                     + " ".join(f"{k}={_fmt_val(v)}"
                                for k, v in (span.get("args") or {}).items())))
        for child in sorted(children.get(span["id"], ()),
                            key=lambda s: s["t0"]):
            depth_of[child["id"]] = depth + 1
            walk(child, depth + 1)

    walk(root, 0)
    if show_events:
        for ev in events:
            if ev.get("span") in ids and ev["kind"] not in ("span.begin",
                                                            "span.end"):
                depth = depth_of.get(ev["span"], 0) + 1
                args = " ".join(f"{k}={_fmt_val(v)}"
                                for k, v in (ev.get("args") or {}).items())
                rows.append((ev["ts"], 1, ev["seq"],
                             "  " * depth + f"· {ev['kind']} {args}"))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    base = root["t0"]
    return "\n".join(f"{r[0] - base:>8} {r[3]}" for r in rows)


def render_spans(doc: Dict, name: Optional[str] = None,
                 limit: int = 4, show_events: bool = True) -> str:
    """Render up to ``limit`` top-level spans (optionally filtered)."""
    spans = doc.get("spans") or []
    roots = [s for s in spans
             if s["parent"] == 0 and (name is None or s["name"] == name)]
    if not roots:
        return (f"no completed spans"
                + (f" named {name!r}" if name else "")
                + " in this trace")
    out = []
    for root in roots[-limit:]:
        out.append(render_span(doc, root, show_events=show_events))
        out.append("")
    return "\n".join(out).rstrip()


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def chrome_trace(doc: Dict) -> Dict:
    """Convert a trace file to the Chrome ``trace_event`` JSON-object
    format (catapult / chrome://tracing / Perfetto)."""
    meta = doc.get("meta") or {}
    cpu_hz = meta.get("cpu_hz") or DEFAULT_CPU_HZ
    us_per_cycle = 1e6 / cpu_hz
    pid = 1
    trace_events: List[Dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": meta.get("config", "repro")},
    }]
    for s in doc.get("spans") or []:
        t1 = s["t1"] if s.get("t1") is not None else s["t0"]
        trace_events.append({
            "name": s["name"], "ph": "X", "pid": pid, "tid": 1,
            "ts": s["t0"] * us_per_cycle,
            "dur": max(0.001, (t1 - s["t0"]) * us_per_cycle),
            "args": dict(s.get("args") or {}, span=s["id"],
                         parent=s["parent"]),
        })
    for ev in doc.get("events") or []:
        if ev["kind"] in ("span.begin", "span.end"):
            continue
        trace_events.append({
            "name": ev["kind"], "ph": "i", "pid": pid, "tid": 1,
            "ts": ev["ts"] * us_per_cycle, "s": "t",
            "args": dict(ev.get("args") or {}, span=ev.get("span", 0)),
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": doc.get("schema"),
                      "cpu_hz": cpu_hz,
                      **{k: v for k, v in meta.items() if k != "cpu_hz"}},
    }
