"""The metrics registry: named counters and cycle histograms.

Counters are the always-on half of the observability layer: incrementing
one is a dict lookup plus an integer add, cheap enough to live on the
per-instruction cycle-charging path. The registry is the single source
of truth the profile workloads (figures 7/8), the benchmark JSON results
and the trace exporters all read from.

Histograms use log-linear buckets: values below 8 get exact singleton
buckets, larger values split each power-of-two range into 4 linear
sub-buckets. A reported quantile is the upper bound of the bucket the
quantile lands in, so it never undershoots and overshoots by at most
25% (``true <= reported <= 1.25 * true``) — tight enough for
cycle/latency distributions and needs no configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional


class Counter:
    """A named monotonic (by convention) integer. Mutate ``value``
    directly on hot paths; use :meth:`inc` elsewhere."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, n: int = 1):
        self.value += n

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Log-linear-bucketed distribution of non-negative integers.

    Values below 8 land in exact singleton buckets (key == value).
    Larger values with ``b = value.bit_length()`` split the range
    ``[2^(b-1), 2^b)`` into 4 equal sub-buckets; the key is
    ``4*b + sub`` (>= 16, so the two key spaces never collide and
    sorting keys sorts value ranges). Each sub-bucket spans a quarter
    of its power-of-two range, so a bucket's upper bound is at most
    1.25x its lower bound — quantiles never undershoot and overshoot
    by at most 25%.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    @staticmethod
    def bucket_key(value: int) -> int:
        if value < 8:
            return value
        b = int(value).bit_length()
        sub = (value - (1 << (b - 1))) >> (b - 3)
        return 4 * b + sub

    @staticmethod
    def bucket_bound(key: int) -> int:
        """Inclusive upper bound of the bucket ``key``."""
        if key < 8:
            return key
        b, sub = key >> 2, key & 3
        return (1 << (b - 1)) + ((sub + 1) << (b - 3)) - 1

    def observe(self, value: int):
        if value < 0:
            raise ValueError("histograms record non-negative values")
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = self.bucket_key(value)
        self.buckets[k] = self.buckets.get(k, 0) + 1

    def reset(self):
        """Drop all observations in place (references stay valid)."""
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.buckets.clear()

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket holding the q-quantile (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0
        target = q * self.count
        seen = 0
        for k in sorted(self.buckets):
            seen += self.buckets[k]
            if seen >= target:
                return min(self.bucket_bound(k), self.max or 0)
        return self.max or 0

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min or 0,
            "max": self.max or 0,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {str(self.bucket_bound(k)): n
                        for k, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Process-wide (per-:class:`~repro.machine.machine.Machine`) registry
    of named counters and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access -------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def counters(self, prefix: str = "") -> Iterable[Counter]:
        return (c for name, c in sorted(self._counters.items())
                if name.startswith(prefix))

    # -- snapshots ----------------------------------------------------------

    def counters_snapshot(self, prefix: str = "") -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())
                if name.startswith(prefix)}

    def delta_since(self, snapshot: Dict[str, int],
                    prefix: str = "") -> Dict[str, int]:
        """Counter movement since ``snapshot`` (new counters count from 0)."""
        return {
            name: c.value - snapshot.get(name, 0)
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": self.counters_snapshot(),
            "histograms": {name: h.summary()
                           for name, h in sorted(self._histograms.items())},
        }

    def reset(self, prefix: str = ""):
        """Zero counters and histograms under ``prefix`` in place —
        both keep object identity, so hot-path references survive."""
        for name, c in self._counters.items():
            if name.startswith(prefix):
                c.value = 0
        for name, h in self._histograms.items():
            if name.startswith(prefix):
                h.reset()
