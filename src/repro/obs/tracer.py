"""The xentrace-style trace ring: bounded, typed, span-correlated.

Records land in a fixed-size ring (old records are overwritten, like
xentrace's per-CPU buffers), timestamped with the simulator's virtual
cycle clock. *Spans* give per-packet correlation: a span is opened at
the start of a packet's path (or an upcall, or an ISR), every record
emitted while it is open carries its id, and nested spans remember their
parent — so one transmit packet can be reconstructed end-to-end from the
ring.

Tracing is toggleable: with ``enabled = False`` (the default), ``emit``
returns after one attribute test and span helpers return ``None``, so
the always-on metrics counters are the only cost the fast path pays.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .events import SPAN_BEGIN, SPAN_END
from .metrics import MetricsRegistry


class TraceEvent:
    """One ring record: sequence number, cycle timestamp, kind, the
    innermost open span (0 = none), and free-form args."""

    __slots__ = ("seq", "ts", "kind", "span", "args")

    def __init__(self, seq: int, ts: int, kind: str, span: int, args: Dict):
        self.seq = seq
        self.ts = ts
        self.kind = kind
        self.span = span
        self.args = args

    def to_dict(self) -> Dict[str, object]:
        return {"seq": self.seq, "ts": self.ts, "kind": self.kind,
                "span": self.span, "args": self.args}

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"TraceEvent(#{self.seq} @{self.ts} {self.kind}"
                f" span={self.span} {self.args})")


class Span:
    """An open or completed interval: a packet, an upcall, an ISR."""

    __slots__ = ("id", "name", "parent", "t0", "t1", "args")

    def __init__(self, span_id: int, name: str, parent: int, t0: int,
                 args: Dict):
        self.id = span_id
        self.name = name
        self.parent = parent
        self.t0 = t0
        self.t1: Optional[int] = None
        self.args = args

    @property
    def duration(self) -> Optional[int]:
        return None if self.t1 is None else self.t1 - self.t0

    def to_dict(self) -> Dict[str, object]:
        return {"id": self.id, "name": self.name, "parent": self.parent,
                "t0": self.t0, "t1": self.t1, "args": self.args}


class Tracer:
    """Bounded ring of :class:`TraceEvent` plus the span machinery."""

    def __init__(self, clock: Optional[Callable[[], int]] = None,
                 capacity: int = 8192,
                 registry: Optional[MetricsRegistry] = None,
                 span_capacity: Optional[int] = None):
        if capacity < 1:
            raise ValueError("trace ring capacity must be >= 1")
        self.enabled = False
        self.clock = clock or (lambda: 0)
        self.capacity = capacity
        self.registry = registry
        self.span_capacity = span_capacity or capacity
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._emitted = 0
        self._span_stack: List[Span] = []
        self._next_span = 1
        #: completed spans, oldest first, bounded by span_capacity.
        self._spans: List[Span] = []
        #: completed spans evicted from ``_spans`` by the capacity bound.
        self.spans_dropped = 0

    # -- state --------------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total records emitted since the last clear (incl. overwritten)."""
        return self._emitted

    @property
    def dropped(self) -> int:
        """Records overwritten by ring wraparound."""
        return max(0, self._emitted - self.capacity)

    @property
    def current_span(self) -> int:
        return self._span_stack[-1].id if self._span_stack else 0

    def clear(self):
        """Forget everything, including span-id state — repeated runs in
        one process get identical span ids after a clear."""
        self._ring = [None] * self.capacity
        self._emitted = 0
        self._span_stack = []
        self._next_span = 1
        self._spans = []
        self.spans_dropped = 0

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, **args):
        if not self.enabled:
            return
        ev = TraceEvent(self._emitted, self.clock(), kind,
                        self.current_span, args)
        self._ring[self._emitted % self.capacity] = ev
        self._emitted += 1

    def begin_span(self, name: str, **args) -> Optional[Span]:
        """Open a span; returns ``None`` (a no-op handle) when disabled."""
        if not self.enabled:
            return None
        span = Span(self._next_span, name, self.current_span, self.clock(),
                    args)
        self._next_span += 1
        self.emit(SPAN_BEGIN, id=span.id, name=name, **args)
        self._span_stack.append(span)
        return span

    def end_span(self, span: Optional[Span]):
        """Close ``span`` (tolerates None and out-of-order closes from
        exception paths: everything nested deeper is closed too)."""
        if span is None:
            return
        while self._span_stack:
            top = self._span_stack.pop()
            top.t1 = self.clock()
            self._complete(top)
            if top is span:
                return
        # span was not on the stack (tracer cleared mid-span): record it
        if span.t1 is None:
            span.t1 = self.clock()
            self._complete(span)

    def _complete(self, span: Span):
        self._spans.append(span)
        overflow = len(self._spans) - self.span_capacity
        if overflow > 0:
            del self._spans[:overflow]
            self.spans_dropped += overflow
            if self.registry is not None:
                self.registry.counter("trace.spans_dropped").value += overflow
        if self.enabled:
            ev = TraceEvent(self._emitted, span.t1, SPAN_END, span.parent,
                            {"id": span.id, "name": span.name,
                             "dur": span.duration})
            self._ring[self._emitted % self.capacity] = ev
            self._emitted += 1
        if self.registry is not None:
            self.registry.histogram(f"span.{span.name}.cycles").observe(
                span.duration or 0)

    # -- reading ------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Ring contents, oldest first."""
        if self._emitted <= self.capacity:
            return [e for e in self._ring[: self._emitted] if e is not None]
        start = self._emitted % self.capacity
        return [e for e in self._ring[start:] + self._ring[:start]
                if e is not None]

    def tail(self, n: int) -> List[TraceEvent]:
        return self.events()[-n:]

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Completed spans, oldest first (optionally filtered by name)."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def span_tree(self, span: Span) -> List[Span]:
        """``span`` plus every completed descendant, by start time.

        Children complete (and land in ``_spans``) before their parents,
        so descendants are collected breadth-first from a children map
        rather than in completion order."""
        children: Dict[int, List[Span]] = {}
        for s in self._spans:
            children.setdefault(s.parent, []).append(s)
        out = [span]
        queue = [span.id]
        while queue:
            parent_id = queue.pop()
            for s in children.get(parent_id, ()):
                if s is not span:
                    out.append(s)
                    queue.append(s.id)
        return sorted(out, key=lambda s: (s.t0, s.id))

    def events_in_span(self, span: Span) -> List[TraceEvent]:
        """Ring records correlated to ``span`` or any descendant."""
        ids = {s.id for s in self.span_tree(span)}
        return [e for e in self.events() if e.span in ids]
