"""Observability: the xentrace-style tracer and the metrics registry.

One :class:`Obs` instance hangs off every
:class:`~repro.machine.machine.Machine` (``machine.obs``) and bundles:

* ``registry`` — always-on named counters and cycle histograms; cycle
  accounting (:class:`~repro.metrics.cycles.CycleAccount`) and every
  instrumented subsystem (stlb, upcalls, support routines, hypervisor,
  NICs) write here, and the figure 7/8 profiles are views over it;
* ``tracer`` — the bounded trace ring with per-packet span correlation,
  off by default and near-zero-cost while off.

Quickstart::

    system = repro.configs.build("domU-twin", n_nics=1)
    system.machine.obs.enable_tracing()
    system.transmit_packets(4)
    system.machine.obs.save("trace.json", meta={"config": "domU-twin"})

then ``python -m repro.obs render trace.json --span packet.tx``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, Optional

from . import events
from .export import (
    TRACE_SCHEMA,
    chrome_trace,
    load_trace,
    render_dashboard,
    render_spans,
    render_tail,
)
from .health import HEALTH_SCHEMA, HealthMonitor, WatchdogFault
from .metrics import Counter, Histogram, MetricsRegistry
from .prof import PROFILE_SCHEMA, Profiler
from .tracer import Span, TraceEvent, Tracer


class Obs:
    """The per-machine observability bundle."""

    def __init__(self, clock: Optional[Callable[[], int]] = None,
                 trace_capacity: int = 8192):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, capacity=trace_capacity,
                             registry=self.registry)
        #: cycle-attribution profiler; inert until bound to a machine
        #: (Machine.__init__) and enabled.
        self.profiler = Profiler(registry=self.registry)

    # -- tracing toggle -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self):
        self.tracer.enabled = True

    def disable_tracing(self):
        self.tracer.enabled = False

    # -- profiling toggle ---------------------------------------------------

    def enable_profiling(self):
        self.profiler.enable()

    def disable_profiling(self):
        self.profiler.disable()

    def set_clock(self, clock: Callable[[], int]):
        self.tracer.clock = clock

    # -- snapshots ----------------------------------------------------------

    def snapshot(self, meta: Optional[Dict] = None) -> Dict:
        """The full trace document: counters, histograms, ring, spans."""
        reg = self.registry.snapshot()
        return {
            "schema": TRACE_SCHEMA,
            "meta": dict(meta or {}, dropped=self.tracer.dropped),
            "counters": reg["counters"],
            "histograms": reg["histograms"],
            "events": [e.to_dict() for e in self.tracer.events()],
            "spans": [s.to_dict() for s in self.tracer.spans()],
        }

    def save(self, path: str, meta: Optional[Dict] = None) -> Dict:
        doc = self.snapshot(meta=meta)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        return doc


__all__ = [
    "Counter",
    "HEALTH_SCHEMA",
    "HealthMonitor",
    "Histogram",
    "MetricsRegistry",
    "Obs",
    "PROFILE_SCHEMA",
    "Profiler",
    "Span",
    "TRACE_SCHEMA",
    "TraceEvent",
    "Tracer",
    "WatchdogFault",
    "chrome_trace",
    "events",
    "load_trace",
    "render_dashboard",
    "render_spans",
    "render_tail",
]
