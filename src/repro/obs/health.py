"""Watchdog health probes over the metrics registry (``repro.obs.health``).

A :class:`HealthMonitor` is probed periodically (every N packets, or
from a maintenance timer) and turns registry counters plus a little
structural state into findings:

* **stalled rx/tx queues** — the twin's rx queue (or deferred-interrupt
  list) is non-empty while the corresponding delivery counters have not
  moved since the previous probe;
* **virq delivery latency SLO** — the ``health.virq_defer_cycles``
  histogram (observed by the twin whenever a deferred NIC interrupt is
  finally replayed) has a p99 above the configured bound;
* **crash loop** — the recovery breaker opened, or quarantines are
  accumulating probe over probe;
* **span leak** — trace spans are still open while no driver invocation
  is in flight, or completed spans are being dropped by the capacity
  bound.

Each probe appends a structured snapshot (``repro-health/v1``) to the
monitor and — when a twin with recovery is attached — into the PR 3
flight recorder (``RecoveryManager.flight_records``), so post-mortems
see health context next to the trace tail. With ``arm_recovery=True`` a
critical finding calls ``recovery.handle_abort(WatchdogFault(...))``:
the watchdog can quarantine a wedged instance just like a containable
fault would.
"""

from __future__ import annotations

from typing import Dict, List, Optional

HEALTH_SCHEMA = "repro-health/v1"

#: registry histogram fed by the twin's deferred-interrupt replay path.
VIRQ_DEFER_HISTOGRAM = "health.virq_defer_cycles"

SEV_INFO = "info"
SEV_WARNING = "warning"
SEV_CRITICAL = "critical"


class WatchdogFault(Exception):
    """Raised *into* recovery (never propagated) when the watchdog arms
    containment on a critical finding."""


def _finding(probe: str, severity: str, detail: str, **data) -> Dict:
    return {"probe": probe, "severity": severity, "detail": detail,
            "data": data}


class HealthMonitor:
    """Periodic health probes for one machine (optionally one twin)."""

    def __init__(self, machine, twin=None, arm_recovery: bool = False,
                 virq_defer_slo: int = 200_000,
                 crash_loop_quarantines: int = 2):
        self.machine = machine
        self.twin = twin
        self.registry = machine.obs.registry
        self.arm_recovery = arm_recovery
        #: p99 bound (simulated cycles) on deferred-virq replay latency.
        self.virq_defer_slo = virq_defer_slo
        self.crash_loop_quarantines = crash_loop_quarantines
        self.snapshots: List[Dict] = []
        self._last_counters: Dict[str, int] = {}
        self._last_spans_dropped = 0
        #: maintenance window (planned handover): None, or a dict with
        #: the owner's name and a callable returning the packet backlog
        #: the owner deliberately froze. While open, backlog the owner
        #: accounts for is not a stall, replay-latency blips are
        #: expected (the handover bench gates them instead), and a
        #: critical finding is recorded but does NOT arm recovery —
        #: arming mid-handover would dismantle the instance being
        #: swapped. A stall the owner does NOT account for still fires.
        self._maintenance: Optional[Dict] = None

    # -- maintenance window (planned handover, DESIGN.md §14) ----------------

    @property
    def in_maintenance(self) -> bool:
        return self._maintenance is not None

    def enter_maintenance(self, owner: str, held_backlog=None):
        """Open a maintenance window. ``held_backlog`` is a callable
        returning how many backlogged packets the owner is deliberately
        holding (frozen queues, parked batches); only backlog BEYOND
        that count can raise a stall finding while the window is open."""
        if self._maintenance is not None:
            raise RuntimeError(
                f"maintenance window already held by "
                f"{self._maintenance['owner']!r}")
        self._maintenance = {"owner": owner,
                             "held": held_backlog or (lambda: 0)}

    def exit_maintenance(self) -> str:
        """Close the window; returns the owner that held it."""
        if self._maintenance is None:
            raise RuntimeError("no maintenance window is open")
        owner = self._maintenance["owner"]
        self._maintenance = None
        return owner

    # -- probes --------------------------------------------------------------

    def _counter_moved(self, name: str) -> bool:
        now = self.registry.counter(name).value
        return now != self._last_counters.get(name, 0)

    def _probe_stalled_rx(self, findings: List[Dict]):
        twin = self.twin
        if twin is None:
            return
        backlog = twin.rx_backlog      # sums every queue shard + parked
        held = 0
        if self._maintenance is not None:
            # planned drain: the handover accounts for this many frozen
            # packets — only a RESIDUAL backlog is a real stall.
            held = self._maintenance["held"]()
        residual = backlog - held
        if residual <= 0:
            return
        if not (self._counter_moved("xen.virq_coalesced")
                or self._counter_moved("xen.virq")):
            findings.append(_finding(
                "stalled_rx", SEV_CRITICAL,
                f"{residual} rx packets queued and no virq "
                "delivered since the last probe",
                queued=residual, held=held,
            ))

    def _probe_stalled_tx(self, findings: List[Dict]):
        twin = self.twin
        if twin is None or not twin._deferred_irqs:
            return
        if self._maintenance is not None:
            # a planned freeze defers NIC interrupts on purpose; they
            # are replayed before the window closes.
            return
        if not self._counter_moved("xen.softirq"):
            findings.append(_finding(
                "stalled_tx", SEV_WARNING,
                f"{len(twin._deferred_irqs)} NIC interrupts deferred and "
                "no softirq scheduled since the last probe",
                deferred=len(twin._deferred_irqs),
            ))

    def _probe_virq_latency(self, findings: List[Dict]):
        if self._maintenance is not None:
            # the handover window observes its own replay latencies into
            # this histogram; the bench gates the blip, not the watchdog.
            return
        hist = self.registry.histogram(VIRQ_DEFER_HISTOGRAM)
        if hist.count == 0:
            return
        p99 = hist.quantile(0.99)
        if p99 > self.virq_defer_slo:
            findings.append(_finding(
                "virq_latency", SEV_WARNING,
                f"deferred-virq replay p99 {p99} cycles exceeds SLO "
                f"{self.virq_defer_slo}",
                p99=p99, slo=self.virq_defer_slo, count=hist.count,
            ))

    def _probe_crash_loop(self, findings: List[Dict]):
        breaker = self.registry.counter("recovery.breaker_open").value
        if breaker > 0:
            findings.append(_finding(
                "crash_loop", SEV_CRITICAL,
                "recovery breaker is open (crash loop declared)",
                breaker_open=breaker,
            ))
            return
        q = self.registry.counter("recovery.quarantine").value
        moved = q - self._last_counters.get("recovery.quarantine", 0)
        if moved >= self.crash_loop_quarantines:
            findings.append(_finding(
                "crash_loop", SEV_WARNING,
                f"{moved} quarantines since the last probe",
                quarantines=moved,
            ))

    def _probe_span_leak(self, findings: List[Dict]):
        tracer = self.machine.obs.tracer
        open_spans = len(tracer._span_stack)
        in_driver = (self.twin is not None
                     and self.twin.xen.driver_depth > 0)
        if open_spans and not in_driver:
            findings.append(_finding(
                "span_leak", SEV_WARNING,
                f"{open_spans} spans still open with no driver "
                "invocation in flight",
                open=open_spans,
                names=[s.name for s in tracer._span_stack],
            ))
        dropped = tracer.spans_dropped - self._last_spans_dropped
        if dropped > 0:
            findings.append(_finding(
                "spans_dropped", SEV_INFO,
                f"{dropped} completed spans evicted by the capacity bound",
                dropped=dropped,
            ))

    # -- the probe cycle -----------------------------------------------------

    def probe(self) -> Dict:
        """Run every probe once; append and return the snapshot."""
        findings: List[Dict] = []
        self._probe_stalled_rx(findings)
        self._probe_stalled_tx(findings)
        self._probe_virq_latency(findings)
        self._probe_crash_loop(findings)
        self._probe_span_leak(findings)
        snap = {
            "schema": HEALTH_SCHEMA,
            "seq": len(self.snapshots),
            "cycles": self.machine.account.total,
            "ok": not any(f["severity"] == SEV_CRITICAL for f in findings),
            "findings": findings,
        }
        self.snapshots.append(snap)
        self._record_and_arm(snap)
        # baselines for the next probe's movement checks
        self._last_counters = self.registry.counters_snapshot()
        self._last_spans_dropped = self.machine.obs.tracer.spans_dropped
        return snap

    def _record_and_arm(self, snap: Dict):
        twin = self.twin
        recovery = getattr(twin, "recovery", None) if twin else None
        if recovery is not None and snap["findings"]:
            # one flight record per eventful snapshot, next to the trace
            # tails the recovery path already captures
            recovery.flight_records.append([
                {"kind": "health.snapshot", **snap}
            ])
        if (recovery is not None and self.arm_recovery and not snap["ok"]
                and self._maintenance is None
                and not recovery.degraded and not recovery.broken):
            reasons = "; ".join(f["detail"] for f in snap["findings"]
                                if f["severity"] == SEV_CRITICAL)
            try:
                recovery.handle_abort(WatchdogFault(reasons))
            except WatchdogFault:  # pragma: no cover - defensive
                pass

    # -- reporting -----------------------------------------------------------

    def report(self) -> Dict:
        """All snapshots plus a rollup, as one savable document."""
        worst = SEV_INFO
        order = {SEV_INFO: 0, SEV_WARNING: 1, SEV_CRITICAL: 2}
        nfindings = 0
        for snap in self.snapshots:
            for f in snap["findings"]:
                nfindings += 1
                if order[f["severity"]] > order[worst]:
                    worst = f["severity"]
        return {
            "schema": HEALTH_SCHEMA,
            "probes": len(self.snapshots),
            "findings": nfindings,
            "worst_severity": worst if nfindings else None,
            "ok": all(s["ok"] for s in self.snapshots),
            "snapshots": self.snapshots,
        }

    def save(self, path: str) -> Dict:
        import json

        doc = self.report()
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        return doc
