"""Event taxonomy for the xentrace-style tracer.

Every record in the trace ring carries one of these kinds. They mirror
the boundaries the paper's evaluation cares about: the stlb (§4.1), the
upcall machinery (§4.2), the hypervisor support routines (§4.3), the
hypervisor substrate (switches, hypercalls, virtual interrupts), the NIC
device model, and the per-packet paths themselves.

Span begin/end records (``span.begin`` / ``span.end``) are emitted by
the tracer itself; the span *name* (``packet.tx``, ``upcall:<routine>``,
``irq``...) travels in the record's args.
"""

from __future__ import annotations

# -- stlb / SVM (§4.1) ------------------------------------------------------
SVM_HIT = "svm.hit"              # explicit stlb lookup answered from the table
SVM_MISS = "svm.miss"            # __svm_slow_path entered
SVM_FILL = "svm.fill"            # slow path wrote a table entry
SVM_FLUSH = "svm.flush"          # whole-table invalidation
SVM_FAULT = "svm.fault"          # protection fault: access outside dom0
SVM_INVALIDATE = "svm.invalidate"  # page (or full) mapping teardown

# -- hypervisor substrate ---------------------------------------------------
HYPERCALL = "xen.hypercall"
DOMAIN_SWITCH = "xen.switch"
EVENT_SEND = "xen.event_send"
VIRQ = "xen.virq"                # virtual interrupt delivered into a domain
VIRQ_COALESCED = "xen.virq_coalesced"  # one virq covering a packet batch
SOFTIRQ = "xen.softirq"          # softirq scheduled

# -- support routines (§4.3) ------------------------------------------------
SUPPORT_CALL = "support.call"

# -- CPU boundary -----------------------------------------------------------
NATIVE_CALL = "cpu.native_call"  # driver code crossed into a native routine

# -- NIC device model -------------------------------------------------------
NIC_IRQ = "nic.irq"
NIC_TX = "nic.tx"                # a frame left through the tx ring
NIC_RX = "nic.rx"                # a frame landed in the rx ring
NIC_DESC = "nic.desc"            # descriptor write-back (DMA)
NIC_DMA_FAULT = "nic.dma_fault"  # the IOMMU refused a transfer

# -- packet path ------------------------------------------------------------
PACKET_RX_DEMUX = "packet.rx.demux"   # hypervisor netif_rx MAC demux
DRIVER_ABORT = "driver.abort"         # the hypervisor driver was killed

# -- fault containment & recovery -------------------------------------------
RECOVERY_QUARANTINE = "recovery.quarantine"  # faulting twin torn down
RECOVERY_DEGRADED = "recovery.degraded"      # op served on the dom0 path
RECOVERY_RELOAD = "recovery.reload"          # re-verify + reload attempt
RECOVERY_BREAKER = "recovery.breaker"        # crash-loop breaker opened
UPCALL_ABORT = "upcall.abort"                # in-flight upcall frames unwound

# -- spans (emitted by the tracer) ------------------------------------------
SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"

#: span names used by the instrumentation
SPAN_PACKET_TX = "packet.tx"
SPAN_PACKET_RX = "packet.rx"
SPAN_IRQ = "irq"
SPAN_UPCALL_PREFIX = "upcall:"
SPAN_RECOVERY = "recovery"

EVENT_KINDS = frozenset({
    SVM_HIT, SVM_MISS, SVM_FILL, SVM_FLUSH, SVM_FAULT, SVM_INVALIDATE,
    HYPERCALL, DOMAIN_SWITCH, EVENT_SEND, VIRQ, VIRQ_COALESCED, SOFTIRQ,
    SUPPORT_CALL, NATIVE_CALL,
    NIC_IRQ, NIC_TX, NIC_RX, NIC_DESC, NIC_DMA_FAULT,
    PACKET_RX_DEMUX, DRIVER_ABORT,
    RECOVERY_QUARANTINE, RECOVERY_DEGRADED, RECOVERY_RELOAD,
    RECOVERY_BREAKER, UPCALL_ABORT,
    SPAN_BEGIN, SPAN_END,
})
