"""``python -m repro.obs`` — record and render traces, profiles, health.

Subcommands:

* ``record``  — build a configuration, run packets with tracing on, and
  save a trace file (the quickest way to get something to look at);
* ``summary`` — the counters/histograms dashboard of a saved trace;
* ``render``  — reconstruct spans (e.g. one transmit packet end-to-end);
* ``tail``    — the last N ring records (crash forensics view);
* ``chrome``  — convert to Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto;
* ``prof record|report|flame|diff`` — the cycle-attribution profiler:
  capture a ``repro-profile/v1`` document, print its call tree /
  collapsed stacks, render a flamegraph SVG or Chrome flame chart, or
  diff two profiles stack by stack;
* ``health``  — run a workload under the watchdog and save the health
  snapshots.

Examples::

    python -m repro.obs record --config domU-twin --packets 4 -o t.json
    python -m repro.obs render t.json --span packet.tx
    python -m repro.obs prof record --config domU-twin -o prof.json
    python -m repro.obs prof flame prof.json -o prof.svg
    python -m repro.obs prof diff base.json new.json
    python -m repro.obs health --config domU-twin -o health.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (
    chrome_trace,
    load_trace,
    render_dashboard,
    render_spans,
    render_tail,
)


def _cmd_record(args) -> int:
    from ..configs import build

    system = build(args.config, n_nics=args.nics)
    op = (system.transmit_packets if args.direction == "tx"
          else system.receive_packets)
    # warm up with tracing off: steady state, like the profile runs
    op(args.warmup)
    system.machine.obs.enable_tracing()
    done = op(args.packets)
    system.machine.obs.disable_tracing()
    meta = {
        "config": args.config,
        "direction": args.direction,
        "packets": done,
        "warmup": args.warmup,
        "nics": args.nics,
        "cpu_hz": system.machine.cpu_hz,
    }
    system.machine.obs.save(args.output, meta=meta)
    print(f"recorded {done} {args.direction} packets on {args.config} "
          f"-> {args.output}")
    return 0


def _cmd_summary(args) -> int:
    print(render_dashboard(load_trace(args.trace)))
    return 0


def _cmd_render(args) -> int:
    doc = load_trace(args.trace)
    print(render_spans(doc, name=args.span, limit=args.limit,
                       show_events=not args.no_events))
    return 0


def _cmd_tail(args) -> int:
    doc = load_trace(args.trace)
    print(render_tail(doc.get("events") or [], n=args.n))
    return 0


def _cmd_chrome(args) -> int:
    doc = load_trace(args.trace)
    out = chrome_trace(doc)
    with open(args.output, "w") as fh:
        json.dump(out, fh)
    print(f"wrote {len(out['traceEvents'])} trace_event records "
          f"-> {args.output}")
    return 0


# -- profiler ----------------------------------------------------------------


def _cmd_prof_record(args) -> int:
    from ..workloads.profile import profile_config

    kwargs = {"elide": True} if args.elide else {}
    profile = profile_config(args.config, args.direction,
                             packets=args.packets, warmup=args.warmup,
                             n_nics=args.nics, profiled=True, **kwargs)
    doc = profile.attribution
    doc["meta"]["title"] = f"{args.config} {args.direction}"
    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=1)
    cats = ", ".join(f"{c}={v}" for c, v in sorted(doc["categories"].items())
                     if v)
    print(f"profiled {args.packets} {args.direction} packets on "
          f"{args.config}: {doc['total']} cycles ({cats})\n"
          f"{len(doc['samples'])} samples -> {args.output}")
    return 0


def _cmd_prof_report(args) -> int:
    from .prof import format_collapsed, format_tree, load_profile

    doc = load_profile(args.profile)
    if args.collapsed:
        print(format_collapsed(doc))
    else:
        print(format_tree(doc, min_share=args.min_share))
    return 0


def _cmd_prof_flame(args) -> int:
    from .flame import chrome_trace_profile, flamegraph_svg
    from .prof import load_profile

    doc = load_profile(args.profile)
    if args.chrome:
        out = chrome_trace_profile(doc)
        with open(args.output, "w") as fh:
            json.dump(out, fh)
        print(f"wrote {len(out['traceEvents'])} flame-chart events "
              f"-> {args.output}")
    else:
        svg = flamegraph_svg(doc, title=args.title or "")
        with open(args.output, "w") as fh:
            fh.write(svg)
        print(f"wrote flamegraph ({len(svg)} bytes) -> {args.output}")
    return 0


def _cmd_prof_diff(args) -> int:
    from .prof import format_diff, load_profile

    print(format_diff(load_profile(args.before), load_profile(args.after),
                      limit=args.limit))
    return 0


# -- health ------------------------------------------------------------------


def _cmd_health(args) -> int:
    from ..configs import build
    from .health import HealthMonitor

    system = build(args.config, n_nics=args.nics)
    monitor = HealthMonitor(system.machine, twin=system.twin,
                            virq_defer_slo=args.virq_slo)
    op = (system.transmit_packets if args.direction == "tx"
          else system.receive_packets)
    remaining = args.packets
    while remaining > 0:
        chunk = min(args.probe_every, remaining)
        op(chunk)
        remaining -= chunk
        monitor.probe()
    doc = monitor.save(args.output)
    status = "ok" if doc["ok"] else f"NOT ok (worst {doc['worst_severity']})"
    print(f"{doc['probes']} probes, {doc['findings']} findings, {status} "
          f"-> {args.output}")
    return 0 if doc["ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="record and render observability traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run a workload with tracing on")
    rec.add_argument("--config", default="domU-twin",
                     choices=("linux", "dom0", "domU", "domU-twin"))
    rec.add_argument("--direction", default="tx", choices=("tx", "rx"))
    rec.add_argument("--packets", type=int, default=4)
    rec.add_argument("--warmup", type=int, default=32)
    rec.add_argument("--nics", type=int, default=1)
    rec.add_argument("-o", "--output", default="trace.json")
    rec.set_defaults(fn=_cmd_record)

    summ = sub.add_parser("summary", help="counters/histograms dashboard")
    summ.add_argument("trace")
    summ.set_defaults(fn=_cmd_summary)

    ren = sub.add_parser("render", help="reconstruct spans from a trace")
    ren.add_argument("trace")
    ren.add_argument("--span", default=None,
                     help="only spans with this name (e.g. packet.tx)")
    ren.add_argument("--limit", type=int, default=4,
                     help="render at most N spans (newest)")
    ren.add_argument("--no-events", action="store_true",
                     help="span skeleton only, hide correlated records")
    ren.set_defaults(fn=_cmd_render)

    tail = sub.add_parser("tail", help="last N trace-ring records")
    tail.add_argument("trace")
    tail.add_argument("-n", type=int, default=16)
    tail.set_defaults(fn=_cmd_tail)

    chrome = sub.add_parser("chrome", help="export Chrome trace_event JSON")
    chrome.add_argument("trace")
    chrome.add_argument("-o", "--output", default="trace.chrome.json")
    chrome.set_defaults(fn=_cmd_chrome)

    prof = sub.add_parser("prof", help="cycle-attribution profiler")
    prof_sub = prof.add_subparsers(dest="prof_command", required=True)

    prec = prof_sub.add_parser("record",
                               help="profile a workload (repro-profile/v1)")
    prec.add_argument("--config", default="domU-twin",
                      choices=("linux", "dom0", "domU", "domU-twin"))
    prec.add_argument("--direction", default="tx", choices=("tx", "rx"))
    prec.add_argument("--packets", type=int, default=256)
    prec.add_argument("--warmup", type=int, default=64)
    prec.add_argument("--nics", type=int, default=1)
    prec.add_argument("--elide", action="store_true",
                      help="domU-twin only: proof-based check elision")
    prec.add_argument("-o", "--output", default="profile.json")
    prec.set_defaults(fn=_cmd_prof_record)

    prep = prof_sub.add_parser("report", help="call tree / folded stacks")
    prep.add_argument("profile")
    prep.add_argument("--collapsed", action="store_true",
                      help="folded flamegraph lines instead of the tree")
    prep.add_argument("--min-share", type=float, default=0.002,
                      help="prune tree frames below this share of total")
    prep.set_defaults(fn=_cmd_prof_report)

    pfl = prof_sub.add_parser("flame", help="flamegraph SVG or flame chart")
    pfl.add_argument("profile")
    pfl.add_argument("-o", "--output", default="profile.svg")
    pfl.add_argument("--title", default=None)
    pfl.add_argument("--chrome", action="store_true",
                     help="Chrome trace_event flame chart instead of SVG")
    pfl.set_defaults(fn=_cmd_prof_flame)

    pdf = prof_sub.add_parser("diff", help="stack-by-stack profile diff")
    pdf.add_argument("before")
    pdf.add_argument("after")
    pdf.add_argument("--limit", type=int, default=30)
    pdf.set_defaults(fn=_cmd_prof_diff)

    health = sub.add_parser("health",
                            help="run a workload under the watchdog")
    health.add_argument("--config", default="domU-twin",
                        choices=("linux", "dom0", "domU", "domU-twin"))
    health.add_argument("--direction", default="tx", choices=("tx", "rx"))
    health.add_argument("--packets", type=int, default=128)
    health.add_argument("--probe-every", type=int, default=32)
    health.add_argument("--nics", type=int, default=1)
    health.add_argument("--virq-slo", type=int, default=200_000)
    health.add_argument("-o", "--output", default="health.json")
    health.set_defaults(fn=_cmd_health)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:               # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
