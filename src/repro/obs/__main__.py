"""``python -m repro.obs`` — record and render traces.

Subcommands:

* ``record``  — build a configuration, run packets with tracing on, and
  save a trace file (the quickest way to get something to look at);
* ``summary`` — the counters/histograms dashboard of a saved trace;
* ``render``  — reconstruct spans (e.g. one transmit packet end-to-end);
* ``tail``    — the last N ring records (crash forensics view);
* ``chrome``  — convert to Chrome ``trace_event`` JSON for
  ``chrome://tracing`` / Perfetto.

Examples::

    python -m repro.obs record --config domU-twin --packets 4 -o t.json
    python -m repro.obs render t.json --span packet.tx
    python -m repro.obs chrome t.json -o t.chrome.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .export import (
    chrome_trace,
    load_trace,
    render_dashboard,
    render_spans,
    render_tail,
)


def _cmd_record(args) -> int:
    from ..configs import build

    system = build(args.config, n_nics=args.nics)
    op = (system.transmit_packets if args.direction == "tx"
          else system.receive_packets)
    # warm up with tracing off: steady state, like the profile runs
    op(args.warmup)
    system.machine.obs.enable_tracing()
    done = op(args.packets)
    system.machine.obs.disable_tracing()
    meta = {
        "config": args.config,
        "direction": args.direction,
        "packets": done,
        "warmup": args.warmup,
        "nics": args.nics,
        "cpu_hz": system.machine.cpu_hz,
    }
    system.machine.obs.save(args.output, meta=meta)
    print(f"recorded {done} {args.direction} packets on {args.config} "
          f"-> {args.output}")
    return 0


def _cmd_summary(args) -> int:
    print(render_dashboard(load_trace(args.trace)))
    return 0


def _cmd_render(args) -> int:
    doc = load_trace(args.trace)
    print(render_spans(doc, name=args.span, limit=args.limit,
                       show_events=not args.no_events))
    return 0


def _cmd_tail(args) -> int:
    doc = load_trace(args.trace)
    print(render_tail(doc.get("events") or [], n=args.n))
    return 0


def _cmd_chrome(args) -> int:
    doc = load_trace(args.trace)
    out = chrome_trace(doc)
    with open(args.output, "w") as fh:
        json.dump(out, fh)
    print(f"wrote {len(out['traceEvents'])} trace_event records "
          f"-> {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="record and render observability traces",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rec = sub.add_parser("record", help="run a workload with tracing on")
    rec.add_argument("--config", default="domU-twin",
                     choices=("linux", "dom0", "domU", "domU-twin"))
    rec.add_argument("--direction", default="tx", choices=("tx", "rx"))
    rec.add_argument("--packets", type=int, default=4)
    rec.add_argument("--warmup", type=int, default=32)
    rec.add_argument("--nics", type=int, default=1)
    rec.add_argument("-o", "--output", default="trace.json")
    rec.set_defaults(fn=_cmd_record)

    summ = sub.add_parser("summary", help="counters/histograms dashboard")
    summ.add_argument("trace")
    summ.set_defaults(fn=_cmd_summary)

    ren = sub.add_parser("render", help="reconstruct spans from a trace")
    ren.add_argument("trace")
    ren.add_argument("--span", default=None,
                     help="only spans with this name (e.g. packet.tx)")
    ren.add_argument("--limit", type=int, default=4,
                     help="render at most N spans (newest)")
    ren.add_argument("--no-events", action="store_true",
                     help="span skeleton only, hide correlated records")
    ren.set_defaults(fn=_cmd_render)

    tail = sub.add_parser("tail", help="last N trace-ring records")
    tail.add_argument("trace")
    tail.add_argument("-n", type=int, default=16)
    tail.set_defaults(fn=_cmd_tail)

    chrome = sub.add_parser("chrome", help="export Chrome trace_event JSON")
    chrome.add_argument("trace")
    chrome.add_argument("-o", "--output", default="trace.chrome.json")
    chrome.set_defaults(fn=_cmd_chrome)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:               # e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
