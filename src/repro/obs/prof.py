"""Exact cross-layer cycle attribution (``repro.obs.prof``).

Every simulated cycle in the machine funnels through one method —
``CycleAccount.charge`` — whether it comes from the interpreter's
per-instruction costs, a native support routine, the hypervisor's
mechanism costs, or a kernel model. The profiler exploits that choke
point: :meth:`Profiler.enable` shadows the account's ``charge`` with a
recording closure (an *instance* attribute, so the class method and
every disabled-mode code path stay byte-identical), and
:meth:`Profiler.disable` restores whatever ``charge`` resolved to
before — the bare class method, or a pre-existing instance shadow such
as a fault-injection hook, which the recorder chains to rather than
bypassing. While enabled, each charge
is attributed to a key of

    ``(category, context, pc)``

where ``category`` is the paper's profile category (``dom0`` / ``domU``
/ ``Xen`` / ``e1000``), ``context`` is a small stack of coarse frames
pushed around rare events (native-routine invocations, hypervisor
phases such as ``xen:hypercall``, twin fast-path stages), and ``pc`` is
the interpreter's program counter at charge time. Because the recording
closure calls the original ``charge`` first and adds exactly the cycles
it accepted, per-category sample sums equal the ``cycles.*`` counter
movement **bit-exactly, by construction** — the figure 7/8 profiles are
regenerated from profiler output and asserted against the account.

Symbolization is lazy (at :meth:`Profiler.snapshot` time): a pc inside
a loaded program resolves through the :class:`CodeRegistry` to the
nearest exported function label (``.globl``) at or below it, falling
back to any label, then the program name. The interpreter advances
``eip`` to the fall-through address *before* a handler charges, so a
sample's pc is the successor of the instruction that paid — attribution
granularity is the enclosing function and the skew is one instruction
at function boundaries. Proof-elided SVM check sites registered via
:meth:`Profiler.tag_sites` get an extra ``svm.anchor`` leaf frame so
elision cost is visible in flamegraphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Schema tag of the profile document.
PROFILE_SCHEMA = "repro-profile/v1"

#: ``cpu.eip`` parks here whenever no driver code is being interpreted
#: (kept in sync with ``machine.cpu.SENTINEL_RETURN`` — re-declared to
#: avoid importing the machine layer into the observability layer).
_SENTINEL_RETURN = 0xDEAD0000

#: sentinel distinguishing "no prior ``charge`` shadow existed" from a
#: saved shadow that is literally ``None``.
_NO_SHADOW = object()


class Profiler:
    """Cycle-attribution recorder for one machine's :class:`CycleAccount`.

    Zero-cost while disabled: nothing is installed anywhere, the
    account's ``charge`` resolves to the plain class method, and the
    interpreter's guards are the same shape as the tracer's
    (``prof is not None and prof.enabled``).
    """

    def __init__(self, registry=None):
        self.enabled = False
        self.registry = registry
        self._cpu = None
        self._account = None
        #: the recording closure we installed (identity-checked on
        #: disable so a foreign shadow stacked on top is detected).
        self._installed = None
        #: prior ``charge`` instance attribute, saved at enable time and
        #: restored on disable (``_NO_SHADOW`` when there was none).
        self._saved_shadow = _NO_SHADOW
        #: (category, context, pc) -> [cycles, charges]
        self._samples: Dict[Tuple, List[int]] = {}
        #: current coarse context, rebuilt as a tuple on (rare) push/pop
        #: so the recording closure reads one attribute.
        self._ctx: Tuple[str, ...] = ()
        #: pc -> tag for sites with special meaning (svm.anchor).
        self._site_tags: Dict[int, str] = {}
        self._sym_cache: Dict[int, Optional[str]] = {}
        self._sym_epoch = -1

    # -- wiring --------------------------------------------------------------

    def bind(self, cpu, account):
        """Attach to a machine's CPU (for pc capture and symbolization)
        and cycle account (the charge choke point)."""
        self._cpu = cpu
        self._account = account

    def tag_sites(self, loaded, indices, tag: str):
        """Mark instruction sites (by index into ``loaded``) whose charges
        should carry an extra leaf frame ``tag``. Charges happen with
        ``eip`` already advanced, so the fall-through address is the key
        that matches instruction ``i`` exactly."""
        for index in indices:
            self._site_tags[loaded.next_addrs[index]] = tag

    # -- recording -----------------------------------------------------------

    def enable(self):
        """Install the recording charge on top of whatever ``charge``
        currently resolves to (the class method, or a prior instance
        shadow such as a fault-injection hook, which is saved and
        chained to). Double-enable is refused: the closure would record
        every charge twice and ``disable`` could not unwind the pair."""
        if self._account is None:
            raise RuntimeError("profiler is not bound to a machine")
        if self.enabled:
            raise RuntimeError(
                "profiler is already enabled; disable() it first")
        account = self._account
        # the currently-effective charge: a prior instance shadow if one
        # is installed, else the plain bound class method. Chaining to
        # it (instead of the raw class method) keeps stacked shadows --
        # fault injection, a second recorder -- live while profiling.
        self._saved_shadow = account.__dict__.get("charge", _NO_SHADOW)
        prior_charge = account.charge
        cpu = self._cpu
        samples = self._samples

        def recording_charge(category, cycles, _prior=prior_charge,
                             _cpu=cpu, _samples=samples, _prof=self):
            _prior(category, cycles)
            key = (category, _prof._ctx, _cpu.eip)
            cell = _samples.get(key)
            if cell is None:
                _samples[key] = [cycles, 1]
            else:
                cell[0] += cycles
                cell[1] += 1

        account.charge = recording_charge
        self._installed = recording_charge
        self.enabled = True

    def disable(self):
        """Remove the recording charge and restore whatever shadowed
        ``charge`` before :meth:`enable` (or the bare class method).
        Idempotent when not enabled; raises if something else shadowed
        ``charge`` on top of the profiler, since popping would delete
        the wrong layer."""
        if not self.enabled:
            return
        account = self._account
        current = account.__dict__.get("charge")
        if current is not self._installed:
            raise RuntimeError(
                "another charge shadow was installed on top of the "
                "profiler; remove it before disable()")
        if self._saved_shadow is _NO_SHADOW:
            account.__dict__.pop("charge", None)
        else:
            account.charge = self._saved_shadow
        self._installed = None
        self._saved_shadow = _NO_SHADOW
        self.enabled = False

    def reset(self):
        self._samples = {}
        self._ctx = ()
        if self.enabled:
            # the recording closure captured the old dict; reinstall
            self.disable()
            self.enable()

    # -- context frames ------------------------------------------------------

    def push_phase(self, name: str):
        self._ctx = self._ctx + (name,)

    def pop_phase(self):
        self._ctx = self._ctx[:-1]

    # -- symbolization -------------------------------------------------------

    def _symbolize(self, pc: Optional[int]) -> Optional[str]:
        if pc is None or self._cpu is None:
            return None
        code = self._cpu.code
        if code.epoch != self._sym_epoch:
            self._sym_cache.clear()
            self._sym_epoch = code.epoch
        if pc in self._sym_cache:
            return self._sym_cache[pc]
        sym = None
        if code.contains(pc):
            try:
                loaded = code.program_at(pc)
            except Exception:
                loaded = None
            if loaded is not None:
                best, best_addr = None, -1
                for name in loaded.program.globals_:
                    addr = loaded.symbols.get(name)
                    if addr is not None and best_addr < addr <= pc:
                        best, best_addr = name, addr
                if best is None:
                    for name, addr in loaded.symbols.items():
                        if best_addr < addr <= pc:
                            best, best_addr = name, addr
                sym = (f"{loaded.name}:{best}" if best is not None
                       else loaded.name)
        self._sym_cache[pc] = sym
        return sym

    # -- views ---------------------------------------------------------------

    def category_totals(self) -> Dict[str, int]:
        """Per-category cycle sums over the recorded samples. Equal to
        the ``cycles.*`` counter movement over the enabled window."""
        totals: Dict[str, int] = {}
        for (category, _ctx, _pc), (cycles, _n) in self._samples.items():
            totals[category] = totals.get(category, 0) + cycles
        return totals

    @property
    def total(self) -> int:
        return sum(cell[0] for cell in self._samples.values())

    def snapshot(self, meta: Optional[Dict] = None) -> Dict:
        """The profile document: per-category totals plus every sample
        with its symbolized stack, sorted by cycles descending."""
        samples = []
        for (category, ctx, pc), (cycles, count) in self._samples.items():
            pc_out = (None if pc is None or pc == _SENTINEL_RETURN else pc)
            sym = self._symbolize(pc_out)
            stack = [category]
            stack.extend(ctx)
            if sym is not None:
                stack.append(sym)
            tag = self._site_tags.get(pc) if pc is not None else None
            if tag is not None:
                stack.append(tag)
            samples.append({
                "layer": category,
                "stack": stack,
                "symbol": sym or (ctx[-1] if ctx else category),
                "pc": pc_out,
                "cycles": cycles,
                "count": count,
            })
        samples.sort(key=lambda s: (-s["cycles"], s["stack"]))
        return {
            "schema": PROFILE_SCHEMA,
            "meta": dict(meta or {}),
            "categories": self.category_totals(),
            "total": self.total,
            "samples": samples,
        }


# -- aggregations over profile documents ------------------------------------


def load_profile(path: str) -> Dict:
    import json

    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"{path}: not a {PROFILE_SCHEMA} document "
            f"(schema={doc.get('schema')!r})"
        )
    return doc


def collapsed_stacks(doc: Dict) -> Dict[str, List[int]]:
    """Fold samples by semicolon-joined stack: the flamegraph input
    format. Returns ``{folded_stack: [cycles, count]}``."""
    folded: Dict[str, List[int]] = {}
    for s in doc["samples"]:
        key = ";".join(s["stack"])
        cell = folded.get(key)
        if cell is None:
            folded[key] = [s["cycles"], s["count"]]
        else:
            cell[0] += s["cycles"]
            cell[1] += s["count"]
    return folded


def format_collapsed(doc: Dict) -> str:
    folded = collapsed_stacks(doc)
    return "\n".join(f"{stack} {cycles}"
                     for stack, (cycles, _n) in sorted(folded.items()))


def call_tree(doc: Dict) -> Dict:
    """Nest samples into ``{name, self, total, children}`` by stack
    prefix. ``self`` is cycles attributed exactly at that frame,
    ``total`` includes descendants."""
    root = {"name": "all", "self": 0, "total": 0, "children": {}}
    for s in doc["samples"]:
        root["total"] += s["cycles"]
        node = root
        for frame in s["stack"]:
            child = node["children"].get(frame)
            if child is None:
                child = node["children"][frame] = {
                    "name": frame, "self": 0, "total": 0, "children": {},
                }
            child["total"] += s["cycles"]
            node = child
        node["self"] += s["cycles"]
    return root


def format_tree(doc: Dict, min_share: float = 0.002) -> str:
    """Render the call tree, pruning frames below ``min_share`` of the
    profile total."""
    root = call_tree(doc)
    grand = root["total"] or 1
    lines = [f"total: {root['total']} cycles"]

    def walk(node, depth):
        children = sorted(node["children"].values(),
                          key=lambda c: (-c["total"], c["name"]))
        for child in children:
            if child["total"] / grand < min_share:
                continue
            pct = 100.0 * child["total"] / grand
            lines.append(
                f"{'  ' * depth}{child['name']:<40s} "
                f"{child['total']:>12d} ({pct:5.1f}%)  self={child['self']}"
            )
            walk(child, depth + 1)

    walk(root, 1)
    return "\n".join(lines)


def diff_profiles(a: Dict, b: Dict) -> List[Dict]:
    """Per-stack cycle movement from ``a`` to ``b``, largest absolute
    delta first."""
    fa = {k: v[0] for k, v in collapsed_stacks(a).items()}
    fb = {k: v[0] for k, v in collapsed_stacks(b).items()}
    rows = []
    for stack in sorted(set(fa) | set(fb)):
        before, after = fa.get(stack, 0), fb.get(stack, 0)
        if before == after:
            continue
        rows.append({"stack": stack, "before": before, "after": after,
                     "delta": after - before})
    rows.sort(key=lambda r: (-abs(r["delta"]), r["stack"]))
    return rows


def format_diff(a: Dict, b: Dict, limit: int = 30) -> str:
    rows = diff_profiles(a, b)
    ta, tb = a.get("total", 0), b.get("total", 0)
    lines = [f"total: {ta} -> {tb} ({tb - ta:+d} cycles)"]
    for r in rows[:limit]:
        lines.append(f"{r['delta']:>+12d}  {r['before']:>10d} -> "
                     f"{r['after']:<10d}  {r['stack']}")
    if len(rows) > limit:
        lines.append(f"... {len(rows) - limit} more changed stacks")
    return "\n".join(lines)
