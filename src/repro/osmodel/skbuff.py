"""sk_buff: the Linux socket buffer, living in simulated guest memory.

An :class:`SkBuff` is a *view* over a 96-byte struct at a virtual address
in some domain's address space; all field accesses are real memory reads/
writes, so the driver binary (which manipulates the same bytes with loads
and stores) and the Python kernel code see one coherent object — the
paper's "single instance of driver data".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..machine.paging import AddressSpace
from . import layout as L


class SkBuff:
    """View of an sk_buff struct at ``addr`` in ``aspace``."""

    def __init__(self, aspace: AddressSpace, addr: int):
        self.aspace = aspace
        self.addr = addr

    # -- raw field access ------------------------------------------------------

    def _get(self, off: int, size: int = 4) -> int:
        return self.aspace.read(self.addr + off, size)

    def _set(self, off: int, value: int, size: int = 4):
        self.aspace.write(self.addr + off, size, value)

    # -- fields -------------------------------------------------------------------

    @property
    def dev(self) -> int:
        return self._get(L.SKB_DEV)

    @dev.setter
    def dev(self, value: int):
        self._set(L.SKB_DEV, value)

    @property
    def data(self) -> int:
        return self._get(L.SKB_DATA)

    @data.setter
    def data(self, value: int):
        self._set(L.SKB_DATA, value)

    @property
    def len(self) -> int:
        return self._get(L.SKB_LEN)

    @len.setter
    def len(self, value: int):
        self._set(L.SKB_LEN, value)

    @property
    def head(self) -> int:
        return self._get(L.SKB_HEAD)

    @property
    def end(self) -> int:
        return self._get(L.SKB_END)

    @property
    def tail(self) -> int:
        return self._get(L.SKB_TAIL)

    @tail.setter
    def tail(self, value: int):
        self._set(L.SKB_TAIL, value)

    @property
    def protocol(self) -> int:
        return self._get(L.SKB_PROTOCOL, 2)

    @protocol.setter
    def protocol(self, value: int):
        self._set(L.SKB_PROTOCOL, value, 2)

    @property
    def nr_frags(self) -> int:
        return self._get(L.SKB_NR_FRAGS)

    @nr_frags.setter
    def nr_frags(self, value: int):
        self._set(L.SKB_NR_FRAGS, value)

    @property
    def refcnt(self) -> int:
        return self._get(L.SKB_REFCNT)

    @refcnt.setter
    def refcnt(self, value: int):
        self._set(L.SKB_REFCNT, value)

    @property
    def pool(self) -> int:
        return self._get(L.SKB_POOL)

    @pool.setter
    def pool(self, value: int):
        self._set(L.SKB_POOL, value)

    @property
    def truesize(self) -> int:
        return self._get(L.SKB_TRUESIZE)

    # -- buffer manipulation (skb_put / skb_reserve / frags) ---------------------------

    def reserve(self, n: int):
        self.data = self.data + n
        self.tail = self.tail + n

    def put(self, n: int) -> int:
        """Extend the data area by n bytes; returns the old tail pointer."""
        old_tail = self.tail
        if old_tail + n > self.end:
            raise ValueError("skb_put beyond end of buffer")
        self.tail = old_tail + n
        self.len = self.len + n
        return old_tail

    def pull(self, n: int) -> int:
        self.data = self.data + n
        self.len = self.len - n
        return self.data

    def headroom(self) -> int:
        return self.data - self.head

    def frag(self, i: int) -> Tuple[int, int, int]:
        base = self.addr + L.SKB_FRAGS + i * L.SKB_FRAG_ENTRY
        return (
            self.aspace.read_u32(base + L.SKB_FRAG_PAGE),
            self.aspace.read_u32(base + L.SKB_FRAG_OFF),
            self.aspace.read_u32(base + L.SKB_FRAG_SIZE),
        )

    def set_frag(self, i: int, page: int, off: int, size: int):
        if i >= L.SKB_MAX_FRAGS:
            raise ValueError("too many fragments")
        base = self.addr + L.SKB_FRAGS + i * L.SKB_FRAG_ENTRY
        self.aspace.write_u32(base + L.SKB_FRAG_PAGE, page)
        self.aspace.write_u32(base + L.SKB_FRAG_OFF, off)
        self.aspace.write_u32(base + L.SKB_FRAG_SIZE, size)

    @property
    def data_len(self) -> int:
        """Bytes held in fragments (Linux's skb->data_len)."""
        return self._get(L.SKB_DATA_LEN, 2)

    def add_frag(self, page: int, off: int, size: int):
        i = self.nr_frags
        self.set_frag(i, page, off, size)
        self.nr_frags = i + 1
        self.len = self.len + size
        self._set(L.SKB_DATA_LEN, self.data_len + size, 2)

    @property
    def linear_len(self) -> int:
        """Bytes in the linear data area (len minus fragment bytes)."""
        return self.len - self.data_len

    # -- payload access -------------------------------------------------------------------

    def write_payload(self, payload: bytes):
        self.aspace.write_bytes(self.data, payload)

    def read_payload(self, n: Optional[int] = None) -> bytes:
        return self.aspace.read_bytes(self.data,
                                      self.linear_len if n is None else n)

    def __repr__(self):  # pragma: no cover
        return f"<SkBuff @{self.addr:#010x} len={self.len}>"


def init_skb(aspace: AddressSpace, skb_addr: int, buffer_addr: int,
             buffer_size: int = L.SKB_BUFFER_SIZE) -> SkBuff:
    """Initialise a freshly-allocated sk_buff struct over its data buffer."""
    aspace.write_bytes(skb_addr, b"\x00" * L.SKB_STRUCT_SIZE)
    skb = SkBuff(aspace, skb_addr)
    skb._set(L.SKB_HEAD, buffer_addr)
    skb._set(L.SKB_DATA, buffer_addr)
    skb._set(L.SKB_TAIL, buffer_addr)
    skb._set(L.SKB_END, buffer_addr + buffer_size)
    skb._set(L.SKB_TRUESIZE, buffer_size + L.SKB_STRUCT_SIZE)
    skb.refcnt = 1
    return skb
