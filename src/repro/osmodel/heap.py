"""Kernel heap allocator over a domain's address space.

A slab-flavoured allocator: requests are rounded up to a power-of-two size
class and naturally aligned, so allocations of up to a page never straddle
a physical page boundary — which is what lets the NIC DMA an sk_buff data
buffer with a single (physical) bus address, as on Linux.

Page-or-larger allocations take whole pages backed by *contiguous
physical frames* (``dma_alloc_coherent`` semantics for descriptor rings).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..machine.memory import PAGE_SIZE
from ..machine.paging import AddressSpace
from .layout import KERNEL_HEAP_BASE, KERNEL_HEAP_LIMIT

_MIN_CLASS = 32


class HeapError(MemoryError):
    """Allocation failure or invalid free."""

    pass


class KernelHeap:
    def __init__(self, aspace: AddressSpace,
                 base: int = KERNEL_HEAP_BASE,
                 limit: int = KERNEL_HEAP_LIMIT):
        self.aspace = aspace
        self.base = base
        self.limit = limit
        self._brk = base
        self._free: Dict[int, List[int]] = {}
        self._sizes: Dict[int, int] = {}   # vaddr -> size class
        self.allocated_bytes = 0
        self.total_allocs = 0

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _size_class(size: int) -> int:
        if size <= 0:
            raise HeapError("allocation size must be positive")
        cls = _MIN_CLASS
        while cls < size:
            cls <<= 1
        return cls

    def _grow(self, nbytes: int) -> int:
        start = self._brk
        end = start + nbytes
        if end > self.limit:
            raise HeapError("kernel heap exhausted")
        # Map any pages not yet backed.
        first_page = start & ~(PAGE_SIZE - 1)
        if start % PAGE_SIZE == 0:
            unmapped_from = start
        else:
            unmapped_from = first_page + PAGE_SIZE
        page = unmapped_from
        while page < end:
            if not self.aspace.is_mapped(page):
                frame = self.aspace.phys.allocate_frame()
                self.aspace.map_page(page, frame)
            page += PAGE_SIZE
        self._brk = end
        return start

    # -- public API -----------------------------------------------------------------

    def alloc(self, size: int, zero: bool = True) -> int:
        """kmalloc: power-of-two size class, naturally aligned."""
        cls = self._size_class(size)
        self.total_allocs += 1
        free_list = self._free.get(cls)
        if free_list:
            addr = free_list.pop()
        else:
            if cls >= PAGE_SIZE:
                return self.alloc_pages((cls + PAGE_SIZE - 1) // PAGE_SIZE)
            # align brk to the size class
            misalign = self._brk % cls
            if misalign:
                self._grow(cls - misalign)
            addr = self._grow(cls)
        self._sizes[addr] = cls
        self.allocated_bytes += cls
        if zero:
            self.aspace.write_bytes(addr, b"\x00" * cls)
        return addr

    def alloc_pages(self, npages: int) -> Tuple[int]:
        """Allocate page-aligned, physically-contiguous pages; returns the
        virtual address (physical contiguity is guaranteed because frames
        are allocated in one run)."""
        misalign = self._brk % PAGE_SIZE
        if misalign:
            self._grow(PAGE_SIZE - misalign)
        start = self._brk
        frames = self.aspace.phys.allocate_frames(npages)
        for i, frame in enumerate(frames):
            vaddr = start + i * PAGE_SIZE
            if self.aspace.is_mapped(vaddr):
                self.aspace.unmap_page(vaddr)
            self.aspace.map_page(vaddr, frame)
        self._brk = start + npages * PAGE_SIZE
        self._sizes[start] = npages * PAGE_SIZE
        self.allocated_bytes += npages * PAGE_SIZE
        self.total_allocs += 1
        return start

    def free(self, addr: int):
        cls = self._sizes.pop(addr, None)
        if cls is None:
            raise HeapError(f"free of unknown address {addr:#010x}")
        self.allocated_bytes -= cls
        self._free.setdefault(cls, []).append(addr)

    def owns(self, addr: int) -> bool:
        return self.base <= addr < self._brk
