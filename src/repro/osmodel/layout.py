"""Kernel virtual-address layout and in-memory struct layouts.

Driver code is assembly: it manipulates ``sk_buff``/``net_device``/adapter
structures through loads and stores at these offsets. The same constants
are used by the Python-side kernel (support routines) and are exported to
the assembler as compile-time constants (:data:`ASM_CONSTANTS`), playing
the role of C struct offsets baked into a compiled driver.
"""

from __future__ import annotations

from typing import Dict

# ---------------------------------------------------------------------------
# Per-domain kernel virtual layout
# ---------------------------------------------------------------------------

KERNEL_BASE = 0xC0000000
KERNEL_STACK_BASE = 0xC0800000       # stack occupies the pages below the top
KERNEL_STACK_PAGES = 8
KERNEL_STACK_TOP = KERNEL_STACK_BASE + KERNEL_STACK_PAGES * 0x1000
KERNEL_HEAP_BASE = 0xC1000000
KERNEL_HEAP_LIMIT = 0xC7F00000
MODULE_CODE_BASE = 0xC8000000
MODULE_DATA_BASE = 0xC9000000
IOREMAP_BASE = 0xE0000000

# ---------------------------------------------------------------------------
# sk_buff layout (96-byte struct; data buffer allocated separately)
# ---------------------------------------------------------------------------

SKB_NEXT = 0
SKB_DEV = 4
SKB_DATA = 8
SKB_LEN = 12
SKB_HEAD = 16
SKB_END = 20
SKB_TAIL = 24
SKB_PROTOCOL = 28        # u16
SKB_DATA_LEN = 30        # u16: bytes held in fragments (len - linear)
SKB_NR_FRAGS = 32
SKB_FRAGS = 36           # up to 4 frags, 12 bytes each
SKB_FRAG_PAGE = 0        # within a frag: machine page address
SKB_FRAG_OFF = 4
SKB_FRAG_SIZE = 8
SKB_FRAG_ENTRY = 12
SKB_MAX_FRAGS = 4
SKB_REFCNT = 84
SKB_POOL = 88            # nonzero: owned by the hypervisor buffer pool
SKB_TRUESIZE = 92
SKB_STRUCT_SIZE = 96

#: Default data buffer: fits an MTU frame plus headroom in half a page, so
#: buffers never straddle a physical page (DMA-contiguity, like Linux's
#: SKB_DATA_ALIGN + slab behaviour for 2KiB allocations).
SKB_BUFFER_SIZE = 2048
NET_SKB_PAD = 64

# ---------------------------------------------------------------------------
# net_device layout
# ---------------------------------------------------------------------------

NDEV_PRIV = 0
NDEV_IRQ = 4
NDEV_MTU = 8
NDEV_FLAGS = 12
NDEV_XMIT = 16           # hard_start_xmit function pointer
NDEV_MAC = 20            # 6 bytes
NDEV_TX_PKTS = 28
NDEV_TX_BYTES = 32
NDEV_RX_PKTS = 36
NDEV_RX_BYTES = 40
NDEV_TX_ERRORS = 44
NDEV_RX_ERRORS = 48
NDEV_MEM = 52            # ioremapped MMIO base (set by the driver)
NDEV_STATE = 56          # bit0: queue stopped, bit1: carrier ok
NDEV_NAME = 60           # 16 bytes
NDEV_SIZE = 76

NDEV_FLAG_UP = 0x1
NDEV_STATE_QUEUE_STOPPED = 0x1
NDEV_STATE_CARRIER = 0x2

# ---------------------------------------------------------------------------
# Driver-private adapter struct (kmalloc'ed by e1000_probe)
# ---------------------------------------------------------------------------

ADP_NETDEV = 0
ADP_HW = 4               # ioremapped register base
ADP_TX_RING = 8          # descriptor ring virtual address
ADP_TX_COUNT = 12
ADP_TX_NEXT = 16         # next descriptor to use
ADP_TX_CLEAN = 20        # next descriptor to clean
ADP_TX_SKBS = 24         # array of skb pointers (tx_count entries)
ADP_RX_RING = 28
ADP_RX_COUNT = 32
ADP_RX_NEXT = 36         # next descriptor to clean
ADP_RX_FILL = 40         # next descriptor to (re)fill
ADP_RX_SKBS = 44
ADP_TX_LOCK = 48         # spinlock word
ADP_TXP = 52             # driver-private stats
ADP_TXB = 56
ADP_RXP = 60
ADP_RXB = 64
ADP_FLAGS = 68
ADP_WATCHDOG = 72        # timer struct address
ADP_MACSHADOW = 76       # 6 bytes
ADP_LINK = 84
ADP_TX_DMA = 88          # bus address of the tx descriptor ring
ADP_RX_DMA = 92
ADP_CLEAN_RX = 96        # function pointer: rx-clean routine
ADP_CLEAN_TX = 100       # function pointer: tx-clean routine
ADP_TX_HANG = 104        # watchdog: last observed clean index
ADP_SIZE = 128

# ---------------------------------------------------------------------------
# Kernel timer struct
# ---------------------------------------------------------------------------

TIMER_FN = 0
TIMER_ARG = 4
TIMER_EXPIRES = 8
TIMER_ACTIVE = 12
TIMER_SIZE = 16

# ---------------------------------------------------------------------------
# Ethernet constants
# ---------------------------------------------------------------------------

ETH_HLEN = 14
ETH_ALEN = 6
MTU = 1500
ETH_FRAME_LEN = MTU + ETH_HLEN

#: All of the above, exported to the assembler as named constants.
ASM_CONSTANTS: Dict[str, int] = {
    name: value
    for name, value in globals().items()
    if name.isupper() and isinstance(value, int)
}
