"""The standard (unoptimized) Xen split network path: netfront/netback.

This is the paper's ``domU`` baseline configuration (figure 1): guest
transmit crosses an I/O channel into dom0 via grant operations and a
domain switch, traverses the bridge and dom0's device layer, and finally
reaches the real NIC driver running in dom0. Receive goes the other way,
with the hypervisor grant-copying packets into the guest.

Grant-table bookkeeping is real (:mod:`repro.xen.granttable`); the driver
invocation is real binary execution; everything else charges calibrated
per-packet costs whose sums reproduce the ``domU`` bars of figures 7/8.
"""

from __future__ import annotations

from typing import List, Optional

from ..machine.memory import PAGE_SIZE
from ..xen.hypervisor import Hypervisor
from . import layout as L
from .bridge import Bridge
from .kernel import BROADCAST_MAC, Kernel
from .netdev import NetDevice
from .skbuff import SkBuff


class XenNetFront:
    """Guest-side split driver (one per virtual interface)."""

    def __init__(self, backend: "XenNetBack", guest_kernel: Kernel,
                 mac: bytes, netdev_addr: int):
        self.backend = backend
        self.kernel = guest_kernel
        self.mac = bytes(mac)
        #: the dom0 net_device this vif is bridged to
        self.netdev_addr = netdev_addr
        self.tx_packets = 0
        self.tx_bytes = 0
        self.tx_dropped = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self._tx_buf = guest_kernel.heap.alloc_pages(1)
        backend.register_front(self)

    def transmit(self, payload_len: int, dst_mac: bytes = BROADCAST_MAC,
                 payload: Optional[bytes] = None) -> bool:
        costs = self.kernel.costs
        self.kernel.charge(costs.kernel_tx_stack, phase="tx_stack")
        self.kernel.charge(costs.pv_kernel_tx_overhead, "Xen",
                           phase="pv_tx_overhead")
        frame_len = min(L.ETH_HLEN + payload_len, PAGE_SIZE)
        header = bytes(dst_mac) + self.mac + (0x0800).to_bytes(2, "big")
        aspace = self.kernel.domain.aspace
        aspace.write_bytes(self._tx_buf, header)
        if payload is not None:
            aspace.write_bytes(self._tx_buf + L.ETH_HLEN,
                               payload[: frame_len - L.ETH_HLEN])
        # grant the packet page to dom0 and signal the I/O channel
        xen = self.backend.xen
        frame = aspace.translate(self._tx_buf) >> 12
        table = xen.grant_tables[self.kernel.domain.domid]
        xen.charge_xen(xen.costs.grant_issue, phase="grant_issue")
        ref = table.issue(frame, self.backend.dom0_kernel.domain.domid)
        xen.charge_xen(xen.costs.event_channel_send, phase="event_send")
        ok = self.backend.transmit_from_guest(self, ref,
                                              self._tx_buf & 0xFFF,
                                              frame_len)
        xen.charge_xen(xen.costs.grant_revoke, phase="grant_revoke")
        table.revoke(ref)
        if ok:
            self.tx_packets += 1
            self.tx_bytes += frame_len
        else:
            self.tx_dropped += 1
        return ok

    def deliver(self, payload: bytes):
        """Receive side: the packet has been grant-copied into the guest;
        process it up the guest stack."""
        costs = self.kernel.costs
        self.kernel.charge(costs.kernel_rx_stack, phase="rx_stack")
        self.kernel.charge(costs.pv_kernel_rx_overhead, "Xen",
                           phase="pv_rx_overhead")
        self.rx_packets += 1
        self.rx_bytes += len(payload)


class XenNetBack:
    """dom0-side backend plus the bridge hookup."""

    def __init__(self, xen: Hypervisor, dom0_kernel: Kernel):
        self.xen = xen
        self.dom0_kernel = dom0_kernel
        self.bridge = Bridge()
        self.fronts: List[XenNetFront] = []
        self.rx_no_front = 0
        # bridge-forwarding receive disposition for the dom0 kernel
        dom0_kernel.rx_handler = self.backend_rx

    def register_front(self, front: XenNetFront):
        self.fronts.append(front)
        self.bridge.learn(front.mac, front)

    # -- guest -> NIC ------------------------------------------------------------

    def transmit_from_guest(self, front: XenNetFront, ref: int,
                            offset: int, frame_len: int) -> bool:
        xen = self.xen
        costs = xen.costs
        dom0 = self.dom0_kernel
        # I/O-channel crossing into the driver domain.
        xen.charge_xen(costs.domain_switch, phase="domain_switch")
        xen.charge_xen(costs.xen_std_tx_misc, phase="std_tx_misc")
        frame = xen.grant_map(front.kernel.domain, ref, dom0.domain)
        dom0.charge(costs.backend_tx, phase="netback:tx")
        dom0.charge(costs.bridge_forward, phase="netback:bridge")
        self.bridge.learn(front.mac, front)
        dom0.charge(costs.dom0_tx_stack, phase="tx_stack")
        # Build a dom0 skb: header pulled into the linear area, packet body
        # chained as a fragment of the granted (guest) page.
        skb = dom0.alloc_skb(L.ETH_HLEN + 64)
        # read the header out of the granted frame (mapped by dom0)
        header = self._read_frame(frame, offset, L.ETH_HLEN)
        skb.put(L.ETH_HLEN)
        dom0.memory_view().write_bytes(skb.data, header)
        body = frame_len - L.ETH_HLEN
        if body > 0:
            skb.add_frag(frame << 12, offset + L.ETH_HLEN, body)
        skb.dev = front.netdev_addr
        ndev = NetDevice(dom0.memory_view(), front.netdev_addr)
        # run the real driver in dom0 context
        machine = xen.machine
        prev_space = machine.cpu.address_space
        machine.cpu.address_space = dom0.domain.aspace
        try:
            ok = dom0.transmit_skb(skb, ndev)
        finally:
            machine.cpu.address_space = prev_space
        xen.grant_unmap(front.kernel.domain, ref, dom0.domain)
        return ok

    def _read_frame(self, frame: int, offset: int, n: int) -> bytes:
        return self.xen.machine.phys.read_bytes((frame << 12) + offset, n)

    # -- NIC -> guest -----------------------------------------------------------------

    def backend_rx(self, skb_addr: int):
        """dom0 receive disposition in bridge mode: the driver handed the
        packet to netif_rx; bridge it to the owning guest and grant-copy."""
        xen = self.xen
        costs = xen.costs
        dom0 = self.dom0_kernel
        skb = SkBuff(dom0.memory_view(), skb_addr)
        dom0.charge(costs.kernel_rx_stack,      # dom0 softirq + skb handling
                    phase="rx_stack")
        dom0.charge(costs.bridge_forward, phase="netback:bridge")
        dom0.charge(costs.backend_rx, phase="netback:rx")
        dst_mac = dom0.memory_view().read_bytes(skb.data - L.ETH_HLEN,
                                                L.ETH_ALEN)
        front = self.bridge.lookup(dst_mac)
        if front is None and self.fronts:
            front = self.fronts[0]
        payload = skb.read_payload()
        dom0.free_skb(skb_addr)
        if front is None:
            self.rx_no_front += 1
            return
        # hypervisor grant-copies the packet into the guest and switches
        xen.charge_xen(costs.grant_copy_per_packet, phase="grant_copy")
        xen.charge_xen(costs.event_channel_send, phase="event_send")
        xen.charge_xen(costs.domain_switch, phase="domain_switch")
        xen.charge_xen(costs.xen_std_rx_misc, phase="std_rx_misc")
        front.deliver(payload)
