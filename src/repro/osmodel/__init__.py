"""Mini-Linux kernel model: heap, sk_buffs, netdev, support routines."""

from . import layout
from .heap import HeapError, KernelHeap
from .kernel import BROADCAST_MAC, DriverModule, Kernel, KernelError
from .netdev import NetDevice
from .skbuff import SkBuff, init_skb
from .support import FAST_PATH_ROUTINES, SupportError, SupportLibrary

__all__ = [
    "BROADCAST_MAC",
    "DriverModule",
    "FAST_PATH_ROUTINES",
    "HeapError",
    "Kernel",
    "KernelError",
    "KernelHeap",
    "NetDevice",
    "SkBuff",
    "SupportError",
    "SupportLibrary",
    "init_skb",
    "layout",
]
