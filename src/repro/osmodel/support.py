"""The guest-kernel driver support library.

This is the body of kernel code a Linux driver links against: the paper
counts 97 distinct support routines used by the Intel e1000 driver, of
which only the 10 in Table 1 are called during error-free transmit and
receive. Here every routine is a *native* function (Python) registered
with the machine so the driver binary calls it by symbol through the
normal call instruction — the same boundary the paper's loader manages.

Each call charges its calibrated cost to the owning domain's category and
is recorded in the kernel's dynamic trace, which is how the Table 1
benchmark discovers the fast-path set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from ..machine.cpu import Cpu
from . import layout as L
from .skbuff import SkBuff

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: Table 1 of the paper: routines called during error-free tx/rx.
FAST_PATH_ROUTINES = (
    "netdev_alloc_skb",
    "dev_kfree_skb_any",
    "netif_rx",
    "dma_map_single",
    "dma_map_page",
    "dma_unmap_single",
    "dma_unmap_page",
    "spin_trylock",
    "spin_unlock_irqrestore",
    "eth_type_trans",
)


class SupportError(Exception):
    """A support routine was used in an unsupported way (e.g. deadlock)."""

    pass


class SupportLibrary:
    """Driver support routines for one kernel instance.

    Routines are registered as natives named ``<domain>.<routine>``; the
    module loader binds a driver's bare import names against this map.
    """

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.addresses: Dict[str, int] = {}
        self._register_all()

    # -- registration machinery ---------------------------------------------------

    def _bind(self, name: str, impl: Callable, nargs: int):
        kernel = self.kernel

        def native(cpu: Cpu, _impl=impl, _nargs=nargs, _name=name):
            kernel.record_support_call(_name)
            args = [cpu.read_stack_arg(i) for i in range(_nargs)]
            return _impl(*args)

        addr = self.kernel.machine.register_native(
            f"{kernel.domain.name}.{name}",
            native,
            cost=kernel.costs.support_cost(name),
            category=kernel.domain.category,
        )
        self.addresses[name] = addr

    def _register_all(self):
        bind = self._bind
        # -- Table 1: the fast path ------------------------------------------
        bind("netdev_alloc_skb", self.netdev_alloc_skb, 2)
        bind("dev_kfree_skb_any", self.dev_kfree_skb_any, 1)
        bind("netif_rx", self.netif_rx, 1)
        bind("dma_map_single", self.dma_map_single, 4)
        bind("dma_map_page", self.dma_map_page, 4)
        bind("dma_unmap_single", self.dma_unmap_single, 3)
        bind("dma_unmap_page", self.dma_unmap_page, 3)
        bind("spin_trylock", self.spin_trylock, 1)
        bind("spin_unlock_irqrestore", self.spin_unlock_irqrestore, 2)
        bind("eth_type_trans", self.eth_type_trans, 2)
        # -- memory ------------------------------------------------------------
        bind("kmalloc", self.kmalloc, 2)
        bind("kfree", self.kfree, 1)
        bind("dma_alloc_coherent", self.dma_alloc_coherent, 2)
        bind("dma_free_coherent", self.dma_free_coherent, 2)
        bind("memcpy_support", self.memcpy_support, 3)
        bind("memset_support", self.memset_support, 3)
        # -- netdev lifecycle -----------------------------------------------------
        bind("alloc_etherdev", self.alloc_etherdev, 1)
        bind("register_netdev", self.register_netdev, 1)
        bind("unregister_netdev", self.unregister_netdev, 1)
        bind("free_netdev", self.free_netdev, 1)
        bind("netif_start_queue", self.netif_start_queue, 1)
        bind("netif_stop_queue", self.netif_stop_queue, 1)
        bind("netif_wake_queue", self.netif_wake_queue, 1)
        bind("netif_queue_stopped", self.netif_queue_stopped, 1)
        bind("netif_carrier_on", self.netif_carrier_on, 1)
        bind("netif_carrier_off", self.netif_carrier_off, 1)
        # -- MMIO / PCI --------------------------------------------------------------
        bind("ioremap", self.ioremap, 2)
        bind("iounmap", self.iounmap, 1)
        bind("pci_enable_device", self.pci_enable_device, 1)
        bind("pci_disable_device", self.pci_disable_device, 1)
        bind("pci_set_master", self.pci_set_master, 1)
        bind("pci_request_regions", self.pci_request_regions, 2)
        bind("pci_release_regions", self.pci_release_regions, 1)
        # -- interrupts -----------------------------------------------------------------
        bind("request_irq", self.request_irq, 4)
        bind("free_irq", self.free_irq, 2)
        # -- locking ----------------------------------------------------------------------
        bind("spin_lock_init", self.spin_lock_init, 1)
        bind("spin_lock_irqsave", self.spin_lock_irqsave, 1)
        # -- timers --------------------------------------------------------------------------
        bind("init_timer", self.init_timer, 1)
        bind("mod_timer", self.mod_timer, 2)
        bind("del_timer_sync", self.del_timer_sync, 1)
        bind("msleep", self.msleep, 1)
        bind("udelay", self.udelay, 1)
        # -- skb helpers --------------------------------------------------------------------------
        bind("skb_reserve", self.skb_reserve, 2)
        bind("skb_put", self.skb_put, 2)
        bind("skb_headroom", self.skb_headroom, 1)
        # -- misc --------------------------------------------------------------------------------------
        bind("printk", self.printk, 1)
        bind("mii_check_link", self.mii_check_link, 1)
        bind("ethtool_op_get_link", self.ethtool_op_get_link, 1)
        bind("capable", self.capable, 1)
        bind("copy_from_user", self.copy_from_user, 3)
        bind("copy_to_user", self.copy_to_user, 3)

    # ======================================================================
    # Table 1 implementations
    # ======================================================================

    def netdev_alloc_skb(self, dev: int, size: int) -> int:
        skb = self.kernel.alloc_skb(size)
        skb.dev = dev
        return skb.addr

    def dev_kfree_skb_any(self, skb_addr: int) -> int:
        self.kernel.free_skb(skb_addr)
        return 0

    def netif_rx(self, skb_addr: int) -> int:
        self.kernel.netif_rx(skb_addr)
        return 0

    def dma_map_single(self, dev: int, vaddr: int, length: int,
                       direction: int) -> int:
        bus = self.kernel.dma_map(vaddr, length)
        self._iommu_map(bus, length)
        return bus

    def dma_map_page(self, page: int, offset: int, length: int,
                     direction: int) -> int:
        # ``page`` is a machine page address (our struct page analogue).
        self._iommu_map(page + offset, length)
        return page + offset

    def dma_unmap_single(self, bus: int, length: int, direction: int) -> int:
        self._iommu_unmap(bus, length)
        return 0

    def dma_unmap_page(self, bus: int, length: int, direction: int) -> int:
        self._iommu_unmap(bus, length)
        return 0

    def _iommu_map(self, bus: int, length: int):
        iommu = self.kernel.machine.iommu
        if iommu is not None:
            iommu.map_window("*", bus, length)

    def _iommu_unmap(self, bus: int, length: int):
        iommu = self.kernel.machine.iommu
        if iommu is not None:
            iommu.unmap_window("*", bus, length)

    def spin_trylock(self, lock: int) -> int:
        mem = self.kernel.memory_view()
        if mem.read_u32(lock):
            return 0
        mem.write_u32(lock, 1)
        return 1

    def spin_unlock_irqrestore(self, lock: int, flags: int) -> int:
        mem = self.kernel.memory_view()
        mem.write_u32(lock, 0)
        if flags & 1:
            self.kernel.domain.enable_virq()
        return 0

    def eth_type_trans(self, skb_addr: int, dev: int) -> int:
        mem = self.kernel.memory_view()
        skb = SkBuff(mem, skb_addr)
        raw = mem.read_bytes(skb.data + 12, 2)
        protocol = int.from_bytes(raw, "big")
        skb.protocol = protocol
        skb.dev = dev
        skb.pull(L.ETH_HLEN)
        return protocol

    # ======================================================================
    # Memory
    # ======================================================================

    def kmalloc(self, size: int, gfp: int) -> int:
        return self.kernel.heap.alloc(size)

    def kfree(self, addr: int) -> int:
        self.kernel.heap.free(addr)
        return 0

    def dma_alloc_coherent(self, size: int, dma_out: int) -> int:
        pages = (size + 0xFFF) // 0x1000
        vaddr = self.kernel.heap.alloc_pages(pages)
        bus = self.kernel.domain.aspace.translate(vaddr)
        self.kernel.domain.aspace.write_u32(dma_out, bus)
        self._iommu_map(bus, pages * 0x1000)   # persistent ring window
        return vaddr

    def dma_free_coherent(self, vaddr: int, size: int) -> int:
        self.kernel.heap.free(vaddr)
        return 0

    def memcpy_support(self, dst: int, src: int, n: int) -> int:
        mem = self.kernel.memory_view()
        mem.write_bytes(dst, mem.read_bytes(src, n))
        return dst

    def memset_support(self, dst: int, value: int, n: int) -> int:
        self.kernel.memory_view().write_bytes(dst, bytes([value & 0xFF]) * n)
        return dst

    # ======================================================================
    # netdev lifecycle
    # ======================================================================

    def alloc_etherdev(self, priv_size: int) -> int:
        netdev_addr = self.kernel.heap.alloc(L.NDEV_SIZE + priv_size + 8)
        priv = netdev_addr + ((L.NDEV_SIZE + 7) & ~7)
        self.kernel.domain.aspace.write_u32(netdev_addr + L.NDEV_PRIV, priv)
        return netdev_addr

    def register_netdev(self, netdev: int) -> int:
        self.kernel.register_netdev(netdev)
        return 0

    def unregister_netdev(self, netdev: int) -> int:
        self.kernel.unregister_netdev(netdev)
        return 0

    def free_netdev(self, netdev: int) -> int:
        self.kernel.heap.free(netdev)
        return 0

    def _netdev(self, addr: int):
        from .netdev import NetDevice
        return NetDevice(self.kernel.memory_view(), addr)

    def netif_start_queue(self, netdev: int) -> int:
        self._netdev(netdev).start_queue()
        return 0

    def netif_stop_queue(self, netdev: int) -> int:
        self._netdev(netdev).stop_queue()
        return 0

    def netif_wake_queue(self, netdev: int) -> int:
        self._netdev(netdev).start_queue()
        return 0

    def netif_queue_stopped(self, netdev: int) -> int:
        return 1 if self._netdev(netdev).queue_stopped else 0

    def netif_carrier_on(self, netdev: int) -> int:
        self._netdev(netdev).set_carrier(True)
        return 0

    def netif_carrier_off(self, netdev: int) -> int:
        self._netdev(netdev).set_carrier(False)
        return 0

    # ======================================================================
    # MMIO / PCI
    # ======================================================================

    def ioremap(self, phys: int, size: int) -> int:
        return self.kernel.ioremap(phys, size)

    def iounmap(self, vaddr: int) -> int:
        return 0

    def pci_enable_device(self, pdev: int) -> int:
        self.kernel.pci_state.add(("enabled", pdev))
        return 0

    def pci_disable_device(self, pdev: int) -> int:
        self.kernel.pci_state.discard(("enabled", pdev))
        return 0

    def pci_set_master(self, pdev: int) -> int:
        self.kernel.pci_state.add(("master", pdev))
        return 0

    def pci_request_regions(self, pdev: int, name: int) -> int:
        self.kernel.pci_state.add(("regions", pdev))
        return 0

    def pci_release_regions(self, pdev: int) -> int:
        self.kernel.pci_state.discard(("regions", pdev))
        return 0

    # ======================================================================
    # Interrupts
    # ======================================================================

    def request_irq(self, irq: int, handler: int, flags: int, arg: int) -> int:
        self.kernel.irq_handlers[irq] = (handler, arg)
        return 0

    def free_irq(self, irq: int, arg: int) -> int:
        self.kernel.irq_handlers.pop(irq, None)
        return 0

    # ======================================================================
    # Locking
    # ======================================================================

    def spin_lock_init(self, lock: int) -> int:
        self.kernel.memory_view().write_u32(lock, 0)
        return 0

    def spin_lock_irqsave(self, lock: int) -> int:
        """Returns the saved flags word (bit0 = interrupts were enabled)."""
        flags = 1 if self.kernel.domain.virq_enabled else 0
        self.kernel.domain.disable_virq()
        mem = self.kernel.memory_view()
        if mem.read_u32(lock):
            raise SupportError("spin_lock_irqsave: lock held (deadlock)")
        mem.write_u32(lock, 1)
        return flags

    # ======================================================================
    # Timers
    # ======================================================================

    def init_timer(self, timer: int) -> int:
        self.kernel.memory_view().write_bytes(timer, b"\x00" * L.TIMER_SIZE)
        return 0

    def mod_timer(self, timer: int, expires: int) -> int:
        """``expires`` is relative to now, in jiffies (Linux drivers pass
        ``jiffies + n``; our driver binary cannot read jiffies, so the
        kernel adds the base here)."""
        mem = self.kernel.memory_view()
        mem.write_u32(timer + L.TIMER_EXPIRES,
                      self.kernel.jiffies + expires)
        mem.write_u32(timer + L.TIMER_ACTIVE, 1)
        if timer not in self.kernel.timers:
            self.kernel.timers.append(timer)
        return 0

    def del_timer_sync(self, timer: int) -> int:
        self.kernel.memory_view().write_u32(timer + L.TIMER_ACTIVE, 0)
        if timer in self.kernel.timers:
            self.kernel.timers.remove(timer)
        return 0

    def msleep(self, ms: int) -> int:
        return 0

    def udelay(self, us: int) -> int:
        return 0

    # ======================================================================
    # skb helpers
    # ======================================================================

    def skb_reserve(self, skb_addr: int, n: int) -> int:
        SkBuff(self.kernel.memory_view(), skb_addr).reserve(n)
        return 0

    def skb_put(self, skb_addr: int, n: int) -> int:
        return SkBuff(self.kernel.memory_view(), skb_addr).put(n)

    def skb_headroom(self, skb_addr: int) -> int:
        return SkBuff(self.kernel.memory_view(), skb_addr).headroom()

    # ======================================================================
    # Misc
    # ======================================================================

    def printk(self, fmt_addr: int) -> int:
        mem = self.kernel.memory_view()
        raw = bytearray()
        addr = fmt_addr
        for _ in range(256):
            b = mem.read(addr, 1)
            if b == 0:
                break
            raw.append(b)
            addr += 1
        self.kernel.log.append(raw.decode("ascii", "replace"))
        return 0

    def mii_check_link(self, adapter: int) -> int:
        mem = self.kernel.memory_view()
        hw = mem.read_u32(adapter + L.ADP_HW)
        status = mem.read_u32(hw + 0x8)      # REG_STATUS
        return status & 0x2                  # STATUS_LU

    def ethtool_op_get_link(self, netdev: int) -> int:
        return 1 if self._netdev(netdev).carrier_ok else 0

    def capable(self, cap: int) -> int:
        return 1

    def copy_from_user(self, dst: int, src: int, n: int) -> int:
        return self.memcpy_support(dst, src, n) and 0

    def copy_to_user(self, dst: int, src: int, n: int) -> int:
        return self.memcpy_support(dst, src, n) and 0
