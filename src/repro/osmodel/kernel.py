"""The guest kernel model (a mini-Linux) living inside a domain.

Owns the heap, the sk_buff allocator, the support-routine library, the
IRQ table, timers, registered net devices, and the module loader that
loads driver binaries into the kernel — saving the relocation information
the TwinDrivers hypervisor loader later consumes (paper §5.2).

The network stack itself is a cost model: :meth:`tcp_transmit` charges the
calibrated TCP/IP transmit cost and then *really* invokes the driver's
``hard_start_xmit`` through the function pointer in the net_device struct;
receive likewise charges stack costs when ``netif_rx`` delivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..machine.cpu import LoadedProgram
from ..machine.machine import Machine
from ..machine.memory import PAGE_SIZE
from ..xen.costs import CostModel
from ..xen.domain import Domain
from . import layout as L
from .heap import KernelHeap
from .netdev import NetDevice
from .skbuff import SkBuff, init_skb
from .support import SupportLibrary

BROADCAST_MAC = b"\xff\xff\xff\xff\xff\xff"
ETHERTYPE_IP = 0x0800


class KernelError(Exception):
    """A kernel-model invariant was violated (bad DMA, missing xmit, ...)."""

    pass


@dataclass
class DriverModule:
    """A loaded driver plus the relocation info the dom0 module loader
    saves for the TwinDrivers hypervisor loader (paper §5.2)."""

    program: object                  # the (possibly rewritten) Program
    loaded: LoadedProgram
    data_symbols: Dict[str, int]     # comm symbol -> dom0 address
    import_map: Dict[str, int]       # support routine -> dom0 native address
    code_base: int

    def symbol(self, name: str) -> int:
        return self.loaded.symbol(name)


class Kernel:
    """The mini-Linux living in a domain: heap, skbs, IRQs, modules."""

    def __init__(self, machine: Machine, domain: Domain,
                 costs: Optional[CostModel] = None,
                 paravirtual: bool = False):
        self.machine = machine
        self.domain = domain
        self.costs = costs or CostModel()
        self.paravirtual = paravirtual
        domain.kernel = self
        # kernel stack
        domain.aspace.map_new_pages(L.KERNEL_STACK_BASE, L.KERNEL_STACK_PAGES)
        self.stack_top = L.KERNEL_STACK_TOP
        machine.cpu.add_hot_range(L.KERNEL_STACK_BASE, L.KERNEL_STACK_TOP)
        self.heap = KernelHeap(domain.aspace)
        self.irq_handlers: Dict[int, Tuple[int, int]] = {}
        self.timers: List[int] = []
        self.netdevs: List[int] = []
        self.pci_state: Set[tuple] = set()
        self.log: List[str] = []
        self.modules: List[DriverModule] = []
        #: receive disposition: called with an SkBuff address after the
        #: driver hands a packet to netif_rx. Default: local delivery.
        self.rx_handler: Callable[[int], None] = self._rx_deliver_local
        self.rx_delivered = 0
        self.rx_bytes = 0
        self.tx_sent = 0
        self.tx_dropped = 0
        #: when an skb with SKB_POOL set is freed, it is returned here
        #: instead of to the heap (the hypervisor buffer-pool hook).
        self.pool_release: Optional[Callable[[int], None]] = None
        # dynamic support-routine trace (Table 1 benchmark)
        self.tracing = False
        self.trace: Set[str] = set()
        self.support_call_counts: Dict[str, int] = {}
        self._module_code_next = L.MODULE_CODE_BASE
        self._module_data_next = L.MODULE_DATA_BASE
        self._ioremap_next = L.IOREMAP_BASE
        self._jiffies_offset = 0
        self.support = SupportLibrary(self)

    # -- basics ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.domain.name

    def memory_view(self):
        return self.domain.aspace

    def charge(self, cycles: int, category: Optional[str] = None,
               phase: Optional[str] = None):
        """Charge modelled kernel cycles; ``phase`` names the kernel
        stage for the cycle-attribution profiler (profiler-guarded, so
        the disabled path is unchanged)."""
        prof = self.machine.obs.profiler
        if phase is not None and prof.enabled:
            # pre-namespaced phases (netback:tx) pass through verbatim
            prof.push_phase(phase if ":" in phase else "kernel:" + phase)
            try:
                self.machine.account.charge(
                    category or self.domain.category, int(cycles))
            finally:
                prof.pop_phase()
        else:
            self.machine.account.charge(category or self.domain.category,
                                        int(cycles))

    @property
    def jiffies(self) -> int:
        """1 kHz tick derived from consumed cycles (plus test offset)."""
        return (self.machine.cycles // (self.machine.cpu_hz // 1000)
                + self._jiffies_offset)

    def advance_jiffies(self, n: int):
        """Let virtual wall-clock time pass (timers, watchdogs)."""
        self._jiffies_offset += n

    def record_support_call(self, name: str):
        self.support_call_counts[name] = (
            self.support_call_counts.get(name, 0) + 1
        )
        if self.tracing:
            self.trace.add(name)

    def start_trace(self):
        self.tracing = True
        self.trace = set()

    def stop_trace(self) -> Set[str]:
        self.tracing = False
        return set(self.trace)

    # -- sk_buffs --------------------------------------------------------------------

    def alloc_skb(self, size: int) -> SkBuff:
        if size > L.SKB_BUFFER_SIZE - L.NET_SKB_PAD:
            raise KernelError(f"skb size {size} exceeds buffer")
        struct_addr = self.heap.alloc(L.SKB_STRUCT_SIZE)
        buffer_addr = self.heap.alloc(L.SKB_BUFFER_SIZE, zero=False)
        skb = init_skb(self.domain.aspace, struct_addr, buffer_addr)
        skb.reserve(L.NET_SKB_PAD)
        return skb

    def free_skb(self, skb_addr: int):
        skb = SkBuff(self.memory_view(), skb_addr)
        refs = skb.refcnt
        if refs > 1:
            skb.refcnt = refs - 1
            return
        if skb.pool and self.pool_release is not None:
            # The refcount trick (paper §4.3): pool buffers are never
            # returned to the kernel allocator; the hypervisor reclaims them.
            self.pool_release(skb_addr)
            return
        self.heap.free(skb.head)
        self.heap.free(skb_addr)

    # -- net devices -----------------------------------------------------------------------

    def create_netdev_for_nic(self, nic) -> NetDevice:
        """Allocate a net_device for a physical NIC (what the PCI probe
        scaffolding would do); the driver's probe fills in the rest."""
        addr = self.heap.alloc(L.NDEV_SIZE + L.ADP_SIZE + 8)
        ndev = NetDevice(self.domain.aspace, addr)
        ndev.irq = nic.irq
        ndev.mac = nic.mac
        ndev.mtu = L.MTU
        ndev.name = nic.name
        ndev.priv = addr + ((L.NDEV_SIZE + 7) & ~7)
        return ndev

    def register_netdev(self, addr: int):
        if addr not in self.netdevs:
            self.netdevs.append(addr)

    def unregister_netdev(self, addr: int):
        if addr in self.netdevs:
            self.netdevs.remove(addr)

    def netdev(self, addr: int) -> NetDevice:
        return NetDevice(self.memory_view(), addr)

    # -- receive path ---------------------------------------------------------------------------

    def netif_rx(self, skb_addr: int):
        skb = SkBuff(self.memory_view(), skb_addr)
        dev = NetDevice(self.memory_view(), skb.dev)
        dev.bump_stat(L.NDEV_RX_PKTS)
        dev.bump_stat(L.NDEV_RX_BYTES, skb.len)
        self.rx_handler(skb_addr)

    def _rx_deliver_local(self, skb_addr: int):
        """Local protocol-stack delivery: TCP/IP receive processing."""
        skb = SkBuff(self.memory_view(), skb_addr)
        self.charge(self.costs.kernel_rx_stack, phase="rx_stack")
        if self.paravirtual:
            self.charge(self.costs.pv_kernel_rx_overhead, "Xen",
                        phase="pv_rx_overhead")
        self.rx_delivered += 1
        self.rx_bytes += skb.len
        self.free_skb(skb_addr)

    # -- transmit path ------------------------------------------------------------------------------

    def build_tx_skb(self, ndev: NetDevice, payload_len: int,
                     dst_mac: bytes = BROADCAST_MAC,
                     payload: Optional[bytes] = None) -> SkBuff:
        skb = self.alloc_skb(L.ETH_HLEN + payload_len)
        skb.put(L.ETH_HLEN + payload_len)
        header = bytes(dst_mac) + ndev.mac + ETHERTYPE_IP.to_bytes(2, "big")
        self.memory_view().write_bytes(skb.data, header)
        if payload is not None:
            self.memory_view().write_bytes(skb.data + L.ETH_HLEN,
                                           payload[:payload_len])
        skb.dev = ndev.addr
        return skb

    def tcp_transmit(self, netdev_addr: int, payload_len: int,
                     dst_mac: bytes = BROADCAST_MAC,
                     payload: Optional[bytes] = None) -> bool:
        """One MTU-or-less TCP segment through the stack and the driver."""
        ndev = self.netdev(netdev_addr)
        self.charge(self.costs.kernel_tx_stack, phase="tx_stack")
        if self.paravirtual:
            self.charge(self.costs.pv_kernel_tx_overhead, "Xen",
                        phase="pv_tx_overhead")
        skb = self.build_tx_skb(ndev, payload_len, dst_mac, payload)
        return self.transmit_skb(skb, ndev)

    def transmit_skb(self, skb: SkBuff, ndev: NetDevice) -> bool:
        if ndev.queue_stopped:
            self.tx_dropped += 1
            self.free_skb(skb.addr)
            return False
        xmit = ndev.hard_start_xmit
        if xmit == 0:
            raise KernelError("netdev has no hard_start_xmit")
        result = self.call_driver(xmit, [skb.addr, ndev.addr])
        if result != 0:
            self.tx_dropped += 1
            self.free_skb(skb.addr)
            return False
        self.tx_sent += 1
        return True

    # -- driver invocation -----------------------------------------------------------------------------

    def call_driver(self, addr: int, args) -> int:
        return self.machine.cpu.call_function(
            addr, args, stack_top=self.stack_top, category="e1000"
        )

    def handle_irq(self, irq: int) -> bool:
        entry = self.irq_handlers.get(irq)
        if entry is None:
            return False
        handler, arg = entry
        self.call_driver(handler, [irq, arg])
        return True

    # -- timers --------------------------------------------------------------------------------------------

    def run_due_timers(self) -> int:
        """Fire expired timers (driver watchdog etc.); returns count."""
        fired = 0
        now = self.jiffies
        mem = self.memory_view()
        for timer in list(self.timers):
            active = mem.read_u32(timer + L.TIMER_ACTIVE)
            expires = mem.read_u32(timer + L.TIMER_EXPIRES)
            if active and expires <= now:
                mem.write_u32(timer + L.TIMER_ACTIVE, 0)
                fn = mem.read_u32(timer + L.TIMER_FN)
                arg = mem.read_u32(timer + L.TIMER_ARG)
                self.call_driver(fn, [arg])
                fired += 1
        return fired

    # -- MMIO ------------------------------------------------------------------------------------------------

    def ioremap(self, phys: int, size: int) -> int:
        vaddr = self._ioremap_next
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        for i in range(pages):
            self.domain.aspace.map_page(
                vaddr + i * PAGE_SIZE, (phys >> 12) + i
            )
        self._ioremap_next += pages * PAGE_SIZE + PAGE_SIZE
        return vaddr

    # -- DMA --------------------------------------------------------------------------------------------------

    def dma_map(self, vaddr: int, length: int) -> int:
        bus = self.domain.aspace.translate(vaddr)
        if length > 1:
            end_bus = self.domain.aspace.translate(vaddr + length - 1)
            if end_bus != bus + length - 1:
                raise KernelError(
                    f"dma_map_single of physically discontiguous buffer "
                    f"at {vaddr:#010x}+{length}"
                )
        return bus

    # -- module loading ------------------------------------------------------------------------------------------

    def load_driver(self, program, extra_symbols: Optional[Dict[str, int]] = None,
                    extra_imports: Optional[Dict[str, int]] = None) -> DriverModule:
        """Load a driver binary into this kernel.

        Comm (BSS) symbols are allocated in module-data space; imported
        support routines are bound to this kernel's support library (or
        ``extra_imports``, used for the SVM runtime helpers); code-symbol
        immediates (function pointers the driver stores into structs) are
        resolved to this module's code addresses.
        """
        data_symbols: Dict[str, int] = {}
        for sym, size in program.comm.items():
            data_symbols[sym] = self.alloc_module_data(size)
        data_symbols.update(extra_symbols or {})

        import_map: Dict[str, int] = {}
        for name in program.imports():
            if extra_imports and name in extra_imports:
                import_map[name] = extra_imports[name]
            elif name in self.support.addresses:
                import_map[name] = self.support.addresses[name]
            else:
                raise KernelError(
                    f"driver imports unknown support routine {name!r}"
                )

        code_base = self._module_code_next
        # Two-pass link: code-symbol immediates need final addresses, which
        # depend on the layout, which is invariant once symbols are folded.
        zeros = {label: 0 for label in program.labels}
        tentative = LoadedProgram(
            program.resolve({**data_symbols, **zeros}), code_base,
            extern=import_map,
        )
        resolved = program.resolve({**data_symbols, **tentative.symbols})
        loaded = self.machine.load_program(
            resolved, code_base, extern=import_map,
            name=f"{self.name}:{program.name}"
        )
        self._module_code_next = (loaded.end + 0xFFF) & ~0xFFF

        module = DriverModule(
            program=program,
            loaded=loaded,
            data_symbols=data_symbols,
            import_map=import_map,
            code_base=code_base,
        )
        self.modules.append(module)
        return module

    def alloc_module_data(self, size: int) -> int:
        addr = self._module_data_next
        end = addr + size
        page = addr & ~(PAGE_SIZE - 1)
        while page < end:
            if not self.domain.aspace.is_mapped(page):
                self.domain.aspace.map_page(
                    page, self.machine.phys.allocate_frame()
                )
            page += PAGE_SIZE
        self._module_data_next = (end + 7) & ~7
        return addr
