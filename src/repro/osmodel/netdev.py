"""net_device: the kernel's view of a network interface.

Like :class:`~repro.osmodel.skbuff.SkBuff`, this is a view over a struct
in simulated memory. Crucially, ``hard_start_xmit`` is a real function
pointer stored in memory by the driver's probe routine; the kernel
transmit path reads it and makes an indirect call into driver code — the
exact pattern whose translation the paper's ``stlb_call`` handles for the
hypervisor instance.
"""

from __future__ import annotations

from ..machine.paging import AddressSpace
from . import layout as L


class NetDevice:
    """View of a net_device struct living in simulated kernel memory."""

    def __init__(self, aspace: AddressSpace, addr: int):
        self.aspace = aspace
        self.addr = addr

    def _get(self, off: int, size: int = 4) -> int:
        return self.aspace.read(self.addr + off, size)

    def _set(self, off: int, value: int, size: int = 4):
        self.aspace.write(self.addr + off, size, value)

    # -- fields -----------------------------------------------------------------

    @property
    def priv(self) -> int:
        return self._get(L.NDEV_PRIV)

    @priv.setter
    def priv(self, value: int):
        self._set(L.NDEV_PRIV, value)

    @property
    def irq(self) -> int:
        return self._get(L.NDEV_IRQ)

    @irq.setter
    def irq(self, value: int):
        self._set(L.NDEV_IRQ, value)

    @property
    def mtu(self) -> int:
        return self._get(L.NDEV_MTU)

    @mtu.setter
    def mtu(self, value: int):
        self._set(L.NDEV_MTU, value)

    @property
    def hard_start_xmit(self) -> int:
        return self._get(L.NDEV_XMIT)

    @hard_start_xmit.setter
    def hard_start_xmit(self, value: int):
        self._set(L.NDEV_XMIT, value)

    @property
    def mac(self) -> bytes:
        return self.aspace.read_bytes(self.addr + L.NDEV_MAC, L.ETH_ALEN)

    @mac.setter
    def mac(self, value: bytes):
        self.aspace.write_bytes(self.addr + L.NDEV_MAC, bytes(value))

    @property
    def mem(self) -> int:
        return self._get(L.NDEV_MEM)

    # -- stats ---------------------------------------------------------------------

    def bump_stat(self, off: int, n: int = 1):
        self._set(off, self._get(off) + n)

    @property
    def tx_packets(self) -> int:
        return self._get(L.NDEV_TX_PKTS)

    @property
    def tx_bytes(self) -> int:
        return self._get(L.NDEV_TX_BYTES)

    @property
    def rx_packets(self) -> int:
        return self._get(L.NDEV_RX_PKTS)

    @property
    def rx_bytes(self) -> int:
        return self._get(L.NDEV_RX_BYTES)

    # -- state bits -------------------------------------------------------------------

    @property
    def queue_stopped(self) -> bool:
        return bool(self._get(L.NDEV_STATE) & L.NDEV_STATE_QUEUE_STOPPED)

    def stop_queue(self):
        self._set(L.NDEV_STATE,
                  self._get(L.NDEV_STATE) | L.NDEV_STATE_QUEUE_STOPPED)

    def start_queue(self):
        self._set(L.NDEV_STATE,
                  self._get(L.NDEV_STATE) & ~L.NDEV_STATE_QUEUE_STOPPED)

    @property
    def carrier_ok(self) -> bool:
        return bool(self._get(L.NDEV_STATE) & L.NDEV_STATE_CARRIER)

    def set_carrier(self, on: bool):
        state = self._get(L.NDEV_STATE)
        if on:
            state |= L.NDEV_STATE_CARRIER
        else:
            state &= ~L.NDEV_STATE_CARRIER
        self._set(L.NDEV_STATE, state)

    @property
    def name(self) -> str:
        raw = self.aspace.read_bytes(self.addr + L.NDEV_NAME, 16)
        return raw.split(b"\x00", 1)[0].decode("ascii", "replace")

    @name.setter
    def name(self, value: str):
        raw = value.encode("ascii")[:15]
        self.aspace.write_bytes(self.addr + L.NDEV_NAME,
                                raw + b"\x00" * (16 - len(raw)))

    def __repr__(self):  # pragma: no cover
        return f"<NetDevice {self.name} @{self.addr:#010x}>"
