"""The dom0 software bridge (paper figure 1).

In the standard Xen I/O architecture, packets cross a learning bridge in
dom0 between the physical NIC driver and the per-guest backend
interfaces. The bridge here is real (a learning MAC table with flooding
semantics); its per-packet CPU cost is charged by the caller from the
calibrated table — the paper's measurements attribute noticeable overhead
to exactly this component [Santos et al. 2008].
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Bridge:
    """Learning MAC bridge with flooding semantics."""

    def __init__(self):
        self._table: Dict[bytes, object] = {}
        self._ports: List[object] = []
        self.lookups = 0
        self.floods = 0
        self.learned = 0

    def add_port(self, port: object):
        if port not in self._ports:
            self._ports.append(port)

    def learn(self, mac: bytes, port: object):
        mac = bytes(mac)
        if self._table.get(mac) is not port:
            self._table[mac] = port
            self.learned += 1
        self.add_port(port)

    def lookup(self, mac: bytes) -> Optional[object]:
        self.lookups += 1
        return self._table.get(bytes(mac))

    def forward_targets(self, dst_mac: bytes, ingress: object) -> List[object]:
        """Known-unicast: one port. Unknown / broadcast: flood."""
        port = self.lookup(dst_mac)
        if port is not None and port is not ingress:
            return [port]
        self.floods += 1
        return [p for p in self._ports if p is not ingress]
