"""The four evaluated system configurations (paper §6.1).

* ``linux``      — native Linux: kernel + driver on bare hardware;
* ``dom0``       — the Xen driver domain itself doing the I/O;
* ``domU``       — an unoptimized guest using the standard split
                   netfront/netback/bridge path;
* ``domU-twin``  — a guest using the TwinDrivers hypervisor driver.

Each builder returns a :class:`SystemUnderTest` exposing uniform
``transmit_packets`` / ``receive_packets`` operations that push MTU-sized
frames through the *whole* simulated stack (driver binaries included) and
account every cycle. The netperf/profile/webserver workloads all run
against this facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .core.handover import HandoverManager
from .core.paravirt import ParavirtNetDevice
from .core.twin import (
    DEFAULT_RX_BATCH_BUDGET,
    DEFAULT_TX_BATCH_MAX,
    TwinDriverManager,
)
from .drivers.e1000 import build_e1000_program
from .machine.machine import Machine
from .machine.nic import E1000Device
from .machine.paging import AddressSpace
from .obs.health import HealthMonitor
from .osmodel import layout as L
from .osmodel.kernel import Kernel
from .osmodel.xennet import XenNetBack, XenNetFront
from .xen.costs import CostModel
from .xen.domain import Domain
from .xen.hypervisor import (
    HYP2_CODE_BASE,
    HYP2_DATA_BASE,
    HYP2_STACK_BASE,
    HYP2_SVM_MAP_BASE,
    Hypervisor,
)

#: MTU frame: 14-byte Ethernet header + 1486-byte payload = 1500 bytes.
FRAME_PAYLOAD = L.MTU - L.ETH_HLEN
#: Deterministic order in which fast-path routines are demoted to upcalls
#: for the figure-10 sweep (netif_rx is always kept in the hypervisor, as
#: in the paper's final data point).
UPCALL_SWEEP_ORDER = (
    "dma_map_single",
    "spin_trylock",
    "spin_unlock_irqrestore",
    "dev_kfree_skb_any",
    "dma_unmap_single",
    "netdev_alloc_skb",
    "dma_map_page",
    "dma_unmap_page",
    "eth_type_trans",
)

GUEST_MAC_PREFIX = b"\x00\x16\x3e\xaa\x00"

#: Batching knobs for the TwinDrivers fast path (see DESIGN.md §9):
#: packets a guest may receive per flush under one coalesced virtual
#: interrupt, and the frame cap per guest_transmit_batch burst.
RX_BATCH_BUDGET = DEFAULT_RX_BATCH_BUDGET
TX_BATCH_MAX = DEFAULT_TX_BATCH_MAX


@dataclass
class SystemUnderTest:
    """Uniform facade over one configuration."""

    name: str
    machine: Machine
    costs: CostModel
    nics: List[E1000Device]
    _tx_one: Callable[[int, int], bool]       # (nic_index, payload_len)
    _rx_mac: Callable[[int], bytes]           # destination MAC for nic i
    _rx_count: Callable[[], int]
    dom0_kernel: Optional[Kernel] = None
    guest_kernel: Optional[Kernel] = None
    xen: Optional[Hypervisor] = None
    twin: Optional[TwinDriverManager] = None
    extras: dict = field(default_factory=dict)

    # -- operations -------------------------------------------------------------

    def transmit_packets(self, n: int, payload_len: int = FRAME_PAYLOAD) -> int:
        """Stream ``n`` MTU frames round-robin over the NICs; returns the
        number accepted by the driver."""
        sent = 0
        for i in range(n):
            if self._tx_one(i % len(self.nics), payload_len):
                sent += 1
        for nic in self.nics:
            nic.flush_interrupts()
        return sent

    def receive_packets(self, n: int, payload_len: int = FRAME_PAYLOAD) -> int:
        """Inject ``n`` frames from the wire round-robin; returns how many
        the NICs accepted."""
        accepted = 0
        for i in range(n):
            nic = self.nics[i % len(self.nics)]
            frame = (self._rx_mac(i % len(self.nics))
                     + b"\x00\x22\x33\x44\x55\x66"
                     + (0x0800).to_bytes(2, "big")
                     + bytes(payload_len))
            if nic.receive(frame):
                accepted += 1
        for nic in self.nics:
            nic.flush_interrupts()
        return accepted

    @property
    def packets_on_wire(self) -> int:
        return self.machine.wire.tx_count

    @property
    def packets_delivered(self) -> int:
        return self._rx_count()

    def snapshot(self):
        return self.machine.account.snapshot()

    def delta_since(self, snap):
        return self.machine.account.delta_since(snap)


def _open_native_driver(machine: Machine, kernel: Kernel,
                        nics: List[E1000Device]):
    """Load the original driver into ``kernel`` and bring up every NIC."""
    module = kernel.load_driver(build_e1000_program())
    netdevs = []
    for nic in nics:
        ndev = kernel.create_netdev_for_nic(nic)
        kernel.domain.aspace.write_u32(ndev.addr + L.NDEV_MEM,
                                       nic.mmio.start)
        kernel.call_driver(module.symbol("e1000_probe"), [ndev.addr])
        kernel.call_driver(module.symbol("e1000_open"), [ndev.addr])
        netdevs.append(ndev.addr)
    return module, netdevs


def _apply_batch(nics: List[E1000Device], interrupt_batch: int):
    for nic in nics:
        nic.interrupt_batch = interrupt_batch


# ---------------------------------------------------------------------------
# native Linux
# ---------------------------------------------------------------------------

def build_native_linux(n_nics: int = 5, interrupt_batch: int = 8,
                       costs: Optional[CostModel] = None,
                       iommu: bool = False,
                       jit: bool = False,
                       vcpus: int = 1,
                       num_queues: int = 1) -> SystemUnderTest:
    if vcpus != 1:
        raise ValueError("native linux has no hypervisor vCPUs to scale; "
                         "vcpus= only applies to the Xen configurations")
    costs = costs or CostModel()
    machine = Machine()
    machine.cpu.jit_enabled = jit
    if iommu:
        machine.attach_iommu()
    machine.cpu.cycle_scale = costs.driver_cycle_scale
    domain = Domain(0, "linux",
                    AddressSpace("linux", machine.phys,
                                 machine.hypervisor_table),
                    is_dom0=True)
    kernel = Kernel(machine, domain, costs=costs, paravirtual=False)
    machine.cpu.address_space = domain.aspace
    machine.intc.set_dispatcher(lambda irq: kernel.handle_irq(irq))
    nics = [machine.add_nic(num_queues=num_queues) for _ in range(n_nics)]
    _apply_batch(nics, interrupt_batch)
    module, netdevs = _open_native_driver(machine, kernel, nics)

    def tx_one(i: int, payload_len: int) -> bool:
        return kernel.tcp_transmit(netdevs[i], payload_len)

    return SystemUnderTest(
        name="linux", machine=machine, costs=costs, nics=nics,
        _tx_one=tx_one,
        _rx_mac=lambda i: nics[i].mac,
        _rx_count=lambda: kernel.rx_delivered,
        dom0_kernel=kernel,
        extras={"module": module, "netdevs": netdevs},
    )


# ---------------------------------------------------------------------------
# Xen dom0 (the driver domain itself)
# ---------------------------------------------------------------------------

def build_dom0(n_nics: int = 5, interrupt_batch: int = 8,
               costs: Optional[CostModel] = None,
               iommu: bool = False,
               jit: bool = False,
               vcpus: int = 1,
               num_queues: int = 1) -> SystemUnderTest:
    costs = costs or CostModel()
    machine = Machine()
    machine.cpu.jit_enabled = jit
    if iommu:
        machine.attach_iommu()
    xen = Hypervisor(machine, costs=costs, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    kernel = Kernel(machine, dom0, costs=costs, paravirtual=True)
    nics = [machine.add_nic(num_queues=num_queues) for _ in range(n_nics)]
    _apply_batch(nics, interrupt_batch)
    module, netdevs = _open_native_driver(machine, kernel, nics)

    def irq_handler(irq: int):
        # interrupt virtualization was charged by the dispatcher; Xen now
        # delivers a virtual interrupt into dom0.
        xen.charge_xen(costs.virq_delivery)
        kernel.handle_irq(irq)

    for nic in nics:
        xen.register_irq_handler(nic.irq, irq_handler)

    def tx_one(i: int, payload_len: int) -> bool:
        return kernel.tcp_transmit(netdevs[i], payload_len)

    return SystemUnderTest(
        name="dom0", machine=machine, costs=costs, nics=nics,
        _tx_one=tx_one,
        _rx_mac=lambda i: nics[i].mac,
        _rx_count=lambda: kernel.rx_delivered,
        dom0_kernel=kernel, xen=xen,
        extras={"module": module, "netdevs": netdevs},
    )


# ---------------------------------------------------------------------------
# unoptimized guest (standard split-driver path)
# ---------------------------------------------------------------------------

def build_domU_standard(n_nics: int = 5, interrupt_batch: int = 8,
                        costs: Optional[CostModel] = None,
                        iommu: bool = False,
                        jit: bool = False,
                        vcpus: int = 1,
                        num_queues: int = 1) -> SystemUnderTest:
    costs = costs or CostModel()
    machine = Machine()
    machine.cpu.jit_enabled = jit
    if iommu:
        machine.attach_iommu()
    xen = Hypervisor(machine, costs=costs, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    dom0_kernel = Kernel(machine, dom0, costs=costs, paravirtual=True)
    guest = xen.create_domain("guest")
    guest_kernel = Kernel(machine, guest, costs=costs, paravirtual=True)
    nics = [machine.add_nic(num_queues=num_queues) for _ in range(n_nics)]
    _apply_batch(nics, interrupt_batch)
    module, netdevs = _open_native_driver(machine, dom0_kernel, nics)

    backend = XenNetBack(xen, dom0_kernel)
    fronts = [
        XenNetFront(backend, guest_kernel,
                    mac=GUEST_MAC_PREFIX + bytes([i + 1]),
                    netdev_addr=netdevs[i])
        for i in range(n_nics)
    ]

    def irq_handler(irq: int):
        xen.charge_xen(costs.virq_delivery)
        xen.charge_xen(costs.domain_switch)     # enter dom0 for the ISR
        prev = machine.cpu.address_space
        machine.cpu.address_space = dom0.aspace
        try:
            dom0_kernel.handle_irq(irq)
        finally:
            machine.cpu.address_space = prev

    for nic in nics:
        xen.register_irq_handler(nic.irq, irq_handler)

    def tx_one(i: int, payload_len: int) -> bool:
        return fronts[i].transmit(payload_len)

    return SystemUnderTest(
        name="domU", machine=machine, costs=costs, nics=nics,
        _tx_one=tx_one,
        _rx_mac=lambda i: fronts[i].mac,
        _rx_count=lambda: sum(f.rx_packets for f in fronts),
        dom0_kernel=dom0_kernel, guest_kernel=guest_kernel, xen=xen,
        extras={"module": module, "netdevs": netdevs,
                "fronts": fronts, "backend": backend},
    )


# ---------------------------------------------------------------------------
# TwinDrivers guest
# ---------------------------------------------------------------------------

def build_domU_twin(n_nics: int = 5, interrupt_batch: int = 8,
                    n_upcalls: int = 0,
                    costs: Optional[CostModel] = None,
                    iommu: bool = False,
                    rx_batch_budget: int = RX_BATCH_BUDGET,
                    tx_batch_max: int = TX_BATCH_MAX,
                    elide: bool = False,
                    jit: bool = False,
                    vcpus: int = 1,
                    num_queues: int = 1,
                    handover: bool = False) -> SystemUnderTest:
    """``n_upcalls``: how many fast-path routines are served by upcalls
    instead of hypervisor implementations (0 = the full TwinDrivers
    configuration; figure 10 sweeps 0..9). ``rx_batch_budget`` /
    ``tx_batch_max`` tune the §5.3 batching fast path. ``elide`` turns on
    proof-based stlb check elision (prove-then-elide, off by default).
    ``jit`` turns on superblock trace compilation in the interpreter
    (host wall-time only; simulated cycles are bit-identical either
    way, off by default). ``vcpus`` / ``num_queues`` enable the SMP +
    multiqueue layer; the defaults of 1 reproduce every paper figure
    bit-for-bit. ``handover`` wires a :class:`HealthMonitor` and a
    :class:`HandoverManager` into ``extras["health"]`` /
    ``extras["handover"]`` (planned live upgrade, DESIGN.md §14) — it
    charges nothing until a handover is actually requested, so the
    default path stays bit-identical."""
    if not 0 <= n_upcalls <= len(UPCALL_SWEEP_ORDER):
        raise ValueError("n_upcalls out of range")
    costs = costs or CostModel()
    machine = Machine()
    machine.cpu.jit_enabled = jit
    if iommu:
        machine.attach_iommu()
    xen = Hypervisor(machine, costs=costs, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    dom0_kernel = Kernel(machine, dom0, costs=costs, paravirtual=True)
    guest = xen.create_domain("guest")
    guest_kernel = Kernel(machine, guest, costs=costs, paravirtual=True)
    nics = [machine.add_nic(num_queues=num_queues) for _ in range(n_nics)]
    _apply_batch(nics, interrupt_batch)

    twin = TwinDriverManager(
        xen, dom0_kernel,
        upcall_routines=UPCALL_SWEEP_ORDER[:n_upcalls],
        pool_size=max(256, 96 * n_nics),
        rx_batch_budget=rx_batch_budget,
        tx_batch_max=tx_batch_max,
        elide=elide,
        num_queues=num_queues,
    )
    for nic in nics:
        twin.attach_nic(nic)
    devices = [
        ParavirtNetDevice(twin, guest_kernel,
                          mac=GUEST_MAC_PREFIX + bytes([0x10 + i]))
        for i in range(n_nics)
    ]
    # the guest is the running context (no switches on the twin path)
    xen.switch_to(guest)

    def tx_one(i: int, payload_len: int) -> bool:
        return devices[i].transmit(payload_len)

    extras = {"devices": devices}
    if handover:
        health = HealthMonitor(machine, twin=twin)
        extras["health"] = health
        extras["handover"] = HandoverManager(twin, health=health)

    return SystemUnderTest(
        name="domU-twin", machine=machine, costs=costs, nics=nics,
        _tx_one=tx_one,
        _rx_mac=lambda i: devices[i].mac,
        _rx_count=lambda: sum(d.rx_packets for d in devices),
        dom0_kernel=dom0_kernel, guest_kernel=guest_kernel, xen=xen,
        twin=twin,
        extras=extras,
    )


# ---------------------------------------------------------------------------
# scale configuration: many twin guests under the SMP scheduler
# ---------------------------------------------------------------------------

#: MAC prefix for scale-config guests (2-byte index suffix, so up to
#: 65536 guests keep distinct, deterministic addresses).
SCALE_MAC_PREFIX = b"\x00\x16\x3e\xab"


def build_scale(n_guests: int = 16, vcpus: int = 4, num_queues: int = 4,
                n_nics: int = 4, interrupt_batch: int = 8,
                costs: Optional[CostModel] = None,
                jit: bool = False) -> SystemUnderTest:
    """N twin guests, each with its own domain and kernel, under the
    credit scheduler on ``vcpus`` vCPUs with ``num_queues``-way RSS
    twins (ROADMAP item 1: scale to hundreds of guests).

    Unlike :func:`build_domU_twin` (one guest kernel, five devices —
    the paper's 5-NIC streaming box), every guest here is a full domain
    so the scheduler has real run queues to multiplex. Guest devices
    spread round-robin over the NICs; drive traffic through
    ``extras["devices"]`` and the scheduler, as ``bench_scale.py``
    does."""
    if n_guests < 1:
        raise ValueError("need at least one guest")
    costs = costs or CostModel()
    machine = Machine()
    machine.cpu.jit_enabled = jit
    xen = Hypervisor(machine, costs=costs, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    dom0_kernel = Kernel(machine, dom0, costs=costs, paravirtual=True)
    nics = [machine.add_nic(num_queues=num_queues) for _ in range(n_nics)]
    _apply_batch(nics, interrupt_batch)

    twin = TwinDriverManager(
        xen, dom0_kernel,
        pool_size=max(256, 16 * n_nics * interrupt_batch),
        num_queues=num_queues,
    )
    for nic in nics:
        twin.attach_nic(nic)

    guest_kernels: List[Kernel] = []
    devices: List[ParavirtNetDevice] = []
    for i in range(n_guests):
        guest = xen.create_domain(f"guest{i}")
        kernel = Kernel(machine, guest, costs=costs, paravirtual=True)
        guest_kernels.append(kernel)
        devices.append(ParavirtNetDevice(
            twin, kernel, mac=SCALE_MAC_PREFIX + i.to_bytes(2, "big")))

    # round-robin cursors so the facade operations cover every guest
    # regardless of which NIC index they are called with
    cursor = {"tx": 0, "rx": 0}

    def tx_one(i: int, payload_len: int) -> bool:
        dev = devices[cursor["tx"] % n_guests]
        cursor["tx"] += 1
        return dev.transmit(payload_len)

    def rx_mac(i: int) -> bytes:
        mac = devices[cursor["rx"] % n_guests].mac
        cursor["rx"] += 1
        return mac

    return SystemUnderTest(
        name="scale", machine=machine, costs=costs, nics=nics,
        _tx_one=tx_one,
        _rx_mac=rx_mac,
        _rx_count=lambda: sum(d.rx_packets for d in devices),
        dom0_kernel=dom0_kernel,
        guest_kernel=guest_kernels[0],
        xen=xen, twin=twin,
        extras={"devices": devices, "guest_kernels": guest_kernels},
    )


# ---------------------------------------------------------------------------
# handover pair: two live twin instances for queue re-homing
# ---------------------------------------------------------------------------

#: MAC prefix for handover-pair guests (1-byte index suffix).
PAIR_MAC_PREFIX = b"\x00\x16\x3e\xac\x00"


def build_handover_pair(n_guests: int = 2, vcpus: int = 1,
                        num_queues: int = 1, n_nics: int = 1,
                        interrupt_batch: int = 8,
                        costs: Optional[CostModel] = None,
                        jit: bool = False) -> SystemUnderTest:
    """Two *live* twin instances side by side — the primary at the
    historical hypervisor VA layout, the secondary ("hyp2") at the
    ``HYP2_*`` bases — so a guest's queue state can be re-homed from one
    to the other without a reload (DESIGN.md §14).

    Each instance owns ``n_nics`` NICs; every guest starts on the
    primary. The facade's rx path injects into the *primary's* NICs
    (frames demux on the twin whose NIC received them), so after
    ``extras["handover"].rehome_guest(dev, extras["secondary"])`` steer
    that guest's frames at ``extras["secondary_nics"]`` instead — as
    ``bench_handover.py`` does."""
    if n_guests < 1:
        raise ValueError("need at least one guest")
    costs = costs or CostModel()
    machine = Machine()
    machine.cpu.jit_enabled = jit
    xen = Hypervisor(machine, costs=costs, vcpus=vcpus)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    dom0_kernel = Kernel(machine, dom0, costs=costs, paravirtual=True)
    primary_nics = [machine.add_nic(num_queues=num_queues)
                    for _ in range(n_nics)]
    secondary_nics = [machine.add_nic(num_queues=num_queues)
                      for _ in range(n_nics)]
    _apply_batch(primary_nics + secondary_nics, interrupt_batch)

    pool_size = max(256, 16 * n_nics * interrupt_batch)
    twin = TwinDriverManager(
        xen, dom0_kernel, pool_size=pool_size, num_queues=num_queues,
    )
    secondary = TwinDriverManager(
        xen, dom0_kernel, pool_size=pool_size, num_queues=num_queues,
        instance_name="hyp2",
        code_base=HYP2_CODE_BASE, data_base=HYP2_DATA_BASE,
        stack_base=HYP2_STACK_BASE, svm_map_base=HYP2_SVM_MAP_BASE,
    )
    for nic in primary_nics:
        twin.attach_nic(nic)
    for nic in secondary_nics:
        secondary.attach_nic(nic)

    guest_kernels: List[Kernel] = []
    devices: List[ParavirtNetDevice] = []
    for i in range(n_guests):
        guest = xen.create_domain(f"guest{i}")
        kernel = Kernel(machine, guest, costs=costs, paravirtual=True)
        guest_kernels.append(kernel)
        devices.append(ParavirtNetDevice(
            twin, kernel, mac=PAIR_MAC_PREFIX + bytes([i + 1])))

    health = HealthMonitor(machine, twin=twin)

    cursor = {"tx": 0, "rx": 0}

    def tx_one(i: int, payload_len: int) -> bool:
        dev = devices[cursor["tx"] % n_guests]
        cursor["tx"] += 1
        return dev.transmit(payload_len)

    def rx_mac(i: int) -> bytes:
        mac = devices[cursor["rx"] % n_guests].mac
        cursor["rx"] += 1
        return mac

    return SystemUnderTest(
        name="handover-pair", machine=machine, costs=costs,
        nics=primary_nics,
        _tx_one=tx_one,
        _rx_mac=rx_mac,
        _rx_count=lambda: sum(d.rx_packets for d in devices),
        dom0_kernel=dom0_kernel,
        guest_kernel=guest_kernels[0],
        xen=xen, twin=twin,
        extras={"devices": devices, "guest_kernels": guest_kernels,
                "secondary": secondary, "secondary_nics": secondary_nics,
                "health": health,
                "handover": HandoverManager(twin, health=health)},
    )


BUILDERS = {
    "linux": build_native_linux,
    "dom0": build_dom0,
    "domU": build_domU_standard,
    "domU-twin": build_domU_twin,
    "scale": build_scale,
    "handover-pair": build_handover_pair,
}


def build(name: str, **kwargs) -> SystemUnderTest:
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown configuration {name!r}; choose from {sorted(BUILDERS)}"
        ) from None
    return builder(**kwargs)
