"""Device drivers written in the toy ISA (the binaries the rewriter twins).

Two structurally different drivers demonstrate that the TwinDrivers
pipeline is driver-agnostic: the scatter/gather, descriptor-ring e1000 and
the copying, fixed-slot RTL8139. A :class:`DriverSpec` tells the twin
manager what it needs to know about a driver (entry points and whether the
hardware supports scatter/gather).
"""

from dataclasses import dataclass
from typing import Callable

from ..isa import Program
from .e1000 import (
    DESC_PAGE,
    DRIVER_CONSTANTS,
    E1000_ASM,
    FAST_PATH_ENTRIES,
    MANAGEMENT_ENTRIES,
    RING_BYTES,
    RX_BUFFER_LEN,
    RX_RING_ENTRIES,
    TX_RING_ENTRIES,
    build_e1000_program,
)
from .rtl8139 import RTL8139_ASM, RTL_CONSTANTS, build_rtl8139_program


@dataclass(frozen=True)
class DriverSpec:
    """What the loaders/twin manager need to know about a driver."""

    name: str
    build_program: Callable[[], Program]
    probe_symbol: str
    open_symbol: str
    close_symbol: str
    stats_symbol: str
    #: hardware scatter/gather: when False the transmit path must hand the
    #: driver linear sk_buffs (the twin path copies instead of chaining
    #: guest-page fragments).
    scatter_gather: bool = True


E1000_SPEC = DriverSpec(
    name="e1000",
    build_program=build_e1000_program,
    probe_symbol="e1000_probe",
    open_symbol="e1000_open",
    close_symbol="e1000_close",
    stats_symbol="e1000_get_stats",
    scatter_gather=True,
)

RTL8139_SPEC = DriverSpec(
    name="rtl8139",
    build_program=build_rtl8139_program,
    probe_symbol="rtl8139_probe",
    open_symbol="rtl8139_open",
    close_symbol="rtl8139_close",
    stats_symbol="rtl8139_get_stats",
    scatter_gather=False,
)

DRIVER_SPECS = {"e1000": E1000_SPEC, "rtl8139": RTL8139_SPEC}

__all__ = [
    "DESC_PAGE",
    "DRIVER_CONSTANTS",
    "DRIVER_SPECS",
    "DriverSpec",
    "E1000_ASM",
    "E1000_SPEC",
    "FAST_PATH_ENTRIES",
    "MANAGEMENT_ENTRIES",
    "RING_BYTES",
    "RTL8139_ASM",
    "RTL8139_SPEC",
    "RTL_CONSTANTS",
    "RX_BUFFER_LEN",
    "RX_RING_ENTRIES",
    "TX_RING_ENTRIES",
    "build_e1000_program",
    "build_rtl8139_program",
]
