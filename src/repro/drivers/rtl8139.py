"""An RTL8139-style driver in the toy assembly: the second twinned driver.

Structurally different from the e1000 on purpose:

* **copying transmit** — no scatter/gather: each packet is ``rep movsb``-ed
  into one of four pre-mapped bounce buffers, then a single TSD register
  write sends it (so the *string-instruction* rewriting is on the hot
  path, and the DMA mappings are persistent — no per-packet dma_map);
* **ring-buffer receive** — the device writes ``[status|len]`` records
  into one contiguous ring; the driver parses records and copies payloads
  into fresh sk_buffs.

Its error-free fast path therefore calls a *different* (smaller) support
set than the e1000's Table 1: no dma_map/unmap at all — evidence that the
fast-path set is discovered per driver, not hard-coded.
"""

from __future__ import annotations

from typing import Dict

from ..isa import Program, assemble
from ..machine import rtl8139 as hw
from ..osmodel import layout as L

#: driver-private adapter layout (inside the netdev priv area)
RTL_NETDEV = 0
RTL_HW = 4
RTL_RXRING = 8          # rx ring virtual address (dom0)
RTL_RXOFF = 12          # driver read offset into the ring
RTL_TXBUF0 = 16         # 4 bounce-buffer virtual addresses (16,20,24,28)
RTL_TXNEXT = 32
RTL_LOCK = 36
RTL_TXP = 40
RTL_TXB = 44
RTL_RXP = 48
RTL_RXB = 52
RTL_RXDMA = 56          # rx ring bus address
RTL_TXDMA0 = 64         # 4 bounce-buffer bus addresses (64,68,72,76)

RTL_CONSTANTS: Dict[str, int] = dict(L.ASM_CONSTANTS)
RTL_CONSTANTS.update({name: value for name, value in globals().items()
                      if name.startswith("RTL_") and isinstance(value, int)})
RTL_CONSTANTS.update({
    "R_TSD0": hw.R_TSD0,
    "R_TSAD0": hw.R_TSAD0,
    "R_RBSTART": hw.R_RBSTART,
    "R_CR": hw.R_CR,
    "R_CAPR": hw.R_CAPR,
    "R_CBR": hw.R_CBR,
    "R_IMR": hw.R_IMR,
    "R_ISR": hw.R_ISR,
    "CR_BUFE": hw.CR_BUFE,
    "CR_TE": hw.CR_TE,
    "CR_RE": hw.CR_RE,
    "TSD_TOK": hw.TSD_TOK,
    "ISR_TOK": hw.ISR_TOK,
    "ISR_ROK": hw.ISR_ROK,
    "RX_RING_BYTES": hw.RX_RING_BYTES,
    "RX_WRAP_THRESHOLD": hw.RX_WRAP_THRESHOLD,
    "TX_SLOT_BYTES": hw.TX_SLOT_BYTES,
})

RTL8139_ASM = r"""
.comm rtl_probe_count, 4
.comm rtl_intr_count, 4

.globl rtl8139_probe
.globl rtl8139_open
.globl rtl8139_close
.globl rtl8139_xmit
.globl rtl8139_intr
.globl rtl8139_get_stats

# ===========================================================================
# rtl8139_probe(netdev)
# ===========================================================================
rtl8139_probe:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx              # netdev

    pushl $0
    call pci_enable_device
    addl $4, %esp
    pushl $0
    call pci_set_master
    addl $4, %esp

    movl NDEV_PRIV(%ebx), %esi      # adapter
    movl %ebx, RTL_NETDEV(%esi)

    pushl $0x100
    pushl NDEV_MEM(%ebx)
    call ioremap
    addl $8, %esp
    movl %eax, RTL_HW(%esi)
    movl %eax, NDEV_MEM(%ebx)

    leal RTL_LOCK(%esi), %eax
    pushl %eax
    call spin_lock_init
    addl $4, %esp

    movl $0, RTL_TXNEXT(%esi)
    movl $0, RTL_RXOFF(%esi)
    movl $0, RTL_TXP(%esi)
    movl $0, RTL_TXB(%esi)
    movl $0, RTL_RXP(%esi)
    movl $0, RTL_RXB(%esi)

    # the contiguous rx ring, persistently mapped for DMA
    leal -4(%ebp), %eax
    pushl %eax
    pushl $RX_RING_BYTES
    call dma_alloc_coherent
    addl $8, %esp
    movl %eax, RTL_RXRING(%esi)
    movl -4(%ebp), %eax
    movl %eax, RTL_RXDMA(%esi)

    # four transmit bounce buffers
    xorl %edi, %edi
.probe_txbuf:
    cmpl $4, %edi
    jae .probe_txbuf_done
    andl $3, %edi                   # defensive slot mask (bounds the index)
    leal -4(%ebp), %eax
    pushl %eax
    pushl $TX_SLOT_BYTES
    call dma_alloc_coherent
    addl $8, %esp
    movl %eax, RTL_TXBUF0(%esi,%edi,4)
    movl -4(%ebp), %eax
    movl %eax, RTL_TXDMA0(%esi,%edi,4)
    incl %edi
    jmp .probe_txbuf
.probe_txbuf_done:

    movl $rtl8139_xmit, NDEV_XMIT(%ebx)

    pushl %ebx
    call register_netdev
    addl $4, %esp
    pushl %ebx
    call netif_carrier_off
    addl $4, %esp

    incl rtl_probe_count
    xorl %eax, %eax
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# rtl8139_open(netdev)
# ===========================================================================
rtl8139_open:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx
    movl NDEV_PRIV(%ebx), %esi
    movl RTL_HW(%esi), %edi

    movl RTL_RXDMA(%esi), %eax
    movl %eax, R_RBSTART(%edi)
    movl $0, R_CAPR(%edi)
    movl $0, RTL_RXOFF(%esi)

    # program the four TSAD registers
    xorl %ecx, %ecx
.open_tsad:
    cmpl $4, %ecx
    jae .open_tsad_done
    andl $3, %ecx                   # defensive slot mask (bounds the index)
    movl RTL_TXDMA0(%esi,%ecx,4), %eax
    movl %eax, R_TSAD0(%edi,%ecx,4)
    incl %ecx
    jmp .open_tsad
.open_tsad_done:

    movl $CR_TE+CR_RE, R_CR(%edi)
    movl $ISR_TOK+ISR_ROK, R_IMR(%edi)

    pushl %ebx
    pushl $0
    pushl $rtl8139_intr
    pushl NDEV_IRQ(%ebx)
    call request_irq
    addl $16, %esp

    pushl %ebx
    call netif_carrier_on
    addl $4, %esp
    pushl %ebx
    call netif_start_queue
    addl $4, %esp

    xorl %eax, %eax
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# rtl8139_xmit(skb, netdev) -- copying transmit (the hot string op).
# ===========================================================================
rtl8139_xmit:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx              # skb
    movl 12(%ebp), %edx             # netdev
    movl NDEV_PRIV(%edx), %esi      # adapter

    # touch the lowest-offset field of each hot structure first so the
    # verifier can anchor the whole access chain on one stlb check
    movl SKB_DATA(%ebx), %eax
    movl RTL_HW(%esi), %eax

    leal RTL_LOCK(%esi), %eax
    pushl %eax
    call spin_trylock
    addl $4, %esp
    testl %eax, %eax
    je .rtl_xmit_busy

    # slot = txnext & 3; it must carry TOK (free)
    movl RTL_TXNEXT(%esi), %edi
    andl $3, %edi
    movl RTL_HW(%esi), %ecx
    movl R_TSD0(%ecx,%edi,4), %eax
    testl $TSD_TOK, %eax
    je .rtl_xmit_full

    # linear length (the kernel hands this driver linear skbs: no SG)
    movl SKB_LEN(%ebx), %edx
    movzwl SKB_DATA_LEN(%ebx), %eax
    subl %eax, %edx                 # edx = copy length

    # copy skb->data -> txbuf[slot]: dwords, then the remainder
    pushl %esi
    pushl %edi
    movl RTL_TXBUF0(%esi,%edi,4), %eax
    movl SKB_DATA(%ebx), %esi
    movl %eax, %edi
    movl %edx, %ecx
    shrl $2, %ecx
    rep movsl
    movl %edx, %ecx
    andl $3, %ecx
    rep movsb
    popl %edi
    popl %esi

    # kick the device: write the length into TSD[slot]
    movl RTL_HW(%esi), %ecx
    movl %edx, R_TSD0(%ecx,%edi,4)

    incl RTL_TXNEXT(%esi)
    incl RTL_TXP(%esi)
    addl %edx, RTL_TXB(%esi)
    movl 12(%ebp), %ecx
    incl NDEV_TX_PKTS(%ecx)
    addl %edx, NDEV_TX_BYTES(%ecx)

    # the packet is copied out: free the skb right away
    pushl %ebx
    call dev_kfree_skb_any
    addl $4, %esp

    pushl $1
    leal RTL_LOCK(%esi), %eax
    pushl %eax
    call spin_unlock_irqrestore
    addl $8, %esp
    xorl %eax, %eax
    jmp .rtl_xmit_out

.rtl_xmit_full:
    movl 12(%ebp), %edx
    pushl %edx
    call netif_stop_queue
    addl $4, %esp
    pushl $1
    leal RTL_LOCK(%esi), %eax
    pushl %eax
    call spin_unlock_irqrestore
    addl $8, %esp
.rtl_xmit_busy:
    movl $1, %eax
.rtl_xmit_out:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# rtl8139_intr(irq, netdev) -- ISR: parse rx-ring records, ack TOK.
# ===========================================================================
rtl8139_intr:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 12(%ebp), %ebx             # netdev
    movl NDEV_PRIV(%ebx), %esi      # adapter
    movl RTL_HW(%esi), %edi

    movl R_ISR(%edi), %eax
    testl %eax, %eax
    je .rtl_intr_out
    movl %eax, R_ISR(%edi)          # write-1-to-clear
    incl rtl_intr_count

    testl $ISR_ROK, %eax
    je .rtl_intr_no_rx

.rtl_rx_loop:
    movl R_CR(%edi), %eax
    testl $CR_BUFE, %eax
    jne .rtl_intr_no_rx             # ring drained

    movl RTL_RXRING(%esi), %ecx
    addl RTL_RXOFF(%esi), %ecx      # ecx = &record
    movl (%ecx), %edx
    shrl $16, %edx                  # edx = packet length

    pushl %edx                      # save len
    pushl %edx                      # arg: size
    pushl %ebx                      # arg: dev
    call netdev_alloc_skb
    addl $8, %esp
    popl %edx                       # restore len
    testl %eax, %eax
    je .rtl_intr_no_rx              # alloc failure: leave ring as-is

    # inline skb_put(skb, len); the data-pointer read anchors the
    # higher-offset len/tail fields for the verifier
    movl SKB_DATA(%eax), %ecx
    movl %edx, SKB_LEN(%eax)
    addl %edx, SKB_TAIL(%eax)

    # copy payload: ring record body -> skb data (dwords + remainder)
    pushl %esi
    pushl %edi
    pushl %eax                      # save skb
    movl RTL_RXRING(%esi), %ecx
    addl RTL_RXOFF(%esi), %ecx
    leal 4(%ecx), %ecx              # skip the record header
    movl SKB_DATA(%eax), %edi
    movl %ecx, %esi
    movl %edx, %ecx
    shrl $2, %ecx
    rep movsl
    movl %edx, %ecx
    andl $3, %ecx
    rep movsb
    popl %eax
    popl %edi
    popl %esi

    # advance: off = align4(off + 4 + len); wrap like the device
    # (the low-offset RXOFF read also anchors the stats fields)
    movl RTL_RXOFF(%esi), %ecx
    incl RTL_RXP(%esi)
    addl %edx, RTL_RXB(%esi)
    leal 7(%ecx,%edx,1), %ecx
    andl $-4, %ecx
    cmpl $RX_WRAP_THRESHOLD, %ecx
    jb .rtl_rx_nowrap
    xorl %ecx, %ecx
.rtl_rx_nowrap:
    movl %ecx, RTL_RXOFF(%esi)
    movl %ecx, R_CAPR(%edi)

    # hand the packet up
    pushl %eax
    pushl %ebx
    pushl %eax
    call eth_type_trans
    addl $8, %esp
    popl %eax
    pushl %eax
    call netif_rx
    addl $4, %esp
    jmp .rtl_rx_loop

.rtl_intr_no_rx:
.rtl_intr_out:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# rtl8139_get_stats(netdev)
# ===========================================================================
rtl8139_get_stats:
    pushl %ebp
    movl %esp, %ebp
    pushl %esi
    movl 8(%ebp), %edx
    movl NDEV_PRIV(%edx), %esi
    movl RTL_TXP(%esi), %eax
    movl %eax, NDEV_TX_PKTS(%edx)
    movl RTL_TXB(%esi), %eax
    movl %eax, NDEV_TX_BYTES(%edx)
    movl RTL_RXP(%esi), %eax
    movl %eax, NDEV_RX_PKTS(%edx)
    movl RTL_RXB(%esi), %eax
    movl %eax, NDEV_RX_BYTES(%edx)
    leal NDEV_TX_PKTS(%edx), %eax
    popl %esi
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# rtl8139_close(netdev)
# ===========================================================================
rtl8139_close:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx
    movl NDEV_PRIV(%ebx), %esi
    movl RTL_HW(%esi), %edi

    pushl %ebx
    call netif_stop_queue
    addl $4, %esp
    pushl %ebx
    call netif_carrier_off
    addl $4, %esp

    movl $0, R_CR(%edi)
    movl $0, R_IMR(%edi)

    pushl %ebx
    movl NDEV_IRQ(%ebx), %eax
    pushl %eax
    call free_irq
    addl $8, %esp

    pushl $RX_RING_BYTES
    movl RTL_RXRING(%esi), %eax
    pushl %eax
    call dma_free_coherent
    addl $8, %esp
    xorl %ecx, %ecx
.close_txbuf:
    cmpl $4, %ecx
    jae .close_done
    andl $3, %ecx                   # defensive slot mask (bounds the index)
    pushl %ecx
    pushl $TX_SLOT_BYTES
    movl RTL_TXBUF0(%esi,%ecx,4), %eax
    pushl %eax
    call dma_free_coherent
    addl $8, %esp
    popl %ecx
    incl %ecx
    jmp .close_txbuf
.close_done:
    xorl %eax, %eax
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret
"""


def build_rtl8139_program(name: str = "rtl8139") -> Program:
    return assemble(RTL8139_ASM, constants=RTL_CONSTANTS, name=name)
