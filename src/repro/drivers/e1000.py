"""An e1000-style gigabit NIC driver, written in the toy-ISA assembly.

This plays the role of the Intel e1000 Linux driver the paper twins: it is
a *binary* driver from the rewriter's point of view. The performance-
critical routines (``e1000_xmit_frame``, ``e1000_intr`` and its clean
helpers) call exactly the paper's Table-1 support routines; the
configuration/management routines (probe, open, close, ethtool, watchdog,
stats) call a much wider support surface, which is what makes the 10-vs-
everything fast-path split measurable.

Notable realism points:

* the probe routine stores ``$e1000_xmit_frame`` into the net_device and
  clean-routine pointers into the adapter — real function pointers that
  the hypervisor instance later reaches through ``stlb_call`` translation;
* the interrupt handler dispatches tx/rx cleaning through those adapter
  function pointers (indirect calls on the fast path);
* MAC copies use ``rep movsb`` and array init uses ``rep stosl`` (string
  instructions the rewriter must chunk page-wise);
* descriptor rings and skb bookkeeping live entirely in driver/kernel
  data structures in dom0 memory, touched by plain loads and stores.
"""

from __future__ import annotations

from typing import Dict

from ..isa import Program, assemble
from ..machine import nic as hw
from ..osmodel import layout as L

#: Ring geometry (power of two so the driver can mask instead of divide).
TX_RING_ENTRIES = 64
RX_RING_ENTRIES = 64
RING_BYTES = TX_RING_ENTRIES * hw.DESC_SIZE
RX_BUFFER_LEN = 1536

#: Descriptor flag (driver-private, ignored by hardware): buffer was mapped
#: with dma_map_page and must be unmapped with dma_unmap_page.
DESC_PAGE = 0x4

DRIVER_CONSTANTS: Dict[str, int] = dict(L.ASM_CONSTANTS)
DRIVER_CONSTANTS.update(
    {
        "REG_CTRL": hw.REG_CTRL,
        "REG_STATUS": hw.REG_STATUS,
        "REG_ICR": hw.REG_ICR,
        "REG_IMS": hw.REG_IMS,
        "REG_IMC": hw.REG_IMC,
        "REG_RCTL": hw.REG_RCTL,
        "REG_TCTL": hw.REG_TCTL,
        "REG_RDBAL": hw.REG_RDBAL,
        "REG_RDLEN": hw.REG_RDLEN,
        "REG_RDH": hw.REG_RDH,
        "REG_RDT": hw.REG_RDT,
        "REG_TDBAL": hw.REG_TDBAL,
        "REG_TDLEN": hw.REG_TDLEN,
        "REG_TDH": hw.REG_TDH,
        "REG_TDT": hw.REG_TDT,
        "ICR_TXDW": hw.ICR_TXDW,
        "ICR_LSC": hw.ICR_LSC,
        "ICR_RXT0": hw.ICR_RXT0,
        "TCTL_EN": hw.TCTL_EN,
        "RCTL_EN": hw.RCTL_EN,
        "DESC_ADDR": hw.DESC_ADDR,
        "DESC_LEN": hw.DESC_LEN,
        "DESC_FLAGS": hw.DESC_FLAGS,
        "DESC_SIZE": hw.DESC_SIZE,
        "DESC_DD": hw.DESC_DD,
        "DESC_EOP": hw.DESC_EOP,
        "DESC_PAGE": DESC_PAGE,
        "TX_RING_ENTRIES": TX_RING_ENTRIES,
        "TX_RING_MASK": TX_RING_ENTRIES - 1,
        "RX_RING_ENTRIES": RX_RING_ENTRIES,
        "RX_RING_MASK": RX_RING_ENTRIES - 1,
        "RING_BYTES": RING_BYTES,
        "RX_BUFFER_LEN": RX_BUFFER_LEN,
        "IMS_ALL": hw.ICR_TXDW | hw.ICR_RXT0 | hw.ICR_LSC,
        "DMA_TO_DEVICE": 1,
        "DMA_FROM_DEVICE": 2,
    }
)

E1000_ASM = r"""
# ===========================================================================
# Global driver data (BSS; allocated in dom0 module-data space by the
# module loader, referenced by absolute symbols -> rewritten to SVM).
# ===========================================================================
.comm e1000_probe_count, 4
.comm e1000_intr_count, 4
.comm e1000_xmit_calls, 4
.comm e1000_version, 4
.comm e1000_tx_timeout_count, 4

.globl e1000_probe
.globl e1000_open
.globl e1000_close
.globl e1000_xmit_frame
.globl e1000_intr
.globl e1000_clean_tx
.globl e1000_clean_rx
.globl e1000_alloc_rx_buffers
.globl e1000_watchdog
.globl e1000_get_stats
.globl e1000_set_mac
.globl e1000_change_mtu
.globl e1000_ethtool_get_link
.globl e1000_tx_timeout

# ===========================================================================
# e1000_probe(netdev) -- device discovery & adapter initialisation.
# The kernel pre-fills netdev.irq/mac/mtu/priv and puts the NIC's MMIO
# *physical* base in NDEV_MEM; probe remaps it and takes over.
# ===========================================================================
e1000_probe:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx              # ebx = netdev

    pushl $0
    call pci_enable_device
    addl $4, %esp
    pushl $0
    call pci_set_master
    addl $4, %esp
    pushl $0
    pushl $0
    call pci_request_regions
    addl $8, %esp

    movl NDEV_PRIV(%ebx), %esi      # esi = adapter
    movl %ebx, ADP_NETDEV(%esi)

    # map device registers
    pushl $0x4000
    pushl NDEV_MEM(%ebx)
    call ioremap
    addl $8, %esp
    movl %eax, ADP_HW(%esi)
    movl %eax, NDEV_MEM(%ebx)

    # reset counters / lock
    leal ADP_TX_LOCK(%esi), %eax
    pushl %eax
    call spin_lock_init
    addl $4, %esp
    movl $TX_RING_ENTRIES, ADP_TX_COUNT(%esi)
    movl $RX_RING_ENTRIES, ADP_RX_COUNT(%esi)
    movl $0, ADP_TX_NEXT(%esi)
    movl $0, ADP_TX_CLEAN(%esi)
    movl $0, ADP_RX_NEXT(%esi)
    movl $0, ADP_RX_FILL(%esi)
    movl $0, ADP_TXP(%esi)
    movl $0, ADP_TXB(%esi)
    movl $0, ADP_RXP(%esi)
    movl $0, ADP_RXB(%esi)
    movl $0, ADP_TX_HANG(%esi)

    # descriptor rings (physically contiguous, bus address by reference --
    # note the stack variable passed by reference to a support routine)
    leal -4(%ebp), %eax
    pushl %eax
    pushl $RING_BYTES
    call dma_alloc_coherent
    addl $8, %esp
    movl %eax, ADP_TX_RING(%esi)
    movl -4(%ebp), %eax
    movl %eax, ADP_TX_DMA(%esi)

    leal -4(%ebp), %eax
    pushl %eax
    pushl $RING_BYTES
    call dma_alloc_coherent
    addl $8, %esp
    movl %eax, ADP_RX_RING(%esi)
    movl -4(%ebp), %eax
    movl %eax, ADP_RX_DMA(%esi)

    # skb bookkeeping arrays, zeroed with a string store
    pushl $0
    pushl $256
    call kmalloc
    addl $8, %esp
    movl %eax, ADP_TX_SKBS(%esi)
    movl %eax, %edi
    xorl %eax, %eax
    movl $64, %ecx
    rep stosl

    pushl $0
    pushl $256
    call kmalloc
    addl $8, %esp
    movl %eax, ADP_RX_SKBS(%esi)
    movl %eax, %edi
    xorl %eax, %eax
    movl $64, %ecx
    rep stosl

    # shadow the MAC address (string copy, 6 bytes)
    leal NDEV_MAC(%ebx), %eax
    movl %eax, %ecx
    leal ADP_MACSHADOW(%esi), %edi
    movl %ecx, %eax
    movl %eax, %ecx
    pushl %esi
    movl %eax, %esi
    movl $ETH_ALEN, %ecx
    rep movsb
    popl %esi

    # install entry points: the function pointers the kernel (and later
    # the TwinDrivers hypervisor instance) calls through
    movl $e1000_xmit_frame, NDEV_XMIT(%ebx)

    # watchdog timer (stored before the clean pointers: ascending
    # adapter offsets keep the accesses inside one proven page window)
    pushl $0
    pushl $TIMER_SIZE
    call kmalloc
    addl $8, %esp
    movl %eax, ADP_WATCHDOG(%esi)
    movl $e1000_clean_rx, ADP_CLEAN_RX(%esi)
    movl $e1000_clean_tx, ADP_CLEAN_TX(%esi)
    pushl %eax
    call init_timer
    addl $4, %esp
    movl ADP_WATCHDOG(%esi), %eax
    movl $e1000_watchdog, TIMER_FN(%eax)
    movl %esi, TIMER_ARG(%eax)

    pushl %ebx
    call register_netdev
    addl $4, %esp
    pushl %ebx
    call netif_carrier_off
    addl $4, %esp

    incl e1000_probe_count
    movl $70018, e1000_version      # "7.0.18" as a number

    xorl %eax, %eax
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_open(netdev) -- program the rings, enable tx/rx, hook the IRQ.
# ===========================================================================
e1000_open:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx              # netdev
    movl NDEV_PRIV(%ebx), %esi      # adapter
    movl ADP_HW(%esi), %edi         # register base

    movl ADP_TX_DMA(%esi), %eax
    movl %eax, REG_TDBAL(%edi)
    movl $RING_BYTES, REG_TDLEN(%edi)
    movl $0, REG_TDH(%edi)
    movl $0, REG_TDT(%edi)

    movl ADP_RX_DMA(%esi), %eax
    movl %eax, REG_RDBAL(%edi)
    movl $RING_BYTES, REG_RDLEN(%edi)
    movl $0, REG_RDH(%edi)
    movl $0, REG_RDT(%edi)

    movl $RCTL_EN, REG_RCTL(%edi)
    movl $TCTL_EN, REG_TCTL(%edi)

    pushl %esi
    call e1000_alloc_rx_buffers
    addl $4, %esp

    movl $IMS_ALL, REG_IMS(%edi)

    pushl %ebx                      # arg for the handler
    pushl $0                        # flags
    pushl $e1000_intr
    pushl NDEV_IRQ(%ebx)
    call request_irq
    addl $16, %esp

    pushl %ebx
    call netif_carrier_on
    addl $4, %esp
    pushl %ebx
    call netif_start_queue
    addl $4, %esp

    movl ADP_WATCHDOG(%esi), %eax
    pushl $2
    pushl %eax
    call mod_timer
    addl $8, %esp

    xorl %eax, %eax
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_alloc_rx_buffers(adapter) -- refill the rx ring with fresh skbs.
# Fast-path helper (called from the interrupt path); uses only Table-1
# support routines.
# ===========================================================================
e1000_alloc_rx_buffers:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %esi              # adapter
    # anchor the adapter at offset 0 before the loop: the ring-index
    # fields sit above it, so their checks elide on every iteration
    movl ADP_NETDEV(%esi), %eax
.rx_fill_loop:
    movl ADP_RX_FILL(%esi), %edx    # fill index
    leal 1(%edx), %ecx
    andl $RX_RING_MASK, %ecx
    cmpl ADP_RX_NEXT(%esi), %ecx    # ring full (one-slot gap)?
    je .rx_fill_done

    pushl %edx
    pushl $RX_BUFFER_LEN
    movl ADP_NETDEV(%esi), %eax
    pushl %eax
    call netdev_alloc_skb
    addl $8, %esp
    popl %edx
    testl %eax, %eax
    je .rx_fill_done
    movl %eax, %ebx                 # skb

    movl ADP_RX_SKBS(%esi), %ecx    # remember the skb for this slot
    movl %ebx, (%ecx,%edx,4)

    pushl %edx
    pushl $DMA_FROM_DEVICE
    pushl $RX_BUFFER_LEN
    movl SKB_DATA(%ebx), %eax
    pushl %eax
    pushl $0
    call dma_map_single
    addl $16, %esp
    popl %edx

    movl ADP_RX_RING(%esi), %ecx    # descriptor for this slot
    movl %edx, %edi
    shll $4, %edi
    addl %ecx, %edi
    movl %eax, DESC_ADDR(%edi)
    movl $0, DESC_LEN(%edi)
    movl $0, DESC_FLAGS(%edi)

    leal 1(%edx), %ecx
    andl $RX_RING_MASK, %ecx
    movl %ecx, ADP_RX_FILL(%esi)
    movl ADP_HW(%esi), %eax
    movl %ecx, REG_RDT(%eax)        # hand the slot to hardware
    jmp .rx_fill_loop
.rx_fill_done:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_xmit_frame(skb, netdev) -- THE transmit fast path.
# Returns 0 on success, 1 on ring-full (NETDEV_TX_BUSY).
# ===========================================================================
e1000_xmit_frame:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx              # skb
    movl 12(%ebp), %edx             # netdev
    movl NDEV_PRIV(%edx), %esi      # adapter

    # touch the lowest-offset field of each hot structure first: every
    # later access then lands above this one inside the same page, so
    # the verifier can anchor the whole access chain on one stlb check
    movl SKB_DATA(%ebx), %eax
    movl ADP_HW(%esi), %eax

    incl e1000_xmit_calls

    leal ADP_TX_LOCK(%esi), %eax
    pushl %eax
    call spin_trylock
    addl $4, %esp
    testl %eax, %eax
    je .xmit_busy_unlocked

    # descriptors needed = 1 + nr_frags; free = (clean - next - 1) & mask
    movl SKB_NR_FRAGS(%ebx), %ecx
    incl %ecx
    movl ADP_TX_CLEAN(%esi), %eax
    subl ADP_TX_NEXT(%esi), %eax
    decl %eax
    andl $TX_RING_MASK, %eax
    cmpl %ecx, %eax
    jb .xmit_ring_full

    # map the linear part
    movl SKB_LEN(%ebx), %edi
    movzwl SKB_DATA_LEN(%ebx), %eax
    subl %eax, %edi                 # edi = linear length
    pushl $DMA_TO_DEVICE
    pushl %edi
    movl SKB_DATA(%ebx), %eax
    pushl %eax
    pushl $0
    call dma_map_single
    addl $16, %esp

    # descriptor for the linear part
    movl ADP_TX_NEXT(%esi), %edx
    movl ADP_TX_RING(%esi), %ecx
    pushl %edx
    shll $4, %edx
    addl %ecx, %edx                 # edx = &desc
    movl %eax, DESC_ADDR(%edx)
    movl %edi, DESC_LEN(%edx)
    movl SKB_NR_FRAGS(%ebx), %ecx
    testl %ecx, %ecx
    jne .xmit_linear_mid
    movl $DESC_EOP, DESC_FLAGS(%edx)
    jmp .xmit_linear_done
.xmit_linear_mid:
    movl $0, DESC_FLAGS(%edx)
.xmit_linear_done:
    popl %edx                       # edx = linear desc index again

    # fragments
    xorl %edi, %edi                 # frag index
.xmit_frag_loop:
    cmpl SKB_NR_FRAGS(%ebx), %edi
    jae .xmit_frags_done
    # frag address = skb + SKB_FRAGS + i*12
    movl %edi, %eax
    shll $2, %eax
    leal (%eax,%edi,8), %eax        # i*4 + i*8 = i*12
    leal SKB_FRAGS(%ebx,%eax,1), %ecx
    pushl %edx
    # read the frag fields in ascending offset order (page, offset,
    # size) so the first access anchors the other two for the verifier
    movl SKB_FRAG_PAGE(%ecx), %eax
    movl SKB_FRAG_OFF(%ecx), %edx
    movl SKB_FRAG_SIZE(%ecx), %ecx
    pushl $DMA_TO_DEVICE
    pushl %ecx
    pushl %edx
    pushl %eax
    call dma_map_page
    addl $16, %esp
    popl %edx
    # next descriptor index = (linear_index + 1 + frag_i) & mask
    leal 1(%edx,%edi,1), %ecx
    andl $TX_RING_MASK, %ecx
    pushl %edx
    movl ADP_TX_RING(%esi), %edx
    shll $4, %ecx
    addl %edx, %ecx                 # ecx = &frag desc
    popl %edx
    movl %eax, DESC_ADDR(%ecx)
    # size again (recompute the frag pointer)
    movl %edi, %eax
    shll $2, %eax
    pushl %edx
    leal (%eax,%edi,8), %eax
    leal SKB_FRAGS(%ebx,%eax,1), %edx
    movl SKB_FRAG_SIZE(%edx), %eax
    popl %edx
    movl %eax, DESC_LEN(%ecx)
    # last frag gets EOP; all frag descs carry the PAGE flag
    leal 1(%edi), %eax
    cmpl SKB_NR_FRAGS(%ebx), %eax
    je .xmit_frag_last
    movl $DESC_PAGE, DESC_FLAGS(%ecx)
    jmp .xmit_frag_next
.xmit_frag_last:
    movl $DESC_PAGE+DESC_EOP, DESC_FLAGS(%ecx)
.xmit_frag_next:
    incl %edi
    jmp .xmit_frag_loop
.xmit_frags_done:

    # remember the skb on its LAST descriptor (freed by clean_tx)
    movl SKB_NR_FRAGS(%ebx), %ecx
    addl %edx, %ecx
    andl $TX_RING_MASK, %ecx
    movl ADP_TX_SKBS(%esi), %eax
    movl %ebx, (%eax,%ecx,4)

    # advance next = (last + 1) & mask
    incl %ecx
    andl $TX_RING_MASK, %ecx
    movl %ecx, ADP_TX_NEXT(%esi)

    # stats (driver-private and netdev)
    incl ADP_TXP(%esi)
    movl SKB_LEN(%ebx), %eax
    addl %eax, ADP_TXB(%esi)
    movl 12(%ebp), %edx
    incl NDEV_TX_PKTS(%edx)
    addl %eax, NDEV_TX_BYTES(%edx)

    # kick hardware
    movl ADP_HW(%esi), %eax
    movl ADP_TX_NEXT(%esi), %ecx
    movl %ecx, REG_TDT(%eax)

    # unlock and return success
    pushl $1
    leal ADP_TX_LOCK(%esi), %eax
    pushl %eax
    call spin_unlock_irqrestore
    addl $8, %esp
    xorl %eax, %eax
    jmp .xmit_out

.xmit_ring_full:
    movl 12(%ebp), %edx
    pushl %edx
    call netif_stop_queue
    addl $4, %esp
    pushl $1
    leal ADP_TX_LOCK(%esi), %eax
    pushl %eax
    call spin_unlock_irqrestore
    addl $8, %esp
.xmit_busy_unlocked:
    movl $1, %eax
.xmit_out:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_intr(irq, netdev) -- interrupt service routine (fast path).
# Dispatches to the clean routines through adapter function pointers.
# ===========================================================================
e1000_intr:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 12(%ebp), %ebx             # netdev (handler arg)
    movl NDEV_PRIV(%ebx), %esi      # adapter
    movl ADP_HW(%esi), %eax
    movl REG_ICR(%eax), %edi        # read-to-clear cause register
    testl %edi, %edi
    je .intr_out

    incl e1000_intr_count

    testl $ICR_TXDW, %edi
    je .intr_no_tx
    pushl %esi
    call *ADP_CLEAN_TX(%esi)
    addl $4, %esp
.intr_no_tx:
    testl $ICR_RXT0, %edi
    je .intr_no_rx
    pushl %esi
    call *ADP_CLEAN_RX(%esi)
    addl $4, %esp
    pushl %esi
    call e1000_alloc_rx_buffers
    addl $4, %esp
.intr_no_rx:
    testl $ICR_LSC, %edi
    je .intr_out
    pushl %esi
    call mii_check_link
    addl $4, %esp
    testl %eax, %eax
    je .intr_link_down
    pushl %ebx
    call netif_carrier_on
    addl $4, %esp
    jmp .intr_out
.intr_link_down:
    pushl %ebx
    call netif_carrier_off
    addl $4, %esp
.intr_out:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_clean_tx(adapter) -- reclaim completed tx descriptors (fast path).
# ===========================================================================
e1000_clean_tx:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %esi              # adapter
    # adapter anchor at offset 0 (see e1000_xmit_frame)
    movl ADP_NETDEV(%esi), %eax
.clean_tx_loop:
    movl ADP_TX_CLEAN(%esi), %ebx
    cmpl ADP_TX_NEXT(%esi), %ebx
    je .clean_tx_done
    movl ADP_TX_RING(%esi), %ecx
    movl %ebx, %edi
    shll $4, %edi
    addl %ecx, %edi                 # edi = &desc
    movl DESC_ADDR(%edi), %eax      # descriptor anchor at offset 0
    movl DESC_FLAGS(%edi), %eax
    testl $DESC_DD, %eax
    je .clean_tx_done

    # unmap: page frags with dma_unmap_page, linear with dma_unmap_single
    testl $DESC_PAGE, %eax
    je .clean_tx_single
    pushl $DMA_TO_DEVICE
    movl DESC_LEN(%edi), %eax
    pushl %eax
    movl DESC_ADDR(%edi), %eax
    pushl %eax
    call dma_unmap_page
    addl $12, %esp
    jmp .clean_tx_free
.clean_tx_single:
    pushl $DMA_TO_DEVICE
    movl DESC_LEN(%edi), %eax
    pushl %eax
    movl DESC_ADDR(%edi), %eax
    pushl %eax
    call dma_unmap_single
    addl $12, %esp
.clean_tx_free:
    # free the skb recorded on this slot, if any
    movl ADP_TX_SKBS(%esi), %ecx
    movl (%ecx,%ebx,4), %eax
    testl %eax, %eax
    je .clean_tx_advance
    movl $0, (%ecx,%ebx,4)
    pushl %eax
    call dev_kfree_skb_any
    addl $4, %esp
.clean_tx_advance:
    movl $0, DESC_FLAGS(%edi)
    leal 1(%ebx), %eax
    andl $TX_RING_MASK, %eax
    movl %eax, ADP_TX_CLEAN(%esi)
    jmp .clean_tx_loop
.clean_tx_done:
    # wake the queue if it was stopped and there is room again
    # (netif_queue_stopped is a static inline in Linux: test the bit here)
    movl ADP_NETDEV(%esi), %ebx
    movl NDEV_STATE(%ebx), %eax
    testl $NDEV_STATE_QUEUE_STOPPED, %eax
    je .clean_tx_out
    movl ADP_TX_CLEAN(%esi), %eax
    subl ADP_TX_NEXT(%esi), %eax
    decl %eax
    andl $TX_RING_MASK, %eax
    cmpl $8, %eax
    jb .clean_tx_out
    pushl %ebx
    call netif_wake_queue
    addl $4, %esp
.clean_tx_out:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_clean_rx(adapter) -- receive completed frames (fast path).
# ===========================================================================
e1000_clean_rx:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %esi              # adapter
    # adapter anchor at offset 0 (see e1000_xmit_frame)
    movl ADP_NETDEV(%esi), %eax
.clean_rx_loop:
    movl ADP_RX_NEXT(%esi), %ebx
    movl ADP_RX_RING(%esi), %ecx
    movl %ebx, %edi
    shll $4, %edi
    addl %ecx, %edi                 # edi = &desc
    movl DESC_ADDR(%edi), %eax      # descriptor anchor at offset 0
    movl DESC_FLAGS(%edi), %eax
    testl $DESC_DD, %eax
    je .clean_rx_done

    pushl $DMA_FROM_DEVICE
    pushl $RX_BUFFER_LEN
    movl DESC_ADDR(%edi), %eax
    pushl %eax
    call dma_unmap_single
    addl $12, %esp

    movl ADP_RX_SKBS(%esi), %ecx
    movl (%ecx,%ebx,4), %edx        # edx = skb
    movl $0, (%ecx,%ebx,4)
    testl %edx, %edx
    je .clean_rx_advance

    # inline skb_put(skb, desc.len): len = len, tail += len
    # (len first: its lower offset anchors the tail update)
    movl DESC_LEN(%edi), %eax
    movl %eax, SKB_LEN(%edx)
    addl %eax, SKB_TAIL(%edx)

    # stats
    incl ADP_RXP(%esi)
    addl %eax, ADP_RXB(%esi)

    pushl %edx
    movl ADP_NETDEV(%esi), %eax
    pushl %eax
    pushl %edx
    call eth_type_trans
    addl $8, %esp
    popl %edx

    pushl %edx
    call netif_rx
    addl $4, %esp

.clean_rx_advance:
    movl $0, DESC_FLAGS(%edi)
    leal 1(%ebx), %eax
    andl $RX_RING_MASK, %eax
    movl %eax, ADP_RX_NEXT(%esi)
    jmp .clean_rx_loop
.clean_rx_done:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_watchdog(adapter) -- periodic link & tx-hang check (timer context;
# NOT on the fast path: uses the wide support surface).
# ===========================================================================
e1000_watchdog:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    movl 8(%ebp), %esi              # adapter
    movl ADP_NETDEV(%esi), %ebx

    pushl %esi
    call mii_check_link
    addl $4, %esp
    testl %eax, %eax
    je .wd_link_down
    movl $1, ADP_LINK(%esi)
    pushl %ebx
    call netif_carrier_on
    addl $4, %esp
    jmp .wd_hang_check
.wd_link_down:
    movl $0, ADP_LINK(%esi)
    pushl %ebx
    call netif_carrier_off
    addl $4, %esp
.wd_hang_check:
    # tx hang: clean index unchanged since last run while work pending
    movl ADP_TX_CLEAN(%esi), %eax
    cmpl ADP_TX_NEXT(%esi), %eax
    je .wd_no_hang
    cmpl ADP_TX_HANG(%esi), %eax
    jne .wd_no_hang
    incl e1000_tx_timeout_count
    pushl %ebx
    call e1000_tx_timeout
    addl $4, %esp
.wd_no_hang:
    movl ADP_TX_CLEAN(%esi), %eax
    movl %eax, ADP_TX_HANG(%esi)

    # re-arm
    movl ADP_WATCHDOG(%esi), %eax
    pushl $2
    pushl %eax
    call mod_timer
    addl $8, %esp

    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# e1000_tx_timeout(netdev) -- error path: restart the queue.
e1000_tx_timeout:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    pushl %eax
    call netif_wake_queue
    addl $4, %esp
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_get_stats(netdev) -- publish driver stats into the netdev struct;
# returns a pointer to them (management path).
# ===========================================================================
e1000_get_stats:
    pushl %ebp
    movl %esp, %ebp
    pushl %esi
    movl 8(%ebp), %edx
    movl NDEV_PRIV(%edx), %esi
    movl ADP_TXP(%esi), %eax
    movl %eax, NDEV_TX_PKTS(%edx)
    movl ADP_TXB(%esi), %eax
    movl %eax, NDEV_TX_BYTES(%edx)
    movl ADP_RXP(%esi), %eax
    movl %eax, NDEV_RX_PKTS(%edx)
    movl ADP_RXB(%esi), %eax
    movl %eax, NDEV_RX_BYTES(%edx)
    leal NDEV_TX_PKTS(%edx), %eax
    popl %esi
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_set_mac(netdev, mac_ptr) -- ethtool-style management operation.
# ===========================================================================
e1000_set_mac:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx              # netdev
    pushl $0
    call capable
    addl $4, %esp
    testl %eax, %eax
    je .set_mac_fail
    movl 12(%ebp), %esi             # new mac
    leal NDEV_MAC(%ebx), %edi
    movl $ETH_ALEN, %ecx
    rep movsb
    # update the adapter shadow too
    movl NDEV_PRIV(%ebx), %edx
    movl 12(%ebp), %esi
    leal ADP_MACSHADOW(%edx), %edi
    movl $ETH_ALEN, %ecx
    rep movsb
    xorl %eax, %eax
    jmp .set_mac_out
.set_mac_fail:
    movl $1, %eax
.set_mac_out:
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret

# e1000_change_mtu(netdev, new_mtu) -- management path with validation.
e1000_change_mtu:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %edx
    movl 12(%ebp), %eax
    cmpl $68, %eax
    jl .mtu_bad
    cmpl $MTU, %eax
    jg .mtu_bad
    movl %eax, NDEV_MTU(%edx)
    xorl %eax, %eax
    jmp .mtu_out
.mtu_bad:
    movl $1, %eax
.mtu_out:
    movl %ebp, %esp
    popl %ebp
    ret

# e1000_ethtool_get_link(netdev)
e1000_ethtool_get_link:
    pushl %ebp
    movl %esp, %ebp
    movl 8(%ebp), %eax
    pushl %eax
    call ethtool_op_get_link
    addl $4, %esp
    movl %ebp, %esp
    popl %ebp
    ret

# ===========================================================================
# e1000_close(netdev) -- tear everything down (management path).
# ===========================================================================
e1000_close:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx
    movl NDEV_PRIV(%ebx), %esi
    movl ADP_HW(%esi), %edi

    pushl %ebx
    call netif_stop_queue
    addl $4, %esp
    pushl %ebx
    call netif_carrier_off
    addl $4, %esp

    movl $0, REG_TCTL(%edi)
    movl $0, REG_RCTL(%edi)
    movl $IMS_ALL, REG_IMC(%edi)

    movl ADP_WATCHDOG(%esi), %eax
    pushl %eax
    call del_timer_sync
    addl $4, %esp

    pushl %ebx
    movl NDEV_IRQ(%ebx), %eax
    pushl %eax
    call free_irq
    addl $8, %esp

    # drop any rx skbs still on the ring
    xorl %ebx, %ebx
.close_rx_loop:
    cmpl $RX_RING_ENTRIES, %ebx
    jae .close_rx_done
    movl ADP_RX_SKBS(%esi), %ecx
    movl (%ecx,%ebx,4), %eax
    testl %eax, %eax
    je .close_rx_next
    movl $0, (%ecx,%ebx,4)
    pushl %eax
    call dev_kfree_skb_any
    addl $4, %esp
.close_rx_next:
    incl %ebx
    jmp .close_rx_loop
.close_rx_done:

    pushl $RING_BYTES
    movl ADP_TX_RING(%esi), %eax
    pushl %eax
    call dma_free_coherent
    addl $8, %esp
    pushl $RING_BYTES
    movl ADP_RX_RING(%esi), %eax
    pushl %eax
    call dma_free_coherent
    addl $8, %esp
    movl ADP_TX_SKBS(%esi), %eax
    pushl %eax
    call kfree
    addl $4, %esp
    movl ADP_RX_SKBS(%esi), %eax
    pushl %eax
    call kfree
    addl $4, %esp

    xorl %eax, %eax
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret
"""


def build_e1000_program(name: str = "e1000") -> Program:
    """Assemble the e1000 driver into a Program (the 'driver binary')."""
    return assemble(E1000_ASM, constants=DRIVER_CONSTANTS, name=name)


#: Entry points the loader tells the hypervisor about (paper §5.2): the
#: transmit routine, the interrupt handler, and management entry points
#: that stay with the VM instance.
FAST_PATH_ENTRIES = ("e1000_xmit_frame", "e1000_intr")
MANAGEMENT_ENTRIES = (
    "e1000_probe", "e1000_open", "e1000_close", "e1000_watchdog",
    "e1000_get_stats", "e1000_set_mac", "e1000_change_mtu",
    "e1000_ethtool_get_link",
)
