"""Measurement: cycle accounting and throughput conversion."""

from .cycles import CATEGORIES, CycleAccount, PacketProfile, format_profile_table
from .throughput import (
    CPU_HZ,
    DEFAULT_NICS,
    NIC_GOODPUT_MBPS,
    PACKET_BITS,
    PACKET_BYTES,
    ThroughputResult,
    improvement_factor,
    throughput_from_cycles,
)

__all__ = [
    "CATEGORIES",
    "CPU_HZ",
    "CycleAccount",
    "DEFAULT_NICS",
    "NIC_GOODPUT_MBPS",
    "PACKET_BITS",
    "PACKET_BYTES",
    "PacketProfile",
    "ThroughputResult",
    "format_profile_table",
    "improvement_factor",
    "throughput_from_cycles",
]
