"""Cycle accounting in the paper's four profile categories.

Figures 7 and 8 of the paper break per-packet CPU cost into four
categories: ``dom0`` (driver-domain / native kernel), ``domU`` (guest
kernel), ``Xen`` (hypervisor) and ``e1000`` (the driver itself). Every
cycle charged anywhere in the simulator lands in exactly one of these
buckets, so the profile benchmarks can print the same stacked bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

#: The paper's profile categories (figure 7/8 legend order).
CATEGORIES = ("dom0", "domU", "Xen", "e1000")


class CycleAccount:
    """Accumulates cycles per category plus free-form event counters."""

    def __init__(self):
        self.cycles: Dict[str, int] = {c: 0 for c in CATEGORIES}
        self.events: Dict[str, int] = {}

    def charge(self, category: str, cycles: int):
        if category not in self.cycles:
            raise KeyError(f"unknown cycle category {category!r}")
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self.cycles[category] += cycles

    def count(self, event: str, n: int = 1):
        self.events[event] = self.events.get(event, 0) + n

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    def merged(self, other: "CycleAccount") -> "CycleAccount":
        out = CycleAccount()
        for c in CATEGORIES:
            out.cycles[c] = self.cycles[c] + other.cycles[c]
        for k in set(self.events) | set(other.events):
            out.events[k] = self.events.get(k, 0) + other.events.get(k, 0)
        return out

    def snapshot(self) -> Dict[str, int]:
        return dict(self.cycles)

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        return {c: self.cycles[c] - snapshot.get(c, 0) for c in CATEGORIES}

    def reset(self):
        self.cycles = {c: 0 for c in CATEGORIES}
        self.events = {}

    def __repr__(self):  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c}={v}" for c, v in self.cycles.items() if v)
        return f"CycleAccount({parts})"


@dataclass
class PacketProfile:
    """Per-packet cycle breakdown — one stacked bar of figure 7/8."""

    config: str
    direction: str                     # "tx" | "rx"
    packets: int
    cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def per_packet(self) -> Dict[str, float]:
        if self.packets == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: self.cycles.get(c, 0) / self.packets for c in CATEGORIES}

    @property
    def total_per_packet(self) -> float:
        return sum(self.per_packet.values())

    def format_row(self) -> str:
        pp = self.per_packet
        cells = "  ".join(f"{c}={pp[c]:8.0f}" for c in CATEGORIES)
        return (f"{self.config:12s} {self.direction:2s}  {cells}  "
                f"total={self.total_per_packet:8.0f}")


def format_profile_table(profiles: Iterable[PacketProfile],
                         title: str) -> str:
    lines = [title, "-" * len(title)]
    lines.extend(p.format_row() for p in profiles)
    return "\n".join(lines)
