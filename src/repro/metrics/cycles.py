"""Cycle accounting in the paper's four profile categories.

Figures 7 and 8 of the paper break per-packet CPU cost into four
categories: ``dom0`` (driver-domain / native kernel), ``domU`` (guest
kernel), ``Xen`` (hypervisor) and ``e1000`` (the driver itself). Every
cycle charged anywhere in the simulator lands in exactly one of these
buckets, so the profile benchmarks can print the same stacked bars.

Since the observability PR, :class:`CycleAccount` is a thin view over a
:class:`~repro.obs.metrics.MetricsRegistry`: each category is the
registry counter ``cycles.<category>`` and each free-form event is
``event.<name>``. A machine's account shares the machine-wide registry
(``machine.obs.registry``), so the figure 7/8 numbers and the trace
exporters read the same stream; a standalone ``CycleAccount()`` gets a
private registry and behaves exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..obs.metrics import MetricsRegistry

#: The paper's profile categories (figure 7/8 legend order).
CATEGORIES = ("dom0", "domU", "Xen", "e1000")

#: Registry namespaces owned by the account.
CYCLES_PREFIX = "cycles."
EVENTS_PREFIX = "event."


class CycleAccount:
    """Accumulates cycles per category plus free-form event counters,
    backed by registry counters."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        # hot path: pre-resolved counter objects, one dict lookup + int add
        self._cycles = {
            c: self.registry.counter(CYCLES_PREFIX + c) for c in CATEGORIES
        }

    def charge(self, category: str, cycles: int):
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        try:
            self._cycles[category].value += cycles
        except KeyError:
            raise KeyError(f"unknown cycle category {category!r}") from None

    def count(self, event: str, n: int = 1):
        self.registry.counter(EVENTS_PREFIX + event).value += n

    @property
    def cycles(self) -> Dict[str, int]:
        return {c: counter.value for c, counter in self._cycles.items()}

    @property
    def events(self) -> Dict[str, int]:
        plen = len(EVENTS_PREFIX)
        return {
            name[plen:]: value
            for name, value in self.registry.counters_snapshot(
                EVENTS_PREFIX).items()
            if value
        }

    @property
    def total(self) -> int:
        return (self._cycles["dom0"].value + self._cycles["domU"].value
                + self._cycles["Xen"].value + self._cycles["e1000"].value)

    def merged(self, other: "CycleAccount") -> "CycleAccount":
        out = CycleAccount()
        for c in CATEGORIES:
            out._cycles[c].value = self._cycles[c].value + other._cycles[c].value
        mine, theirs = self.events, other.events
        for k in set(mine) | set(theirs):
            out.count(k, mine.get(k, 0) + theirs.get(k, 0))
        return out

    def snapshot(self) -> Dict[str, int]:
        return self.cycles

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        return {c: self._cycles[c].value - snapshot.get(c, 0)
                for c in CATEGORIES}

    def reset(self):
        """Zero the account's namespaces (cycles + events) only; other
        counters in a shared registry are untouched."""
        self.registry.reset(CYCLES_PREFIX)
        self.registry.reset(EVENTS_PREFIX)

    def __repr__(self):  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c}={v}" for c, v in self.cycles.items() if v)
        return f"CycleAccount({parts})"


@dataclass
class PacketProfile:
    """Per-packet cycle breakdown — one stacked bar of figure 7/8."""

    config: str
    direction: str                     # "tx" | "rx"
    packets: int
    cycles: Dict[str, int] = field(default_factory=dict)
    #: non-cycle registry counter movement over the measured batch
    #: (stlb misses, support calls, upcalls, ...), per packet batch.
    counters: Dict[str, int] = field(default_factory=dict)
    #: full cycle-attribution profile (``repro-profile/v1``) when the
    #: measurement ran with the profiler enabled; its per-category sums
    #: are asserted bit-equal to ``cycles`` at capture time.
    attribution: Optional[Dict] = None

    @property
    def per_packet(self) -> Dict[str, float]:
        if self.packets == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: self.cycles.get(c, 0) / self.packets for c in CATEGORIES}

    @property
    def total_per_packet(self) -> float:
        return sum(self.per_packet.values())

    def format_row(self) -> str:
        pp = self.per_packet
        cells = "  ".join(f"{c}={pp[c]:8.0f}" for c in CATEGORIES)
        return (f"{self.config:12s} {self.direction:2s}  {cells}  "
                f"total={self.total_per_packet:8.0f}")


def format_profile_table(profiles: Iterable[PacketProfile],
                         title: str) -> str:
    lines = [title, "-" * len(title)]
    lines.extend(p.format_row() for p in profiles)
    return "\n".join(lines)
