"""Throughput math: cycles/packet -> Mb/s, CPU utilisation, CPU-scaled units.

The paper's testbed is a 3.0 GHz Xeon with five 1 Gb/s NICs. Throughput in
any configuration is the smaller of the line-rate bound (5 x ~938 Mb/s TCP
goodput) and the CPU bound (cycles available / cycles per packet). The
paper reports *CPU-scaled units* — throughput divided by CPU utilisation —
when comparing configurations that are not all CPU-saturated (only native
Linux transmit leaves CPU headroom: 4690 Mb/s at 76.9 % CPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Testbed parameters (paper §6.1).
CPU_HZ = 3_000_000_000
NIC_LINE_MBPS = 1000.0
#: Practical TCP goodput of a single GigE NIC: 4690 Mb/s over 5 NICs.
NIC_GOODPUT_MBPS = 938.0
DEFAULT_NICS = 5
#: MTU-sized packet: 1500 bytes on the wire per TCP segment.
PACKET_BYTES = 1500
PACKET_BITS = PACKET_BYTES * 8


@dataclass
class ThroughputResult:
    """Outcome of a streaming benchmark run for one configuration."""

    config: str
    direction: str
    cycles_per_packet: float
    throughput_mbps: float
    cpu_utilization: float           # 0..1
    nics: int
    #: registry counter movement over the measured batch (stlb misses,
    #: support calls, upcalls, ...) — attached by the netperf workload.
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def cpu_scaled_mbps(self) -> float:
        """Throughput normalised to 100 % CPU — the paper's comparison unit."""
        if self.cpu_utilization <= 0:
            return 0.0
        return self.throughput_mbps / self.cpu_utilization

    def format_row(self) -> str:
        return (
            f"{self.config:12s} {self.direction:2s} "
            f"{self.throughput_mbps:7.0f} Mb/s  "
            f"cpu={self.cpu_utilization * 100:5.1f}%  "
            f"cpu-scaled={self.cpu_scaled_mbps:7.0f} Mb/s  "
            f"({self.cycles_per_packet:7.0f} cyc/pkt)"
        )


def throughput_from_cycles(
    config: str,
    direction: str,
    cycles_per_packet: float,
    nics: int = DEFAULT_NICS,
    cpu_hz: int = CPU_HZ,
    packet_bits: int = PACKET_BITS,
    goodput_per_nic_mbps: float = NIC_GOODPUT_MBPS,
) -> ThroughputResult:
    """Convert a measured cycles/packet figure into a throughput result.

    The achievable packet rate is ``min(line rate, CPU rate)``; CPU
    utilisation is the fraction of the CPU needed to sustain the achieved
    rate (capped at 1.0).
    """
    if cycles_per_packet <= 0:
        raise ValueError("cycles_per_packet must be positive")
    line_pps = nics * goodput_per_nic_mbps * 1e6 / packet_bits
    cpu_pps = cpu_hz / cycles_per_packet
    achieved_pps = min(line_pps, cpu_pps)
    throughput_mbps = achieved_pps * packet_bits / 1e6
    utilization = min(1.0, achieved_pps * cycles_per_packet / cpu_hz)
    return ThroughputResult(
        config=config,
        direction=direction,
        cycles_per_packet=cycles_per_packet,
        throughput_mbps=throughput_mbps,
        cpu_utilization=utilization,
        nics=nics,
    )


def improvement_factor(result: ThroughputResult,
                       baseline: ThroughputResult) -> float:
    """CPU-scaled improvement factor (the paper's 2.4x / 2.1x numbers)."""
    return result.cpu_scaled_mbps / baseline.cpu_scaled_mbps
