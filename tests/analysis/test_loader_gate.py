"""Verify-then-load: the hypervisor loader refuses binaries the static
verifier rejects, and the TwinDriverManager publishes its report."""

import dataclasses

import pytest

from repro.analysis import VerificationError
from repro.core import TwinDriverManager
from repro.isa import Instruction, Mem, Reg
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor


def make_parts():
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    return m, xen, k0


def tampering(real_rewrite):
    """Wrap rewrite_driver so the 'rewriter' emits one raw store that the
    instrumentation provably missed."""

    def tampered(program, **kwargs):
        rewritten, stats = real_rewrite(program, **kwargs)
        evil = dataclasses.replace(
            rewritten,
            instructions=list(rewritten.instructions)
            + [Instruction("mov", (Reg("eax"), Mem(base="ebx"))),
               Instruction("ret", ())],
        )
        return evil, stats

    return tampered


class TestLoaderGate:
    def test_clean_driver_loads_and_report_is_published(self):
        m, xen, k0 = make_parts()
        twin = TwinDriverManager(xen, k0)
        assert twin.verify_report is not None
        assert twin.verify_report.ok
        assert twin.verify_report.mode == "annotated"

    def test_tampered_rewrite_is_refused(self, monkeypatch):
        import repro.core.twin as twin_mod

        monkeypatch.setattr(twin_mod, "rewrite_driver",
                            tampering(twin_mod.rewrite_driver))
        m, xen, k0 = make_parts()
        with pytest.raises(VerificationError) as exc:
            TwinDriverManager(xen, k0)
        report = exc.value.report
        assert any(f.passname == "svm" for f in report.errors)
        assert "REJECT" in report.format()

    def test_verify_false_opts_out(self, monkeypatch):
        # tests/benchmarks escape hatch: same tampered binary loads when
        # verification is explicitly disabled
        import repro.core.twin as twin_mod

        monkeypatch.setattr(twin_mod, "rewrite_driver",
                            tampering(twin_mod.rewrite_driver))
        m, xen, k0 = make_parts()
        twin = TwinDriverManager(xen, k0, verify=False)
        assert twin.verify_report is None
        assert twin.hyp_driver is not None
