"""The static verifier: both shipped drivers verify clean, every corpus
class is rejected with a precise diagnostic, and the annotation
cross-check catches tampered metadata."""

import dataclasses

import pytest

from repro.analysis import (
    build_negative_corpus,
    find_fastpath_sites,
    find_stack_check_sites,
    find_translate_points,
    verify_program,
)
from repro.core import rewrite_driver
from repro.drivers import DRIVER_SPECS
from repro.isa import assemble


def rewrite(text, protect_stack=False):
    return rewrite_driver(assemble(text), protect_stack=protect_stack)


class TestDriversVerifyClean:
    @pytest.mark.parametrize("name", sorted(DRIVER_SPECS))
    def test_annotated_mode_zero_findings(self, name):
        program = DRIVER_SPECS[name].build_program()
        rewritten, stats = rewrite_driver(program)
        report = verify_program(rewritten, annotations=stats.annotations)
        assert report.mode == "annotated"
        assert report.findings == []
        assert report.ok

    @pytest.mark.parametrize("name", sorted(DRIVER_SPECS))
    def test_hostile_mode_zero_findings(self, name):
        # no rewriter metadata at all: the binary must stand on its own
        program = DRIVER_SPECS[name].build_program()
        rewritten, _ = rewrite_driver(program)
        report = verify_program(rewritten)
        assert report.mode == "hostile"
        assert report.findings == []

    def test_every_memory_site_accounted_for(self):
        program = DRIVER_SPECS["e1000"].build_program()
        rewritten, stats = rewrite_driver(program)
        report = verify_program(rewritten, annotations=stats.annotations)
        svm = report.stats["svm"]
        assert svm["fast_path_sites"] >= stats.memory_rewritten
        assert svm["routed_indirects"] == stats.indirect_rewritten
        assert svm["fast_path_sites"] > 100     # the driver is not trivial

    def test_protect_stack_drivers_still_clean(self):
        program = DRIVER_SPECS["e1000"].build_program()
        rewritten, stats = rewrite_driver(program, protect_stack=True)
        report = verify_program(rewritten, annotations=stats.annotations,
                                protect_stack=True)
        assert report.findings == []


class TestNegativeCorpus:
    @pytest.mark.parametrize("entry", build_negative_corpus(),
                             ids=lambda e: e.name)
    def test_rejected_by_expected_pass(self, entry):
        report = verify_program(entry.program,
                                protect_stack=entry.protect_stack)
        assert not report.ok, entry.name
        assert any(f.passname == entry.expect_pass for f in report.errors), \
            report.format()

    @pytest.mark.parametrize("entry", build_negative_corpus(),
                             ids=lambda e: e.name)
    def test_diagnostics_are_instruction_indexed(self, entry):
        report = verify_program(entry.program,
                                protect_stack=entry.protect_stack)
        for finding in report.errors:
            assert 0 <= finding.index < len(entry.program.instructions)
            assert f"@{finding.index}" in finding.format()

    def test_corpus_covers_all_seven_classes(self):
        corpus = build_negative_corpus()
        assert len(corpus) >= 14
        # syntactic (PR 1) plus the semantic abstract-interpretation passes
        assert {e.expect_pass for e in corpus} == {
            "svm", "flow", "stack", "clobber",
            "range", "provenance", "locks",
        }

    @pytest.mark.parametrize(
        "entry",
        [e for e in build_negative_corpus() if e.expect_key is not None],
        ids=lambda e: e.name)
    def test_semantic_entries_rejected_with_exact_key(self, entry):
        """The semantic corpus binaries are clean to every syntactic
        pass; only the expected range/provenance/locks property — with
        the exact finding key — may reject them."""
        report = verify_program(entry.program,
                                protect_stack=entry.protect_stack)
        assert not report.ok, entry.name
        assert any(f.key == entry.expect_key for f in report.errors), \
            report.format()
        assert {f.passname for f in report.errors} == {entry.expect_pass}, \
            report.format()


class TestPatternMatchers:
    def test_fastpath_sites_found_with_wrapping(self):
        out, stats = rewrite("""
.globl f
f:
    cmpl $1, %eax
    movl (%ebx), %ecx
    je t
t:  ret
""")
        (site,) = find_fastpath_sites(out)
        assert site.flags_wrapped               # flags live across the site
        assert len(set(site.regs)) == 3
        assert out.instructions[site.access].memory_operand().base == \
            site.regs[1]

    def test_spilled_site_extends_over_saves(self):
        out, stats = rewrite(".globl f\nf: movl (%ebx), %eax\nret")
        assert stats.spills == 1
        (site,) = find_fastpath_sites(out)
        assert site.spilled and site.restored
        assert site.start < site.lea            # the save precedes the lea

    def test_stack_check_site_matched(self):
        out, stats = rewrite("""
.globl f
f:
    movl %eax, -16(%ebp,%ecx,4)
    ret
""", protect_stack=True)
        (site,) = find_stack_check_sites(out)
        assert out.instructions[site.access].memory_operand().index == "ecx"

    def test_translate_points_in_string_loop(self):
        out, _ = rewrite(".globl f\nf: rep movsl\nret")
        points = find_translate_points(out)
        assert len(points) == 2                 # esi and edi
        assert {p.source for p in points.values()} == {"esi", "edi"}

    def test_string_pointers_proved_translated(self):
        out, _ = rewrite(".globl f\nf: rep movsl\nret")
        report = verify_program(out)
        assert report.ok
        assert report.stats["svm"]["string_accesses"] == 1


class TestAnnotationCrossCheck:
    def _rewritten(self):
        return rewrite(".globl f\nf: pushl %esi\nmovl (%ebx), %eax\n"
                       "popl %esi\nret")

    def test_clean_annotations_accepted(self):
        out, stats = self._rewritten()
        report = verify_program(out, annotations=stats.annotations)
        assert report.ok

    def test_tampered_scratch_rejected(self):
        out, stats = self._rewritten()
        (ann,) = stats.annotations
        forged = dataclasses.replace(ann, scratch=("esi", "edi", "ebx"))
        report = verify_program(out, annotations=[forged])
        assert any(f.passname == "annot" for f in report.errors)

    def test_shifted_range_rejected(self):
        out, stats = self._rewritten()
        (ann,) = stats.annotations
        forged = dataclasses.replace(ann, start=ann.start + 1,
                                     end=ann.end + 1)
        report = verify_program(out, annotations=[forged])
        assert any(f.passname == "annot" for f in report.errors)

    def test_unknown_kind_rejected(self):
        out, stats = self._rewritten()
        (ann,) = stats.annotations
        forged = dataclasses.replace(ann, kind="mystery")
        report = verify_program(out, annotations=[forged])
        assert any(f.passname == "annot" for f in report.errors)


class TestReportFormat:
    def test_reject_report_lists_findings(self):
        entry = build_negative_corpus()[0]
        report = verify_program(entry.program)
        text = report.format()
        assert "REJECT" in text
        assert "[svm]" in text

    def test_pass_report_has_stats(self):
        out, stats = rewrite(".globl f\nf: pushl %esi\nmovl (%ebx), %eax\n"
                             "popl %esi\nret")
        text = verify_program(out, annotations=stats.annotations).format()
        assert "PASS" in text and "fast_path_sites=1" in text
