"""Abstract interpretation: soundness against concrete execution,
elision coverage floors, and deterministic report ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_program, value_contains, verify_program
from repro.analysis.report import Finding, VerifyReport
from repro.core.rewriter import rewrite_driver
from repro.drivers import DRIVER_SPECS
from repro.isa import assemble
from repro.isa.encoder import decode_program, encode_program
from repro.isa.registers import GPRS
from repro.machine import AddressSpace, Machine

STACK_TOP = 0xC0104000

# ---------------------------------------------------------------------------
# random program generation: register/immediate ALU + moves + forward
# conditional branches — the fragment the abstract domain models exactly
# ---------------------------------------------------------------------------

#: esp/ebp excluded: the generated code must leave the call stack intact
_REGS = ["eax", "ecx", "edx", "ebx", "esi", "edi"]
_ALU = ["addl", "subl", "andl", "orl", "xorl"]
_UNARY = ["incl", "decl", "negl", "notl"]
_JCC = ["je", "jne", "jl", "jg", "jle", "jge", "jb", "ja", "js", "jns"]

_imm = st.integers(-(2 ** 31), 2 ** 31 - 1)

_instr = st.one_of(
    st.tuples(st.just("movimm"), st.sampled_from(_REGS), _imm),
    st.tuples(st.just("movreg"), st.sampled_from(_REGS),
              st.sampled_from(_REGS)),
    st.tuples(st.sampled_from(_ALU), st.sampled_from(_REGS), _imm),
    st.tuples(st.just("alureg"), st.sampled_from(_ALU),
              st.sampled_from(_REGS), st.sampled_from(_REGS)),
    st.tuples(st.sampled_from(["shll", "shrl", "sarl"]),
              st.sampled_from(_REGS), st.integers(0, 31)),
    st.tuples(st.sampled_from(_UNARY), st.sampled_from(_REGS)),
)

_block = st.lists(_instr, min_size=1, max_size=4)

#: (blocks, branches): branches[i] guards the fall-through from block i
#: with a compare and a *forward* conditional jump (None = plain flow)
_programs = st.tuples(
    st.lists(_block, min_size=2, max_size=4),
    st.lists(st.one_of(
        st.none(),
        st.tuples(st.sampled_from(_JCC), st.sampled_from(_REGS), _imm),
    ), min_size=3, max_size=3),
    st.data(),
)


def _render(op) -> str:
    kind = op[0]
    if kind == "movimm":
        return f"    movl ${op[2]}, %{op[1]}"
    if kind == "movreg":
        return f"    movl %{op[1]}, %{op[2]}"
    if kind == "alureg":
        return f"    {op[1]} %{op[2]}, %{op[3]}"
    if kind in _UNARY:
        return f"    {kind} %{op[1]}"
    if kind in ("shll", "shrl", "sarl"):
        return f"    {kind} ${op[2]}, %{op[1]}"
    return f"    {kind} ${op[2]}, %{op[1]}"


def _build_source(blocks, branches, data) -> str:
    lines = [".globl f", "f:"]
    n = len(blocks)
    for i, block in enumerate(blocks):
        if i:
            lines.append(f"L{i}:")
        lines.extend(_render(op) for op in block)
        branch = branches[i] if i < len(branches) else None
        if branch is not None and i + 1 < n:
            # only forward targets: the CFG stays loop-free, so the
            # concrete run always terminates
            target = data.draw(st.integers(i + 1, n - 1),
                               label=f"target{i}")
            jcc, reg, imm = branch
            lines.append(f"    cmpl ${imm}, %{reg}")
            lines.append(f"    {jcc} L{target}")
    lines.append("    ret")
    return "\n".join(lines) + "\n"


def _trace_concrete(program):
    """Run ``program`` on the interpreter, recording each executed
    instruction index and the register file *before* it runs."""
    m = Machine()
    space = AddressSpace("test", m.phys, m.hypervisor_table)
    space.map_new_pages(0xC0100000, 4)
    m.cpu.address_space = space
    loaded = m.load_program(program, 0x08000000, extern={}, name="prop")
    trace = []

    def make_hook(index):
        def hook(cpu):
            trace.append((index, {r: cpu.get_reg(r) for r in GPRS}))
        return hook

    for index in range(len(program.instructions)):
        loaded.instrument[index] = make_hook(index)
    m.cpu.call_function(loaded.symbol("f"), [], stack_top=STACK_TOP)
    return trace


class TestSoundnessProperty:
    """Every concrete register value is contained in the abstract value:
    random encoder-round-tripped programs are executed on the real
    interpreter and checked state-by-state against the analysis."""

    @settings(max_examples=60, deadline=None)
    @given(_programs)
    def test_concrete_execution_contained(self, generated):
        blocks, branches, data = generated
        source = _build_source(blocks, branches, data)
        program = assemble(source, name="prop")
        # the paper's pipeline disassembles real binaries: round-trip
        # through the object format so the analyzed program is the
        # decoder's output, not the assembler's
        program = decode_program(encode_program(program),
                                 labels=program.labels,
                                 name=program.name)
        result = analyze_program(program, entries=[0])
        trace = _trace_concrete(program)
        assert trace, "program did not execute"

        env = {}
        writes = {
            i: ins.registers_written()
            for i, ins in enumerate(program.instructions)
        }
        prev = None
        for index, regs in trace:
            if prev is not None:
                for reg in writes[prev]:
                    env[("def", prev, reg)] = regs[reg]
            else:
                for reg in GPRS:
                    env[("entry", 0, reg)] = regs[reg]
            state = result.in_states[index]
            assert state is not None, \
                f"analysis thinks instruction {index} is unreachable"
            for pos, reg in enumerate(GPRS):
                value = state[0][pos]
                assert value_contains(value, regs[reg], env), (
                    f"@{index} {program.instructions[index].format()}: "
                    f"%{reg}={regs[reg]:#x} not in {value}\n{source}")
            prev = index


class TestElisionCoverage:
    """Acceptance floor: >=60% of each driver's SVM fast-path sites are
    proven elidable by the range pass (annotated mode, both drivers)."""

    @pytest.mark.parametrize("name", sorted(DRIVER_SPECS))
    def test_driver_coverage_floor(self, name):
        program = DRIVER_SPECS[name].build_program()
        rewritten, stats = rewrite_driver(program)
        report = verify_program(rewritten, annotations=stats.annotations,
                                name=name)
        assert report.ok, report.format()
        rng = report.stats["range"]
        assert rng["sites_total"] > 0
        coverage = rng["sites_proven"] / rng["sites_total"]
        assert coverage >= 0.60, (
            f"{name}: only {rng['sites_proven']}/{rng['sites_total']} "
            f"({coverage:.0%}) fast-path sites proven")
        assert len(report.proofs) == rng["sites_elided"]


class TestReportOrdering:
    def test_sorted_findings_deterministic(self):
        """Findings sort by (index, passname, key, message) regardless of
        the order passes emitted them."""
        report = VerifyReport(program_name="p", mode="hostile")
        report.add("svm", 9, "zz")
        report.add("flow", 2, "a call", key="flow.call")
        report.add("clobber", 2, "b clobber")
        report.add("range", 2, "walk", key="range.cross_page")
        report.add("svm", 0, "first")
        ordered = report.sorted_findings()
        assert [(f.index, f.passname) for f in ordered] == [
            (0, "svm"), (2, "clobber"), (2, "flow"), (2, "range"),
            (9, "svm"),
        ]
        # stable under shuffling: sorting the reversed list agrees
        report.findings.reverse()
        assert report.sorted_findings() == ordered

    def test_driver_report_orders_by_instruction(self):
        """A real hostile-mode report keeps index-major order."""
        program = assemble("""
    .globl corpus_entry
corpus_entry:
    movl %eax, (%ebx)
    movl %ecx, (%edx)
    ret
""", name="two_findings")
        report = verify_program(program)
        ordered = report.sorted_findings()
        assert len(ordered) >= 2
        indexes = [f.index for f in ordered]
        assert indexes == sorted(indexes)
