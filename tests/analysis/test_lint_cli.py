"""The ``python -m repro.analysis.lint`` entry point, run in-process."""

import pytest

from repro.analysis.lint import main


class TestLintCli:
    def test_shipped_drivers_pass(self, capsys):
        assert main(["e1000", "rtl8139"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 2
        assert "REJECT" not in out

    def test_hostile_and_protect_stack_modes(self, capsys):
        assert main(["e1000", "--hostile"]) == 0
        assert "hostile mode" in capsys.readouterr().out
        assert main(["rtl8139", "--protect-stack"]) == 0

    def test_corpus_all_rejected(self, capsys):
        assert main(["--corpus"]) == 0
        out = capsys.readouterr().out
        assert "MISSED" not in out
        assert out.count("rejected") >= 4

    def test_source_file_target(self, tmp_path, capsys):
        src = tmp_path / "tiny.s"
        src.write_text(".globl f\nf:\n    movl (%ebx), %eax\n    ret\n")
        assert main([str(src)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_no_arguments_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])
