"""The ``python -m repro.analysis.lint`` entry point, run in-process."""

import json

import pytest

from repro.analysis.lint import LINT_SCHEMA, main


class TestLintCli:
    def test_shipped_drivers_pass(self, capsys):
        assert main(["e1000", "rtl8139"]) == 0
        out = capsys.readouterr().out
        assert out.count("PASS") == 2
        assert "REJECT" not in out

    def test_hostile_and_protect_stack_modes(self, capsys):
        assert main(["e1000", "--hostile"]) == 0
        assert "hostile mode" in capsys.readouterr().out
        assert main(["rtl8139", "--protect-stack"]) == 0

    def test_corpus_all_rejected(self, capsys):
        assert main(["--corpus"]) == 0
        out = capsys.readouterr().out
        assert "MISSED" not in out
        assert out.count("rejected") >= 4

    def test_source_file_target(self, tmp_path, capsys):
        src = tmp_path / "tiny.s"
        src.write_text(".globl f\nf:\n    movl (%ebx), %eax\n    ret\n")
        assert main([str(src)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_no_arguments_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_elide_report_and_json(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["e1000", "--elide-report", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "elide e1000:" in out and "sites proven" in out
        doc = json.loads(path.read_text())
        assert doc["schema"] == LINT_SCHEMA
        assert doc["ok"]
        (target,) = doc["targets"]
        assert target["findings"] == []
        assert target["elision"]["coverage"] >= 0.60
        assert (target["elision"]["instructions_after"]
                < target["elision"]["instructions_before"])

    def test_corpus_json_records_expected_keys(self, tmp_path, capsys):
        path = tmp_path / "corpus.json"
        assert main(["--corpus", "--json", str(path)]) == 0
        capsys.readouterr()
        doc = json.loads(path.read_text())
        assert len(doc["corpus"]) >= 14
        assert all(c["rejected"] for c in doc["corpus"])
        keys = {c["expect_key"] for c in doc["corpus"] if c["expect_key"]}
        assert "range.cross_page" in keys and "locks.blocking_call" in keys
