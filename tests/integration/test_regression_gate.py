"""The perf-regression gate end to end, via the real CLI.

Runs ``benchmarks/check_results.py`` as a subprocess against temp
results/baselines directories: the gate must pass on results identical
to their baselines, fail loudly on an injected 10% cycle regression
(the bands are ±5%: deterministic simulated cycles allow tight bands),
honor per-metric overrides, and append one trajectory entry per run.
"""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
CHECK = REPO / "benchmarks" / "check_results.py"

RESULT = {
    "schema": "repro-bench-result/v1",
    "benchmark": "fig7",
    "config": {"packets": 384},
    "metrics": {
        "domU-twin": 9972.0,
        "linux": 7130.0,
        "nested": {"xen_cycles_per_packet": 8482.0},
        "fast_path": ["netif_rx"],          # non-numeric: never gated
        "host_wall_seconds": 1.23,          # non-deterministic: excluded
    },
    "obs": {},
}


def run_check(*args, timeout=60):
    return subprocess.run(
        [sys.executable, str(CHECK), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def write_result(results_dir, doc):
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{doc['benchmark']}.json").write_text(json.dumps(doc))


def seed(tmp_path):
    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    write_result(results, RESULT)
    out = run_check(str(results), "--baselines-dir", str(baselines),
                    "--update-baselines")
    assert out.returncode == 0, out.stdout + out.stderr
    return results, baselines


class TestGate:
    def test_passes_on_unchanged_results(self, tmp_path):
        results, baselines = seed(tmp_path)
        out = run_check(str(results), "--baselines-dir", str(baselines),
                        "--gate")
        assert out.returncode == 0, out.stdout + out.stderr
        assert "0 regressions -> PASS" in out.stdout

    def test_fails_on_injected_ten_percent_regression(self, tmp_path):
        results, baselines = seed(tmp_path)
        worse = json.loads(json.dumps(RESULT))
        worse["metrics"]["domU-twin"] *= 1.10
        write_result(results, worse)
        out = run_check(str(results), "--baselines-dir", str(baselines),
                        "--gate")
        assert out.returncode == 1
        assert "REGRESSION fig7:domU-twin" in out.stdout
        assert "+10.0%" in out.stdout and "FAIL" in out.stdout

    def test_nested_and_excluded_metrics(self, tmp_path):
        results, baselines = seed(tmp_path)
        baseline = json.loads((baselines / "fig7.json").read_text())
        # flattened dotted keys, wall-clock and lists excluded
        assert "nested.xen_cycles_per_packet" in baseline["metrics"]
        assert "host_wall_seconds" not in baseline["metrics"]
        assert "fast_path" not in baseline["metrics"]
        # regress the nested metric only
        worse = json.loads(json.dumps(RESULT))
        worse["metrics"]["nested"]["xen_cycles_per_packet"] *= 0.8
        write_result(results, worse)
        out = run_check(str(results), "--baselines-dir", str(baselines),
                        "--gate")
        assert out.returncode == 1
        assert "fig7:nested.xen_cycles_per_packet" in out.stdout

    def test_per_metric_override_widens_the_band(self, tmp_path):
        results, baselines = seed(tmp_path)
        path = baselines / "fig7.json"
        baseline = json.loads(path.read_text())
        baseline["overrides"] = {"domU-twin": 0.25}
        path.write_text(json.dumps(baseline))
        worse = json.loads(json.dumps(RESULT))
        worse["metrics"]["domU-twin"] *= 1.10    # inside the widened band
        write_result(results, worse)
        out = run_check(str(results), "--baselines-dir", str(baselines),
                        "--gate")
        assert out.returncode == 0, out.stdout

    def test_disappeared_metric_is_a_regression(self, tmp_path):
        results, baselines = seed(tmp_path)
        worse = json.loads(json.dumps(RESULT))
        del worse["metrics"]["linux"]
        write_result(results, worse)
        out = run_check(str(results), "--baselines-dir", str(baselines),
                        "--gate")
        assert out.returncode == 1
        assert "metric disappeared" in out.stdout

    def test_unbaselined_benchmark_is_a_note_not_a_failure(self, tmp_path):
        results, baselines = seed(tmp_path)
        extra = json.loads(json.dumps(RESULT))
        extra["benchmark"] = "fig8"
        write_result(results, extra)
        out = run_check(str(results), "--baselines-dir", str(baselines),
                        "--gate")
        assert out.returncode == 0
        assert "note fig8: no baseline committed" in out.stdout

    def test_trajectory_accumulates_one_entry_per_gate_run(self, tmp_path):
        results, baselines = seed(tmp_path)
        run_check(str(results), "--baselines-dir", str(baselines), "--gate")
        worse = json.loads(json.dumps(RESULT))
        worse["metrics"]["domU-twin"] *= 1.10
        write_result(results, worse)
        run_check(str(results), "--baselines-dir", str(baselines), "--gate")
        doc = json.loads((results / "trajectory.json").read_text())
        assert doc["schema"] == "repro-perf-trajectory/v1"
        assert [r["ok"] for r in doc["runs"]] == [True, False]
        assert [r["seq"] for r in doc["runs"]] == [0, 1]
        assert doc["runs"][1]["regressions"]

    def test_plain_mode_still_validates_schemas(self, tmp_path):
        results = tmp_path / "results"
        write_result(results, RESULT)
        (results / "broken.json").write_text("{\"schema\": \"nope\"}")
        out = run_check(str(results))
        assert out.returncode == 1
        assert "FAIL broken.json" in out.stdout


class TestCommittedBaselines:
    def test_gate_passes_against_committed_results(self):
        # the repo's own results/baselines must agree at all times
        out = run_check("--gate")
        assert out.returncode == 0, out.stdout + out.stderr
        assert "PASS" in out.stdout
