"""The reproduction gate: every headline number of the paper, in bands.

These tests pin the *shape* of the paper's results — who wins, by what
factor, where the numbers sit — against the calibrated simulation. If a
code change breaks one of the paper's claims, this file fails.
"""

import pytest

from repro.configs import build
from repro.osmodel.support import FAST_PATH_ROUTINES
from repro.workloads import (
    figure10_upcall_sweep,
    figure9_curves,
    profile_config,
    run_netperf,
    run_table1,
)

PACKETS = 256


@pytest.fixture(scope="module")
def tx_results():
    return {name: run_netperf(name, "tx", packets=PACKETS)
            for name in ("linux", "dom0", "domU", "domU-twin")}


@pytest.fixture(scope="module")
def rx_results():
    return {name: run_netperf(name, "rx", packets=PACKETS)
            for name in ("linux", "dom0", "domU", "domU-twin")}


def within(value, target, tolerance=0.15):
    assert abs(value - target) <= tolerance * target, \
        f"{value:.0f} not within {tolerance:.0%} of {target}"


class TestFigure5Transmit:
    def test_absolute_throughputs(self, tx_results):
        within(tx_results["domU"].throughput_mbps, 1619)
        within(tx_results["domU-twin"].throughput_mbps, 3902)
        within(tx_results["dom0"].throughput_mbps, 4683, 0.05)
        within(tx_results["linux"].throughput_mbps, 4690, 0.05)

    def test_linux_is_line_limited_with_headroom(self, tx_results):
        # paper: 4690 Mb/s at 76.9% CPU
        assert tx_results["linux"].cpu_utilization < 0.9
        within(tx_results["linux"].cpu_utilization, 0.769, 0.10)

    def test_headline_factor_2_4(self, tx_results):
        factor = (tx_results["domU-twin"].cpu_scaled_mbps
                  / tx_results["domU"].cpu_scaled_mbps)
        within(factor, 2.41, 0.15)

    def test_twin_fraction_of_linux(self, tx_results):
        frac = (tx_results["domU-twin"].cpu_scaled_mbps
                / tx_results["linux"].cpu_scaled_mbps)
        within(frac, 0.64, 0.15)

    def test_ordering(self, tx_results):
        assert (tx_results["domU"].cpu_scaled_mbps
                < tx_results["domU-twin"].cpu_scaled_mbps
                < tx_results["dom0"].cpu_scaled_mbps
                < tx_results["linux"].cpu_scaled_mbps)


class TestFigure6Receive:
    def test_absolute_throughputs(self, rx_results):
        within(rx_results["domU"].throughput_mbps, 928)
        within(rx_results["domU-twin"].throughput_mbps, 2022)
        within(rx_results["dom0"].throughput_mbps, 2839)
        within(rx_results["linux"].throughput_mbps, 3010)

    def test_headline_factor_2_1(self, rx_results):
        factor = (rx_results["domU-twin"].cpu_scaled_mbps
                  / rx_results["domU"].cpu_scaled_mbps)
        within(factor, 2.17, 0.15)

    def test_twin_fraction_of_linux(self, rx_results):
        frac = (rx_results["domU-twin"].cpu_scaled_mbps
                / rx_results["linux"].cpu_scaled_mbps)
        within(frac, 0.67, 0.15)

    def test_all_cpu_bound(self, rx_results):
        for r in rx_results.values():
            assert r.cpu_utilization == pytest.approx(1.0)


class TestFigure7TransmitProfile:
    @pytest.fixture(scope="class")
    def profiles(self):
        return {name: profile_config(name, "tx", packets=PACKETS)
                for name in ("linux", "dom0", "domU", "domU-twin")}

    def test_totals(self, profiles):
        within(profiles["domU"].total_per_packet, 21159)
        within(profiles["domU-twin"].total_per_packet, 9972)
        within(profiles["dom0"].total_per_packet, 8310)
        within(profiles["linux"].total_per_packet, 7130)

    def test_domU_dominated_by_dom0_invocation(self, profiles):
        # paper: 8394 of domU's cycles go to dom0 work
        within(profiles["domU"].per_packet["dom0"], 8394, 0.20)

    def test_rewritten_driver_slowdown_2_to_3x(self, profiles):
        native = profiles["linux"].per_packet["e1000"]
        rewritten = profiles["domU-twin"].per_packet["e1000"]
        assert 2.0 <= rewritten / native <= 3.5

    def test_twin_avoids_dom0_entirely(self, profiles):
        assert profiles["domU-twin"].per_packet["dom0"] == 0


class TestFigure8ReceiveProfile:
    @pytest.fixture(scope="class")
    def profiles(self):
        return {name: profile_config(name, "rx", packets=PACKETS)
                for name in ("linux", "dom0", "domU", "domU-twin")}

    def test_totals(self, profiles):
        within(profiles["domU"].total_per_packet, 35905)
        within(profiles["domU-twin"].total_per_packet, 20089)
        within(profiles["dom0"].total_per_packet, 14308)
        within(profiles["linux"].total_per_packet, 11166)

    def test_twin_xen_share_includes_copy(self, profiles):
        # paper: 6514 cycles in the hypervisor, 3525 of them copying
        within(profiles["domU-twin"].per_packet["Xen"], 6514 + 3140, 0.25)

    def test_domU_double_of_twin(self, profiles):
        ratio = (profiles["domU"].total_per_packet
                 / profiles["domU-twin"].total_per_packet)
        within(ratio, 35905 / 20089, 0.15)


class TestFigure9WebServer:
    @pytest.fixture(scope="class")
    def curves(self):
        return {c.config: c for c in
                figure9_curves(rates=range(1000, 20001, 1000))}

    def test_peaks(self, curves):
        within(curves["linux"].peak_mbps, 855, 0.10)
        within(curves["dom0"].peak_mbps, 712, 0.10)
        within(curves["domU-twin"].peak_mbps, 572, 0.10)
        within(curves["domU"].peak_mbps, 269, 0.20)

    def test_twin_more_than_2x_domU(self, curves):
        assert curves["domU-twin"].peak_mbps > 2 * curves["domU"].peak_mbps

    def test_curves_rise_then_flatten(self, curves):
        for curve in curves.values():
            rising = [p.throughput_mbps for p in curve.points[:3]]
            assert rising == sorted(rising)
            # past saturation the curve must not keep rising
            tail = [p.throughput_mbps for p in curve.points[-3:]]
            assert max(tail) <= curve.peak_mbps + 1e-6


class TestFigure10Upcalls:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figure10_upcall_sweep(max_upcalls=9, packets=128)

    def test_zero_upcalls_full_speed(self, sweep):
        within(sweep[0].throughput_mbps, 3902, 0.15)

    def test_one_upcall_collapses_throughput(self, sweep):
        # paper: 3902 -> 1638 Mb/s with a single upcall per invocation
        within(sweep[1].throughput_mbps, 1638, 0.15)

    def test_monotone_decline(self, sweep):
        tputs = [p.throughput_mbps for p in sweep]
        assert all(a >= b - 1 for a, b in zip(tputs, tputs[1:]))

    def test_final_point_collapsed(self, sweep):
        # paper: 359 Mb/s with everything but netif_rx upcalled
        assert sweep[-1].throughput_mbps < 0.15 * sweep[0].throughput_mbps


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(packets=128)

    def test_exactly_ten_routines(self, result):
        assert len(result.fast_path) == 10

    def test_exact_set_matches_paper(self, result):
        assert result.fast_path == set(FAST_PATH_ROUTINES)

    def test_fast_path_small_fraction_of_surface(self, result):
        assert len(result.all_routines) >= 3 * len(result.fast_path)
