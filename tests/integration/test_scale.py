"""Scale config end-to-end: determinism at 64 guests, JIT under SMP."""

from repro.configs import build_scale


def drive(sut, bursts_per_guest=1, burst=8):
    """Push tx through the scheduler and rx through the wire, exactly
    the way ``bench_scale.py`` does."""
    xen = sut.xen
    devices = sut.extras["devices"]
    for _ in range(bursts_per_guest):
        for dev in devices:
            xen.scheduler.queue_work(
                dev.kernel.domain,
                (lambda d=dev: d.transmit_batch([1486] * burst)))
        xen.scheduler.run()
    for _ in range(burst):
        for i, dev in enumerate(devices):
            nic = sut.nics[i % len(sut.nics)]
            frame = (dev.mac + b"\x00\x22\x33\x44\x55\x66"
                     + (0x0800).to_bytes(2, "big") + bytes(1486))
            nic.receive(frame)
    for nic in sut.nics:
        nic.flush_interrupts()


def outcome(sut):
    """Everything that must be bit-identical between two runs."""
    devices = sut.extras["devices"]
    return {
        "cycles": dict(sut.machine.account.cycles),
        "delivered": sut.packets_delivered,
        "wire_tx": sut.machine.wire.tx_count,
        "per_guest_rx": [d.rx_packets for d in devices],
        "per_queue_rx": [[q.rx_packets for q in nic.queues]
                         for nic in sut.nics],
        "per_queue_tx": [[q.tx_packets for q in nic.queues]
                         for nic in sut.nics],
        "quanta": sut.xen.scheduler.quanta,
        "steals": sut.xen.scheduler.steals,
        "refills": sut.xen.scheduler.refills,
    }


class TestDeterminism:
    def test_two_identical_64_guest_runs_bit_identical(self):
        def run():
            sut = build_scale(n_guests=64, vcpus=4, num_queues=4, n_nics=4)
            drive(sut)
            return outcome(sut)

        first, second = run(), run()
        assert first == second

    def test_per_packet_accounting_reacts_to_load(self):
        sut = build_scale(n_guests=64, vcpus=4, num_queues=4, n_nics=4)
        drive(sut)
        res = outcome(sut)
        assert res["delivered"] == 64 * 8
        assert res["wire_tx"] == 64 * 8
        assert all(n == 8 for n in res["per_guest_rx"])
        # across the fleet, every RSS queue index carried traffic
        active = {qi for per_nic in res["per_queue_rx"]
                  for qi, n in enumerate(per_nic) if n}
        assert active == {0, 1, 2, 3}


class TestJitUnderSmp:
    def test_jit_parity_on_smp_scale_config(self):
        """The superblock world guard must re-check the running vCPU:
        with the scheduler interleaving guests across 4 vCPUs, simulated
        cycles and packet outcomes stay identical with the JIT on."""
        def run(jit):
            sut = build_scale(n_guests=8, vcpus=4, num_queues=4,
                              n_nics=2, jit=jit)
            drive(sut, bursts_per_guest=2)
            return outcome(sut)

        off, on = run(jit=False), run(jit=True)
        assert off == on

    def test_world_token_bumps_only_on_vcpu_change(self):
        sut = build_scale(n_guests=4, vcpus=2, num_queues=2, n_nics=1)
        xen = sut.xen
        tok = sut.machine.cpu.world_token
        xen.activate_vcpu(xen.vcpus[0])  # already active: no bump
        assert sut.machine.cpu.world_token == tok
        xen.activate_vcpu(xen.vcpus[1])
        assert sut.machine.cpu.world_token == tok + 1
