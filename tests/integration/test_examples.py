"""Smoke tests: the example scripts run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "frames accepted" in out
        assert "upcalls made: 0" in out

    def test_rewriting_tour(self):
        out = run_example("rewriting_tour.py")
        assert "__stlb" in out
        assert "memory fraction" in out

    def test_fault_injection(self):
        out = run_example("fault_injection.py")
        assert "driver aborted" in out
        assert "secret leaked to the wire: False" in out
        assert "driver healthy (aborted=False)" in out
        # the recovery demos: containment, reload, breaker
        assert "transmits accepted: True" in out
        assert "reload=1 (state=active)" in out
        assert "breaker open: True" in out
        # and the machine-readable result CI consumes
        import json
        result_path = (EXAMPLES.parent / "benchmarks" / "results"
                       / "fault_recovery.json")
        doc = json.loads(result_path.read_text())
        assert doc["schema"] == "repro-bench-result/v1"
        assert doc["metrics"]["transmits_survived"] == 1
        assert doc["metrics"]["recovered"] >= 1
        assert doc["metrics"]["breaker_opened"] == 1
        assert doc["obs"]["recovery.quarantine"] >= 1

    def test_second_driver(self):
        out = run_example("second_driver.py")
        assert "e1000" in out and "rtl8139" in out
        assert "payloads intact" in out

    def test_webserver_workload(self):
        out = run_example("webserver_workload.py")
        assert "peak" in out
        assert "twin vs domU peak" in out
