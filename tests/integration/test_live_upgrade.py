"""Live upgrade end-to-end: zero-loss handover mid-stream, bit-exact
determinism with and around handovers, and the recovery fallback.

The contract under test (DESIGN.md §14):

* a binary swap in the middle of a bidirectional stream — under SMP,
  multiqueue RSS and the trace JIT all at once — drops nothing;
* two identical runs that request the handover at the same packet index
  are bit-identical (cycle account, deliveries, payloads);
* merely *wiring* the handover subsystem (``handover=True``) changes
  nothing: the default path stays bit-identical to a build without it,
  so fig 5/6 baselines are untouched;
* re-homing a guest to a second live instance keeps its stream flowing
  through the new owner;
* a handover requested against a quarantined, crash-looping instance
  falls back to the existing recovery reload instead of pretending to
  drain a dead fast path.
"""

from repro.configs import build
from repro.core import RecoveryPolicy


def outcome(sut):
    devices = sut.extras["devices"]
    return {
        "cycles": dict(sut.machine.account.cycles),
        "delivered": sut.packets_delivered,
        "wire_tx": sut.machine.wire.tx_count,
        "per_guest_rx": [d.rx_packets for d in devices],
    }


def stream(sut, n, handover_at=None, mgr=None):
    """Alternate rx and tx for ``n`` steps; optionally request a binary
    swap right after packet index ``handover_at``."""
    for i in range(n):
        assert sut.receive_packets(1) == 1
        assert sut.transmit_packets(1) == 1
        if handover_at is not None and i == handover_at:
            report = mgr.swap_binary()
            assert report.ok


class TestZeroLossSwapMidStream:
    def test_swap_under_smp_multiqueue_jit_drops_nothing(self):
        sut = build("domU-twin", n_nics=2, vcpus=2, num_queues=2,
                    jit=True, handover=True)
        mgr = sut.extras["handover"]
        stream(sut, 40, handover_at=19, mgr=mgr)
        assert sut.packets_delivered == 40
        assert sut.machine.wire.tx_count == 40
        assert sut.twin.hyp_support.pool.balanced
        report = mgr.history[-1]
        assert report.epoch_after >= report.epoch_before + 2
        # the maintenance window opened and closed
        assert not sut.extras["health"].in_maintenance

    def test_back_to_back_swaps_keep_the_stream_intact(self):
        sut = build("domU-twin", n_nics=1, handover=True)
        mgr = sut.extras["handover"]
        for k in range(3):
            stream(sut, 10, handover_at=4, mgr=mgr)
        assert sut.packets_delivered == 30
        assert sut.machine.wire.tx_count == 30
        assert len([r for r in mgr.history if r.ok]) == 3


class TestDeterminism:
    def test_same_handover_index_is_bit_identical(self):
        def run():
            sut = build("domU-twin", n_nics=2, vcpus=2, num_queues=2,
                        handover=True)
            sut.extras["devices"][0].keep_rx_payloads = True
            stream(sut, 24, handover_at=11, mgr=sut.extras["handover"])
            res = outcome(sut)
            res["payloads"] = list(sut.extras["devices"][0].rx_payloads)
            rep = sut.extras["handover"].history[-1]
            res["window"] = (rep.window_cycles, rep.phase_cycles,
                             rep.drained_rx, rep.replayed_irqs,
                             rep.replayed_tx)
            return res

        first, second = run(), run()
        assert first == second

    def test_wiring_handover_changes_nothing_when_unused(self):
        def run(handover):
            sut = build("domU-twin", n_nics=2, handover=handover)
            stream(sut, 20)
            return outcome(sut)

        assert run(handover=False) == run(handover=True)


class TestRehomeIntegration:
    def test_rehomed_guest_stream_continues_on_the_second_instance(self):
        sut = build("handover-pair", n_guests=2, n_nics=1,
                    vcpus=2, num_queues=2)
        m = sut.machine
        devices = sut.extras["devices"]
        sec = sut.extras["secondary"]
        mgr = sut.extras["handover"]
        pnic, snic = sut.nics[0], sut.extras["secondary_nics"][0]

        def inject(nic, dev, n):
            for _ in range(n):
                assert m.wire.inject(
                    nic, dev.mac + b"\x00" * 6 + b"\x08\x00" + bytes(700))
            nic.flush_interrupts()

        inject(pnic, devices[0], 8)
        inject(pnic, devices[1], 8)
        report = mgr.rehome_guest(devices[0], sec)
        assert report.ok and report.kind == "rehome"
        # the moved guest's stream continues through the new owner; the
        # stay-behind guest is undisturbed on the primary
        inject(snic, devices[0], 8)
        inject(pnic, devices[1], 8)
        assert devices[0].rx_packets == 16
        assert devices[1].rx_packets == 16
        assert devices[0].transmit(700) and devices[1].transmit(700)
        assert m.wire.tx_count == 2
        assert sut.twin.hyp_support.pool.balanced
        assert sec.hyp_support.pool.balanced


class TestQuarantinedFallback:
    def test_swap_of_crash_looping_instance_uses_recovery(self):
        sut = build("domU-twin", n_nics=1, handover=True)
        twin = sut.twin
        twin.recovery.policy = RecoveryPolicy(backoff_initial=10_000)
        dev = sut.extras["devices"][0]
        twin.svm.inject_fault()
        assert dev.transmit(700)            # contained -> degraded
        assert twin.recovery.degraded
        report = sut.extras["handover"].swap_binary()
        assert report.fallback == "recovery"
        assert report.ok
        assert twin.recovery.state == "active"
        # and the stream keeps going on the reloaded fast path
        stream(sut, 10)
        assert sut.packets_delivered >= 10
