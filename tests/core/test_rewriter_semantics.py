"""Semantic equivalence: the rewritten program, run over an identity stlb
(exactly how the VM instance runs in dom0 — paper §5.1.2), must behave
identically to the original program.

This is the strongest correctness property of the whole rewriter: it
covers scratch-register selection, spills, flags preservation, string
chunking across page boundaries, and indirect-call translation. Checked
on hand-written kernels for each rewrite category and on random
hypothesis-generated programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SvmManager, SvmRuntime, allocate_runtime_symbols, \
    rewrite_driver
from repro.core.rewriter import STLB_SYMBOL
from repro.core.svm import SvmProtectionFault
from repro.isa import assemble
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

DATA_PAGES = 4
DATA_BYTES = DATA_PAGES * 4096


class TwinHarness:
    """Loads an original program and its rewrite (identity stlb) into one
    dom0 kernel and runs both over identical initial memory."""

    def __init__(self, source, constants=None):
        self.machine = Machine()
        self.xen = Hypervisor(self.machine)
        dom0 = self.xen.create_domain("dom0", is_dom0=True)
        self.kernel = Kernel(self.machine, dom0, costs=self.xen.costs)
        program = assemble(source, constants=constants, name="orig")
        rewritten, self.stats = rewrite_driver(program)

        self.original = self.kernel.load_driver(program)
        symbols = allocate_runtime_symbols(self.kernel.alloc_module_data)
        self.svm = SvmManager(self.machine, symbols[STLB_SYMBOL],
                              dom0.aspace, identity=True, name="ident")
        runtime = SvmRuntime(
            self.machine, "ident", self.svm, symbols,
            translate_code=self._translate_code,
            data_space=dom0.aspace,
        )
        self.twin = self.kernel.load_driver(
            rewritten, extra_symbols=symbols,
            extra_imports=runtime.imports,
        )
        self.data = self.kernel.alloc_module_data(DATA_BYTES)

    def _translate_code(self, addr):
        return addr

    def _init_memory(self, seed: int):
        import random
        rng = random.Random(seed)
        payload = bytes(rng.randrange(256) for _ in range(DATA_BYTES))
        self.kernel.memory_view().write_bytes(self.data, payload)

    def _run(self, module, entry, args, seed):
        self._init_memory(seed)
        # deterministic register state: generated code may read registers
        # it never wrote
        for reg in ("eax", "ecx", "edx", "ebx", "esi", "edi", "ebp"):
            self.machine.cpu.regs[reg] = 0
        result = self.kernel.call_driver(module.symbol(entry),
                                         [self.data] + list(args))
        memory = self.kernel.memory_view().read_bytes(self.data, DATA_BYTES)
        return result, memory

    def check(self, entry="f", args=(), seed=1234):
        self.svm.flush()
        r_orig, m_orig = self._run(self.original, entry, args, seed)
        r_twin, m_twin = self._run(self.twin, entry, args, seed)
        assert r_orig == r_twin, (
            f"return differs: {r_orig:#x} vs {r_twin:#x}")
        if m_orig != m_twin:
            for i, (a, b) in enumerate(zip(m_orig, m_twin)):
                if a != b:
                    raise AssertionError(
                        f"memory differs first at +{i:#x}: {a:#x} vs {b:#x}")
        return r_orig


# arg0 (the data base) arrives at 4(%esp); every kernel starts by loading
# it into %ebx.
PROLOGUE = """
.globl f
f:
    pushl %ebp
    movl %esp, %ebp
    pushl %ebx
    pushl %esi
    pushl %edi
    movl 8(%ebp), %ebx
"""
EPILOGUE = """
    popl %edi
    popl %esi
    popl %ebx
    movl %ebp, %esp
    popl %ebp
    ret
"""


def check(body, args=(), constants=None, seeds=(1, 99)):
    harness = TwinHarness(PROLOGUE + body + EPILOGUE, constants=constants)
    for seed in seeds:
        harness.check(args=args, seed=seed)
    return harness


class TestBasicAccesses:
    def test_load(self):
        check("movl 16(%ebx), %eax")

    def test_store(self):
        check("movl $0x11223344, %eax\nmovl %eax, 32(%ebx)")

    def test_read_modify_write(self):
        check("addl $7, 64(%ebx)\nmovl 64(%ebx), %eax")

    def test_byte_and_word(self):
        check("movzbl 3(%ebx), %eax\nmovzwl 9(%ebx), %ecx\n"
              "addl %ecx, %eax\nmovb %al, 100(%ebx)\nmovw %cx, 102(%ebx)")

    def test_indexed_addressing(self):
        check("movl $5, %ecx\nmovl 8(%ebx,%ecx,4), %eax\n"
              "movl %eax, (%ebx,%ecx,8)")

    def test_push_from_memory(self):
        check("pushl 12(%ebx)\npopl %eax")

    def test_pop_to_memory(self):
        check("pushl $0x5A5A5A5A\npopl 48(%ebx)\nmovl 48(%ebx), %eax")

    def test_cross_page_unaligned(self):
        # 4-byte access straddling the first page boundary
        check("movl 4094(%ebx), %eax\nmovl %eax, 8190(%ebx)")

    def test_xchg_with_memory(self):
        check("movl $1, %eax\nxchgl %eax, 20(%ebx)\naddl 20(%ebx), %eax")

    def test_incl_decl_memory(self):
        check("incl 40(%ebx)\nincl 40(%ebx)\ndecl 44(%ebx)\n"
              "movl 40(%ebx), %eax\naddl 44(%ebx), %eax")


class TestControlFlowAndFlags:
    def test_loop_summing(self):
        check("""
    xorl %eax, %eax
    xorl %ecx, %ecx
sum_loop:
    addl (%ebx,%ecx,4), %eax
    incl %ecx
    cmpl $16, %ecx
    jb sum_loop
""")

    def test_flags_live_across_rewritten_mov(self):
        # cmp ... mov-from-memory ... jcc : the rewrite must preserve flags
        check("""
    movl 0(%ebx), %eax
    cmpl 4(%ebx), %eax
    movl 8(%ebx), %ecx
    jbe lower
    movl $1, 200(%ebx)
    jmp done
lower:
    movl $2, 200(%ebx)
done:
    movl %ecx, 204(%ebx)
""")

    def test_flag_chain_through_two_accesses(self):
        check("""
    cmpl $0x80, 0(%ebx)
    movl 4(%ebx), %eax
    movl 8(%ebx), %ecx
    je eq
    movl $7, 300(%ebx)
eq:
    addl %ecx, %eax
""")

    def test_spill_heavy_sequence(self):
        check("""
    movl 0(%ebx), %eax
    movl 4(%ebx), %ecx
    movl 8(%ebx), %edx
    movl 12(%ebx), %esi
    movl 16(%ebx), %edi
    addl 20(%ebx), %eax
    addl %ecx, %eax
    addl %edx, %eax
    addl %esi, %eax
    addl %edi, %eax
    movl %eax, 24(%ebx)
""")


class TestStringOps:
    def test_small_copy(self):
        check("""
    leal 0(%ebx), %esi
    leal 512(%ebx), %edi
    movl $32, %ecx
    rep movsl
    movl 512(%ebx), %eax
""")

    def test_copy_across_page_boundaries(self):
        # 6000 bytes starting near the end of page 0: spans 3 pages
        check("""
    leal 4000(%ebx), %esi
    leal 10000(%ebx), %edi
    movl $1500, %ecx
    rep movsl
    movl 10000(%ebx), %eax
    addl 13000(%ebx), %eax
""")

    def test_movsb_unaligned(self):
        check("""
    leal 3(%ebx), %esi
    leal 4093(%ebx), %edi
    movl $100, %ecx
    rep movsb
    movzbl 4093(%ebx), %eax
""")

    def test_stos_fill(self):
        check("""
    leal 4090(%ebx), %edi
    movl $0x41424344, %eax
    movl $20, %ecx
    rep stosl
    movl 4090(%ebx), %eax
""")

    def test_single_movs_no_prefix(self):
        check("""
    leal 0(%ebx), %esi
    leal 100(%ebx), %edi
    movsl
    movsl
    movl 100(%ebx), %eax
    addl %esi, %eax
    subl %edi, %eax
""")

    def test_lods_chain(self):
        check("""
    leal 8(%ebx), %esi
    lodsl
    movl %eax, %ecx
    lodsl
    addl %ecx, %eax
""")

    def test_repe_cmps_equal_and_unequal(self):
        check("""
    leal 0(%ebx), %esi
    leal 512(%ebx), %edi
    movl $64, %ecx
    rep movsl
    leal 0(%ebx), %esi
    leal 512(%ebx), %edi
    movl $64, %ecx
    repe cmpsl
    je same
    movl $0xBAD, 2000(%ebx)
    jmp out
same:
    movl $0x600D, 2000(%ebx)
out:
    movl %ecx, %eax
""")

    def test_repe_cmps_mismatch_position(self):
        check("""
    leal 0(%ebx), %esi
    leal 512(%ebx), %edi
    movl $16, %ecx
    rep movsb
    movb $0x7F, 520(%ebx)       # force a mismatch at index 8
    leal 0(%ebx), %esi
    leal 512(%ebx), %edi
    movl $16, %ecx
    repe cmpsb
    movl %ecx, %eax             # where it stopped
    movl %esi, 3000(%ebx)
""")

    def test_repne_scas(self):
        check("""
    movb $0x55, 40(%ebx)
    leal 0(%ebx), %edi
    movl $0x55, %eax
    movl $4096, %ecx
    repne scasb
    movl %ecx, %eax
""")

    def test_zero_count_rep(self):
        check("""
    leal 0(%ebx), %esi
    leal 100(%ebx), %edi
    xorl %ecx, %ecx
    rep movsl
    movl 100(%ebx), %eax
""")


class TestIndirectCalls:
    def test_call_through_register(self):
        check("""
    movl $helper, %eax
    call *%eax
    addl $1, %eax
    jmp fin
helper:
    movl 8(%ebx), %eax
    ret
fin:
""")

    def test_call_through_memory_pointer(self):
        check("""
    movl $helper, %ecx
    movl %ecx, 96(%ebx)
    call *96(%ebx)
    movl $0, 96(%ebx)           # code addresses differ between instances
    jmp fin
helper:
    movl $1234, %eax
    ret
fin:
""")

    def test_function_pointer_table_dispatch(self):
        check("""
    movl $fn_a, 0(%ebx)
    movl $fn_b, 4(%ebx)
    movl 8(%ebx), %ecx
    andl $1, %ecx
    call *(%ebx,%ecx,4)
    movl $0, 0(%ebx)            # code addresses differ between instances
    movl $0, 4(%ebx)
    jmp fin
fn_a:
    movl $100, %eax
    ret
fn_b:
    movl $200, %eax
    ret
fin:
""")


# ---------------------------------------------------------------------------
# hypothesis: random straight-line programs
# ---------------------------------------------------------------------------

_OFFSETS = st.integers(0, DATA_BYTES - 8)
_SMALL = st.integers(-1000, 1000)
_REGS = st.sampled_from(["eax", "ecx", "edx", "esi", "edi"])
_ALU = st.sampled_from(["addl", "subl", "andl", "orl", "xorl"])


@st.composite
def straight_line_ops(draw):
    kind = draw(st.sampled_from(
        ["load", "store", "alu_mr", "alu_rm", "imm_m", "inc", "byte",
         "cmp_branch"]))
    off = draw(_OFFSETS)
    reg = draw(_REGS)
    if kind == "load":
        return f"movl {off}(%ebx), %{reg}"
    if kind == "store":
        return f"movl %{reg}, {off}(%ebx)"
    if kind == "alu_mr":
        return f"{draw(_ALU)} {off}(%ebx), %{reg}"
    if kind == "alu_rm":
        return f"{draw(_ALU)} %{reg}, {off}(%ebx)"
    if kind == "imm_m":
        return f"{draw(_ALU)} ${draw(_SMALL)}, {off}(%ebx)"
    if kind == "inc":
        return draw(st.sampled_from(["incl", "decl"])) + f" {off}(%ebx)"
    if kind == "byte":
        return f"movzbl {off}(%ebx), %{reg}"
    # cmp + rewritten load + branch materialising the flags into memory
    marker = draw(_OFFSETS)
    n = draw(st.integers(0, 10**6))
    return (f"cmpl ${draw(_SMALL)}, {off}(%ebx)\n"
            f"    movl {draw(_OFFSETS)}(%ebx), %{reg}\n"
            f"    jle .Lskip{n}_{marker}\n"
            f"    incl {marker}(%ebx)\n"
            f".Lskip{n}_{marker}:")


class TestRandomPrograms:
    @given(st.lists(straight_line_ops(), min_size=1, max_size=12),
           st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_equivalence(self, ops, seed):
        # de-duplicate labels that hypothesis may repeat
        seen, body_lines = set(), []
        for op in ops:
            if ".Lskip" in op:
                label = op.split(".Lskip")[-1].split(":")[0]
                if label in seen:
                    continue
                seen.add(label)
            body_lines.append("    " + op)
        body = "\n".join(body_lines) + "\n    movl 0(%ebx), %eax\n"
        harness = TwinHarness(PROLOGUE + body + EPILOGUE)
        harness.check(seed=seed)
