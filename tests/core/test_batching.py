"""Batched tx/rx fast path with interrupt coalescing (DESIGN.md §9).

Receive: packets are delivered in per-guest batches under ONE coalesced
virtual interrupt per guest per flush (NAPI-style ``rx_batch_budget``,
leftovers continued by softirq). Demux: broadcast/multicast frames reach
every guest, unknown unicast is dropped and counted. Transmit:
``transmit_batch`` pushes a burst through one hypercall and one resolved
driver entry; a mid-burst fault falls back per-packet to the degraded
path. The staged tx skb never leaks when the driver invocation faults.
"""

import pytest

from repro.core import (
    DriverAborted,
    ParavirtNetDevice,
    SvmProtectionFault,
    TwinDriverManager,
)
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

BROADCAST = b"\xff" * 6
UNKNOWN_UNICAST = b"\x0a\x22\x33\x44\x55\x66"


def make_env(n_guests=1, recovery=True, **twin_kwargs):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, pool_size=512, recovery=recovery,
                             **twin_kwargs)
    nic = m.add_nic()
    twin.attach_nic(nic)
    devices = []
    for g in range(n_guests):
        guest = xen.create_domain(f"guest{g}")
        kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
        dev = ParavirtNetDevice(
            twin, kg, mac=b"\x00\x16\x3e\xaa\x02" + bytes([g + 1]))
        dev.keep_rx_payloads = True
        devices.append(dev)
    xen.switch_to(devices[0].kernel.domain)
    return m, xen, twin, devices, nic


def frame(dst_mac, payload):
    return bytes(dst_mac) + b"\x00" * 6 + b"\x08\x00" + payload


class TestDemux:
    def test_unicast_reaches_each_owning_guest(self):
        m, xen, twin, devices, nic = make_env(n_guests=3)
        for i, dev in enumerate(devices):
            assert m.wire.inject(nic, frame(dev.mac, bytes([i]) * 200))
        for i, dev in enumerate(devices):
            assert dev.rx_packets == 1
            assert dev.rx_payloads == [bytes([i]) * 200]

    def test_broadcast_reaches_every_guest(self):
        m, xen, twin, devices, nic = make_env(n_guests=3)
        assert m.wire.inject(nic, frame(BROADCAST, b"\x42" * 300))
        for dev in devices:
            assert dev.rx_packets == 1
            assert dev.rx_payloads == [b"\x42" * 300]
        assert twin.rx_dropped_no_guest == 0

    @staticmethod
    def saturate_ring(m, nic, mac, n=80):
        """Receive until the rx ring is fully pool-backed, so further
        receives no longer grow ``pool.outstanding`` (each refill is
        matched by a free)."""
        for _ in range(n):
            assert m.wire.inject(nic, frame(mac, bytes(64)))

    def test_broadcast_skb_returns_to_pool(self):
        m, xen, twin, devices, nic = make_env(n_guests=3)
        self.saturate_ring(m, nic, devices[0].mac)
        baseline = len(twin.hyp_support.pool.outstanding)
        # the multi-delivered skb must be freed exactly once, after the
        # last of the three references drops
        assert m.wire.inject(nic, frame(BROADCAST, b"\x42" * 300))
        assert len(twin.hyp_support.pool.outstanding) == baseline

    def test_unknown_unicast_dropped_and_counted(self):
        m, xen, twin, devices, nic = make_env(n_guests=2)
        self.saturate_ring(m, nic, devices[0].mac)
        baseline = len(twin.hyp_support.pool.outstanding)
        rx_before = devices[0].rx_packets
        assert m.wire.inject(nic, frame(UNKNOWN_UNICAST, bytes(200)))
        assert devices[0].rx_packets == rx_before
        assert devices[1].rx_packets == 0
        assert twin.rx_dropped_no_guest == 1
        # the dropped frame's skb was freed, not leaked
        assert len(twin.hyp_support.pool.outstanding) == baseline


class TestRxCoalescing:
    def test_one_virq_per_guest_per_flush(self):
        m, xen, twin, (dev,), nic = make_env()
        nic.interrupt_batch = 8
        for i in range(8):
            assert m.wire.inject(nic, frame(dev.mac, bytes([i]) * 100))
        nic.flush_interrupts()
        assert dev.rx_packets == 8
        # one coalesced interrupt covered the whole batch
        assert dev.rx_interrupts == 1
        coalesced = m.obs.registry.counter("xen.virq_coalesced").value
        assert coalesced == 1
        assert coalesced < dev.rx_packets

    def test_batched_rx_preserves_order_across_guests(self):
        m, xen, twin, devices, nic = make_env(n_guests=2)
        a, b = devices
        nic.interrupt_batch = 6
        sequence = [(a, 0), (b, 1), (a, 2), (b, 3), (a, 4), (b, 5)]
        for dev, tag in sequence:
            assert m.wire.inject(nic, frame(dev.mac, bytes([tag]) * 64))
        nic.flush_interrupts()
        assert a.rx_payloads == [bytes([t]) * 64 for t in (0, 2, 4)]
        assert b.rx_payloads == [bytes([t]) * 64 for t in (1, 3, 5)]
        # each guest took exactly one coalesced interrupt for its batch
        assert a.rx_interrupts == 1 and b.rx_interrupts == 1

    def test_budget_requeues_and_softirq_continues(self):
        m, xen, twin, (dev,), nic = make_env(rx_batch_budget=2)
        nic.interrupt_batch = 5
        for i in range(5):
            assert m.wire.inject(nic, frame(dev.mac, bytes([i]) * 80))
        nic.flush_interrupts()
        # all packets arrive despite the per-flush budget, in order,
        # split into ceil(5/2) = 3 coalesced interrupts
        assert dev.rx_payloads == [bytes([i]) * 80 for i in range(5)]
        assert dev.rx_interrupts == 3
        assert not twin._rx_queue

    def test_batch_size_histogram_recorded(self):
        m, xen, twin, (dev,), nic = make_env()
        nic.interrupt_batch = 4
        for i in range(4):
            assert m.wire.inject(nic, frame(dev.mac, bytes(90)))
        nic.flush_interrupts()
        h = m.obs.registry.histogram("twin.rx_batch_size")
        assert h.count == 1 and h.total == 4

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            make_env(rx_batch_budget=0)


class TestTxBatch:
    def test_batch_hits_wire_with_one_hypercall(self):
        m, xen, twin, (dev,), nic = make_env()
        m.wire.keep_payloads = True
        before = xen.hypercalls
        results = dev.transmit_batch([300, 400, 500])
        assert results == [True, True, True]
        assert m.wire.tx_count == 3
        assert dev.tx_packets == 3
        assert xen.hypercalls == before + 1
        assert sorted(len(p) for p in m.wire.transmitted) == [314, 414, 514]
        h = m.obs.registry.histogram("twin.tx_batch_size")
        assert h.count == 1 and h.total == 3

    def test_empty_batch_is_noop(self):
        m, xen, twin, (dev,), nic = make_env()
        assert dev.transmit_batch([]) == []
        assert m.wire.tx_count == 0

    def test_batch_cap_enforced(self):
        m, xen, twin, (dev,), nic = make_env(tx_batch_max=2)
        with pytest.raises(ValueError):
            dev.transmit_batch([100, 100, 100])

    def test_fault_mid_batch_falls_back_per_packet(self):
        m, xen, twin, (dev,), nic = make_env()
        assert dev.transmit(300)
        twin.svm.inject_fault()
        # the faulting frame and the rest of the burst are served on the
        # degraded dom0 path: the guest sees three successes
        results = dev.transmit_batch([300, 300, 300])
        assert results == [True, True, True]
        assert m.wire.tx_count == 4
        assert twin.recovery.degraded or twin.recovery.state == "active"
        assert twin.recovery.counters_snapshot()["abort"] == 1


class TestTxSkbLeak:
    def test_faulting_transmit_does_not_leak_pool_skb(self):
        # recovery off: the §4.5 abort propagates, but the staged skb
        # must be back in the pool, not outstanding forever
        m, xen, twin, (dev,), nic = make_env(recovery=False)
        assert dev.transmit(300)
        outstanding = len(twin.hyp_support.pool.outstanding)
        twin.svm.inject_fault()
        with pytest.raises((DriverAborted, SvmProtectionFault)):
            dev.transmit(300)
        assert len(twin.hyp_support.pool.outstanding) == outstanding
