"""Proof-based check elision (prove-then-elide).

The verifier's range pass emits a :class:`ProofAnnotation` per fast-path
site whose address provably stays inside an anchor's checked page pair;
:func:`apply_elision` consumes them, replacing the ten-instruction stlb
check with a single reload of the anchor's stored translation. These
tests check the transform itself, the end-to-end semantic equivalence of
the elided twin (identical packet outcomes for both drivers), the
runtime elision counters, and recovery's reload of an elided instance.
"""

import pytest

from repro.configs import build_domU_twin
from repro.core import ParavirtNetDevice, TwinDriverManager
from repro.core.rewriter import (
    ANCHOR_SYMBOL,
    apply_elision,
    rewrite_driver,
)
from repro.analysis import verify_program
from repro.drivers import DRIVER_SPECS, RTL8139_SPEC
from repro.machine import Machine
from repro.osmodel import Kernel
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def make_twin(elide=True, verify=True, driver=None):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, elide=elide, verify=verify,
                             driver=driver)
    nic = m.add_nic(model=driver.name if driver is not None else "e1000")
    twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    return m, xen, twin, dev, nic


def rx_frame(payload=b"\x00" * 700):
    return GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + payload


class TestApplyElision:
    @pytest.mark.parametrize("name", sorted(DRIVER_SPECS))
    def test_transform_shape(self, name):
        rewritten, stats = rewrite_driver(
            DRIVER_SPECS[name].build_program())
        report = verify_program(rewritten, annotations=stats.annotations,
                                name=name)
        assert report.ok and report.proofs
        elided, result = apply_elision(rewritten, report.proofs)
        assert result.sites_elided == len(report.proofs)
        assert 0 < result.anchors < result.sites_elided
        # each elided site drops 8 of its 10 instructions; each anchor
        # gains one store
        expected = (len(rewritten.instructions)
                    - 8 * result.sites_elided + result.anchors)
        assert len(elided.instructions) == expected
        assert elided.name == f"{rewritten.name}.elided"
        # the anchor data symbols are fresh, one 4-byte slot per anchor
        assert result.anchor_symbols == tuple(
            (ANCHOR_SYMBOL.format(k), 4) for k in range(result.anchors))
        # replacements and stores land where the result says they do
        for index in result.elided_indices:
            ins = elided.instructions[index]
            assert ins.mnemonic == "mov"
            assert ins.operands[0].symbol.startswith("__svm_anchor")
        for index in result.anchor_indices:
            ins = elided.instructions[index]
            assert ins.mnemonic == "mov"
            assert ins.operands[1].symbol.startswith("__svm_anchor")

    def test_refuses_duplicate_and_nested(self):
        rewritten, stats = rewrite_driver(RTL8139_SPEC.build_program())
        report = verify_program(rewritten, annotations=stats.annotations)
        proofs = report.proofs
        with pytest.raises(ValueError, match="duplicate proof"):
            apply_elision(rewritten, list(proofs) + [proofs[0]])
        elided, _ = apply_elision(rewritten, proofs)
        with pytest.raises(ValueError, match="refusing to elide"):
            apply_elision(elided, proofs)

    def test_elided_binary_fails_hostile_verification(self):
        """The output intentionally contains bare translated accesses:
        it must only ever be loaded with the pre-elision report."""
        rewritten, stats = rewrite_driver(RTL8139_SPEC.build_program())
        report = verify_program(rewritten, annotations=stats.annotations)
        elided, _ = apply_elision(rewritten, report.proofs)
        assert not verify_program(elided).ok

    def test_elide_requires_verify(self):
        m = Machine()
        xen = Hypervisor(m)
        dom0 = xen.create_domain("dom0", is_dom0=True)
        k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
        with pytest.raises(ValueError, match="requires verify"):
            TwinDriverManager(xen, k0, verify=False, elide=True)


class TestElidedTwinSemantics:
    @pytest.mark.parametrize("driver", [None, RTL8139_SPEC],
                             ids=["e1000", "rtl8139"])
    def test_identical_packet_outcomes(self, driver):
        m0, _, twin0, dev0, nic0 = make_twin(elide=False, driver=driver)
        m1, _, twin1, dev1, nic1 = make_twin(elide=True, driver=driver)
        for _ in range(8):
            assert dev0.transmit(700)
            assert dev1.transmit(700)
        assert m1.wire.tx_count == m0.wire.tx_count == 8
        dev0.keep_rx_payloads = dev1.keep_rx_payloads = True
        for _ in range(8):
            assert m0.wire.inject(nic0, rx_frame())
            assert m1.wire.inject(nic1, rx_frame())
        assert dev1.rx_packets == dev0.rx_packets == 8
        assert dev1.rx_payloads == dev0.rx_payloads
        # the hypervisor instance really ran with checks elided
        assert twin1.svm.counters_snapshot()["elided"] > 0
        assert twin0.svm.counters_snapshot()["elided"] == 0

    def test_elision_reduces_stlb_traffic_not_correctness(self):
        m0, _, twin0, dev0, _ = make_twin(elide=False)
        m1, _, twin1, dev1, _ = make_twin(elide=True)
        for _ in range(16):
            assert dev0.transmit(700)
            assert dev1.transmit(700)
        base = twin0.svm.counters_snapshot()
        el = twin1.svm.counters_snapshot()
        # elided sites skip the stlb entirely: each counted elision is a
        # lookup that no longer happens, and misses must not increase
        assert el["elided"] > 0
        assert el["miss"] <= base["miss"]
        # the identity (dom0 VM) instance elides too — management calls
        # run through the same transformed binary
        assert twin1.identity_svm.counters_snapshot()["elided"] > 0

    def test_config_builder_passthrough(self):
        sys = build_domU_twin(n_nics=1, elide=True)
        assert sys.twin.elision is not None
        assert sys.transmit_packets(4) == 4
        assert sys.twin.svm.counters_snapshot()["elided"] > 0


class TestElisionRecovery:
    def test_recovery_reloads_elided_instance(self):
        m, xen, twin, dev, nic = make_twin(elide=True)
        for _ in range(5):
            assert dev.transmit(700)
        twin.svm.inject_fault()
        assert dev.transmit(700)        # contained, served degraded
        for _ in range(4):
            if not twin.recovery.degraded:
                break
            assert dev.transmit(700)
        assert twin.recovery.state == "active"
        snap = twin.recovery.counters_snapshot()
        assert snap["reload_success"] == 1
        # the reloaded instance is the elided binary and still counts
        before = twin.svm.counters_snapshot()["elided"]
        sent = m.wire.tx_count
        for _ in range(5):
            assert dev.transmit(700)
        assert m.wire.tx_count == sent + 5
        assert twin.svm.counters_snapshot()["elided"] > before

    def test_manual_reload_reverifies_pre_elision_binary(self):
        _, _, twin, dev, _ = make_twin(elide=True)
        twin.reload_hyp_driver()        # verify_report=None path
        assert dev.transmit(700)
        assert twin.svm.counters_snapshot()["elided"] > 0
