"""TwinDriverManager end-to-end: both instances, guest I/O, upcalls,
maintenance, the virtual interrupt flag, and the §4.5 safety property."""

import pytest

from repro.core import DriverAborted, HYPERVISOR_FAST_PATH, \
    ParavirtNetDevice, TwinDriverManager
from repro.isa import Instruction, Mem, Reg
from repro.machine import Machine
from repro.osmodel import Kernel, layout as L
from repro.osmodel.netdev import NetDevice
from repro.xen import Hypervisor

GUEST_MAC = b"\x00\x16\x3e\xaa\x00\x01"


def make_twin(upcall_routines=(), n_nics=1):
    m = Machine()
    xen = Hypervisor(m)
    dom0 = xen.create_domain("dom0", is_dom0=True)
    k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
    guest = xen.create_domain("guest")
    kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
    twin = TwinDriverManager(xen, k0, upcall_routines=upcall_routines)
    nics = [m.add_nic() for _ in range(n_nics)]
    for nic in nics:
        twin.attach_nic(nic)
    dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
    xen.switch_to(guest)
    return m, xen, twin, dev, nics


class TestSetup:
    def test_same_rewritten_binary_for_both_instances(self):
        m, xen, twin, dev, nics = make_twin()
        vm = twin.vm_module.loaded
        hyp = twin.hyp_driver.loaded
        assert vm.program is not hyp.program     # separately resolved
        assert [i.mnemonic for i in vm.program.instructions] == \
            [i.mnemonic for i in hyp.program.instructions]

    def test_constant_code_offset(self):
        # §5.1.2: addresses differ by one constant for every routine
        m, xen, twin, dev, nics = make_twin()
        vm = twin.vm_module.loaded
        hyp = twin.hyp_driver.loaded
        offsets = {hyp.symbols[s] - vm.symbols[s] for s in vm.symbols}
        assert offsets == {twin.hyp_driver.code_offset}

    def test_data_symbols_point_into_dom0(self):
        m, xen, twin, dev, nics = make_twin()
        for name, addr in twin.vm_module.data_symbols.items():
            if name.startswith("__"):
                continue
            assert addr < 0xF0000000, name

    def test_probe_ran_in_vm_instance(self):
        m, xen, twin, dev, nics = make_twin()
        dom0_space = twin.dom0_kernel.domain.aspace
        assert dom0_space.read_u32(
            twin.vm_module.data_symbols["e1000_probe_count"]) == 1

    def test_unknown_upcall_routine_rejected(self):
        m = Machine()
        xen = Hypervisor(m)
        dom0 = xen.create_domain("dom0", is_dom0=True)
        k0 = Kernel(m, dom0, costs=xen.costs)
        with pytest.raises(ValueError):
            TwinDriverManager(xen, k0, upcall_routines=("bogus",))


class TestGuestTransmit:
    def test_payload_reaches_wire_intact(self):
        m, xen, twin, dev, nics = make_twin()
        m.wire.keep_payloads = True
        payload = bytes(range(256)) * 5
        assert dev.transmit(len(payload), payload=payload)
        frame = m.wire.transmitted[0]
        assert frame[6:12] == GUEST_MAC
        assert frame[14:] == payload

    def test_no_domain_switch_on_tx(self):
        m, xen, twin, dev, nics = make_twin()
        dev.transmit(1000)
        switches_before = xen.switches
        for _ in range(10):
            dev.transmit(1000)
        assert xen.switches == switches_before

    def test_tx_executes_in_guest_context(self):
        m, xen, twin, dev, nics = make_twin()
        assert xen.current.name == "guest"
        dev.transmit(500)
        assert xen.current.name == "guest"
        assert m.cpu.address_space is dev.kernel.domain.aspace

    def test_large_frame_chains_fragments(self):
        m, xen, twin, dev, nics = make_twin()
        m.wire.keep_payloads = True
        dev.transmit(1400)
        # 96-byte header copy + at least one guest-page fragment
        assert len(m.wire.transmitted[0]) == 1414

    def test_pool_recycles(self):
        m, xen, twin, dev, nics = make_twin()
        nics[0].interrupt_batch = 1
        start = twin.hyp_support.pool.available
        for _ in range(50):
            assert dev.transmit(800)
        assert twin.hyp_support.pool.available == start

    def test_pool_exhaustion_fails_gracefully(self):
        m, xen, twin, dev, nics = make_twin()
        twin.hyp_support.pool.free = []
        assert not dev.transmit(500)
        assert dev.tx_busy == 1
        assert twin.hyp_support.pool.underflows == 1

    def test_driver_stats_updated_through_svm(self):
        m, xen, twin, dev, nics = make_twin()
        for _ in range(4):
            dev.transmit(700)
        ndev = NetDevice(twin.dom0_kernel.domain.aspace, dev.netdev_addr)
        assert ndev.tx_packets == 4


class TestGuestReceive:
    def frame(self, n=900):
        return GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + bytes(range(256))[:0] \
            + bytes(n)

    def test_rx_demux_and_copy(self):
        m, xen, twin, dev, nics = make_twin()
        dev.keep_rx_payloads = True
        payload = bytes(range(200)) * 3
        frame = GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + payload
        assert m.wire.inject(nics[0], frame)
        assert dev.rx_packets == 1
        assert dev.rx_payloads[0] == payload

    def test_rx_unknown_unicast_dropped(self):
        m, xen, twin, dev, nics = make_twin()
        frame = b"\x0a" * 6 + b"\x00" * 6 + b"\x08\x00" + bytes(100)
        m.wire.inject(nics[0], frame)
        assert dev.rx_packets == 0
        assert twin.rx_dropped_no_guest == 1

    def test_rx_multicast_reaches_guest(self):
        # group bit set in the destination MAC: not a misdelivery
        m, xen, twin, dev, nics = make_twin()
        frame = b"\x0b" * 6 + b"\x00" * 6 + b"\x08\x00" + bytes(100)
        m.wire.inject(nics[0], frame)
        assert dev.rx_packets == 1

    def test_rx_respects_dom0_virq_flag(self):
        # §4.4: the hypervisor must not run the driver ISR while dom0 has
        # (virtually) disabled interrupts. Re-enabling the flag must
        # replay the deferred interrupt by itself — no manual retry.
        m, xen, twin, dev, nics = make_twin()
        twin.dom0_kernel.domain.disable_virq()
        m.wire.inject(nics[0], self.frame())
        assert dev.rx_packets == 0
        assert twin._deferred_irqs
        twin.dom0_kernel.domain.enable_virq()
        assert dev.rx_packets == 1
        assert not twin._deferred_irqs

    def test_rx_deferred_irq_replayed_on_schedule(self):
        # the other unmask path: dom0 scheduled with virqs enabled
        m, xen, twin, dev, nics = make_twin()
        dom0 = twin.dom0_kernel.domain
        dom0.disable_virq()
        m.wire.inject(nics[0], self.frame())
        assert dev.rx_packets == 0
        dom0.virq_enabled = True        # flag flips without the hook
        xen.schedule_domain(dom0)
        assert dev.rx_packets == 1

    def test_rx_ring_refilled_from_pool(self):
        m, xen, twin, dev, nics = make_twin()
        for _ in range(80):     # more than the ring size
            assert m.wire.inject(nics[0], self.frame())
        assert dev.rx_packets == 80


class TestVmInstanceManagement:
    def test_get_stats_via_vm_instance(self):
        m, xen, twin, dev, nics = make_twin()
        for _ in range(3):
            dev.transmit(600)
        twin.vm_call("e1000_get_stats", [dev.netdev_addr])
        ndev = NetDevice(twin.dom0_kernel.domain.aspace, dev.netdev_addr)
        assert ndev.tx_packets == 3

    def test_vm_call_switches_and_restores(self):
        m, xen, twin, dev, nics = make_twin()
        assert xen.current.name == "guest"
        twin.vm_call("e1000_ethtool_get_link", [dev.netdev_addr])
        assert xen.current.name == "guest"

    def test_watchdog_runs_in_dom0(self):
        m, xen, twin, dev, nics = make_twin()
        twin.dom0_kernel.advance_jiffies(10)
        assert twin.run_vm_maintenance() == 1

    def test_vm_instance_runs_identity_stlb(self):
        m, xen, twin, dev, nics = make_twin()
        # the VM instance executed probe/open: its stlb has identity fills
        assert twin.identity_svm.misses > 0
        assert twin.identity_svm.mappings == {}

    def test_set_mac_via_vm_instance_affects_hypervisor_path(self):
        m, xen, twin, dev, nics = make_twin()
        buf = twin.dom0_kernel.heap.alloc(8)
        new_mac = b"\x02\x00\x00\x00\x00\x42"
        twin.dom0_kernel.memory_view().write_bytes(buf, new_mac)
        twin.vm_call("e1000_set_mac", [dev.netdev_addr, buf])
        m.wire.keep_payloads = True
        dev2_mac = NetDevice(twin.dom0_kernel.domain.aspace,
                             dev.netdev_addr).mac
        assert dev2_mac == new_mac


class TestUpcalls:
    def test_upcalls_made_for_demoted_routine(self):
        m, xen, twin, dev, nics = make_twin(
            upcall_routines=("dma_map_single",))
        for _ in range(5):
            assert dev.transmit(700)
        assert twin.upcalls.calls_by_name["dma_map_single"] >= 5

    def test_upcall_returns_correct_value(self):
        # the skb still reaches the NIC: the dom0 dma_map_single result
        # travelled back through the upcall
        m, xen, twin, dev, nics = make_twin(
            upcall_routines=("dma_map_single",))
        m.wire.keep_payloads = True
        payload = b"\xAB" * 600
        assert dev.transmit(len(payload), payload=payload)
        assert m.wire.transmitted[0][14:] == payload

    def test_upcall_switches_to_dom0_and_back(self):
        m, xen, twin, dev, nics = make_twin(
            upcall_routines=("dma_map_single",))
        before = xen.switches
        dev.transmit(500)
        assert xen.switches >= before + 2

    def test_upcall_cost_calibrated(self):
        m, xen, twin, dev, nics = make_twin(
            upcall_routines=("dma_map_single",))
        # steady state
        for _ in range(8):
            dev.transmit(500)
        upcalls_before = twin.upcalls.upcalls
        snap = m.account.snapshot()
        for _ in range(8):
            dev.transmit(500)
        made = twin.upcalls.upcalls - upcalls_before
        assert made >= 8
        # compare against the no-upcall configuration
        m2, xen2, twin2, dev2, nics2 = make_twin()
        for _ in range(8):
            dev2.transmit(500)
        snap2 = m2.account.snapshot()
        for _ in range(8):
            dev2.transmit(500)
        with_up = sum(m.account.delta_since(snap).values())
        without = sum(m2.account.delta_since(snap2).values())
        per_upcall = (with_up - without) / made
        assert 0.6 * xen.costs.upcall_round_trip < per_upcall < \
            1.6 * xen.costs.upcall_round_trip

    def test_all_nine_demoted_still_works(self):
        from repro.configs import UPCALL_SWEEP_ORDER
        m, xen, twin, dev, nics = make_twin(
            upcall_routines=UPCALL_SWEEP_ORDER)
        assert dev.transmit(500)
        frame = GUEST_MAC + b"\x00" * 6 + b"\x08\x00" + bytes(500)
        assert m.wire.inject(nics[0], frame)
        assert dev.rx_packets == 1


class TestSafety:
    """§4.5: a buggy hypervisor driver is aborted; the hypervisor and the
    rest of the system keep running."""

    def make_sabotaged_twin(self, target_addr):
        """Build a twin whose xmit path performs a wild write through an
        arbitrary pointer (a classic memory-corruption driver bug)."""
        from repro.drivers.e1000 import DRIVER_CONSTANTS
        from repro.isa import assemble
        import repro.drivers.e1000 as drv
        m = Machine()
        xen = Hypervisor(m)
        dom0 = xen.create_domain("dom0", is_dom0=True)
        k0 = Kernel(m, dom0, costs=xen.costs, paravirtual=True)
        guest = xen.create_domain("guest")
        kg = Kernel(m, guest, costs=xen.costs, paravirtual=True)
        bad_asm = drv.E1000_ASM.replace(
            "    incl e1000_xmit_calls",
            f"    movl ${target_addr}, %eax\n"
            "    movl $0x41414141, (%eax)\n"
            "    incl e1000_xmit_calls",
            1,
        )
        program = assemble(bad_asm, constants=DRIVER_CONSTANTS,
                           name="e1000-bad")
        # recovery off: this class asserts the raw §4.5 abort semantics
        # (tests/recovery/ covers the contained behaviour)
        twin = TwinDriverManager(xen, k0, program=program, recovery=False)
        nic = m.add_nic()
        twin.attach_nic(nic)
        dev = ParavirtNetDevice(twin, kg, mac=GUEST_MAC)
        xen.switch_to(guest)
        return m, xen, twin, dev

    def test_wild_write_to_hypervisor_aborts_driver(self):
        # the hypervisor's own data: SVM must refuse the access
        m, xen, twin, dev = self.make_sabotaged_twin(0xF0300040)
        with pytest.raises(DriverAborted):
            dev.transmit(500)
        assert twin.aborted
        assert twin.svm.protection_faults >= 1

    def test_hypervisor_survives_aborted_driver(self):
        m, xen, twin, dev = self.make_sabotaged_twin(0xF0300040)
        with pytest.raises(DriverAborted):
            dev.transmit(500)
        # hypervisor still functional: domain switches, events, and the
        # VM instance in dom0 still work
        xen.switch_to(twin.dom0_kernel.domain)
        assert twin.vm_call("e1000_ethtool_get_link",
                            [dev.netdev_addr]) in (0, 1)
        # but further hypervisor-driver invocations are refused
        xen.switch_to(xen.domains[1])
        with pytest.raises(DriverAborted):
            dev.transmit(500)

    def test_wild_write_to_unmapped_aborts(self):
        m, xen, twin, dev = self.make_sabotaged_twin(0x00001000)
        with pytest.raises(DriverAborted):
            dev.transmit(500)

    def test_wild_write_outside_dom0_aborts(self):
        # an address mapped in no address space at all (and below the
        # hypervisor region): SVM refuses it on the permission check
        m, xen, twin, dev = self.make_sabotaged_twin(0xBF000000)
        with pytest.raises(DriverAborted):
            dev.transmit(500)
        assert twin.aborted

    def test_sane_driver_not_aborted(self):
        m, xen, twin, dev, nics = make_twin()
        for _ in range(20):
            assert dev.transmit(500)
        assert not twin.aborted


class TestErrorPathUpcalls:
    """The paper's split: error handling is NOT on the fast path, so the
    routines it needs (netif_stop_queue, netif_wake_queue) have no
    hypervisor implementation — when the ring fills, the hypervisor
    driver reaches them through upcalls into dom0."""

    def test_ring_full_error_path_upcalls(self):
        from repro.machine.nic import REG_IMS, REG_TCTL
        m, xen, twin, dev, nics = make_twin()
        nic = nics[0]
        nic.mmio_write(REG_IMS, 4, 0)      # no cleaning interrupts
        nic.regs[REG_TCTL] = 0             # device stops consuming
        assert twin.upcalls.upcalls == 0
        sent = 0
        for _ in range(80):
            if not dev.transmit(300):
                break
            sent += 1
        assert sent < 80                   # the ring filled
        # netif_stop_queue went through an upcall into dom0
        assert twin.upcalls.calls_by_name.get("netif_stop_queue", 0) >= 1
        # and the queue-stopped state is visible in dom0's netdev struct
        ndev = NetDevice(twin.dom0_kernel.domain.aspace, dev.netdev_addr)
        assert ndev.queue_stopped

    def test_wake_after_drain_also_upcalls(self):
        from repro.machine.nic import REG_IMS, REG_TCTL, TCTL_EN, ICR_TXDW
        m, xen, twin, dev, nics = make_twin()
        nic = nics[0]
        nic.mmio_write(REG_IMS, 4, 0)
        nic.regs[REG_TCTL] = 0
        while dev.transmit(300):
            pass
        # drain: re-enable the device and deliver the cleaning interrupt
        nic.regs[REG_TCTL] = TCTL_EN
        nic.mmio_write(0x3818, 4, nic.regs[0x3818])   # re-kick TDT
        nic.mmio_write(REG_IMS, 4, ICR_TXDW)
        nic.flush_interrupts()
        assert twin.upcalls.calls_by_name.get("netif_wake_queue", 0) >= 1
        ndev = NetDevice(twin.dom0_kernel.domain.aspace, dev.netdev_addr)
        assert not ndev.queue_stopped
        # the guest can transmit again
        assert dev.transmit(300)
